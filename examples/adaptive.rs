//! Adaptive hybrid scheduling end to end: the feedback controller
//! picking the static/dynamic split from the measurements every run
//! already reports.
//!
//! Three acts, public API only:
//! 1. solo runs under an injected slow worker — watch the chosen
//!    `dratio` leave the topology seed as observations accumulate;
//! 2. the same controller against the discrete-event simulator
//!    (`calu::sim::simulate_adaptation`) — an offline what-if sweep on
//!    a modelled 16-core NUMA Xeon;
//! 3. a `FactorService` whose completed jobs feed the controller, and
//!    `Solver::reconfigure` applying the adapted split to the next
//!    pool generation with zero dropped jobs.
//!
//! ```bash
//! cargo run --release --example adaptive
//! ```

use calu::sched::SchedulerKind;
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{AdaptivePolicy, FaultPlan, JobClass, JobSpec, MatrixSource, QueueDiscipline, Solver};

fn main() {
    // ---- 1. solo runs under adversity ---------------------------------
    // worker 1 at a third of its speed: idle shows up on the other
    // three workers, and the controller grows the dynamic share to
    // absorb it — without ever changing the factor bits
    let solver = Solver::new(MatrixSource::uniform(256, 42))
        .tile(32)
        .threads(4)
        .verify(false)
        .fault_plan(FaultPlan::off().with_seed(7).slow_worker(1, 3.0))
        .adaptive(AdaptivePolicy::new(7));
    println!("solo adaptive runs (worker 1 at 3x slowdown):");
    for run in 0..4 {
        let r = solver.run().expect("adaptive run");
        let a = r.adaptation.as_ref().expect("adaptive report");
        let SchedulerKind::Hybrid { dratio } = r.scheduler else {
            unreachable!("adaptive plans always run Hybrid");
        };
        println!(
            "  run {run}: seed dratio {:.3} -> chosen {:.3} (ran {:.3}, \
             {} observation(s), steal order {})",
            a.seed.dratio, a.chosen.dratio, dratio, a.observations, a.chosen.steal_order,
        );
    }
    let final_split = solver.adaptive_split().expect("planned at least once");
    println!(
        "  controller now recommends dratio {:.3}",
        final_split.dratio
    );

    // ---- 2. the same controller on the simulator ----------------------
    // seeds from the *modelled* machine (4 sockets x 4 cores), so the
    // sweep predicts the real machine instead of the host running it
    let machine = MachineConfig::intel_xeon_16(NoiseConfig::off());
    let choices = calu::sim::simulate_adaptation(
        &machine,
        calu::matrix::Layout::BlockCyclic,
        (4000, 4000),
        100,
        QueueDiscipline::Global,
        AdaptivePolicy::new(7),
        4,
    );
    println!("simulated what-if on {}:", machine.name);
    for (i, c) in choices.iter().enumerate() {
        println!("  sim run {i}: dratio {:.3}", c.dratio);
    }

    // ---- 3. a service that converges, and reconfigure applies it ------
    let solver = Solver::new(MatrixSource::shape(96, 96))
        .tile(16)
        .threads(4)
        .verify(false)
        .fault_plan(FaultPlan::off().with_seed(9).slow_worker(2, 4.0))
        .adaptive(AdaptivePolicy::new(9));
    let service = solver.serve().expect("spawn service");
    let before = service.current_split();
    for i in 0..6u64 {
        service
            .submit(JobSpec::uniform(96, 96, 100 + i), JobClass::Batch)
            .expect("submit")
            .wait()
            .expect("factor");
    }
    let adapted = solver.adaptive_split().expect("jobs fed the controller");
    println!(
        "service fed the controller: pool ran dratio {:.3}, controller now at {:.3}",
        before.dratio, adapted.dratio
    );
    let generation = solver.reconfigure(&service).expect("reconfigure");
    println!(
        "reconfigured to generation {generation}: pool now runs dratio {:.3}",
        service.current_split().dratio
    );
    service.drain();
    println!("OK");
}
