//! Data-layout demo (the paper's Figure 5): how the same matrix is laid
//! out in memory under BCL and 2l-BL, and why it matters.
//!
//! ```sh
//! cargo run --release --example layouts_demo
//! ```

use calu::matrix::{BclMatrix, DenseMatrix, ProcessGrid, TileStorage, TlbMatrix};

fn main() {
    // the 4x4-block example of Figure 5: 2x2 grid, b = 2, 8x8 matrix
    let n = 8;
    let b = 2;
    let a = DenseMatrix::from_fn(n, n, |i, j| (i * 10 + j) as f64);
    let grid = ProcessGrid::new(2, 2).unwrap();

    println!("Matrix entries are 'row*10+col' so you can read positions.\n");

    let bcl = BclMatrix::from_dense(&a, b, grid);
    println!("== Block cyclic layout (BCL): one contiguous region per thread ==");
    for t in 0..grid.size() {
        let region = bcl.region(t);
        let ld = bcl.region_ld(t);
        println!(
            "thread {t}: {} elements, local leading dimension {ld}:",
            region.len()
        );
        print!("   ");
        for v in region.iter().take(16) {
            print!("{v:>4.0}");
        }
        println!("{}", if region.len() > 16 { " ..." } else { "" });
    }
    println!("-> a thread's tiles share columns: several tiles can be updated");
    println!("   with ONE BLAS-3 call (the paper's k=3 grouping).\n");

    let tlb = TlbMatrix::from_dense(&a, b, grid);
    println!("== Two-level block layout (2l-BL): every bxb tile contiguous ==");
    for (ti, tj) in [(0usize, 0usize), (0, 1), (1, 0)] {
        let loc = tlb.tile_loc(ti, tj);
        let buf = &tlb.buffer()[loc.offset..loc.offset + loc.rows * loc.cols];
        println!("tile ({ti},{tj}) at offset {:>3}: {:?}", loc.offset, buf);
    }
    println!("-> a tile fits in cache and is read with zero stride, but tiles");
    println!("   cannot be fused into larger BLAS-3 calls without copies.\n");

    // round-trip sanity
    assert!(bcl.to_dense().approx_eq(&a, 0.0));
    assert!(tlb.to_dense().approx_eq(&a, 0.0));
    println!("Both layouts round-trip losslessly to/from column-major. OK");
}
