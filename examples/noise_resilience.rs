//! Noise resilience: how each scheduling strategy degrades as OS noise
//! grows — the §6/§7 story. Static schedules amplify noise (one delayed
//! core stalls the pipeline); the hybrid's dynamic section absorbs it.
//!
//! ```sh
//! cargo run --release --example noise_resilience
//! ```

use calu::model::{max_static_fraction, NoiseStats};
use calu::sched::SchedulerKind;
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{MatrixSource, SimulatedBackend, Solver};

fn main() {
    let n = 4000;

    println!("Gflop/s vs OS-noise load (Intel 16-core model, n = {n}, BCL):\n");
    println!(
        "  {:>12}  {:>8}  {:>8}  {:>8}  {:>14}",
        "noise load", "static", "h10", "dynamic", "Thm1 max-fs"
    );
    for load_pct in [0.0, 0.5, 1.0, 2.0, 5.0] {
        let noise = if load_pct == 0.0 {
            NoiseConfig::off()
        } else {
            NoiseConfig {
                rate_hz: 25.0,
                mean_duration: load_pct / 100.0 / 25.0,
                seed: 42,
            }
        };
        let mach = MachineConfig::intel_xeon_16(noise);
        let run = |sched| {
            Solver::new(MatrixSource::shape(n, n))
                .scheduler(sched)
                .backend(SimulatedBackend::new(mach.clone()))
                .run()
                .expect("simulated run")
        };
        let stat_report = run(SchedulerKind::Static);
        let stat = stat_report.gflops();
        let h10 = run(SchedulerKind::Hybrid { dratio: 0.1 }).gflops();
        let dynamic = run(SchedulerKind::Dynamic).gflops();
        // Theorem 1 with the measured noise of the static run
        let deltas: Vec<f64> = stat_report
            .schedule
            .threads
            .iter()
            .map(|c| c.noise)
            .collect();
        let work: f64 = stat_report.schedule.threads.iter().map(|c| c.work).sum();
        let fs = max_static_fraction(work, 16, NoiseStats::from_samples(&deltas));
        println!(
            "  {:>11.1}%  {:>8.1}  {:>8.1}  {:>8.1}  {:>14.3}",
            load_pct, stat, h10, dynamic, fs
        );
    }
    println!("\nStatic loses the most as noise grows; the hybrid tracks the best curve.");
    println!("Theorem 1's maximum static fraction shrinks accordingly.");
}
