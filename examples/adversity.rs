//! The adversity layer, end to end: inject seeded faults into a real
//! threaded run and watch the hybrid schedule absorb them — same bits
//! out, rescue accounting in the report — then put a deadline on a
//! service job stuck behind a blocker and let the watchdog condemn it
//! with a typed error while the pool keeps serving.
//!
//! ```bash
//! cargo run --release --example adversity
//! ```

use std::time::Duration;

use calu::{FaultPlan, JobClass, JobSpec, MatrixSource, ServeError, ServiceEvent, Solver};

fn main() {
    // A clean 384² run on 4 threads is the reference: everything below
    // must reproduce its bits exactly.
    let base = || {
        Solver::new(MatrixSource::uniform(384, 2024))
            .tile(32)
            .threads(4)
            .dratio(0.5)
    };
    let clean = base().run().expect("clean run");
    println!(
        "clean run: makespan {:.2} ms, residual {:.2e}",
        clean.makespan * 1e3,
        clean.residual.unwrap()
    );

    // Now the same run under adversity: worker 1 at half speed the
    // whole time, worker 3 dies after 5 tasks. The dying worker
    // republishes its unexecuted static tasks into the dynamic queues
    // (static-task rescue), and the exclusive-writer DAG makes the
    // factors schedule-independent — so the bits match anyway.
    let plan = FaultPlan::off()
        .with_seed(7)
        .slow_worker(1, 2.0)
        .lose_worker(3, 5);
    let faulted = base().fault_plan(plan).run().expect("faulted run");
    println!(
        "faulted run (slow worker 1, lose worker 3): makespan {:.2} ms, \
         {} worker(s) lost, {} static task(s) rescued",
        faulted.makespan * 1e3,
        faulted.schedule.lost_workers(),
        faulted.schedule.total_rescued(),
    );
    let (f, fc) = (
        faulted.factorization.as_ref().unwrap(),
        clean.factorization.as_ref().unwrap(),
    );
    assert_eq!(f.lu.as_slice(), fc.lu.as_slice());
    assert_eq!(f.perm.pivots(), fc.perm.pivots());
    println!("  factors and pivots bitwise-identical to the clean run");

    // The service's time dimension: one worker, a big blocker in
    // front, and a victim that must finish within 5 ms. It can't — the
    // watchdog condemns it with a typed error, the blocker and every
    // later job still complete, and drain strands nothing.
    let service = Solver::new(MatrixSource::shape(8, 8))
        .tile(32)
        .threads(1)
        .verify(false)
        .serve()
        .expect("spawn service");
    let events = service.events();
    let blocker = service
        .submit(JobSpec::uniform(512, 512, 1), JobClass::Batch)
        .expect("admission");
    let victim = service
        .submit(
            JobSpec::uniform(128, 128, 2).with_deadline(Duration::from_millis(5)),
            JobClass::Batch,
        )
        .expect("admission");
    match victim.wait() {
        Err(ServeError::DeadlineExceeded { deadline }) => {
            println!("victim condemned: missed its {deadline:?} deadline")
        }
        other => panic!("expected a deadline condemnation, got {other:?}"),
    }
    let blocker = blocker.wait().expect("blocker completes");
    println!(
        "blocker unharmed: {:?}, makespan {:.2} ms",
        blocker.dims,
        blocker.makespan * 1e3
    );
    service
        .submit(JobSpec::uniform(64, 64, 3), JobClass::Interactive)
        .expect("admission")
        .wait()
        .expect("the condemnation poisoned nothing");
    service.drain();
    assert_eq!(service.pending(), 0);
    let terminal = events
        .into_iter()
        .filter(|e| matches!(e, ServiceEvent::Job(_)))
        .count();
    println!("pool served on after the condemnation; {terminal} terminal job event(s) streamed");
    assert_eq!(terminal, 3, "blocker, victim and the follow-up job");
    println!("OK");
}
