//! The factorization service, end to end: spawn a [`FactorService`]
//! from a `Solver` builder, submit jobs in all three priority classes
//! from multiple threads, watch the lifecycle (status polling, the
//! terminal-event stream, cancellation, admission control), and drain.
//!
//! ```bash
//! cargo run --release --example factor_service
//! ```

use calu::matrix::gen;
use calu::{JobClass, JobSpec, JobStatus, MatrixSource, ServeError, ServiceConfig, Solver};

fn main() {
    // the builder is the service's plan: knobs validate once, jobs
    // only bring their matrices
    let solver = Solver::new(MatrixSource::shape(256, 256))
        .tile(32)
        .threads(4)
        .verify(false);
    let service = solver.serve().expect("spawn service");
    println!(
        "service up: {} workers, pool spawn took {:.2} ms",
        service.threads(),
        service.spawn_secs() * 1e3
    );

    // submit from several threads at once — handles are independent
    let reports = std::thread::scope(|s| {
        let svc = &service;
        let submitters: Vec<_> = (0..3u64)
            .map(|t| {
                s.spawn(move || {
                    let class = match t {
                        0 => JobClass::Interactive,
                        1 => JobClass::Batch,
                        _ => JobClass::Background,
                    };
                    let h = svc
                        .submit(JobSpec::uniform(192, 192, 100 + t), class)
                        .expect("admission has room");
                    h.wait().expect("served job")
                })
            })
            .collect();
        submitters
            .into_iter()
            .map(|j| j.join().expect("submitter thread"))
            .collect::<Vec<_>>()
    });
    for r in &reports {
        println!(
            "  {:?} job: {} tasks, makespan {:.2} ms, factors present: {}",
            r.dims,
            r.tasks,
            r.makespan * 1e3,
            r.factorization.is_some()
        );
    }

    // a served job is bitwise-identical to a solo run of the same spec
    let solo = Solver::new(MatrixSource::uniform(192, 100))
        .tile(32)
        .threads(4)
        .verify(false)
        .run()
        .expect("solo run");
    let served = &reports[0];
    let same = solo.factorization.as_ref().unwrap().lu.as_slice()
        == served.factorization.as_ref().unwrap().lu.as_slice();
    println!("served ≡ solo bitwise: {same}");
    assert!(same);

    // lifecycle: dense specs work too; status is observable without
    // blocking, and queued jobs can be cancelled
    let h = service
        .submit(
            JobSpec::dense(gen::uniform(128, 128, 7)),
            JobClass::Interactive,
        )
        .expect("submit dense");
    println!("dense job status after submit: {:?}", h.try_status());
    let done = h.wait().expect("dense job");
    println!("dense job residual: {:.2e}", done.residual.unwrap_or(0.0));

    // admission control: a tiny quota rejects with a typed Busy
    let tiny = solver
        .serve_with(ServiceConfig {
            max_pending: 1,
            ..ServiceConfig::default()
        })
        .expect("spawn tiny service");
    let first = tiny
        .submit(JobSpec::uniform(512, 512, 1), JobClass::Batch)
        .expect("first fits");
    match tiny.submit(JobSpec::uniform(64, 64, 2), JobClass::Batch) {
        Err(ServeError::Busy { pending, quota, .. }) => {
            println!("admission: Busy (pending {pending} / quota {quota})")
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    // invalid specs never reach the pool
    match tiny.submit(JobSpec::uniform(0, 64, 3), JobClass::Batch) {
        Err(ServeError::Invalid(e)) => println!("invalid spec rejected: {e}"),
        other => panic!("expected Invalid, got {other:?}"),
    }
    first.wait().expect("blocker");
    tiny.drain();

    // drain ends the event stream after every terminal event
    let events = service.events();
    let h = service
        .submit(JobSpec::uniform(96, 96, 9), JobClass::Background)
        .expect("one last job");
    h.wait().expect("last job");
    service.drain();
    let terminal: Vec<_> = events
        .filter_map(|e| match e {
            calu::ServiceEvent::Job(j) => Some(j),
            _ => None,
        })
        .collect();
    println!(
        "event stream after drain: {} terminal event(s), last = {:?}",
        terminal.len(),
        terminal.last().map(|e| e.status)
    );
    assert!(terminal.iter().all(|e| e.status == JobStatus::Done));

    // a drained service refuses new work
    match service.submit(JobSpec::uniform(64, 64, 10), JobClass::Batch) {
        Err(ServeError::ShuttingDown) => println!("submit after drain: ShuttingDown"),
        other => panic!("expected ShuttingDown, got {other:?}"),
    }
}
