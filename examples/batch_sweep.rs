//! Batched many-matrix sweeps: `Solver::batch` on the persistent pool
//! versus looping over `Solver::run`.
//!
//! ```text
//! cargo run --release --example batch_sweep
//! ```
//!
//! Serving-style workloads factor many small matrices; the batch API
//! spawns the worker pool once and keeps per-worker scratch arenas and
//! deques alive across items, so the per-item cost approaches pure
//! kernel time. The example prints both paths' throughput plus the
//! batch report's pool accounting.

use calu::matrix::gen;
use calu::{MatrixSource, Solver};
use std::time::Instant;

fn main() {
    let items = 16usize;
    let n = 256usize;
    // pre-materialized matrices, as a serving workload would hold them
    let sources: Vec<MatrixSource> = (0..items as u64)
        .map(|i| MatrixSource::Dense(gen::uniform(n, n, 42 + i)))
        .collect();
    let solver = Solver::new(MatrixSource::shape(n, n))
        .tile(32)
        .threads(4)
        .verify(false);

    let t0 = Instant::now();
    let report = solver.batch(&sources).expect("batch sweep");
    let batch_secs = t0.elapsed().as_secs_f64();

    let t0 = Instant::now();
    for src in &sources {
        Solver::new(src.clone())
            .tile(32)
            .threads(4)
            .verify(false)
            .run()
            .expect("solo run");
    }
    let loop_secs = t0.elapsed().as_secs_f64();

    println!(
        "batch of {items} × (n = {n}) on {} threads:",
        report.threads
    );
    println!(
        "  Solver::batch      {:8.2} items/s  ({:.1} ms wall, {} co-scheduled)",
        report.items_per_sec(),
        report.wall_secs * 1e3,
        report.co_scheduled,
    );
    println!(
        "  loop over run      {:8.2} items/s  ({:.1} ms wall)",
        items as f64 / loop_secs,
        loop_secs * 1e3,
    );
    println!(
        "  speedup {:.2}x · aggregate {:.1} Gflop/s · pool spawned once in {:.2} ms \
         (cold spawn {:.2} ms/item → ~{:.1} ms saved)",
        loop_secs / batch_secs,
        report.aggregate_gflops(),
        report.pool_spawn_secs * 1e3,
        report.cold_spawn_secs * 1e3,
        report.spawn_savings_secs() * 1e3,
    );
    for (i, item) in report.items.iter().enumerate().take(4) {
        println!(
            "  item {i}: makespan {:.2} ms, {} tasks, queue sources {:?}",
            item.makespan * 1e3,
            item.tasks,
            item.schedule.queue_sources(),
        );
    }
}
