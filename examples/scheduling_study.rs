//! Scheduling study: sweep the dynamic percentage on both simulated
//! machines and find the knee — the experiment behind Figures 6–7,
//! runnable in seconds on any laptop.
//!
//! With the unified `Solver`, "same workload, N machines × M schedulers"
//! is literally a nested loop over values.
//!
//! ```sh
//! cargo run --release --example scheduling_study
//! ```

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{MatrixSource, SimulatedBackend, Solver};

fn main() {
    let noise = NoiseConfig::os_daemons(42);
    let n = 5000;
    for (name, mach) in [
        ("Intel Xeon 16-core", MachineConfig::intel_xeon_16(noise)),
        ("AMD Opteron 48-core", MachineConfig::amd_opteron_48(noise)),
    ] {
        println!(
            "\n{name}  (peak {:.1} Gflop/s), n = {n}, BCL layout",
            mach.peak_flops() / 1e9
        );
        println!(
            "  {:>22}  {:>9}  {:>6}  {:>11}",
            "scheduler", "Gflop/s", "util", "remote GB"
        );
        let mut best: (String, f64) = (String::new(), 0.0);
        for sched in SchedulerKind::paper_sweep() {
            let r = Solver::new(MatrixSource::shape(n, n))
                .layout(Layout::BlockCyclic)
                .scheduler(sched)
                .backend(SimulatedBackend::new(mach.clone()))
                .run()
                .expect("simulated run");
            println!(
                "  {:>22}  {:>9.1}  {:>5.1}%  {:>11.2}",
                sched.to_string(),
                r.gflops(),
                r.utilization() * 100.0,
                r.remote_bytes() / 1e9
            );
            if r.gflops() > best.1 {
                best = (sched.to_string(), r.gflops());
            }
        }
        println!("  -> best: {} at {:.1} Gflop/s", best.0, best.1);
    }
    println!("\nThe knee sits at a small dynamic share (10–20%), exactly the paper's finding:");
    println!("enough dynamic tasks to absorb imbalance, not enough to destroy locality.");
}
