//! Quickstart: factor a matrix through the unified `Solver`, verify it,
//! solve a system.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use calu::core::gepp_factor;
use calu::matrix::{gen, ops, Layout};
use calu::{Solver, ThreadedBackend};

fn main() {
    // A 768×768 random matrix, factored with tile size 64 on 4 threads,
    // 10% of the panels scheduled dynamically (the paper's sweet spot).
    let n = 768;
    let a = gen::uniform(n, n, 2024);
    let report = Solver::new(a.clone())
        .tile(64)
        .threads(4)
        .dratio(0.1)
        .layout(Layout::BlockCyclic)
        .backend(ThreadedBackend)
        .run()
        .expect("factorization");

    println!("CALU factorization of a {n}x{n} matrix");
    println!(
        "  residual  ‖PA − LU‖/‖A‖ = {:.2e}",
        report.residual.unwrap()
    );
    println!(
        "  growth    max|U|/max|A|  = {:.2}",
        report.growth_factor.unwrap()
    );
    let f = report.factorization.as_ref().unwrap();
    println!("  pivots    {} row swaps recorded", f.perm.len());
    println!(
        "  schedule  {:.1} ms makespan, {:.0}% utilization, {} of {} tasks via the dynamic queue",
        report.makespan * 1e3,
        report.utilization() * 100.0,
        report.schedule.queue_sources().global,
        report.tasks,
    );

    // Solve A·x = b and check the backward error.
    let x_true = gen::uniform(n, 1, 7);
    let b = ops::matmul(&a, &x_true);
    let x = f.solve(&b);
    let err = calu::core::verify::backward_error(&a, &x, &b);
    println!("  solve     backward error = {err:.2e}");

    // Compare the pivot quality with plain partial pivoting.
    let g = gepp_factor(&a, 64);
    println!(
        "  GEPP comparison: growth {:.2} (tournament pivoting is as stable in practice)",
        g.growth_factor(&a)
    );
    assert!(report.residual.unwrap() < 1e-12);
    assert!(err < 1e-12);
    println!("OK");
}
