//! Quickstart: factor a matrix with CALU, verify it, solve a system.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use calu::core::{calu_factor, gepp_factor, CaluConfig};
use calu::matrix::{gen, ops, Layout};

fn main() {
    // A 768×768 random matrix, factored with tile size 64 on 4 threads,
    // 10% of the panels scheduled dynamically (the paper's sweet spot).
    let n = 768;
    let a = gen::uniform(n, n, 2024);
    let cfg = CaluConfig::new(64)
        .with_threads(4)
        .with_dratio(0.1)
        .with_layout(Layout::BlockCyclic);

    let f = calu_factor(&a, &cfg).expect("factorization");
    println!("CALU factorization of a {n}x{n} matrix");
    println!("  residual  ‖PA − LU‖/‖A‖ = {:.2e}", f.residual(&a));
    println!("  growth    max|U|/max|A|  = {:.2}", f.growth_factor(&a));
    println!("  pivots    {} row swaps recorded", f.perm.len());

    // Solve A·x = b and check the backward error.
    let x_true = gen::uniform(n, 1, 7);
    let b = ops::matmul(&a, &x_true);
    let x = f.solve(&b);
    let err = calu::core::verify::backward_error(&a, &x, &b);
    println!("  solve     backward error = {err:.2e}");

    // Compare the pivot quality with plain partial pivoting.
    let g = gepp_factor(&a, 64);
    println!(
        "  GEPP comparison: growth {:.2} (tournament pivoting is as stable in practice)",
        g.growth_factor(&a)
    );
    assert!(f.residual(&a) < 1e-12);
    assert!(err < 1e-12);
    println!("OK");
}
