//! Tiled Cholesky through the same `Solver` facade as CALU: one
//! algorithm knob, shared scheduler, and a service that mixes LU and
//! Cholesky jobs in one worker pool.
//!
//! ```sh
//! cargo run --release --example cholesky
//! ```

use calu::matrix::gen;
use calu::{Algorithm, JobClass, JobSpec, MatrixSource, Solver};

fn main() {
    // A seeded SPD matrix, factored as A = L·Lᵀ on the threaded
    // backend — same hybrid static/dynamic schedule as CALU, but the
    // kernel set is POTRF/TRSM/SYRK and there is no pivoting barrier.
    let n = 768;
    let report = Solver::new(MatrixSource::spd_uniform(n, 2024))
        .algorithm(Algorithm::Cholesky)
        .tile(64)
        .threads(4)
        .dratio(0.1)
        .run()
        .expect("cholesky factorization");

    println!("Tiled Cholesky of a {n}x{n} SPD matrix");
    println!(
        "  residual  ‖A − LLᵀ‖/‖A‖ = {:.2e}",
        report.residual.unwrap()
    );
    let f = report.factorization.as_ref().unwrap();
    println!(
        "  pivoting  none ({} row swaps, growth factor {:?})",
        f.perm.len(),
        report.growth_factor
    );
    println!(
        "  schedule  {:.1} ms makespan, {:.0}% utilization, {} tasks ({:.1} Gflop/s on n³/3)",
        report.makespan * 1e3,
        report.utilization() * 100.0,
        report.tasks,
        report.gflops(),
    );
    assert!(report.residual.unwrap() < 1e-13);
    assert!(report.growth_factor.is_none());
    assert!(f.perm.is_empty());

    // A non-SPD source is rejected at plan time, not at execution time.
    let err = Solver::new(MatrixSource::uniform(n, 1))
        .algorithm(Algorithm::Cholesky)
        .run()
        .unwrap_err();
    println!("  plan gate rejects a general source: {err}");

    // One service, both algorithms: each job carries its own kernel
    // set, so LU and Cholesky factorizations interleave on one pool.
    let service = Solver::new(MatrixSource::shape(256, 256))
        .tile(32)
        .threads(4)
        .serve()
        .expect("service");
    let lu = service
        .submit(JobSpec::uniform(256, 256, 7), JobClass::Interactive)
        .expect("lu job");
    let ch = service
        .submit(JobSpec::spd_uniform(256, 9), JobClass::Interactive)
        .expect("cholesky job");
    let lu_report = lu.wait().expect("lu done");
    let ch_report = ch.wait().expect("cholesky done");
    println!(
        "  mixed service: {} residual {:.2e} (growth {:.2}), {} residual {:.2e} (no growth)",
        lu_report.algorithm,
        lu_report.residual.unwrap(),
        lu_report.growth_factor.unwrap(),
        ch_report.algorithm,
        ch_report.residual.unwrap(),
    );
    assert_eq!(lu_report.algorithm, Algorithm::Calu);
    assert_eq!(ch_report.algorithm, Algorithm::Cholesky);
    assert!(ch_report.residual.unwrap() < 1e-13);
    service.drain();

    // The factors really are Cholesky factors: L·Lᵀ reproduces A.
    let a = gen::spd_uniform(n, 2024);
    let l = f.cholesky_l();
    let mut max_err: f64 = 0.0;
    for i in 0..n {
        for j in 0..=i {
            let mut s = 0.0;
            for k in 0..=j {
                s += l.get(i, k) * l.get(j, k);
            }
            max_err = max_err.max((s - a.get(i, j)).abs());
        }
    }
    println!("  reconstruction max|LLᵀ − A| = {max_err:.2e}");
    assert!(max_err < 1e-10 * n as f64);
    println!("OK");
}
