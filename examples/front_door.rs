//! The TCP front door, end to end: bind a `ServeListener`, drive the
//! line protocol from a plain `TcpStream` (exactly what `nc` would
//! send), reconfigure the pool live under a queued backlog, and drain
//! over the wire.
//!
//! ```bash
//! cargo run --release --example front_door
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use calu::{MatrixSource, ServiceEvent, Solver};

fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, req: &str) -> String {
    writeln!(writer, "{req}").expect("write request");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    line.trim().to_string()
}

fn main() {
    // the solver builder is the service's plan; listen() binds the
    // front door over it (port 0 = let the OS pick)
    let listener = Solver::new(MatrixSource::shape(128, 128))
        .tile(32)
        .threads(2)
        .verify(false)
        .listen("127.0.0.1:0")
        .expect("bind front door");
    let addr = listener.local_addr();
    println!("front door on {addr}");
    let events = listener.service().events();

    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // the wire carries generator specs, never matrix data
    println!(
        "> ping                -> {}",
        roundtrip(&mut reader, &mut writer, "ping")
    );
    let reply = roundtrip(&mut reader, &mut writer, "submit batch uniform 128 128 42");
    println!("> submit uniform      -> {reply}");
    let id: u64 = reply
        .strip_prefix("ok ")
        .expect("ok <id>")
        .parse()
        .expect("id");
    loop {
        let status = roundtrip(&mut reader, &mut writer, &format!("status {id}"));
        if status.ends_with(" done") {
            println!("> status {id}            -> {status}");
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    // a malformed line gets a typed error, never a closed socket
    println!(
        "> gibberish           -> {}",
        roundtrip(&mut reader, &mut writer, "gibberish")
    );

    // queue a backlog, then swap the worker pool live: queued jobs
    // carry over to the new pool with their ids, nothing drops
    let ids: Vec<u64> = (0..4)
        .map(|i| {
            roundtrip(
                &mut reader,
                &mut writer,
                &format!("submit background uniform 128 128 {}", 100 + i),
            )
            .strip_prefix("ok ")
            .expect("ok <id>")
            .parse()
            .expect("id")
        })
        .collect();
    let generation = Solver::new(MatrixSource::shape(128, 128))
        .tile(32)
        .threads(4)
        .dratio(0.3)
        .verify(false)
        .reconfigure(listener.service())
        .expect("live reconfigure");
    println!("reconfigured to 4 threads: generation {generation}");
    for id in ids {
        loop {
            let status = roundtrip(&mut reader, &mut writer, &format!("status {id}"));
            if status.ends_with(" done") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    println!("backlog of 4 finished on the new pool");

    println!(
        "> stats               -> {}",
        roundtrip(&mut reader, &mut writer, "stats")
    );
    // drain over the wire: finishes everything accepted, then the
    // listener shuts down
    println!(
        "> drain               -> {}",
        roundtrip(&mut reader, &mut writer, "drain")
    );
    listener.shutdown();

    let reconfigures = events
        .into_iter()
        .filter(|e| matches!(e, ServiceEvent::Reconfigured { .. }))
        .count();
    println!("event stream saw {reconfigures} Reconfigured notice(s)");
    println!("OK");
}
