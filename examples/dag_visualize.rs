//! Export the CALU task DAG (Figure 3) as Graphviz DOT and print its
//! critical-path statistics.
//!
//! ```sh
//! cargo run --release --example dag_visualize > calu_dag.dot
//! dot -Tsvg calu_dag.dot -o calu_dag.svg
//! ```

use calu::dag::critical_path::{critical_path, unit_critical_path};
use calu::dag::{dot, TaskGraph};

fn main() {
    let g = TaskGraph::build_calu(400, 400, 100, 2);
    let nstatic = 3; // static(25% dynamic) on 4 panels

    // DOT on stdout
    println!("{}", dot::to_dot(&g, nstatic));

    // stats on stderr so the DOT stays pipeable
    let full = unit_critical_path(&g);
    let stat = critical_path(&g, |t| g.kind(t).writes_col() < nstatic, |_| 1.0);
    let dynamic = critical_path(&g, |t| g.kind(t).writes_col() >= nstatic, |_| 1.0);
    eprintln!("tasks: {}   edges: {}", g.len(), g.num_edges());
    eprintln!(
        "critical path (tasks): whole {}  static section {}  dynamic section {}",
        full.length, stat.length, dynamic.length
    );
    eprintln!("the two highlighted paths are the red/green paths of Figure 3");
}
