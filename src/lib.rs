//! # calu — hybrid static/dynamic scheduling for dense LU factorization
//!
//! Facade crate for the full reproduction of
//! *Donfack, Grigori, Gropp, Kale — "Hybrid static/dynamic scheduling for
//! already optimized dense matrix factorization"* (IPDPS 2012).
//!
//! ## The Solver API
//!
//! One builder owns every knob of the paper's design space; pluggable
//! [`Backend`]s execute the same plan for real ([`ThreadedBackend`]) or
//! on a modelled machine ([`SimulatedBackend`]); both return the same
//! structured [`Report`].
//!
//! ```
//! use calu::{Solver, ThreadedBackend};
//! use calu::matrix::{gen, Layout};
//! use calu::sched::SchedulerKind;
//!
//! let a = gen::uniform(128, 128, 42);
//! let report = Solver::new(a)
//!     .tile(32)
//!     .threads(4)
//!     .layout(Layout::BlockCyclic)
//!     .scheduler(SchedulerKind::Hybrid { dratio: 0.1 })
//!     .backend(ThreadedBackend)
//!     .run()
//!     .unwrap();
//! assert!(report.residual.unwrap() < 1e-12);
//! assert!(report.factorization.is_some());
//! println!("makespan {:.3} ms, {} tasks, idle {:?}",
//!     report.makespan * 1e3, report.tasks, report.schedule.per_thread_idle());
//! ```
//!
//! Swapping the execution substrate — or sweeping the whole design
//! space — is a loop over values, not a different API:
//!
//! ```
//! use calu::{MatrixSource, SimulatedBackend, Solver};
//! use calu::sched::SchedulerKind;
//! use calu::sim::{MachineConfig, NoiseConfig};
//!
//! for machine in [
//!     MachineConfig::intel_xeon_16(NoiseConfig::off()),
//!     MachineConfig::amd_opteron_48(NoiseConfig::off()),
//! ] {
//!     for sched in SchedulerKind::paper_sweep() {
//!         let r = Solver::new(MatrixSource::shape(2000, 2000))
//!             .scheduler(sched)
//!             .backend(SimulatedBackend::new(machine.clone()))
//!             .run()
//!             .unwrap();
//!         println!("{} {}: {:.1} Gflop/s", r.backend, r.scheduler, r.gflops());
//!     }
//! }
//! ```
//!
//! ## Migration from the 0.1 entry points
//!
//! | 0.1 call | replacement |
//! |---|---|
//! | `calu_factor(&a, &CaluConfig::new(b).with_threads(t))` | `Solver::new(a).tile(b).threads(t).run()` |
//! | `calu_factor_traced(..)` | `Solver::new(a)...trace(true).run()` (timeline in the report) |
//! | `sim::run(&g, &SimConfig::new(mach, layout, sched))` | `Solver::new(MatrixSource::shape(m, n)).layout(layout).scheduler(sched).backend(SimulatedBackend::new(mach)).run()` |
//!
//! The deprecated top-level shims were removed in 0.3, as announced;
//! the low-level entry points remain available under [`core`]
//! (`calu::core::calu_factor`, `calu::core::CaluConfig`) and [`sim`]
//! (`calu::sim::SimConfig`) for driver-level use.
//!
//! ## The pieces
//!
//! * [`matrix`] — storage layouts (CM / BCL / 2l-BL), grids, generators;
//! * [`kernels`] — pure-Rust BLAS-3 style kernels;
//! * [`dag`] — the CALU task dependency graph (tasks P/L/U/S);
//! * [`sched`] — static, dynamic, hybrid and work-stealing policies;
//! * [`sim`] — discrete-event multicore/NUMA machine simulator;
//! * [`trace`] — execution timelines and idle-time metrics;
//! * [`model`] — the paper's §6 performance model (Theorem 1);
//! * [`core`] — CALU with tournament pivoting, the threaded hybrid
//!   executor, and the GEPP / incremental-pivoting baselines.

pub mod backend;
pub mod error;
pub mod report;
pub mod solver;

pub use backend::{Backend, SimulatedBackend, ThreadedBackend};
pub use calu_sched::QueueDiscipline;
pub use error::Error;
pub use report::{
    ContentionStats, QueueBreakdown, Report, ScheduleMetrics, StealLocality, ThreadMetrics,
};
pub use solver::{Algorithm, MatrixSource, Plan, Solver};

pub use calu_core as core;
pub use calu_dag as dag;
pub use calu_kernels as kernels;
pub use calu_matrix as matrix;
pub use calu_model as model;
pub use calu_sched as sched;
pub use calu_sim as sim;
pub use calu_trace as trace;

/// Boxed-backend support so heterogeneous backend collections work in
/// sweep loops (`Vec<Box<dyn Backend>>`).
impl Backend for Box<dyn Backend> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }
    fn preferred_threads(&self) -> Option<usize> {
        self.as_ref().preferred_threads()
    }
    fn preferred_queue(&self) -> Option<calu_sched::QueueDiscipline> {
        self.as_ref().preferred_queue()
    }
    fn execute(&self, plan: &Plan<'_>) -> Result<Report, Error> {
        self.as_ref().execute(plan)
    }
}
