//! # calu — hybrid static/dynamic scheduling for dense LU factorization
//!
//! Facade crate for the full reproduction of
//! *Donfack, Grigori, Gropp, Kale — "Hybrid static/dynamic scheduling for
//! already optimized dense matrix factorization"* (IPDPS 2012).
//!
//! ## The Solver API
//!
//! One builder owns every knob of the paper's design space; pluggable
//! [`Backend`]s execute the same plan for real ([`ThreadedBackend`]) or
//! on a modelled machine ([`SimulatedBackend`]); both return the same
//! structured [`Report`].
//!
//! ```
//! use calu::{Solver, ThreadedBackend};
//! use calu::matrix::{gen, Layout};
//! use calu::sched::SchedulerKind;
//!
//! let a = gen::uniform(128, 128, 42);
//! let report = Solver::new(a)
//!     .tile(32)
//!     .threads(4)
//!     .layout(Layout::BlockCyclic)
//!     .scheduler(SchedulerKind::Hybrid { dratio: 0.1 })
//!     .backend(ThreadedBackend)
//!     .run()
//!     .unwrap();
//! assert!(report.residual.unwrap() < 1e-12);
//! assert!(report.factorization.is_some());
//! println!("makespan {:.3} ms, {} tasks, idle {:?}",
//!     report.makespan * 1e3, report.tasks, report.schedule.per_thread_idle());
//! ```
//!
//! Swapping the execution substrate — or sweeping the whole design
//! space — is a loop over values, not a different API:
//!
//! ```
//! use calu::{MatrixSource, SimulatedBackend, Solver};
//! use calu::sched::SchedulerKind;
//! use calu::sim::{MachineConfig, NoiseConfig};
//!
//! for machine in [
//!     MachineConfig::intel_xeon_16(NoiseConfig::off()),
//!     MachineConfig::amd_opteron_48(NoiseConfig::off()),
//! ] {
//!     for sched in SchedulerKind::paper_sweep() {
//!         let r = Solver::new(MatrixSource::shape(2000, 2000))
//!             .scheduler(sched)
//!             .backend(SimulatedBackend::new(machine.clone()))
//!             .run()
//!             .unwrap();
//!         println!("{} {}: {:.1} Gflop/s", r.backend, r.scheduler, r.gflops());
//!     }
//! }
//! ```
//!
//! ## Batched sweeps
//!
//! Serving-style workloads factor many small matrices, where per-call
//! planning and thread spawn dominate. [`Solver::batch`] runs a whole
//! sweep on one persistent worker pool — spawned once, per-worker
//! scratch arenas and deques alive across items — and returns a
//! [`BatchReport`] with per-item [`Report`]s plus batch throughput:
//!
//! ```
//! use calu::{MatrixSource, Solver};
//! use calu::matrix::gen;
//!
//! let items: Vec<MatrixSource> = (0..4)
//!     .map(|i| MatrixSource::Dense(gen::uniform(64, 64, i)))
//!     .collect();
//! let batch = Solver::new(MatrixSource::shape(64, 64)) // knobs only
//!     .tile(16)
//!     .threads(2)
//!     .batch(&items)
//!     .unwrap();
//! assert_eq!(batch.len(), 4);
//! assert!(batch.items_per_sec() > 0.0);
//! for item in &batch.items {
//!     assert!(item.residual.unwrap() < 1e-12);
//! }
//! ```
//!
//! Every item factors bitwise-identically to a solo [`Solver::run`];
//! small items are co-scheduled whole-per-worker, large ones run the
//! full hybrid static/dynamic schedule (see
//! [`Solver::batch_small_cutoff`]).
//!
//! ## The service layer
//!
//! Where [`Solver::batch`] amortizes pool spawn across one sweep,
//! [`Solver::serve`] keeps the pool alive *between* calls: a
//! [`FactorService`] is a long-running job server with priority
//! classes, admission control, cancellation and graceful drain — see
//! the [`serve`] module docs for the full lifecycle.
//!
//! ```
//! use calu::{JobClass, JobSpec, MatrixSource, Solver};
//!
//! let service = Solver::new(MatrixSource::shape(64, 64)) // knobs only
//!     .tile(16)
//!     .threads(2)
//!     .verify(false)
//!     .serve()
//!     .unwrap();
//! let interactive = service
//!     .submit(JobSpec::uniform(64, 64, 1), JobClass::Interactive)
//!     .unwrap();
//! let background = service
//!     .submit(JobSpec::uniform(64, 64, 2), JobClass::Background)
//!     .unwrap();
//! assert!(interactive.wait().unwrap().factorization.is_some());
//! assert!(background.wait().unwrap().factorization.is_some());
//! service.drain();
//! ```
//!
//! [`Solver::batch_iter`] streams an arbitrarily long sweep through a
//! service with a bounded in-flight window, and [`service_batch`] runs
//! [`Solver::batch`]-style sweeps on an already-warm service (reported
//! honestly: [`BatchReport::pool_reused`] with zero spawn cost).
//!
//! ## History
//!
//! The 0.1 top-level entry points (`calu_factor`, top-level
//! `CaluConfig`/`SimConfig`) were deprecated in 0.2 and removed in 0.3;
//! everything goes through [`Solver`] now. The low-level driver APIs
//! live on under [`core`] (`calu::core::calu_factor`,
//! `calu::core::calu_factor_batch`, `calu::core::CaluConfig`) and
//! [`sim`] (`calu::sim::SimConfig`).
//!
//! ## The pieces
//!
//! * [`matrix`] — storage layouts (CM / BCL / 2l-BL), grids, generators;
//! * [`kernels`] — pure-Rust BLAS-3 style kernels;
//! * [`dag`] — the CALU task dependency graph (tasks P/L/U/S);
//! * [`sched`] — static, dynamic, hybrid and work-stealing policies;
//! * [`sim`] — discrete-event multicore/NUMA machine simulator;
//! * [`trace`] — execution timelines and idle-time metrics;
//! * [`model`] — the paper's §6 performance model (Theorem 1);
//! * [`core`] — CALU with tournament pivoting, the threaded hybrid
//!   executor, the persistent-pool batch executor, and the GEPP /
//!   incremental-pivoting baselines.

pub mod backend;
pub mod error;
pub mod report;
pub mod serve;
pub mod solver;

pub use backend::{Backend, SimulatedBackend, ThreadedBackend};
pub use calu_core::{FaultKind, FaultPlan, KernelSet};
pub use calu_sched::{
    AdaptationStep, AdaptiveController, AdaptiveMode, AdaptivePolicy, Observation, QueueDiscipline,
    SplitChoice, StealOrder,
};
pub use error::Error;
pub use report::{
    AdaptationReport, BatchReport, ContentionStats, QueueBreakdown, Report, ScheduleMetrics,
    StealLocality, ThreadMetrics,
};
pub use serve::{
    service_batch, DrainSummary, Events, FactorService, JobClass, JobEvent, JobHandle, JobSpec,
    JobStatus, JournalConfig, NetConfig, NetStats, ReportService, ServeError, ServeListener,
    ServiceConfig, ServiceEvent,
};
pub use solver::{Algorithm, MatrixSource, Plan, Solver};

pub use calu_core as core;
pub use calu_dag as dag;
pub use calu_kernels as kernels;
pub use calu_matrix as matrix;
pub use calu_model as model;
pub use calu_sched as sched;
pub use calu_sim as sim;
pub use calu_trace as trace;

/// Boxed-backend support so heterogeneous backend collections work in
/// sweep loops (`Vec<Box<dyn Backend>>`).
impl Backend for Box<dyn Backend> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }
    fn preferred_threads(&self) -> Option<usize> {
        self.as_ref().preferred_threads()
    }
    fn preferred_queue(&self) -> Option<calu_sched::QueueDiscipline> {
        self.as_ref().preferred_queue()
    }
    fn topology(&self) -> calu_sched::CpuTopology {
        self.as_ref().topology()
    }
    fn execute(&self, plan: &Plan<'_>) -> Result<Report, Error> {
        self.as_ref().execute(plan)
    }
    fn run_batch(&self, plans: &[Plan<'_>]) -> Result<report::BatchReport, Error> {
        self.as_ref().run_batch(plans)
    }
}
