//! # calu — hybrid static/dynamic scheduling for dense LU factorization
//!
//! Facade crate re-exporting the full reproduction of
//! *Donfack, Grigori, Gropp, Kale — "Hybrid static/dynamic scheduling for
//! already optimized dense matrix factorization"* (IPDPS 2012).
//!
//! The pieces:
//!
//! * [`matrix`] — storage layouts (CM / BCL / 2l-BL), grids, generators;
//! * [`kernels`] — pure-Rust BLAS-3 style kernels;
//! * [`dag`] — the CALU task dependency graph (tasks P/L/U/S);
//! * [`sched`] — static, dynamic, hybrid and work-stealing policies;
//! * [`sim`] — discrete-event multicore/NUMA machine simulator;
//! * [`trace`] — execution timelines and idle-time metrics;
//! * [`model`] — the paper's §6 performance model (Theorem 1);
//! * [`core`] — CALU with tournament pivoting, the threaded hybrid
//!   executor, and the GEPP / incremental-pivoting baselines.
//!
//! ## Quickstart
//!
//! ```
//! use calu::core::{calu_factor, CaluConfig};
//! use calu::matrix::{gen, Layout};
//!
//! let a = gen::uniform(256, 256, 42);
//! let cfg = CaluConfig::new(32).with_threads(4).with_dratio(0.1);
//! let f = calu_factor(&a, &cfg).unwrap();
//! let resid = f.residual(&a);
//! assert!(resid < 1e-12, "residual {resid}");
//! assert_eq!(cfg.layout, Layout::BlockCyclic);
//! ```

pub use calu_core as core;
pub use calu_dag as dag;
pub use calu_kernels as kernels;
pub use calu_matrix as matrix;
pub use calu_model as model;
pub use calu_sched as sched;
pub use calu_sim as sim;
pub use calu_trace as trace;
