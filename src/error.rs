//! The unified error type of the `calu` facade.
//!
//! Every failure mode of the workspace funnels into [`Error`]: builder
//! validation, the matrix substrate, the factorization drivers, and
//! backend-specific limitations. Downstream code matches one enum
//! instead of juggling `CaluError`, `MatrixError` and ad-hoc panics.

use std::fmt;

use calu_core::CaluError;
use calu_matrix::MatrixError;

/// Unified error of the [`crate::Solver`] API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Invalid configuration: bad tile size, zero threads, `dratio`
    /// outside `[0, 1]`, grouping/layout conflicts, thread/machine
    /// mismatches. The message says what to change.
    Config(String),
    /// The factorization driver failed (e.g. empty matrix).
    Factor(CaluError),
    /// The matrix substrate rejected an operation (grids, layouts).
    /// `Solver::run` itself maps grid/layout problems to [`Error::Config`];
    /// this variant exists so user code assembling matrices and grids by
    /// hand can `?`-convert into the unified error.
    Matrix(MatrixError),
    /// The selected backend cannot run this plan (e.g. work stealing on
    /// the real threaded executor). The message names an alternative.
    Unsupported {
        /// Backend that rejected the plan.
        backend: String,
        /// What was requested and what to use instead.
        what: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "invalid solver configuration: {msg}"),
            Error::Factor(e) => write!(f, "factorization failed: {e}"),
            Error::Matrix(e) => write!(f, "matrix error: {e}"),
            Error::Unsupported { backend, what } => {
                write!(f, "backend `{backend}` cannot run this plan: {what}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Factor(e) => Some(e),
            Error::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CaluError> for Error {
    fn from(e: CaluError) -> Self {
        match e {
            // configuration problems keep their actionable message and
            // surface uniformly as Error::Config
            CaluError::InvalidConfig(msg) => Error::Config(msg),
            other => Error::Factor(other),
        }
    }
}

impl From<MatrixError> for Error {
    fn from(e: MatrixError) -> Self {
        Error::Matrix(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_config_flattens_to_config() {
        let e: Error = CaluError::InvalidConfig("need at least one thread".into()).into();
        assert!(matches!(&e, Error::Config(msg) if msg.contains("thread")));
        assert!(e.to_string().contains("invalid solver configuration"));
    }

    #[test]
    fn other_calu_errors_stay_factor() {
        let e: Error = CaluError::EmptyMatrix.into();
        assert!(matches!(e, Error::Factor(CaluError::EmptyMatrix)));
    }

    #[test]
    fn matrix_errors_wrap() {
        let e: Error = MatrixError::InvalidBlockSize(0).into();
        assert!(e.to_string().contains("block size"));
    }
}
