//! The structured result of one [`crate::Solver`] run.
//!
//! Both execution backends fill the same [`Report`]: the real threaded
//! executor attaches the [`Factorization`] and numerical checks, the
//! discrete-event simulator attaches modelled memory/noise accounting —
//! and both produce identical *schedule* metrics (makespan, per-thread
//! idle time, queue-source breakdown), so a benchmark loop can compare
//! "same workload, N backends × M schedulers × K layouts" field by
//! field.
//!
//! ## Schedule metrics at a glance
//!
//! Per-thread ([`ThreadMetrics`]) and aggregate accessors on
//! [`ScheduleMetrics`]:
//!
//! | Metric | Per thread | Aggregate | Filled by |
//! |---|---|---|---|
//! | kernel work seconds | `work` | `utilization()` | both backends |
//! | idle seconds | `idle` | `total_idle()`, `per_thread_idle()` | both |
//! | scheduler overhead / memory / noise seconds | `overhead`, `memory`, `noise` | `utilization()`, `total_noise()` | simulated only |
//! | tasks executed | `tasks` | `total_tasks()` | both |
//! | static-queue pops | `local_pops` | `queue_sources().local` | both |
//! | dynamic pops (shared queue or own shard/deque) | `global_pops` | `queue_sources().global` | both |
//! | **steals** (tasks taken from another worker's shard or deque) | `stolen_pops` | `queue_sources().stolen`, `contention().steals`, `steal_locality().local` + `.remote` | both, stealing disciplines only |
//! | **remote steals** (the victim sat on another socket) | `remote_steal_pops` | `steal_locality().remote`, `steal_locality().remote_fraction()` | both, lock-free discipline's tiered sweep only |
//! | **failed steal sweeps** (every probed victim was empty) | `failed_steals` | `contention().failed_steals`, `contention().failure_rate()` | threaded backend, stealing disciplines only |
//! | **rescued static tasks** (republished into the dynamic queues off a lost/degraded worker) | `rescued` | `total_rescued()` | both, armed fault plans only |
//! | **lost worker** (retired by an injected fault) | `lost` | `lost_workers()` | both, armed fault plans only |
//! | NUMA / cache traffic | `remote_bytes`, `local_bytes`, `cache_*` | `Report::remote_bytes()`, `Report::cache_hit_rate()` | simulated only |
//!
//! Steal counters are identically zero under
//! [`QueueDiscipline::Global`](calu_sched::QueueDiscipline), and
//! `remote_steal_pops` additionally under
//! `QueueDiscipline::Sharded`, whose flat sweep does not classify
//! victims — the backend-parity tests rely on both.

use calu_core::Factorization;
use calu_matrix::Layout;
use calu_sched::{QueueDiscipline, SchedulerKind};
use calu_trace::Timeline;

use crate::solver::Algorithm;

/// Per-thread (or per simulated core) schedule accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadMetrics {
    /// Seconds of useful kernel work.
    pub work: f64,
    /// Seconds idle (no ready task).
    pub idle: f64,
    /// Seconds of scheduler overhead (dequeues, steals) — simulated
    /// backends only; the real executor folds this into `work`.
    pub overhead: f64,
    /// Seconds of memory stalls — simulated backends only.
    pub memory: f64,
    /// Seconds of injected OS noise — simulated backends only.
    pub noise: f64,
    /// Tasks executed by this thread.
    pub tasks: u64,
    /// Tasks popped from the thread's own static queue.
    pub local_pops: u64,
    /// Tasks popped from the dynamic section without stealing: the
    /// shared queue under [`QueueDiscipline::Global`], the worker's own
    /// shard under [`QueueDiscipline::Sharded`]
    /// (both of [`calu_sched::QueueDiscipline`]).
    pub global_pops: u64,
    /// Tasks stolen from another thread (stealing queue disciplines or
    /// the work-stealing policy).
    pub stolen_pops: u64,
    /// The subset of `stolen_pops` whose victim sat on a different
    /// socket — reported only by the lock-free discipline's
    /// locality-tiered sweep; the flat sharded sweep does not classify
    /// victims, so it stays zero there.
    pub remote_steal_pops: u64,
    /// Steal *sweeps* in which every probed victim was empty (threaded
    /// backend under the stealing disciplines) — the queue-contention
    /// signal: a high [`ContentionStats::failure_rate`] means workers
    /// sweep drained shards instead of computing. Counted per whole
    /// sweep, not per probed victim, so flat and tiered victim orders
    /// read on the same scale.
    pub failed_steals: u64,
    /// Static tasks this thread *owned* that were republished into the
    /// dynamic queues because the thread was lost or persistently slow
    /// (armed [`calu_core::FaultPlan`]s only; identically zero
    /// otherwise). Rescue preserves the factors bitwise — the DAG's
    /// exclusive-writer discipline makes them schedule-independent —
    /// so a nonzero count here marks a run that *degraded*, not one
    /// that diverged.
    pub rescued: u64,
    /// Whether this worker was lost to an injected fault and retired
    /// mid-run (its remaining static share shows up in `rescued`).
    pub lost: bool,
    /// Bytes pulled from a remote NUMA socket (simulated only).
    pub remote_bytes: f64,
    /// Bytes refilled locally (simulated only).
    pub local_bytes: f64,
    /// Tile-cache hits (simulated only).
    pub cache_hits: u64,
    /// Tile-cache misses (simulated only).
    pub cache_misses: u64,
}

/// Where executed tasks were dequeued from, summed over all threads —
/// the static/dynamic split of Algorithm 1 made observable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueBreakdown {
    /// Tasks served from per-thread static queues.
    pub local: u64,
    /// Tasks served from the shared dynamic queue.
    pub global: u64,
    /// Tasks obtained by stealing.
    pub stolen: u64,
}

impl QueueBreakdown {
    /// Fraction of tasks that went through the dynamic/stolen paths.
    pub fn dynamic_fraction(&self) -> f64 {
        let total = self.local + self.global + self.stolen;
        if total == 0 {
            0.0
        } else {
            (self.global + self.stolen) as f64 / total as f64
        }
    }
}

/// Steal-path contention accounting, summed over threads (stealing
/// queue disciplines only; all zero under the global discipline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentionStats {
    /// Successful steals: tasks taken from another worker's shard.
    pub steals: u64,
    /// Steal sweeps in which *every* probed victim was empty. One
    /// wholly-empty sweep counts once, regardless of how many victims
    /// it visited, so the flat randomized order and the locality-tiered
    /// one produce comparable readings.
    pub failed_steals: u64,
}

impl ContentionStats {
    /// Fraction of steal sweeps that came up empty (0 when none ran).
    /// This is the executor's contention thermometer: near 0 means
    /// sweeps usually find work, near 1 means workers burn their idle
    /// time sweeping drained shards.
    pub fn failure_rate(&self) -> f64 {
        let sweeps = self.steals + self.failed_steals;
        if sweeps == 0 {
            0.0
        } else {
            self.failed_steals as f64 / sweeps as f64
        }
    }
}

/// Where stolen tasks came from, summed over threads: the locality
/// split of the lock-free discipline's tiered steal sweep. Under the
/// flat sharded sweep every steal counts as `local` (victims are not
/// classified); under the global discipline both are zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StealLocality {
    /// Steals whose victim shared the thief's socket (or SMT core).
    pub local: u64,
    /// Steals whose victim sat on a different socket — each one dragged
    /// the task's working set across the NUMA interconnect.
    pub remote: u64,
}

impl StealLocality {
    /// Fraction of steals that crossed a socket boundary (0 when no
    /// steals happened). The tiered sweep exists to keep this low:
    /// rising values mean same-socket victims are usually drained and
    /// the work distribution, not the sweep order, is the problem.
    pub fn remote_fraction(&self) -> f64 {
        let total = self.local + self.remote;
        if total == 0 {
            0.0
        } else {
            self.remote as f64 / total as f64
        }
    }
}

/// Unified schedule metrics, identical in shape for every backend.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScheduleMetrics {
    /// End-to-end schedule length in seconds (wall clock for the
    /// threaded backend, simulated time for the simulator).
    pub makespan: f64,
    /// One entry per thread/core.
    pub threads: Vec<ThreadMetrics>,
}

impl ScheduleMetrics {
    /// Mean busy fraction of the `makespan × threads` rectangle.
    ///
    /// Deliberately unclamped: a value above 1 means the backend's
    /// accounting double-counted busy seconds, and the invariant tests
    /// rely on seeing that rather than a silently capped 100%.
    pub fn utilization(&self) -> f64 {
        if self.makespan <= 0.0 || self.threads.is_empty() {
            return 0.0;
        }
        let busy: f64 = self
            .threads
            .iter()
            .map(|t| t.work + t.overhead + t.memory + t.noise)
            .sum();
        busy / (self.makespan * self.threads.len() as f64)
    }

    /// Total idle core-seconds.
    pub fn total_idle(&self) -> f64 {
        self.threads.iter().map(|t| t.idle).sum()
    }

    /// Per-thread idle seconds, indexed by thread id.
    pub fn per_thread_idle(&self) -> Vec<f64> {
        self.threads.iter().map(|t| t.idle).collect()
    }

    /// Total injected-noise core-seconds (zero for real execution).
    pub fn total_noise(&self) -> f64 {
        self.threads.iter().map(|t| t.noise).sum()
    }

    /// Queue-source breakdown summed over threads.
    pub fn queue_sources(&self) -> QueueBreakdown {
        let mut q = QueueBreakdown::default();
        for t in &self.threads {
            q.local += t.local_pops;
            q.global += t.global_pops;
            q.stolen += t.stolen_pops;
        }
        q
    }

    /// Total tasks executed across threads.
    pub fn total_tasks(&self) -> u64 {
        self.threads.iter().map(|t| t.tasks).sum()
    }

    /// Steal-path contention summed over threads (stealing disciplines).
    pub fn contention(&self) -> ContentionStats {
        let mut c = ContentionStats::default();
        for t in &self.threads {
            c.steals += t.stolen_pops;
            c.failed_steals += t.failed_steals;
        }
        c
    }

    /// Static tasks rescued into the dynamic queues across all threads
    /// (nonzero only under an armed fault plan that lost or degraded a
    /// worker).
    pub fn total_rescued(&self) -> u64 {
        self.threads.iter().map(|t| t.rescued).sum()
    }

    /// Workers retired by injected faults during this run.
    pub fn lost_workers(&self) -> usize {
        self.threads.iter().filter(|t| t.lost).count()
    }

    /// Steal-locality split summed over threads: how many steals stayed
    /// on the thief's socket vs. crossed the interconnect (lock-free
    /// discipline's tiered sweep; see [`StealLocality`]).
    pub fn steal_locality(&self) -> StealLocality {
        let mut s = StealLocality::default();
        for t in &self.threads {
            s.local += t.stolen_pops - t.remote_steal_pops;
            s.remote += t.remote_steal_pops;
        }
        s
    }

    /// Distill these metrics into the adaptive controller's input — the
    /// feedback edge of [`crate::Solver::adaptive`]. Uses exactly the
    /// aggregate accessors above ([`ContentionStats::failure_rate`],
    /// [`StealLocality::remote_fraction`], [`total_idle`],
    /// [`total_rescued`], [`lost_workers`]), so observations built from
    /// a threaded report, a simulated report and a service
    /// `PoolOutcome` all read on one scale.
    ///
    /// [`total_idle`]: ScheduleMetrics::total_idle
    /// [`total_rescued`]: ScheduleMetrics::total_rescued
    /// [`lost_workers`]: ScheduleMetrics::lost_workers
    pub fn observation(&self, dims: (usize, usize)) -> calu_sched::adaptive::Observation {
        calu_sched::adaptive::Observation::new(
            self.threads.len().max(1),
            self.makespan,
            self.total_idle(),
        )
        .with_contention(self.contention().failure_rate())
        .with_remote_fraction(self.steal_locality().remote_fraction())
        .with_lost(self.lost_workers())
        .with_rescued(self.total_rescued())
        .with_dims(dims.0, dims.1)
    }
}

/// How [`crate::Solver::adaptive`] resolved this run's split: the
/// topology-seeded starting point, the split the run actually used, and
/// the observation trace that led there. `chosen` is what the executor
/// ran — compare it with [`Report::scheduler`]'s configured value to
/// see the controller at work.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationReport {
    /// The split the controller started from (host/machine topology
    /// seed, before any observation).
    pub seed: calu_sched::adaptive::SplitChoice,
    /// The split this run executed under.
    pub chosen: calu_sched::adaptive::SplitChoice,
    /// Observations the controller had consumed when this run was
    /// planned.
    pub observations: usize,
    /// The adaptation trace up to this run: one step per observation.
    pub steps: Vec<calu_sched::adaptive::AdaptationStep>,
}

impl AdaptationReport {
    /// Whether feedback moved the split off its topology seed.
    pub fn adapted(&self) -> bool {
        self.chosen != self.seed
    }
}

/// The structured report returned by [`crate::Solver::run`].
#[derive(Debug, Clone)]
pub struct Report {
    /// Name of the backend that produced this report.
    pub backend: String,
    /// Algorithm that was run.
    pub algorithm: Algorithm,
    /// Scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Dynamic-section queue discipline the run used.
    pub queue_discipline: QueueDiscipline,
    /// Data layout.
    pub layout: Layout,
    /// Problem dimensions `(m, n)`.
    pub dims: (usize, usize),
    /// Tile size `b`.
    pub b: usize,
    /// Worker threads / simulated cores.
    pub threads: usize,
    /// DAG tasks executed (0 for drivers without a task graph).
    pub tasks: usize,
    /// Schedule length in seconds.
    pub makespan: f64,
    /// Nominal flop count — the numerator of every Gflop/s figure in
    /// the paper. See [`nominal_flops`] for the exact convention
    /// (`mn² − n³/3` for LU with `m ≥ n`, generalized for wide
    /// matrices; `n³/3` for Cholesky).
    pub nominal_flops: f64,
    /// The factors, when the backend computed them for real.
    pub factorization: Option<Factorization>,
    /// Relative factorization residual (real backends with data):
    /// `‖PA − LU‖/‖A‖` for the LU algorithms, `‖A − LLᵀ‖/‖A‖` for
    /// [`Algorithm::Cholesky`]. Exception: [`Algorithm::IncPiv`] keeps
    /// per-tile factors, so it reports a solve-based backward error
    /// `‖Ax − b‖/(‖A‖‖x‖)` for a seeded random rhs instead — the two
    /// metrics are close in magnitude but not the same quantity.
    pub residual: Option<f64>,
    /// Element growth factor `max|U|/max|A|` (real backends with data).
    /// A pivoting figure, so LU only — `None` for Cholesky.
    pub growth_factor: Option<f64>,
    /// Unified schedule metrics.
    pub schedule: ScheduleMetrics,
    /// Full per-task timeline when tracing was requested.
    pub timeline: Option<Timeline>,
    /// How the adaptive controller resolved this run's split — `None`
    /// unless the run came from a [`crate::Solver::adaptive`] solver.
    pub adaptation: Option<AdaptationReport>,
}

impl Report {
    /// Gflop/s by the paper's convention: nominal flops over makespan.
    pub fn gflops(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.nominal_flops / self.makespan / 1e9
    }

    /// Machine utilization (busy fraction; see
    /// [`ScheduleMetrics::utilization`]).
    pub fn utilization(&self) -> f64 {
        self.schedule.utilization()
    }

    /// Total bytes moved across NUMA sockets (simulated backends).
    pub fn remote_bytes(&self) -> f64 {
        self.schedule.threads.iter().map(|t| t.remote_bytes).sum()
    }

    /// Overall tile-cache hit rate (simulated backends; 0 when unknown).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.schedule.threads.iter().map(|t| t.cache_hits).sum();
        let misses: u64 = self.schedule.threads.iter().map(|t| t.cache_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }
}

/// The structured result of one [`crate::Solver::batch`] sweep: every
/// item's full [`Report`] plus batch-level throughput.
///
/// Per-item makespans overlap when items are co-scheduled, so
/// batch-level rates are always computed against [`wall_secs`], the
/// end-to-end sweep time — never against the sum of item makespans.
///
/// [`wall_secs`]: BatchReport::wall_secs
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Name of the backend that ran the sweep.
    pub backend: String,
    /// Worker threads / simulated cores in the pool.
    pub threads: usize,
    /// Per-item reports, in input order.
    pub items: Vec<Report>,
    /// End-to-end sweep seconds (wall clock for the threaded backend,
    /// modelled batch time for the simulator).
    pub wall_secs: f64,
    /// Seconds until the last pool worker entered its work loop — paid
    /// once per batch instead of once per item (0 where not modelled).
    pub pool_spawn_secs: f64,
    /// Measured (threaded) or modelled cost of one cold worker-pool
    /// spawn — what the loop-over-`run` fallback pays *per item*.
    pub cold_spawn_secs: f64,
    /// Whether this sweep ran on an *already-warm* pool (a
    /// [`crate::serve::FactorService`] kept alive across calls) rather
    /// than spawning its own. Warm sweeps report
    /// [`pool_spawn_secs`](BatchReport::pool_spawn_secs) `= 0` — the
    /// spawn was paid once, when the service came up, not by this call.
    pub pool_reused: bool,
    /// Items that were co-scheduled (claimed whole by one pool worker)
    /// rather than run on the full hybrid schedule.
    pub co_scheduled: usize,
}

impl BatchReport {
    /// Number of items in the sweep.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the sweep held no items (never true for a report built
    /// by [`crate::Solver::batch`], which rejects empty batches).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Batch throughput in items per second.
    pub fn items_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            0.0
        } else {
            self.items.len() as f64 / self.wall_secs
        }
    }

    /// Aggregate Gflop/s: every item's nominal flops over the batch
    /// wall time (the paper's plotting convention, batch-wide).
    pub fn aggregate_gflops(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        let flops: f64 = self.items.iter().map(|r| r.nominal_flops).sum();
        flops / self.wall_secs / 1e9
    }

    /// Total DAG tasks executed across items.
    pub fn total_tasks(&self) -> usize {
        self.items.iter().map(|r| r.tasks).sum()
    }

    /// Estimated pool-reuse saving versus cold-spawning per item: the
    /// loop-over-`run` fallback pays [`cold_spawn_secs`] for every item,
    /// the pool pays [`pool_spawn_secs`] once — and a *warm* pool
    /// ([`pool_reused`], a service kept alive across sweeps) pays
    /// nothing at all, so its whole `cold × items` bill is saved. The
    /// field split keeps the accounting honest: earlier versions folded
    /// a cold-spawn charge into every call even when the pool had been
    /// up for hours.
    ///
    /// [`cold_spawn_secs`]: BatchReport::cold_spawn_secs
    /// [`pool_spawn_secs`]: BatchReport::pool_spawn_secs
    /// [`pool_reused`]: BatchReport::pool_reused
    pub fn spawn_savings_secs(&self) -> f64 {
        (self.cold_spawn_secs * self.items.len() as f64 - self.pool_spawn_secs).max(0.0)
    }
}

/// Nominal flop count of one factorization — the paper's plotting
/// convention, delegated to `calu_sim::cost` so both backends share the
/// exact same Gflop/s denominator.
pub fn nominal_flops(algorithm: Algorithm, m: usize, n: usize) -> f64 {
    match algorithm {
        Algorithm::Calu | Algorithm::Gepp | Algorithm::IncPiv => {
            calu_sim::cost::lu_nominal_flops(m, n)
        }
        Algorithm::Cholesky => calu_sim::cost::cholesky_nominal_flops(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> ScheduleMetrics {
        ScheduleMetrics {
            makespan: 2.0,
            threads: vec![
                ThreadMetrics {
                    work: 1.5,
                    idle: 0.5,
                    tasks: 6,
                    local_pops: 5,
                    global_pops: 1,
                    ..Default::default()
                },
                ThreadMetrics {
                    work: 1.0,
                    idle: 1.0,
                    noise: 0.5,
                    tasks: 4,
                    local_pops: 1,
                    global_pops: 1,
                    stolen_pops: 2,
                    remote_steal_pops: 1,
                    failed_steals: 3,
                    rescued: 4,
                    lost: true,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn aggregates_add_up() {
        let m = metrics();
        assert!((m.utilization() - 3.0 / 4.0).abs() < 1e-12);
        assert_eq!(m.total_idle(), 1.5);
        assert_eq!(m.per_thread_idle(), vec![0.5, 1.0]);
        assert_eq!(m.total_tasks(), 10);
        let q = m.queue_sources();
        assert_eq!((q.local, q.global, q.stolen), (6, 2, 2));
        assert!((q.dynamic_fraction() - 0.4).abs() < 1e-12);
        let c = m.contention();
        assert_eq!((c.steals, c.failed_steals), (2, 3));
        assert!((c.failure_rate() - 0.6).abs() < 1e-12);
        let s = m.steal_locality();
        assert_eq!((s.local, s.remote), (1, 1));
        assert!((s.remote_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(StealLocality::default().remote_fraction(), 0.0);
        assert_eq!(m.total_rescued(), 4);
        assert_eq!(m.lost_workers(), 1);
    }

    #[test]
    fn nominal_flop_conventions() {
        let n = 100.0f64;
        assert!((nominal_flops(Algorithm::Calu, 100, 100) - (n * n * n * 2.0 / 3.0)).abs() < 1e-6);
        assert!((nominal_flops(Algorithm::Cholesky, 100, 100) - n * n * n / 3.0).abs() < 1e-6);
        assert!(
            nominal_flops(Algorithm::Calu, 32, 128) > 0.0,
            "wide matrices must not report negative flops"
        );
    }

    #[test]
    fn observation_mirrors_the_aggregate_accessors() {
        let m = metrics();
        let obs = m.observation((10, 20));
        assert!((obs.idle_fraction() - m.total_idle() / (2.0 * m.makespan)).abs() < 1e-12);
        assert!((obs.contention - m.contention().failure_rate()).abs() < 1e-12);
        assert!((obs.remote_fraction - m.steal_locality().remote_fraction()).abs() < 1e-12);
        assert_eq!(obs.lost_workers, 1);
        assert_eq!(obs.rescued, 4);
        assert_eq!(obs.dims, (10, 20));
    }

    #[test]
    fn empty_breakdown_is_zero() {
        assert_eq!(QueueBreakdown::default().dynamic_fraction(), 0.0);
        assert_eq!(ScheduleMetrics::default().utilization(), 0.0);
        assert_eq!(ContentionStats::default().failure_rate(), 0.0);
    }

    #[test]
    fn batch_report_aggregates() {
        let item = |flops: f64, tasks: usize| Report {
            backend: "x".into(),
            algorithm: Algorithm::Calu,
            scheduler: SchedulerKind::Hybrid { dratio: 0.1 },
            queue_discipline: QueueDiscipline::Global,
            layout: Layout::BlockCyclic,
            dims: (10, 10),
            b: 5,
            threads: 2,
            tasks,
            makespan: 1.0,
            nominal_flops: flops,
            factorization: None,
            residual: None,
            growth_factor: None,
            schedule: ScheduleMetrics::default(),
            timeline: None,
            adaptation: None,
        };
        let b = BatchReport {
            backend: "x".into(),
            threads: 2,
            items: vec![item(2e9, 3), item(4e9, 5)],
            wall_secs: 2.0,
            pool_spawn_secs: 0.5e-3,
            cold_spawn_secs: 1e-3,
            pool_reused: false,
            co_scheduled: 1,
        };
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
        assert!((b.items_per_sec() - 1.0).abs() < 1e-12);
        assert!((b.aggregate_gflops() - 3.0).abs() < 1e-12);
        assert_eq!(b.total_tasks(), 8);
        assert!((b.spawn_savings_secs() - 1.5e-3).abs() < 1e-12);
        let zero = BatchReport {
            wall_secs: 0.0,
            ..b.clone()
        };
        assert_eq!(zero.items_per_sec(), 0.0);
        assert_eq!(zero.aggregate_gflops(), 0.0);
    }

    #[test]
    fn warm_pool_reports_zero_spawn_cost() {
        // regression: a sweep on an already-warm service must not be
        // billed a pool spawn — the whole cold × items fallback bill is
        // saved, with nothing deducted for a spawn this call never paid
        let item = |_| Report {
            backend: "serve".into(),
            algorithm: Algorithm::Calu,
            scheduler: SchedulerKind::Hybrid { dratio: 0.1 },
            queue_discipline: QueueDiscipline::Global,
            layout: Layout::BlockCyclic,
            dims: (10, 10),
            b: 5,
            threads: 2,
            tasks: 1,
            makespan: 1.0,
            nominal_flops: 1e9,
            factorization: None,
            residual: None,
            growth_factor: None,
            schedule: ScheduleMetrics::default(),
            timeline: None,
            adaptation: None,
        };
        let warm = BatchReport {
            backend: "serve".into(),
            threads: 2,
            items: (0..4).map(item).collect(),
            wall_secs: 1.0,
            pool_spawn_secs: 0.0,
            cold_spawn_secs: 1e-3,
            pool_reused: true,
            co_scheduled: 0,
        };
        assert!(warm.pool_reused);
        assert_eq!(warm.pool_spawn_secs, 0.0);
        assert!((warm.spawn_savings_secs() - 4e-3).abs() < 1e-12);
        // the same sweep on a cold pool is billed its spawn
        let cold = BatchReport {
            pool_spawn_secs: 1.5e-3,
            pool_reused: false,
            ..warm
        };
        assert!((cold.spawn_savings_secs() - 2.5e-3).abs() < 1e-12);
    }
}
