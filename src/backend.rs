//! Pluggable execution backends for the [`Solver`](crate::Solver).
//!
//! A [`Backend`] turns a validated [`Plan`] into a [`Report`]. Two
//! implementations ship with the crate:
//!
//! * [`ThreadedBackend`] — real execution: worker threads, real kernels,
//!   real pivoting, wall-clock schedule metrics (via
//!   `calu_core::threaded`);
//! * [`SimulatedBackend`] — a discrete-event run of the same DAG under
//!   the same scheduling policies on a modelled machine (via
//!   `calu_sim::engine`), including NUMA costs and OS noise.
//!
//! Both fill the same [`Report`], so swapping one for the other inside
//! a benchmark loop is a one-line change. Future backends (sharded,
//! out-of-core, …) implement the same trait.

use std::time::Instant;

use calu_core::{calu_factor_report, gepp_factor, incpiv_factor};
use calu_sim::{MachineConfig, SimConfig, SimResult};

use crate::error::Error;
use crate::report::{nominal_flops, Report, ScheduleMetrics, ThreadMetrics};
use crate::solver::{Algorithm, Plan};

/// An execution substrate for a validated [`Plan`].
pub trait Backend {
    /// Human-readable backend name, recorded in the [`Report`].
    fn name(&self) -> &str;

    /// Thread count to use when the caller leaves it unset.
    fn preferred_threads(&self) -> Option<usize> {
        None
    }

    /// Queue discipline to use when the caller leaves it unset *and*
    /// the plan has a dynamic section. `None` means the paper's shared
    /// global queue. The threaded backend prefers the lock-free deques
    /// (they won the perf-smoke gate); the simulator stays on the
    /// paper-verbatim global queue so the reproduced figures keep their
    /// meaning.
    fn preferred_queue(&self) -> Option<calu_sched::QueueDiscipline> {
        None
    }

    /// Execute the plan.
    fn execute(&self, plan: &Plan<'_>) -> Result<Report, Error>;
}

/// Real multithreaded execution (Algorithms 1 and 2 of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedBackend;

impl Backend for ThreadedBackend {
    fn name(&self) -> &str {
        "threaded"
    }

    fn preferred_queue(&self) -> Option<calu_sched::QueueDiscipline> {
        Some(calu_sched::QueueDiscipline::lock_free())
    }

    fn execute(&self, plan: &Plan<'_>) -> Result<Report, Error> {
        if matches!(
            plan.scheduler,
            calu_sched::SchedulerKind::WorkStealing { .. }
        ) {
            return Err(Error::Unsupported {
                backend: self.name().into(),
                what: "the real executor implements the paper's static/dynamic \
                       queues, not the Cilk-deque baseline; use SimulatedBackend, \
                       or a Dynamic/Hybrid scheduler with \
                       .queue_discipline(QueueDiscipline::sharded()) for real \
                       randomized stealing in DFS priority order"
                    .into(),
            });
        }
        if plan.grouping_requested() && plan.group() > 1 {
            return Err(Error::Unsupported {
                backend: self.name().into(),
                what: "the real executor does not implement grouped BLAS-3 \
                       updates; grouping is a simulator knob — use \
                       SimulatedBackend or drop .grouping()"
                    .into(),
            });
        }
        let a = plan.source.materialize().ok_or_else(|| {
            Error::Config(
                "the threaded backend factors real data: provide a DenseMatrix \
                 or MatrixSource::Uniform, not MatrixSource::Shape"
                    .into(),
            )
        })?;
        let (m, n) = plan.source.dims();
        let mut report = Report {
            backend: self.name().into(),
            algorithm: plan.algorithm,
            scheduler: plan.scheduler,
            queue_discipline: plan.queue(),
            layout: plan.layout(),
            dims: (m, n),
            b: plan.b(),
            threads: plan.threads(),
            tasks: 0,
            makespan: 0.0,
            nominal_flops: nominal_flops(plan.algorithm, m, n),
            factorization: None,
            residual: None,
            growth_factor: None,
            schedule: ScheduleMetrics::default(),
            timeline: None,
        };
        match plan.algorithm {
            Algorithm::Calu => {
                let cfg = plan.calu_config();
                let (f, tl, stats) = calu_factor_report(&a, &cfg)?;
                if plan.verify {
                    report.residual = Some(f.residual(&a));
                    report.growth_factor = Some(f.growth_factor(&a));
                }
                report.makespan = tl.makespan();
                report.tasks = tl.spans().len();
                // one pass over the span list (it can hold tens of
                // thousands of entries on large runs)
                let mut work = vec![0.0f64; plan.threads()];
                let mut busy = vec![0.0f64; plan.threads()];
                let mut count = vec![0u64; plan.threads()];
                for s in tl.spans() {
                    busy[s.core] += s.duration();
                    if s.kind.is_work() {
                        work[s.core] += s.duration();
                    }
                    count[s.core] += 1;
                }
                report.schedule = ScheduleMetrics {
                    makespan: tl.makespan(),
                    threads: (0..plan.threads())
                        .map(|c| ThreadMetrics {
                            work: work[c],
                            idle: (tl.makespan() - busy[c]).max(0.0),
                            tasks: count[c],
                            local_pops: stats[c].local_pops,
                            global_pops: stats[c].global_pops,
                            stolen_pops: stats[c].steal_pops,
                            remote_steal_pops: stats[c].remote_steal_pops,
                            failed_steals: stats[c].failed_steals,
                            ..Default::default()
                        })
                        .collect(),
                };
                report.timeline = plan.record_trace.then_some(tl);
                report.factorization = Some(f);
            }
            Algorithm::Gepp => {
                let t0 = Instant::now();
                let f = gepp_factor(a.as_ref(), plan.b());
                let dt = t0.elapsed().as_secs_f64();
                if plan.verify {
                    report.residual = Some(f.residual(&a));
                    report.growth_factor = Some(f.growth_factor(&a));
                }
                report.makespan = dt;
                // the reference drivers are sequential regardless of the
                // requested thread count; report what actually ran
                report.threads = 1;
                report.schedule = sequential_metrics(dt);
                report.factorization = Some(f);
            }
            Algorithm::IncPiv => {
                let t0 = Instant::now();
                let f = incpiv_factor(a.as_ref(), plan.b());
                let dt = t0.elapsed().as_secs_f64();
                // incremental pivoting keeps per-tile factors; expose the
                // numerical checks, not a packed Factorization
                if plan.verify {
                    report.residual = Some(f.residual_via_solve(&a, 0));
                    report.growth_factor = Some(f.growth_factor(&a));
                }
                report.makespan = dt;
                report.threads = 1;
                report.schedule = sequential_metrics(dt);
            }
            Algorithm::Cholesky => {
                return Err(Error::Unsupported {
                    backend: self.name().into(),
                    what: "tiled Cholesky is modelled, not executed; use \
                           SimulatedBackend"
                        .into(),
                });
            }
        }
        Ok(report)
    }
}

/// Schedule metrics of a sequential reference driver.
fn sequential_metrics(makespan: f64) -> ScheduleMetrics {
    ScheduleMetrics {
        makespan,
        threads: vec![ThreadMetrics {
            work: makespan,
            ..Default::default()
        }],
    }
}

/// Discrete-event simulation on a modelled machine (see `calu_sim`).
#[derive(Debug, Clone)]
pub struct SimulatedBackend {
    machine: MachineConfig,
    column_granular: bool,
    name: String,
}

impl SimulatedBackend {
    /// Simulate on `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        let name = format!("simulated({})", machine.name);
        Self {
            machine,
            column_granular: false,
            name,
        }
    }

    /// Use column-granular dynamic tasks (Algorithm 2's `for all I` —
    /// the paper's fully dynamic implementation, Figure 14).
    pub fn column_granular(mut self) -> Self {
        self.column_granular = true;
        self
    }

    /// The machine model this backend simulates.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }
}

impl Backend for SimulatedBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn preferred_threads(&self) -> Option<usize> {
        Some(self.machine.cores())
    }

    fn execute(&self, plan: &Plan<'_>) -> Result<Report, Error> {
        let cores = self.machine.cores();
        if plan.threads() != cores {
            return Err(Error::Config(format!(
                "thread count {} does not match the simulated machine's {} \
                 cores ({}); drop .threads() to use the machine size, or pick \
                 a machine model with {} cores",
                plan.threads(),
                cores,
                self.machine.name,
                plan.threads()
            )));
        }
        let cfg = SimConfig {
            machine: self.machine.clone(),
            layout: plan.layout(),
            sched: plan.scheduler,
            queue: plan.queue(),
            grid: plan.grid,
            group_max: plan.group(),
            column_granular: self.column_granular,
            record_trace: plan.record_trace,
        };
        let g = plan.build_graph();
        let r = calu_sim::run(&g, &cfg);
        let (m, n) = plan.source.dims();
        Ok(sim_report(self.name(), plan, (m, n), r))
    }
}

/// Map a `SimResult` into the unified report shape.
fn sim_report(backend: &str, plan: &Plan<'_>, dims: (usize, usize), r: SimResult) -> Report {
    let threads = r
        .cores
        .iter()
        .map(|c| {
            let busy = c.work + c.overhead + c.memory + c.noise;
            ThreadMetrics {
                work: c.work,
                idle: (r.makespan - busy).max(0.0),
                overhead: c.overhead,
                memory: c.memory,
                noise: c.noise,
                tasks: c.tasks,
                local_pops: c.local_pops,
                global_pops: c.global_pops,
                stolen_pops: c.stolen_pops,
                remote_steal_pops: c.remote_stolen_pops,
                failed_steals: 0,
                remote_bytes: c.remote_bytes,
                local_bytes: c.local_bytes,
                cache_hits: c.cache_hits,
                cache_misses: c.cache_misses,
            }
        })
        .collect();
    Report {
        backend: backend.into(),
        algorithm: plan.algorithm,
        scheduler: plan.scheduler,
        queue_discipline: plan.queue(),
        layout: plan.layout(),
        dims,
        b: plan.b(),
        threads: plan.threads(),
        tasks: r.tasks,
        makespan: r.makespan,
        nominal_flops: r.nominal_flops,
        factorization: None,
        residual: None,
        growth_factor: None,
        schedule: ScheduleMetrics {
            makespan: r.makespan,
            threads,
        },
        timeline: r.timeline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{MatrixSource, Solver};
    use calu_sched::SchedulerKind;
    use calu_sim::NoiseConfig;

    #[test]
    fn threaded_rejects_shape_only_sources() {
        let err = Solver::new(MatrixSource::shape(64, 64))
            .tile(16)
            .backend(ThreadedBackend)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, Error::Config(ref m) if m.contains("DenseMatrix")),
            "{err}"
        );
    }

    #[test]
    fn threaded_rejects_work_stealing() {
        let err = Solver::new(MatrixSource::uniform(32, 1))
            .tile(8)
            .scheduler(SchedulerKind::WorkStealing { seed: 1 })
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }), "{err}");
    }

    #[test]
    fn threaded_rejects_explicit_grouping() {
        let err = Solver::new(MatrixSource::uniform(32, 1))
            .tile(8)
            .grouping(2)
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }), "{err}");
    }

    #[test]
    fn simulated_rejects_mismatched_threads() {
        let be = SimulatedBackend::new(MachineConfig::intel_xeon_16(NoiseConfig::off()));
        let err = Solver::new(MatrixSource::shape(400, 400))
            .threads(4)
            .backend(be)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, Error::Config(ref m) if m.contains("16")),
            "{err}"
        );
    }

    #[test]
    fn threaded_honors_tslu_leaves() {
        let run = |stride| {
            Solver::new(MatrixSource::uniform(64, 7))
                .tile(16)
                .threads(4)
                .tslu_leaves(stride)
                .run()
                .unwrap()
        };
        let (one, two) = (run(1), run(2));
        assert!(one.residual.unwrap() < 1e-12);
        assert!(two.residual.unwrap() < 1e-12);
        assert!(
            two.tasks > one.tasks,
            "more leaves per panel must mean more tasks ({} vs {})",
            two.tasks,
            one.tasks
        );
    }

    #[test]
    fn verify_off_skips_numerical_checks() {
        let r = Solver::new(MatrixSource::uniform(64, 7))
            .tile(16)
            .threads(2)
            .verify(false)
            .run()
            .unwrap();
        assert!(r.residual.is_none());
        assert!(r.growth_factor.is_none());
        assert!(r.factorization.is_some(), "factors are still returned");
    }

    #[test]
    fn backends_share_the_report_shape() {
        let threaded = Solver::new(MatrixSource::uniform(64, 7))
            .tile(16)
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(threaded.backend, "threaded");
        assert!(threaded.factorization.is_some());
        assert!(threaded.residual.unwrap() < 1e-12);
        assert_eq!(threaded.schedule.threads.len(), 4);
        assert!(threaded.schedule.total_tasks() > 0);

        let sim = Solver::new(MatrixSource::shape(1000, 1000))
            .backend(SimulatedBackend::new(MachineConfig::intel_xeon_16(
                NoiseConfig::off(),
            )))
            .run()
            .unwrap();
        assert!(sim.factorization.is_none());
        assert_eq!(sim.schedule.threads.len(), 16);
        assert!(sim.gflops() > 0.0);
        assert!(sim.utilization() <= 1.0 + 1e-9);
        let q = sim.schedule.queue_sources();
        assert_eq!(q.local + q.global + q.stolen, sim.tasks as u64);
    }
}
