//! Pluggable execution backends for the [`Solver`](crate::Solver).
//!
//! A [`Backend`] turns a validated [`Plan`] into a [`Report`]. Two
//! implementations ship with the crate:
//!
//! * [`ThreadedBackend`] — real execution: worker threads, real kernels,
//!   real pivoting, wall-clock schedule metrics (via
//!   `calu_core::threaded`);
//! * [`SimulatedBackend`] — a discrete-event run of the same DAG under
//!   the same scheduling policies on a modelled machine (via
//!   `calu_sim::engine`), including NUMA costs and OS noise.
//!
//! Both fill the same [`Report`], so swapping one for the other inside
//! a benchmark loop is a one-line change. Future backends (sharded,
//! out-of-core, …) implement the same trait.

use std::time::Instant;

use calu_core::{
    calu_factor_report, cholesky_factor_report, factor_batch, gepp_factor, incpiv_factor,
    BatchItem, BatchSource, ThreadStats,
};
use calu_sim::{MachineConfig, SimConfig, SimResult};
use calu_trace::Timeline;

use crate::error::Error;
use crate::report::{nominal_flops, BatchReport, Report, ScheduleMetrics, ThreadMetrics};
use crate::solver::{Algorithm, MatrixSource, Plan};

/// An execution substrate for a validated [`Plan`].
pub trait Backend {
    /// Human-readable backend name, recorded in the [`Report`].
    fn name(&self) -> &str;

    /// Thread count to use when the caller leaves it unset.
    fn preferred_threads(&self) -> Option<usize> {
        None
    }

    /// Queue discipline to use when the caller leaves it unset *and*
    /// the plan has a dynamic section. `None` means the paper's shared
    /// global queue. The threaded backend prefers the lock-free deques
    /// (they won the perf-smoke gate); the simulator stays on the
    /// paper-verbatim global queue so the reproduced figures keep their
    /// meaning.
    fn preferred_queue(&self) -> Option<calu_sched::QueueDiscipline> {
        None
    }

    /// The CPU topology the adaptive controller seeds its split from:
    /// the detected host sockets by default; the simulator overrides
    /// this with its machine model so simulated adaptation seeds from
    /// the modelled machine, not the host running the model.
    fn topology(&self) -> calu_sched::CpuTopology {
        calu_sched::CpuTopology::detect()
    }

    /// Execute the plan.
    fn execute(&self, plan: &Plan<'_>) -> Result<Report, Error>;

    /// Execute a batched sweep: all `plans` share one configuration
    /// (they come from a single [`crate::Solver::batch`] call) and
    /// differ only in their matrix source. The default simply loops
    /// over [`Backend::execute`] — correct for every backend, with no
    /// amortization. [`ThreadedBackend`] overrides it with a persistent
    /// worker pool (spawned once, per-worker scratch and deques kept
    /// alive across items); [`SimulatedBackend`] models the same batch
    /// semantics on its machine model.
    fn run_batch(&self, plans: &[Plan<'_>]) -> Result<BatchReport, Error> {
        run_batch_loop(self, plans)
    }
}

/// The loop-over-`run` batch fallback: execute each plan on its own
/// (fresh thread pool per item on the threaded backend). This is both
/// the default [`Backend::run_batch`] and the baseline the pooled path
/// is gated against in `perf_smoke`.
pub(crate) fn run_batch_loop<B: Backend + ?Sized>(
    backend: &B,
    plans: &[Plan<'_>],
) -> Result<BatchReport, Error> {
    if plans.is_empty() {
        return Err(Error::Config(
            "a batch needs at least one matrix source".into(),
        ));
    }
    let t0 = Instant::now();
    let items = plans
        .iter()
        .map(|p| backend.execute(p))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(BatchReport {
        backend: backend.name().into(),
        threads: plans[0].threads(),
        items,
        wall_secs: t0.elapsed().as_secs_f64(),
        pool_spawn_secs: 0.0,
        cold_spawn_secs: 0.0,
        pool_reused: false,
        co_scheduled: 0,
    })
}

/// Check that every plan of a batch carries the same validated config
/// (the `Solver::batch` contract) and hand back that one config.
/// `Backend::run_batch` is public, so hand-assembled heterogeneous
/// plans must fail loudly here — the pooled executor and the
/// simulator's group model both run the *whole* batch under one
/// config, and silently using `plans[0]`'s knobs would misattribute
/// every other item's report.
fn batch_shared_config(plans: &[Plan<'_>]) -> Result<calu_core::CaluConfig, Error> {
    let cfg = plans[0].calu_config();
    if plans.iter().any(|p| {
        let c = p.calu_config();
        // leaf_stride legitimately differs only through the grid, which
        // is identical when threads are; everything else must match
        c != cfg
    }) {
        return Err(Error::Config(
            "batched plans must share one configuration (same tile size, \
             threads, layout, scheduler, queue discipline, batch knobs); \
             build them from a single Solver via Solver::batch"
                .into(),
        ));
    }
    Ok(cfg)
}

/// Fold a span timeline plus per-worker queue stats into the unified
/// schedule metrics — one pass over the span list (it can hold tens of
/// thousands of entries on large runs).
pub(crate) fn threaded_schedule_metrics(
    threads: usize,
    makespan: f64,
    tl: &Timeline,
    stats: &[ThreadStats],
) -> ScheduleMetrics {
    let mut work = vec![0.0f64; threads];
    let mut busy = vec![0.0f64; threads];
    let mut count = vec![0u64; threads];
    for s in tl.spans() {
        busy[s.core] += s.duration();
        if s.kind.is_work() {
            work[s.core] += s.duration();
        }
        count[s.core] += 1;
    }
    ScheduleMetrics {
        makespan,
        threads: (0..threads)
            .map(|c| ThreadMetrics {
                work: work[c],
                idle: (makespan - busy[c]).max(0.0),
                tasks: count[c],
                local_pops: stats[c].local_pops,
                global_pops: stats[c].global_pops,
                stolen_pops: stats[c].steal_pops,
                remote_steal_pops: stats[c].remote_steal_pops,
                failed_steals: stats[c].failed_steals,
                rescued: stats[c].rescued,
                lost: stats[c].lost,
                ..Default::default()
            })
            .collect(),
    }
}

/// Real multithreaded execution (Algorithms 1 and 2 of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedBackend;

impl Backend for ThreadedBackend {
    fn name(&self) -> &str {
        "threaded"
    }

    fn preferred_queue(&self) -> Option<calu_sched::QueueDiscipline> {
        Some(calu_sched::QueueDiscipline::lock_free())
    }

    /// Persistent-pool batching for CALU and Cholesky plans (they share
    /// the pool's kernel-set dispatch, so a batch may mix the two);
    /// anything the pool does not cover (reference drivers, the
    /// rejected Cilk baseline) falls back to the loop-over-`run`
    /// default, which reports the same per-item errors a solo run
    /// would.
    fn run_batch(&self, plans: &[Plan<'_>]) -> Result<BatchReport, Error> {
        if plans.is_empty() {
            return Err(Error::Config(
                "a batch needs at least one matrix source".into(),
            ));
        }
        let pooled = plans.iter().all(|p| {
            matches!(p.algorithm, Algorithm::Calu | Algorithm::Cholesky)
                && !matches!(p.scheduler, calu_sched::SchedulerKind::WorkStealing { .. })
        });
        if pooled {
            self.run_batch_pooled(plans)
        } else {
            run_batch_loop(self, plans)
        }
    }

    fn execute(&self, plan: &Plan<'_>) -> Result<Report, Error> {
        if matches!(
            plan.scheduler,
            calu_sched::SchedulerKind::WorkStealing { .. }
        ) {
            return Err(Error::Unsupported {
                backend: self.name().into(),
                what: "the real executor implements the paper's static/dynamic \
                       queues, not the Cilk-deque baseline; use SimulatedBackend, \
                       or a Dynamic/Hybrid scheduler with \
                       .queue_discipline(QueueDiscipline::sharded()) for real \
                       randomized stealing in DFS priority order"
                    .into(),
            });
        }
        if plan.grouping_requested() && plan.group() > 1 {
            return Err(Error::Unsupported {
                backend: self.name().into(),
                what: "the real executor does not implement grouped BLAS-3 \
                       updates; grouping is a simulator knob — use \
                       SimulatedBackend or drop .grouping()"
                    .into(),
            });
        }
        if !plan.calu_config().fault.is_off()
            && !matches!(plan.algorithm, Algorithm::Calu | Algorithm::Cholesky)
        {
            return Err(Error::Unsupported {
                backend: self.name().into(),
                what: format!(
                    "fault injection runs on the hybrid executor's worker \
                     threads; the sequential {:?} reference driver has none to \
                     inject into — drop .fault_plan() or use CALU/Cholesky",
                    plan.algorithm
                ),
            });
        }
        let a = plan.source.materialize().ok_or_else(|| {
            Error::Config(
                "the threaded backend factors real data: provide a DenseMatrix \
                 or a seeded generator source, not MatrixSource::Shape"
                    .into(),
            )
        })?;
        let (m, n) = plan.source.dims();
        let mut report = Report {
            backend: self.name().into(),
            algorithm: plan.algorithm,
            scheduler: plan.scheduler,
            queue_discipline: plan.queue(),
            layout: plan.layout(),
            dims: (m, n),
            b: plan.b(),
            threads: plan.threads(),
            tasks: 0,
            makespan: 0.0,
            nominal_flops: nominal_flops(plan.algorithm, m, n),
            factorization: None,
            residual: None,
            growth_factor: None,
            schedule: ScheduleMetrics::default(),
            timeline: None,
            adaptation: None,
        };
        match plan.algorithm {
            Algorithm::Calu => {
                let cfg = plan.calu_config();
                let (f, tl, stats) = calu_factor_report(&a, &cfg)?;
                if plan.verify {
                    report.residual = Some(f.residual(&a));
                    report.growth_factor = Some(f.growth_factor(&a));
                }
                report.makespan = tl.makespan();
                report.tasks = tl.spans().len();
                report.schedule =
                    threaded_schedule_metrics(plan.threads(), tl.makespan(), &tl, &stats);
                report.timeline = plan.record_trace.then_some(tl);
                report.factorization = Some(f);
            }
            Algorithm::Gepp => {
                let t0 = Instant::now();
                let f = gepp_factor(a.as_ref(), plan.b());
                let dt = t0.elapsed().as_secs_f64();
                if plan.verify {
                    report.residual = Some(f.residual(&a));
                    report.growth_factor = Some(f.growth_factor(&a));
                }
                report.makespan = dt;
                // the reference drivers are sequential regardless of the
                // requested thread count; report what actually ran
                report.threads = 1;
                report.schedule = sequential_metrics(dt);
                report.factorization = Some(f);
            }
            Algorithm::IncPiv => {
                let t0 = Instant::now();
                let f = incpiv_factor(a.as_ref(), plan.b());
                let dt = t0.elapsed().as_secs_f64();
                // incremental pivoting keeps per-tile factors; expose the
                // numerical checks, not a packed Factorization
                if plan.verify {
                    report.residual = Some(f.residual_via_solve(&a, 0));
                    report.growth_factor = Some(f.growth_factor(&a));
                }
                report.makespan = dt;
                report.threads = 1;
                report.schedule = sequential_metrics(dt);
            }
            Algorithm::Cholesky => {
                let cfg = plan.calu_config();
                let (f, tl, stats) = cholesky_factor_report(&a, &cfg)?;
                if plan.verify {
                    report.residual = Some(f.cholesky_residual(&a));
                    // growth factor is an LU pivoting figure; Cholesky
                    // has no pivoting, so the field stays None
                }
                report.makespan = tl.makespan();
                report.tasks = tl.spans().len();
                report.schedule =
                    threaded_schedule_metrics(plan.threads(), tl.makespan(), &tl, &stats);
                report.timeline = plan.record_trace.then_some(tl);
                report.factorization = Some(f);
            }
        }
        Ok(report)
    }
}

impl ThreadedBackend {
    /// Batched factorization on one persistent worker pool
    /// (`calu_core::factor_batch`): spawned once, per-worker scratch
    /// arenas and deques alive across items, small items co-scheduled
    /// whole-per-worker, large ones on the full hybrid schedule. Each
    /// item carries its own kernel set, so a batch may mix CALU and
    /// Cholesky plans. See the `calu_core::batch` module docs for the
    /// scheduling model.
    fn run_batch_pooled(&self, plans: &[Plan<'_>]) -> Result<BatchReport, Error> {
        for plan in plans {
            if plan.grouping_requested() && plan.group() > 1 {
                return Err(Error::Unsupported {
                    backend: self.name().into(),
                    what: "the real executor does not implement grouped BLAS-3 \
                           updates; grouping is a simulator knob — use \
                           SimulatedBackend or drop .grouping()"
                        .into(),
                });
            }
        }
        let cfg = batch_shared_config(plans)?;
        // what the loop fallback pays per item — measured once per
        // process and pool width, *before* the timed window, so the
        // report field costs the batch path nothing
        let cold = cold_spawn_secs(cfg.threads);
        let t0 = Instant::now();
        // lazy sources: dense data is borrowed as-is, seeded generators
        // are materialized by the pool worker that claims each item —
        // submission stays O(1) per generator item instead of paying
        // every memset/PRNG fill up front on the calling thread
        let items_in = plans
            .iter()
            .map(|p| {
                let source = match p.source {
                    MatrixSource::Dense(a) => BatchSource::Dense(a),
                    MatrixSource::Uniform { m, n, seed } => BatchSource::Uniform {
                        m: *m,
                        n: *n,
                        seed: *seed,
                    },
                    MatrixSource::SpdUniform { n, seed } => {
                        BatchSource::SpdUniform { n: *n, seed: *seed }
                    }
                    MatrixSource::Shape { .. } => {
                        return Err(Error::Config(
                            "the threaded backend factors real data: provide a DenseMatrix \
                             or a seeded generator source, not MatrixSource::Shape"
                                .into(),
                        ))
                    }
                };
                Ok(match p.algorithm {
                    Algorithm::Cholesky => BatchItem::cholesky(source),
                    _ => BatchItem::lu(source),
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let outcome = factor_batch(&items_in, &cfg)?;
        let co_scheduled = outcome.items.iter().filter(|i| i.co_scheduled).count();
        let items = plans
            .iter()
            .zip(outcome.items)
            .map(|(plan, item)| {
                let (m, n) = plan.source.dims();
                let mut report = Report {
                    backend: self.name().into(),
                    algorithm: plan.algorithm,
                    scheduler: plan.scheduler,
                    queue_discipline: plan.queue(),
                    layout: plan.layout(),
                    dims: (m, n),
                    b: plan.b(),
                    threads: plan.threads(),
                    tasks: item.timeline.spans().len(),
                    makespan: item.makespan,
                    nominal_flops: nominal_flops(plan.algorithm, m, n),
                    factorization: None,
                    residual: None,
                    growth_factor: None,
                    schedule: threaded_schedule_metrics(
                        plan.threads(),
                        item.makespan,
                        &item.timeline,
                        &item.stats,
                    ),
                    timeline: plan.record_trace.then_some(item.timeline),
                    adaptation: None,
                };
                if plan.verify {
                    // generator items re-materialize here, on demand —
                    // only verifying sweeps pay for reference copies
                    let a = plan
                        .source
                        .materialize()
                        .expect("shape-only sources were rejected above");
                    if plan.algorithm == Algorithm::Cholesky {
                        report.residual = Some(item.factorization.cholesky_residual(&a));
                    } else {
                        report.residual = Some(item.factorization.residual(&a));
                        report.growth_factor = Some(item.factorization.growth_factor(&a));
                    }
                }
                report.factorization = Some(item.factorization);
                report
            })
            .collect();
        Ok(BatchReport {
            backend: self.name().into(),
            threads: plans[0].threads(),
            items,
            wall_secs: t0.elapsed().as_secs_f64(),
            pool_spawn_secs: outcome.pool_spawn_secs,
            cold_spawn_secs: cold,
            pool_reused: false,
            co_scheduled,
        })
    }
}

/// Cost of one cold spawn/join of an idle `threads`-wide pool — the
/// per-item overhead the loop-over-`run` fallback pays. Measured once
/// per process and pool width (cached), so repeated `Solver::batch`
/// calls don't each pay an extra spawn just to fill a report field.
pub(crate) fn cold_spawn_secs(threads: usize) -> f64 {
    use std::sync::{Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<Vec<(usize, f64)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    if let Some(&(_, secs)) = cache
        .lock()
        .expect("cold-spawn cache")
        .iter()
        .find(|&&(t, _)| t == threads)
    {
        return secs;
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {});
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    cache
        .lock()
        .expect("cold-spawn cache")
        .push((threads, secs));
    secs
}

/// Schedule metrics of a sequential reference driver.
fn sequential_metrics(makespan: f64) -> ScheduleMetrics {
    ScheduleMetrics {
        makespan,
        threads: vec![ThreadMetrics {
            work: makespan,
            ..Default::default()
        }],
    }
}

/// Discrete-event simulation on a modelled machine (see `calu_sim`).
#[derive(Debug, Clone)]
pub struct SimulatedBackend {
    machine: MachineConfig,
    column_granular: bool,
    name: String,
}

impl SimulatedBackend {
    /// Simulate on `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        let name = format!("simulated({})", machine.name);
        Self {
            machine,
            column_granular: false,
            name,
        }
    }

    /// Use column-granular dynamic tasks (Algorithm 2's `for all I` —
    /// the paper's fully dynamic implementation, Figure 14).
    pub fn column_granular(mut self) -> Self {
        self.column_granular = true;
        self
    }

    /// The machine model this backend simulates.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }
}

impl Backend for SimulatedBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn preferred_threads(&self) -> Option<usize> {
        Some(self.machine.cores())
    }

    fn topology(&self) -> calu_sched::CpuTopology {
        // adaptation on this backend seeds from the *modelled* machine,
        // so a simulated sweep predicts what the real machine would do
        calu_sim::machine_topology(&self.machine)
    }

    fn execute(&self, plan: &Plan<'_>) -> Result<Report, Error> {
        let cores = self.machine.cores();
        if plan.threads() != cores {
            return Err(Error::Config(format!(
                "thread count {} does not match the simulated machine's {} \
                 cores ({}); drop .threads() to use the machine size, or pick \
                 a machine model with {} cores",
                plan.threads(),
                cores,
                self.machine.name,
                plan.threads()
            )));
        }
        let cfg = SimConfig {
            machine: self.machine.clone(),
            layout: plan.layout(),
            sched: plan.scheduler,
            queue: plan.queue(),
            steal_order: plan.steal_order(),
            grid: plan.grid,
            group_max: plan.group(),
            column_granular: self.column_granular,
            record_trace: plan.record_trace,
        };
        let g = plan.build_graph();
        let r = calu_sim::run(&g, &cfg);
        let (m, n) = plan.source.dims();
        Ok(sim_report(self.name(), plan, (m, n), cores, r))
    }

    /// Model the batch semantics of the threaded pool on the machine
    /// model: small items (per the shared batch knobs) are co-scheduled
    /// on core *groups* of `batch_threads_per_item` cores each — the
    /// batch wall time is the longest group's item sequence — while
    /// large items run on the whole machine one after another. The same
    /// classification the threaded pool applies, so backend-parity
    /// sweeps cover the batch path too.
    fn run_batch(&self, plans: &[Plan<'_>]) -> Result<BatchReport, Error> {
        if plans.is_empty() {
            return Err(Error::Config(
                "a batch needs at least one matrix source".into(),
            ));
        }
        let cores = self.machine.cores();
        let cfg = batch_shared_config(plans)?;
        let k = cfg.batch_threads_per_item.min(cores);
        let co_schedule = k < cores;
        let groups = (cores / k).max(1);
        let sub_machine = MachineConfig {
            sockets: 1,
            cores_per_socket: k,
            ..self.machine.clone()
        };
        let sub_grid =
            calu_matrix::ProcessGrid::square_for(k).map_err(|e| Error::Config(e.to_string()))?;
        let mut group_time = vec![0.0f64; groups];
        let mut next_group = 0usize;
        let mut wall_large = 0.0f64;
        let mut co_scheduled = 0usize;
        let mut items = Vec::with_capacity(plans.len());
        for plan in plans {
            if plan.threads() != cores {
                return Err(Error::Config(format!(
                    "thread count {} does not match the simulated machine's {} \
                     cores ({}); drop .threads() to use the machine size",
                    plan.threads(),
                    cores,
                    self.machine.name
                )));
            }
            let (m, n) = plan.source.dims();
            let small = co_schedule && m.max(n) <= cfg.batch_small_cutoff;
            let g = plan.build_graph();
            let (machine, grid, threads) = if small {
                (sub_machine.clone(), sub_grid, k)
            } else {
                (self.machine.clone(), plan.grid, cores)
            };
            let scfg = SimConfig {
                machine,
                layout: plan.layout(),
                sched: plan.scheduler,
                queue: plan.queue(),
                steal_order: plan.steal_order(),
                grid,
                group_max: plan.group(),
                column_granular: self.column_granular,
                record_trace: plan.record_trace,
            };
            let r = calu_sim::run(&g, &scfg);
            if small {
                co_scheduled += 1;
                group_time[next_group] += r.makespan;
                next_group = (next_group + 1) % groups;
            } else {
                wall_large += r.makespan;
            }
            items.push(sim_report(self.name(), plan, (m, n), threads, r));
        }
        let wall = wall_large + group_time.iter().copied().fold(0.0f64, f64::max);
        Ok(BatchReport {
            backend: self.name().into(),
            threads: cores,
            items,
            wall_secs: wall,
            pool_spawn_secs: 0.0,
            cold_spawn_secs: 0.0,
            pool_reused: false,
            co_scheduled,
        })
    }
}

/// Map a `SimResult` into the unified report shape. `threads` is the
/// core count the run actually used (the whole machine for solo runs,
/// the co-scheduling group size for small batch items).
fn sim_report(
    backend: &str,
    plan: &Plan<'_>,
    dims: (usize, usize),
    threads: usize,
    r: SimResult,
) -> Report {
    let per_core = r
        .cores
        .iter()
        .map(|c| {
            let busy = c.work + c.overhead + c.memory + c.noise;
            ThreadMetrics {
                work: c.work,
                idle: (r.makespan - busy).max(0.0),
                overhead: c.overhead,
                memory: c.memory,
                noise: c.noise,
                tasks: c.tasks,
                local_pops: c.local_pops,
                global_pops: c.global_pops,
                stolen_pops: c.stolen_pops,
                remote_steal_pops: c.remote_stolen_pops,
                failed_steals: 0,
                rescued: c.rescued,
                lost: c.lost,
                remote_bytes: c.remote_bytes,
                local_bytes: c.local_bytes,
                cache_hits: c.cache_hits,
                cache_misses: c.cache_misses,
            }
        })
        .collect();
    Report {
        backend: backend.into(),
        algorithm: plan.algorithm,
        scheduler: plan.scheduler,
        queue_discipline: plan.queue(),
        layout: plan.layout(),
        dims,
        b: plan.b(),
        threads,
        tasks: r.tasks,
        makespan: r.makespan,
        nominal_flops: r.nominal_flops,
        factorization: None,
        residual: None,
        growth_factor: None,
        schedule: ScheduleMetrics {
            makespan: r.makespan,
            threads: per_core,
        },
        timeline: r.timeline,
        adaptation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{MatrixSource, Solver};
    use calu_sched::SchedulerKind;
    use calu_sim::NoiseConfig;

    #[test]
    fn threaded_rejects_shape_only_sources() {
        let err = Solver::new(MatrixSource::shape(64, 64))
            .tile(16)
            .backend(ThreadedBackend)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, Error::Config(ref m) if m.contains("DenseMatrix")),
            "{err}"
        );
    }

    #[test]
    fn run_batch_rejects_heterogeneous_plans() {
        // Backend::run_batch is public; hand-assembled plans that don't
        // share one config must fail loudly instead of silently running
        // every item under plans[0]'s knobs
        let a = Solver::new(MatrixSource::uniform(32, 1)).tile(8);
        let b = Solver::new(MatrixSource::uniform(32, 2)).tile(16);
        let plans = [a.plan().unwrap(), b.plan().unwrap()];
        for backend in [
            &ThreadedBackend as &dyn Backend,
            &SimulatedBackend::new(MachineConfig::intel_xeon_16(NoiseConfig::off())),
        ] {
            let err = backend.run_batch(&plans).unwrap_err();
            assert!(
                matches!(err, Error::Config(ref m) if m.contains("share one configuration")),
                "{err}"
            );
        }
    }

    #[test]
    fn threaded_rejects_work_stealing() {
        let err = Solver::new(MatrixSource::uniform(32, 1))
            .tile(8)
            .scheduler(SchedulerKind::WorkStealing { seed: 1 })
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }), "{err}");
    }

    #[test]
    fn threaded_rejects_explicit_grouping() {
        let err = Solver::new(MatrixSource::uniform(32, 1))
            .tile(8)
            .grouping(2)
            .run()
            .unwrap_err();
        assert!(matches!(err, Error::Unsupported { .. }), "{err}");
    }

    #[test]
    fn simulated_rejects_mismatched_threads() {
        let be = SimulatedBackend::new(MachineConfig::intel_xeon_16(NoiseConfig::off()));
        let err = Solver::new(MatrixSource::shape(400, 400))
            .threads(4)
            .backend(be)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, Error::Config(ref m) if m.contains("16")),
            "{err}"
        );
    }

    #[test]
    fn threaded_honors_tslu_leaves() {
        let run = |stride| {
            Solver::new(MatrixSource::uniform(64, 7))
                .tile(16)
                .threads(4)
                .tslu_leaves(stride)
                .run()
                .unwrap()
        };
        let (one, two) = (run(1), run(2));
        assert!(one.residual.unwrap() < 1e-12);
        assert!(two.residual.unwrap() < 1e-12);
        assert!(
            two.tasks > one.tasks,
            "more leaves per panel must mean more tasks ({} vs {})",
            two.tasks,
            one.tasks
        );
    }

    #[test]
    fn verify_off_skips_numerical_checks() {
        let r = Solver::new(MatrixSource::uniform(64, 7))
            .tile(16)
            .threads(2)
            .verify(false)
            .run()
            .unwrap();
        assert!(r.residual.is_none());
        assert!(r.growth_factor.is_none());
        assert!(r.factorization.is_some(), "factors are still returned");
    }

    #[test]
    fn backends_share_the_report_shape() {
        let threaded = Solver::new(MatrixSource::uniform(64, 7))
            .tile(16)
            .threads(4)
            .run()
            .unwrap();
        assert_eq!(threaded.backend, "threaded");
        assert!(threaded.factorization.is_some());
        assert!(threaded.residual.unwrap() < 1e-12);
        assert_eq!(threaded.schedule.threads.len(), 4);
        assert!(threaded.schedule.total_tasks() > 0);

        let sim = Solver::new(MatrixSource::shape(1000, 1000))
            .backend(SimulatedBackend::new(MachineConfig::intel_xeon_16(
                NoiseConfig::off(),
            )))
            .run()
            .unwrap();
        assert!(sim.factorization.is_none());
        assert_eq!(sim.schedule.threads.len(), 16);
        assert!(sim.gflops() > 0.0);
        assert!(sim.utilization() <= 1.0 + 1e-9);
        let q = sim.schedule.queue_sources();
        assert_eq!(q.local + q.global + q.stolen, sim.tasks as u64);
    }
}
