//! The unified `Solver` builder — one front door for every knob in the
//! paper's design space (Table 1), executed by any [`Backend`].
//!
//! The builder owns the *problem* (matrix source, tile size) and the
//! *strategy* (threads/grid, layout, scheduler, grouping, TSLU leaves,
//! tracing); the backend owns only the *execution substrate* (real
//! threads vs. a simulated machine). Validation happens exactly once,
//! in [`Solver::plan`], through [`CaluConfig::validate`] — the same
//! check the low-level drivers use — so an invalid configuration fails
//! identically no matter which entry point built it.

use std::borrow::Cow;
use std::sync::{Arc, Mutex};

use calu_core::{CaluConfig, FaultPlan};
use calu_dag::TaskGraph;
use calu_matrix::{DenseMatrix, Layout, ProcessGrid};
use calu_sched::adaptive::{AdaptiveController, AdaptivePolicy, SplitChoice};
use calu_sched::{QueueDiscipline, SchedulerKind, StealOrder};

use crate::backend::{Backend, ThreadedBackend};
use crate::error::Error;
use crate::report::{AdaptationReport, BatchReport, Report};

/// Which factorization to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Communication-avoiding LU with tournament pivoting (the paper).
    Calu,
    /// Blocked GEPP with a sequential panel (the MKL stand-in).
    Gepp,
    /// Tiled LU with incremental pivoting (the PLASMA stand-in).
    IncPiv,
    /// Tiled Cholesky of a symmetric positive-definite matrix (§9
    /// extension). Runs for real on [`ThreadedBackend`] — `dpotrf` /
    /// `A·L⁻ᵀ`-TRSM / SYRK tile kernels on the same hybrid
    /// static/dynamic executor as CALU — and as a cost model on the
    /// simulated backend. Requires a square source that is SPD (use
    /// [`MatrixSource::SpdUniform`] for seeded inputs; a non-SPD dense
    /// input is flagged at run time via the report's `singular_at`).
    Cholesky,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Algorithm::Calu => write!(f, "CALU"),
            Algorithm::Gepp => write!(f, "GEPP"),
            Algorithm::IncPiv => write!(f, "incpiv"),
            Algorithm::Cholesky => write!(f, "Cholesky"),
        }
    }
}

/// Where the input matrix comes from.
///
/// Real backends need element data ([`MatrixSource::Dense`] or a seeded
/// generator); the discrete-event simulator only needs the shape, so
/// [`MatrixSource::Shape`] lets sweeps over n = 10⁴-class problems skip
/// materialization entirely.
#[derive(Debug, Clone)]
pub enum MatrixSource {
    /// Explicit element data.
    Dense(DenseMatrix),
    /// Seeded uniform `[-1, 1]` entries, generated on demand.
    Uniform {
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Seeded symmetric positive-definite matrix
    /// (`calu_matrix::gen::spd_uniform`), generated on demand — the
    /// seeded source [`Algorithm::Cholesky`] requires.
    SpdUniform {
        /// Order (the matrix is `n×n`).
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// Shape only — enough for simulation, rejected by real backends.
    Shape {
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
    },
}

impl MatrixSource {
    /// Square seeded uniform matrix.
    pub fn uniform(n: usize, seed: u64) -> Self {
        MatrixSource::Uniform { m: n, n, seed }
    }

    /// Rectangular seeded uniform matrix.
    pub fn uniform_rect(m: usize, n: usize, seed: u64) -> Self {
        MatrixSource::Uniform { m, n, seed }
    }

    /// Seeded symmetric positive-definite matrix.
    pub fn spd_uniform(n: usize, seed: u64) -> Self {
        MatrixSource::SpdUniform { n, seed }
    }

    /// Shape-only source for simulated sweeps.
    pub fn shape(m: usize, n: usize) -> Self {
        MatrixSource::Shape { m, n }
    }

    /// Problem dimensions `(m, n)`.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            MatrixSource::Dense(a) => (a.rows(), a.cols()),
            MatrixSource::SpdUniform { n, .. } => (*n, *n),
            MatrixSource::Uniform { m, n, .. } | MatrixSource::Shape { m, n } => (*m, *n),
        }
    }

    /// Materialize element data, if this source has any. Dense sources
    /// are borrowed, not copied, so repeated `Solver::run` calls on one
    /// matrix pay no per-run memcpy.
    pub fn materialize(&self) -> Option<Cow<'_, DenseMatrix>> {
        match self {
            MatrixSource::Dense(a) => Some(Cow::Borrowed(a)),
            MatrixSource::Uniform { m, n, seed } => {
                Some(Cow::Owned(calu_matrix::gen::uniform(*m, *n, *seed)))
            }
            MatrixSource::SpdUniform { n, seed } => {
                Some(Cow::Owned(calu_matrix::gen::spd_uniform(*n, *seed)))
            }
            MatrixSource::Shape { .. } => None,
        }
    }
}

impl From<DenseMatrix> for MatrixSource {
    fn from(a: DenseMatrix) -> Self {
        MatrixSource::Dense(a)
    }
}

/// A fully validated execution plan, handed to [`Backend::execute`].
///
/// Backends never re-derive knobs: everything here has already passed
/// the single shared validation path.
#[derive(Debug, Clone)]
pub struct Plan<'a> {
    /// The input matrix source.
    pub source: &'a MatrixSource,
    /// 2D block-cyclic thread grid derived from the thread count.
    pub grid: ProcessGrid,
    /// Scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Algorithm to run.
    pub algorithm: Algorithm,
    /// Record a full per-task timeline.
    pub record_trace: bool,
    /// Compute residual/growth-factor checks on real backends.
    pub verify: bool,
    /// The validated driver config — the single source of truth for the
    /// knobs it owns (`b`, threads, dratio, layout, group, leaves),
    /// exposed read-only through the accessors below so the public plan
    /// can never disagree with what the executor runs.
    cfg: CaluConfig,
    /// Whether the caller set `.grouping()` explicitly (backends that
    /// cannot group reject explicit requests, not the default).
    explicit_group: bool,
    /// How the adaptive controller resolved this plan's split, when the
    /// solver is adaptive (attached to the [`Report`] after execution).
    adaptation: Option<AdaptationReport>,
}

impl Plan<'_> {
    /// Tile size `b`.
    pub fn b(&self) -> usize {
        self.cfg.b
    }

    /// Resolved worker-thread / core count.
    pub fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Data layout.
    pub fn layout(&self) -> Layout {
        self.cfg.layout
    }

    /// Fraction of panels scheduled dynamically, resolved from the
    /// scheduler (`Static` → 0, `Dynamic`/`WorkStealing` → 1).
    pub fn dratio(&self) -> f64 {
        self.cfg.dratio
    }

    /// Effective BLAS-3 grouping width (1 when the layout cannot group).
    pub fn group(&self) -> usize {
        self.cfg.group
    }

    /// Dynamic-section queue discipline.
    pub fn queue(&self) -> QueueDiscipline {
        self.cfg.queue
    }

    /// Direction of the lock-free discipline's tiered steal sweep.
    pub fn steal_order(&self) -> StealOrder {
        self.cfg.steal_order
    }

    /// How the adaptive controller resolved this plan's split (`None`
    /// for non-adaptive solvers).
    pub fn adaptation(&self) -> Option<&AdaptationReport> {
        self.adaptation.as_ref()
    }

    /// TSLU leaves per panel (defaults to the grid's row count).
    pub fn leaf_stride(&self) -> usize {
        self.cfg.leaf_stride.unwrap_or_else(|| self.grid.pr())
    }

    /// Whether `.grouping()` was set explicitly rather than defaulted.
    pub fn grouping_requested(&self) -> bool {
        self.explicit_group
    }

    /// Build the task DAG for this plan's algorithm and shape.
    pub fn build_graph(&self) -> TaskGraph {
        let (m, n) = self.source.dims();
        match self.algorithm {
            Algorithm::Calu => TaskGraph::build_calu(m, n, self.b(), self.leaf_stride()),
            Algorithm::Gepp => TaskGraph::build_gepp(m, n, self.b()),
            Algorithm::IncPiv => TaskGraph::build_incpiv(m, n, self.b()),
            Algorithm::Cholesky => TaskGraph::build_cholesky(n, self.b()),
        }
    }

    /// The `CaluConfig` equivalent of this plan (for the real executor).
    pub fn calu_config(&self) -> CaluConfig {
        self.cfg.clone()
    }
}

/// The unified solver builder. See the crate docs for a quickstart.
pub struct Solver {
    source: MatrixSource,
    b: usize,
    threads: Option<usize>,
    layout: Layout,
    scheduler: SchedulerKind,
    queue: Option<QueueDiscipline>,
    group: Option<usize>,
    leaf_stride: Option<usize>,
    algorithm: Algorithm,
    trace: bool,
    verify: bool,
    pin_workers: bool,
    batch_threads_per_item: Option<usize>,
    batch_small_cutoff: Option<usize>,
    fault: Option<FaultPlan>,
    adaptive: Option<AdaptiveState>,
    backend: Box<dyn Backend>,
}

/// The solver's adaptive-scheduling state: the validated policy plus
/// the feedback controller, created lazily at the first [`Solver::plan`]
/// (the thread count and backend topology are only resolved there).
/// Interior mutability because `plan` takes `&self`; the `Arc` lets a
/// spawned [`crate::serve::ReportService`] keep feeding the same
/// controller from its completion path. The mutex is uncontended in
/// normal use — it exists so a `Solver` shared across threads keeps one
/// coherent observation history.
pub(crate) struct AdaptiveState {
    policy: AdaptivePolicy,
    controller: Arc<Mutex<Option<AdaptiveController>>>,
}

impl AdaptiveState {
    /// Run `f` against the (lazily created) controller.
    fn with_controller<R>(
        &self,
        topo: impl FnOnce() -> calu_sched::CpuTopology,
        threads: usize,
        f: impl FnOnce(&mut AdaptiveController) -> R,
    ) -> R {
        let mut guard = self.controller.lock().unwrap();
        let ctl = guard
            .get_or_insert_with(|| AdaptiveController::new(self.policy.clone(), &topo(), threads));
        f(ctl)
    }
}

impl Solver {
    /// Start a solver for `source` with the paper's defaults: tile size
    /// 100, BCL layout, hybrid scheduling with a 10% dynamic share, the
    /// real threaded backend.
    pub fn new(source: impl Into<MatrixSource>) -> Self {
        Self {
            source: source.into(),
            b: 100,
            threads: None,
            layout: Layout::BlockCyclic,
            scheduler: SchedulerKind::Hybrid { dratio: 0.1 },
            queue: None,
            group: None,
            leaf_stride: None,
            algorithm: Algorithm::Calu,
            trace: false,
            verify: true,
            pin_workers: false,
            batch_threads_per_item: None,
            batch_small_cutoff: None,
            fault: None,
            adaptive: None,
            backend: Box::new(ThreadedBackend),
        }
    }

    /// Set the tile size `b`.
    pub fn tile(mut self, b: usize) -> Self {
        self.b = b;
        self
    }

    /// Set the worker-thread / simulated-core count. Unset, the backend
    /// chooses (threaded: 1; simulated: the machine's core count).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Set the data layout.
    pub fn layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Set the scheduling strategy.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Shorthand for `scheduler(SchedulerKind::Hybrid { dratio })`.
    pub fn dratio(self, dratio: f64) -> Self {
        self.scheduler(SchedulerKind::Hybrid { dratio })
    }

    /// Set the dynamic-section queue discipline explicitly. Unset, the
    /// backend chooses: the threaded backend defaults to
    /// [`QueueDiscipline::LockFree`] (per-worker Chase-Lev deques with
    /// locality-tiered stealing — it won the perf-smoke gate), the
    /// simulated backend to [`QueueDiscipline::Global`] (the paper's
    /// single shared queue, keeping the reproduced figures faithful);
    /// schedulers without a dynamic section always get `Global`.
    /// [`QueueDiscipline::Sharded`] (per-worker mutex'd priority shards)
    /// remains available as the parity oracle. An *explicit* stealing
    /// discipline requires a scheduler with a dynamic section (rejected
    /// with `Static`, where there is nothing to shard or steal).
    pub fn queue_discipline(mut self, queue: QueueDiscipline) -> Self {
        self.queue = Some(queue);
        self
    }

    /// Pin worker threads to CPUs by the detected host topology
    /// (threaded backend; default off). Pinning makes the lock-free
    /// discipline's "same socket" steal tier mean the same socket in
    /// silicon, at the price of fairness on oversubscribed machines —
    /// turn it on for dedicated-machine benchmark runs.
    pub fn pin_workers(mut self, pin: bool) -> Self {
        self.pin_workers = pin;
        self
    }

    /// Explicitly set the BLAS-3 grouping width `k`. Conflicts with
    /// layouts that cannot group (checked at [`Solver::run`]), and with
    /// [`ThreadedBackend`], which does not
    /// implement grouped updates (explicit `k > 1` is rejected there;
    /// grouping is a simulator knob).
    pub fn grouping(mut self, k: usize) -> Self {
        self.group = Some(k);
        self
    }

    /// Override the TSLU leaf stride (leaves per panel). Defaults to
    /// the thread grid's row count, as in the paper.
    pub fn tslu_leaves(mut self, stride: usize) -> Self {
        self.leaf_stride = Some(stride);
        self
    }

    /// The co-scheduling switch for a [`Solver::batch`] sweep
    /// (default 1). Any value below the thread count enables
    /// co-scheduling — on the threaded pool each small matrix is then
    /// claimed whole by **one** worker, whatever `k` is; setting it
    /// *to* the thread count disables co-scheduling, running every
    /// item on the full hybrid schedule. The simulated backend also
    /// uses `k` as the core-group width of its batch model
    /// (`k`-worker groups on the real executor are future work).
    /// Validated in `1..=threads`.
    pub fn batch_threads_per_item(mut self, k: usize) -> Self {
        self.batch_threads_per_item = Some(k);
        self
    }

    /// Size cutoff below which a [`Solver::batch`] item counts as
    /// *small* and is co-scheduled (larger dimension, in elements;
    /// default [`calu_core::DEFAULT_BATCH_SMALL_CUTOFF`]). `0`
    /// co-schedules nothing.
    ///
    /// [`calu_core::DEFAULT_BATCH_SMALL_CUTOFF`]: calu_core::DEFAULT_BATCH_SMALL_CUTOFF
    pub fn batch_small_cutoff(mut self, cutoff: usize) -> Self {
        self.batch_small_cutoff = Some(cutoff);
        self
    }

    /// Inject a deterministic [`FaultPlan`] into the real executor
    /// (default off). Per-worker slowdowns, one-shot stalls, worker
    /// loss and kernel panics fire on the actual worker threads, keyed
    /// off the plan's seed so a chaos run replays bitwise; the hybrid
    /// schedule *degrades* rather than fails — a lost or slow worker's
    /// static tasks are rescued into the dynamic queues and the factors
    /// stay bitwise-identical to a fault-free run (injected panics
    /// surface as typed [`calu_core::CaluError::TaskPanic`] instead).
    /// Validated against the thread count in [`Solver::plan`]; the
    /// simulated backend prices faults through its own machine knobs,
    /// and batch sweeps reject armed plans.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Close the scheduling feedback loop: let an
    /// [`AdaptiveController`] pick the static/dynamic split, the steal
    /// direction and the batch co-scheduling cutoffs from what the
    /// system already measures, instead of the fixed knobs above.
    ///
    /// The controller seeds its split from the backend's topology
    /// (detected host sockets for the threaded backend, the machine
    /// model for the simulator), then moves it after every completed
    /// [`Solver::run`] / [`Solver::batch`] item using the report's own
    /// schedule metrics — idle fraction, steal-sweep failure rate,
    /// remote-steal fraction, lost workers, rescued tasks. See
    /// [`calu_sched::adaptive`] for the update rules and the two modes
    /// (per-run cache-seeded vs. cross-run in-memory).
    ///
    /// Adaptation replaces the *configured* scheduler: every adaptive
    /// plan runs `Hybrid { dratio }` at the controller's current choice
    /// (bounded by the policy, validated through
    /// [`CaluConfig::validate`]). It never changes a schedule mid-DAG —
    /// choices move between runs/items only — so the factors stay
    /// bitwise-identical to a fixed-knob run at the same chosen split.
    /// Explicit [`Solver::batch_small_cutoff`] /
    /// [`Solver::batch_threads_per_item`] calls still win over the
    /// controller's cutoff choices.
    pub fn adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.adaptive = Some(AdaptiveState {
            policy,
            controller: Arc::new(Mutex::new(None)),
        });
        self
    }

    /// A shared handle on the adaptive controller, for the service
    /// layer's completion path (`None` for non-adaptive solvers).
    pub(crate) fn adaptive_controller(&self) -> Option<Arc<Mutex<Option<AdaptiveController>>>> {
        self.adaptive.as_ref().map(|s| Arc::clone(&s.controller))
    }

    /// The adaptive controller's current split — `None` until an
    /// adaptive solver has planned at least once.
    pub fn adaptive_split(&self) -> Option<SplitChoice> {
        let state = self.adaptive.as_ref()?;
        let guard = state.controller.lock().unwrap();
        guard.as_ref().map(|c| c.choice())
    }

    /// Select the algorithm (default [`Algorithm::Calu`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Record a full per-task timeline in the report.
    pub fn trace(mut self, record: bool) -> Self {
        self.trace = record;
        self
    }

    /// Compute residual and growth-factor checks after a real run
    /// (default on). The checks cost a sequential O(n³) reconstruction —
    /// turn them off in timing loops where only the schedule matters.
    pub fn verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Select the execution backend (default [`ThreadedBackend`]).
    pub fn backend(mut self, backend: impl Backend + 'static) -> Self {
        self.backend = Box::new(backend);
        self
    }

    /// Validate every knob once and produce the execution [`Plan`].
    ///
    /// All configuration errors of the workspace funnel through here:
    /// the checks are [`CaluConfig::validate`]'s, plus facade-level
    /// conflicts (explicit grouping on a non-grouping layout;
    /// shape/backend mismatches are left to the backend).
    pub fn plan(&self) -> Result<Plan<'_>, Error> {
        self.plan_for(&self.source)
    }

    /// [`Solver::plan`] against an arbitrary source: the same knobs and
    /// the same validation, applied to one item of a batched sweep.
    fn plan_for<'a>(&'a self, source: &'a MatrixSource) -> Result<Plan<'a>, Error> {
        let (m, n) = source.dims();
        if self.algorithm == Algorithm::Cholesky {
            if m != n {
                return Err(Error::Config(format!(
                    "Cholesky factors a square symmetric matrix, got {m}×{n}; \
                     use a square source or an LU algorithm"
                )));
            }
            if matches!(source, MatrixSource::Uniform { .. }) {
                return Err(Error::Config(
                    "Cholesky requires a symmetric positive-definite input, but \
                     MatrixSource::Uniform generates a general matrix; use \
                     MatrixSource::SpdUniform (or pass SPD data as Dense)"
                        .into(),
                ));
            }
        }
        let threads = self
            .threads
            .or_else(|| self.backend.preferred_threads())
            .unwrap_or(1);
        // an adaptive solver resolves its split through the feedback
        // controller (seeded lazily from the backend's topology at the
        // first plan); plan_choice() is idempotent within one batch, so
        // every item of a sweep gets the identical choice
        let adaptation = self.adaptive.as_ref().map(|state| {
            state.with_controller(
                || self.backend.topology(),
                threads,
                |ctl| AdaptationReport {
                    seed: ctl.seed_choice(),
                    chosen: ctl.plan_choice(),
                    observations: ctl.observations(),
                    steps: ctl.trace().to_vec(),
                },
            )
        });
        let scheduler = match &adaptation {
            Some(a) => SchedulerKind::Hybrid {
                dratio: a.chosen.dratio,
            },
            None => self.scheduler,
        };
        let dratio = match scheduler {
            SchedulerKind::Static => 0.0,
            SchedulerKind::Dynamic | SchedulerKind::WorkStealing { .. } => 1.0,
            SchedulerKind::Hybrid { dratio } => dratio,
        };
        // resolve the queue discipline: an explicit choice always wins
        // (and is validated as given); otherwise the backend's
        // preference applies wherever a dynamic section exists, with
        // the paper's global queue as the universal fallback
        let queue = self.queue.unwrap_or_else(|| {
            if dratio > 0.0 {
                self.backend
                    .preferred_queue()
                    .unwrap_or(QueueDiscipline::Global)
            } else {
                QueueDiscipline::Global
            }
        });
        // the one shared validation path (b, threads, dratio, group,
        // leaves, grid)
        let mut cfg = CaluConfig::new(self.b)
            .with_threads(threads)
            .with_dratio(dratio)
            .with_layout(self.layout)
            .with_queue(queue)
            .with_pinning(self.pin_workers);
        if let Some(a) = &adaptation {
            cfg.steal_order = a.chosen.steal_order;
            cfg.batch_small_cutoff = a.chosen.batch_small_cutoff;
            cfg.batch_threads_per_item = a.chosen.batch_threads_per_item;
            cfg.adaptive = Some(self.adaptive.as_ref().unwrap().policy.clone());
        }
        if let Some(k) = self.batch_threads_per_item {
            cfg.batch_threads_per_item = k;
        }
        if let Some(cutoff) = self.batch_small_cutoff {
            cfg.batch_small_cutoff = cutoff;
        }
        if let Some(fault) = &self.fault {
            cfg = cfg.with_fault(fault.clone());
        }
        cfg.leaf_stride = self.leaf_stride;
        if let Some(g) = self.group {
            cfg.group = g;
        }
        let grid = cfg.validate()?;
        if let Some(g) = self.group {
            if g > 1 && !self.layout.supports_grouping() {
                return Err(Error::Config(format!(
                    "grouping k = {g} requires a layout with thread-contiguous \
                     columns, but {} stores tiles separately; use \
                     Layout::BlockCyclic or drop .grouping()",
                    self.layout
                )));
            }
        }
        // resolve the derived knobs in place: the stored config is the
        // single source of truth the accessors and executor read
        cfg.group = cfg.effective_group();
        cfg.leaf_stride = Some(self.leaf_stride.unwrap_or_else(|| grid.pr()));
        Ok(Plan {
            source,
            grid,
            scheduler,
            algorithm: self.algorithm,
            record_trace: self.trace,
            verify: self.verify,
            cfg,
            explicit_group: self.group.is_some(),
            adaptation,
        })
    }

    /// Validate, execute on the selected backend, and return the
    /// structured [`Report`].
    ///
    /// On an adaptive solver the completed run's schedule metrics are
    /// fed straight back into the controller, so the *next* `run` (or
    /// batch item, or service job) plans under an updated split; the
    /// report carries the [`AdaptationReport`] that produced this one.
    pub fn run(&self) -> Result<Report, Error> {
        let plan = self.plan()?;
        let mut report = self.backend.execute(&plan)?;
        report.adaptation = plan.adaptation().cloned();
        self.observe_report(&report);
        Ok(report)
    }

    /// Feed one completed report back into the adaptive controller
    /// (no-op for non-adaptive solvers).
    fn observe_report(&self, report: &Report) {
        if let Some(state) = &self.adaptive {
            state.with_controller(
                || self.backend.topology(),
                report.threads,
                |ctl| ctl.observe(&report.schedule.observation(report.dims)),
            );
        }
    }

    /// Factor every matrix in `sources` as one batched sweep and return
    /// the aggregate [`BatchReport`].
    ///
    /// Every item runs under this builder's knobs (tile size, threads,
    /// scheduler, queue discipline, …) — the builder's *own* source is
    /// not part of the batch, only `sources` are. On
    /// [`ThreadedBackend`] the sweep runs on one persistent worker pool
    /// (spawned once; per-worker scratch arenas and deques alive across
    /// items; small items co-scheduled whole-per-worker, large ones on
    /// the full hybrid static/dynamic schedule — see
    /// [`Solver::batch_small_cutoff`] and
    /// [`Solver::batch_threads_per_item`]); each item's factors are
    /// bitwise-identical to a solo [`Solver::run`] on that source.
    /// [`crate::SimulatedBackend`] models the same batch semantics;
    /// other backends fall back to looping over [`Solver::run`].
    pub fn batch(&self, sources: &[MatrixSource]) -> Result<BatchReport, Error> {
        if sources.is_empty() {
            return Err(Error::Config(
                "a batch needs at least one matrix source; pass a non-empty \
                 slice to Solver::batch"
                    .into(),
            ));
        }
        let plans = sources
            .iter()
            .map(|s| self.plan_for(s))
            .collect::<Result<Vec<_>, _>>()?;
        let mut batch = self.backend.run_batch(&plans)?;
        // adaptive feedback: the whole sweep planned under one choice
        // (plan_choice is idempotent between observations), so items are
        // observed after the fact, in order — the next sweep adapts
        let adaptation = plans.first().and_then(|p| p.adaptation().cloned());
        for item in &mut batch.items {
            item.adaptation = adaptation.clone();
        }
        for item in &batch.items {
            self.observe_report(item);
        }
        Ok(batch)
    }
}

impl std::fmt::Debug for Solver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Solver")
            .field("source_dims", &self.source.dims())
            .field("b", &self.b)
            .field("threads", &self.threads)
            .field("layout", &self.layout)
            .field("scheduler", &self.scheduler)
            .field("queue", &self.queue)
            .field("algorithm", &self.algorithm)
            .field("backend", &self.backend.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_resolves_paper_defaults() {
        let s = Solver::new(MatrixSource::uniform(400, 1)).threads(4);
        let p = s.plan().unwrap();
        assert_eq!(p.b(), 100);
        assert_eq!(p.threads(), 4);
        assert_eq!(p.grid.size(), 4);
        assert_eq!(p.layout(), Layout::BlockCyclic);
        assert_eq!(p.group(), 3, "BCL groups by default");
        assert_eq!(p.leaf_stride(), p.grid.pr());
        assert!((p.dratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn scheduler_resolves_dratio() {
        let s = |k| {
            Solver::new(MatrixSource::shape(200, 200))
                .scheduler(k)
                .plan()
                .map(|p| p.dratio())
        };
        assert_eq!(s(SchedulerKind::Static).unwrap(), 0.0);
        assert_eq!(s(SchedulerKind::Dynamic).unwrap(), 1.0);
        assert_eq!(s(SchedulerKind::Hybrid { dratio: 0.3 }).unwrap(), 0.3);
    }

    #[test]
    fn cholesky_requires_square_source() {
        let err = Solver::new(MatrixSource::shape(4000, 2000))
            .algorithm(Algorithm::Cholesky)
            .plan()
            .unwrap_err();
        assert!(
            matches!(err, crate::Error::Config(ref m) if m.contains("square")),
            "{err}"
        );
    }

    #[test]
    fn cholesky_rejects_non_spd_generator_source() {
        let err = Solver::new(MatrixSource::uniform(400, 1))
            .algorithm(Algorithm::Cholesky)
            .plan()
            .unwrap_err();
        assert!(
            matches!(err, crate::Error::Config(ref m) if m.contains("SpdUniform")),
            "{err}"
        );
        // the SPD generator, dense data and shape-only sources all plan
        for src in [
            MatrixSource::spd_uniform(400, 1),
            MatrixSource::Dense(calu_matrix::gen::spd_uniform(100, 2)),
            MatrixSource::shape(400, 400),
        ] {
            assert!(Solver::new(src)
                .algorithm(Algorithm::Cholesky)
                .plan()
                .is_ok());
        }
    }

    #[test]
    fn spd_source_dims_and_materialization() {
        let s = MatrixSource::spd_uniform(32, 9);
        assert_eq!(s.dims(), (32, 32));
        let a = s.materialize().unwrap();
        assert!(a.approx_eq(&calu_matrix::gen::spd_uniform(32, 9), 0.0));
    }

    #[test]
    fn non_grouping_layout_gets_group_one() {
        let s = Solver::new(MatrixSource::shape(200, 200)).layout(Layout::TwoLevelBlock);
        let p = s.plan().unwrap();
        assert_eq!(p.group(), 1);
    }

    #[test]
    fn queue_discipline_defaults_to_the_backend_preference() {
        // threaded backend (the default): lock-free deques whenever a
        // dynamic section exists …
        let s = Solver::new(MatrixSource::shape(200, 200));
        assert!(s.plan().unwrap().queue().is_lock_free());
        // … and the paper's global queue when there is nothing to steal
        let all_static =
            Solver::new(MatrixSource::shape(200, 200)).scheduler(SchedulerKind::Static);
        assert_eq!(all_static.plan().unwrap().queue(), QueueDiscipline::Global);
        // explicit choices always win over the preference
        let sharded =
            Solver::new(MatrixSource::shape(200, 200)).queue_discipline(QueueDiscipline::sharded());
        let p = sharded.plan().unwrap();
        assert!(p.queue().is_sharded());
        assert!(p.calu_config().queue.is_sharded(), "executor sees the knob");
        let global =
            Solver::new(MatrixSource::shape(200, 200)).queue_discipline(QueueDiscipline::Global);
        assert_eq!(global.plan().unwrap().queue(), QueueDiscipline::Global);
    }

    #[test]
    fn pin_workers_plumbs_through_to_the_executor_config() {
        let s = Solver::new(MatrixSource::shape(200, 200)).pin_workers(true);
        assert!(s.plan().unwrap().calu_config().pin_workers);
        let off = Solver::new(MatrixSource::shape(200, 200));
        assert!(!off.plan().unwrap().calu_config().pin_workers);
    }

    #[test]
    fn fault_plan_plumbs_through_and_validates_against_threads() {
        let armed = FaultPlan::off().slow_worker(1, 2.0);
        let s = Solver::new(MatrixSource::shape(200, 200))
            .threads(2)
            .fault_plan(armed.clone());
        let p = s.plan().unwrap();
        assert!(!p.calu_config().fault.is_off(), "executor sees the plan");
        // default: off, no fault machinery armed
        let plain = Solver::new(MatrixSource::shape(200, 200));
        assert!(plain.plan().unwrap().calu_config().fault.is_off());
        // a fault on a worker the thread count doesn't have is a config
        // error, caught in plan() like every other knob
        let err = Solver::new(MatrixSource::shape(200, 200))
            .threads(1)
            .fault_plan(armed)
            .plan()
            .unwrap_err();
        assert!(
            matches!(err, crate::Error::Config(ref m) if m.contains("worker")),
            "{err}"
        );
    }

    #[test]
    fn sharded_discipline_rejects_static_scheduler() {
        let err = Solver::new(MatrixSource::shape(200, 200))
            .scheduler(SchedulerKind::Static)
            .queue_discipline(QueueDiscipline::sharded())
            .plan()
            .unwrap_err();
        assert!(
            matches!(err, crate::Error::Config(ref m) if m.contains("dynamic")),
            "{err}"
        );
    }
}
