//! The service layer of the facade: [`Solver::serve`] and friends.
//!
//! A [`FactorService`] is a long-running job server over one persistent
//! worker pool — where [`Solver::batch`] amortizes pool spawn across
//! one sweep, a service amortizes it across *every factorization a
//! process ever runs*: submit jobs from any thread, in priority classes
//! ([`JobClass::Interactive`] / [`JobClass::Batch`] /
//! [`JobClass::Background`]), get each result back through a
//! [`JobHandle`] as the structured [`Report`] a solo [`Solver::run`]
//! would have produced — bitwise-identical factors included.
//!
//! ```
//! use calu::{JobClass, JobSpec, MatrixSource, Solver};
//!
//! let service = Solver::new(MatrixSource::shape(64, 64)) // knobs only
//!     .tile(16)
//!     .threads(2)
//!     .verify(false)
//!     .serve()
//!     .unwrap();
//! let handle = service
//!     .submit(JobSpec::uniform(64, 64, 7), JobClass::Interactive)
//!     .unwrap();
//! let report = handle.wait().unwrap();
//! assert!(report.factorization.is_some());
//! service.drain(); // finishes everything, joins the workers
//! ```
//!
//! The solver builder is the service's *plan*: tile size, threads,
//! layout, scheduler and verification all validate once through
//! [`Solver::plan`], exactly like a solo run; jobs then only vary in
//! their matrix ([`JobSpec`]). Inside the pool each job's dynamic
//! section runs on the paper's shared global queue — the exclusive-
//! writer discipline of the task DAG makes the factors independent of
//! execution order, which is what lets a served job reproduce a solo
//! run bit for bit.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use calu_core::pool::PoolOutcome;
use calu_core::KernelSet;
use calu_rand::Rng;
use calu_sched::{QueueDiscipline, SchedulerKind};

pub use calu_serve::{
    DrainSummary, Events, FactorService, JobClass, JobEvent, JobHandle, JobId, JobInfo, JobSpec,
    JobStatus, JournalConfig, NetConfig, NetStats, ServeError, ServeListener, ServiceConfig,
    ServiceEvent,
};

use crate::backend::{cold_spawn_secs, threaded_schedule_metrics};
use crate::error::Error;
use crate::report::{nominal_flops, BatchReport, Report};
use crate::solver::{Algorithm, MatrixSource, Solver};

/// A [`FactorService`] whose jobs resolve to the facade's [`Report`] —
/// what [`Solver::serve`] returns.
pub type ReportService = FactorService<Report>;

/// Map service-layer errors into the facade's unified [`Error`].
fn serve_err(e: ServeError) -> Error {
    match e {
        ServeError::Invalid(e) | ServeError::Failed(e) => Error::from(e),
        other => Error::Config(other.to_string()),
    }
}

/// The kernel set a facade algorithm runs on the service pool.
fn kernels_for(algorithm: Algorithm) -> KernelSet {
    if algorithm == Algorithm::Cholesky {
        KernelSet::Cholesky
    } else {
        KernelSet::CaluLu
    }
}

/// Build a [`JobSpec`] from a facade source (rejecting shape-only
/// sources, which carry no data to factor). `kernels` selects the
/// algorithm for the job: `Some` forces it (the sweep pumps pass the
/// solver's algorithm), `None` infers it from the source — SPD
/// generators run tiled Cholesky, everything else CALU.
fn spec_for(source: MatrixSource, kernels: Option<KernelSet>) -> Result<JobSpec, Error> {
    if kernels == Some(KernelSet::Cholesky) && matches!(source, MatrixSource::Uniform { .. }) {
        return Err(Error::Config(
            "Cholesky requires a symmetric positive-definite input, but \
             MatrixSource::Uniform generates a general matrix; use \
             MatrixSource::SpdUniform (or pass SPD data as Dense)"
                .into(),
        ));
    }
    let spec = match source {
        MatrixSource::Dense(a) => JobSpec::dense(a),
        MatrixSource::Uniform { m, n, seed } => JobSpec::uniform(m, n, seed),
        MatrixSource::SpdUniform { n, seed } => JobSpec::spd_uniform(n, seed),
        MatrixSource::Shape { .. } => {
            return Err(Error::Config(
                "the factorization service factors real data: provide a DenseMatrix \
                 or a seeded generator source, not MatrixSource::Shape"
                    .into(),
            ))
        }
    };
    Ok(match kernels {
        Some(k) => spec.with_kernels(k),
        None => spec,
    })
}

impl Solver {
    /// Spawn a long-running [`FactorService`] from this builder's knobs
    /// with default admission control ([`ServiceConfig::default`]).
    /// See [`Solver::serve_with`].
    pub fn serve(&self) -> Result<ReportService, Error> {
        self.serve_with(ServiceConfig::default())
    }

    /// Spawn a long-running [`FactorService`]: one persistent worker
    /// pool serving factorization jobs until drained.
    ///
    /// The builder's knobs validate once, through the same
    /// [`Solver::plan`] path a solo run uses, and then govern every job
    /// — including `.verify()`, which overrides `svc.verify`. The
    /// builder's own matrix source supplies only its shape for
    /// validation; jobs bring their own data as [`JobSpec`]s.
    ///
    /// Restrictions mirror the threaded backend's: CALU and Cholesky
    /// only (every job carries its own [`KernelSet`],
    /// so one service can mix the two), no work-stealing baseline, no
    /// explicit BLAS-3 grouping. Inside the pool each job's dynamic
    /// section uses the paper's shared global queue (reported as
    /// [`QueueDiscipline::Global`]); the factors are bitwise-independent
    /// of that choice.
    pub fn serve_with(&self, mut svc: ServiceConfig) -> Result<ReportService, Error> {
        let plan = self.plan()?;
        if !matches!(plan.algorithm, Algorithm::Calu | Algorithm::Cholesky) {
            return Err(Error::Unsupported {
                backend: "serve".into(),
                what: format!(
                    "the factorization service runs CALU and Cholesky jobs on \
                     its persistent pool; {} has no pooled executor — use \
                     Solver::run",
                    plan.algorithm
                ),
            });
        }
        if matches!(plan.scheduler, SchedulerKind::WorkStealing { .. }) {
            return Err(Error::Unsupported {
                backend: "serve".into(),
                what: "the service pool implements the paper's static/dynamic \
                       queues, not the Cilk-deque baseline; use a Dynamic or \
                       Hybrid scheduler"
                    .into(),
            });
        }
        if plan.grouping_requested() && plan.group() > 1 {
            return Err(Error::Unsupported {
                backend: "serve".into(),
                what: "the real executor does not implement grouped BLAS-3 \
                       updates; grouping is a simulator knob — drop .grouping()"
                    .into(),
            });
        }
        svc.verify = plan.verify;
        let cfg = plan.calu_config();
        let scheduler = plan.scheduler;
        let record_trace = plan.record_trace;
        let make_cfg = cfg.clone();
        // adaptive solvers keep learning while they serve: every
        // completed job's pool outcome is distilled into an Observation
        // and fed to the shared controller, so a later
        // Solver::reconfigure (same builder) re-plans under the adapted
        // split — a service on a degraded machine converges across jobs
        let feedback = self.adaptive_controller();
        let make = move |_info: &JobInfo, out: PoolOutcome| -> Report {
            // the pool that ran the job reports one ThreadStats per
            // worker; a live reconfigure may have changed the width
            // since this closure captured the original config, so the
            // outcome — not the captured knobs — is authoritative
            let schedule =
                threaded_schedule_metrics(out.stats.len(), out.makespan, &out.timeline, &out.stats);
            // the job's own kernel set, not the builder's algorithm: one
            // service can serve LU and Cholesky jobs side by side
            let algorithm = match out.kernels {
                KernelSet::CaluLu => Algorithm::Calu,
                KernelSet::Cholesky => Algorithm::Cholesky,
            };
            if let Some(ctl) = &feedback {
                if let Some(ctl) = ctl.lock().unwrap().as_mut() {
                    ctl.observe(&out.observation());
                }
            }
            Report {
                backend: "serve".into(),
                algorithm,
                scheduler,
                queue_discipline: QueueDiscipline::Global,
                layout: make_cfg.layout,
                dims: out.dims,
                b: make_cfg.b,
                threads: out.stats.len(),
                tasks: out.timeline.spans().len(),
                makespan: out.makespan,
                nominal_flops: nominal_flops(algorithm, out.dims.0, out.dims.1),
                factorization: Some(out.factorization),
                residual: out.residual,
                growth_factor: out.growth_factor,
                schedule,
                timeline: record_trace.then_some(out.timeline),
                // service jobs run under their pool generation's fixed
                // split; the controller's evolving state is read through
                // Solver::adaptive_split and applied by reconfigure
                adaptation: None,
            }
        };
        FactorService::with_report(&cfg, svc, make).map_err(Error::from)
    }

    /// Stream a sweep through a fresh service: like [`Solver::batch`],
    /// but `sources` is any iterator, consumed lazily with a bounded
    /// in-flight window (`2 × threads`, at least 4) — at no point are
    /// all matrices resident at once, so a sweep can be far larger than
    /// memory. Results come back in input order in the returned
    /// [`BatchReport`]; the service is drained before returning.
    pub fn batch_iter<I>(&self, sources: I) -> Result<BatchReport, Error>
    where
        I: IntoIterator<Item = MatrixSource>,
    {
        let kernels = kernels_for(self.plan()?.algorithm);
        let service = self.serve()?;
        let report = pump(&service, sources, Some(kernels), false);
        service.drain();
        report
    }

    /// [`Solver::serve`] plus a TCP front door: spawn the service and
    /// bind a [`ServeListener`] on `addr` speaking the line protocol
    /// (see [`calu_serve::net`]). Bind `"127.0.0.1:0"` to let the OS
    /// pick a port ([`ServeListener::local_addr`] has the answer), then
    /// drive it with anything that writes lines — `nc` included.
    pub fn listen(
        &self,
        addr: impl std::net::ToSocketAddrs,
    ) -> Result<ServeListener<Report>, Error> {
        self.listen_with(addr, ServiceConfig::default(), NetConfig::default())
    }

    /// [`listen`](Self::listen) with explicit admission
    /// ([`ServiceConfig`]) and connection ([`NetConfig`]) knobs.
    pub fn listen_with(
        &self,
        addr: impl std::net::ToSocketAddrs,
        svc: ServiceConfig,
        net: NetConfig,
    ) -> Result<ServeListener<Report>, Error> {
        let service = std::sync::Arc::new(self.serve_with(svc)?);
        ServeListener::bind(service, addr, net)
            .map_err(|e| Error::Config(format!("cannot bind the service front door: {e}")))
    }

    /// Live-reconfigure a running service to *this* builder's knobs:
    /// validates them through [`Solver::plan`] exactly like
    /// [`Solver::serve`], then hands `service`'s queued jobs over to a
    /// fresh pool ([`FactorService::reconfigure`]) — ids, classes and
    /// deadlines intact, in-flight jobs finishing where they started.
    /// Returns the new pool generation.
    pub fn reconfigure(&self, service: &ReportService) -> Result<u64, Error> {
        let plan = self.plan()?;
        service
            .reconfigure(&plan.calu_config())
            .map_err(Error::from)
    }
}

/// Run a sweep on an *already-warm* service — [`Solver::batch`]
/// semantics without paying (or billing) a pool spawn: the returned
/// [`BatchReport`] has [`BatchReport::pool_reused`] set and
/// `pool_spawn_secs = 0`. Jobs are submitted under [`JobClass::Batch`]
/// with a bounded in-flight window; results return in input order. The
/// service stays up afterwards. Each source picks its own kernel set:
/// [`MatrixSource::SpdUniform`] runs tiled Cholesky, dense and uniform
/// sources run CALU — so one warm sweep can mix the two (to force
/// Cholesky on dense SPD data, submit a
/// [`JobSpec`] with [`JobSpec::with_kernels`] directly).
pub fn service_batch(
    service: &ReportService,
    sources: &[MatrixSource],
) -> Result<BatchReport, Error> {
    pump(service, sources.iter().cloned(), None, true)
}

/// Bounded exponential backoff with seeded jitter for `Busy` retries:
/// starts at 500 µs, doubles to a 16 ms cap, jitters each delay by
/// ±25% off a deterministic `calu-rand` stream (so two pumps racing
/// one service desynchronize, yet any single schedule replays bitwise
/// for a given seed), and resets to the base on a successful submit.
struct Backoff {
    rng: Rng,
    cur_micros: u64,
}

impl Backoff {
    const BASE_MICROS: u64 = 500;
    const CAP_MICROS: u64 = 16_000;

    fn new(seed: u64) -> Self {
        Backoff {
            rng: Rng::seed_from_u64(seed),
            cur_micros: Self::BASE_MICROS,
        }
    }

    /// The next delay in the schedule (advances the doubling).
    fn next_delay(&mut self) -> Duration {
        let jitter = 0.75 + 0.5 * self.rng.next_f64();
        let d = Duration::from_micros((self.cur_micros as f64 * jitter) as u64);
        self.cur_micros = (self.cur_micros * 2).min(Self::CAP_MICROS);
        d
    }

    /// An admission succeeded: the congestion signal is gone.
    fn reset(&mut self) {
        self.cur_micros = Self::BASE_MICROS;
    }
}

/// The shared submit/wait pump behind [`Solver::batch_iter`] and
/// [`service_batch`]: keep at most `2 × threads` jobs in flight,
/// collect results in submission order. `kernels` is `Some` when the
/// caller's solver fixes the algorithm, `None` to infer per source.
fn pump<I>(
    service: &ReportService,
    sources: I,
    kernels: Option<KernelSet>,
    warm: bool,
) -> Result<BatchReport, Error>
where
    I: IntoIterator<Item = MatrixSource>,
{
    let threads = service.threads();
    // what the loop-over-`run` fallback would pay per item; cached per
    // process and width, so warm sweeps don't re-measure
    let cold = cold_spawn_secs(threads);
    let window = (2 * threads).max(4);
    let t0 = Instant::now();
    let mut pending: VecDeque<JobHandle<Report>> = VecDeque::new();
    let mut items: Vec<Report> = Vec::new();
    let mut co_scheduled = 0usize;
    let mut backoff = Backoff::new(0xB0FF ^ threads as u64);
    for source in sources {
        let spec = spec_for(source, kernels)?;
        if service.co_schedules(spec.dims()) {
            co_scheduled += 1;
        }
        while pending.len() >= window {
            let done = pending.pop_front().expect("window > 0");
            items.push(done.wait().map_err(serve_err)?);
        }
        loop {
            // the clone is cheap for generator specs and rare for dense
            // ones (only a Busy admission forces a retry)
            match service.submit(spec.clone(), JobClass::Batch) {
                Ok(h) => {
                    pending.push_back(h);
                    backoff.reset();
                    break;
                }
                Err(ServeError::Busy {
                    retry_after_hint, ..
                }) => {
                    // admission full (other submitters share the warm
                    // service): retire our oldest job and retry; with
                    // nothing of ours in flight, back off exponentially
                    // (floored at the service's own congestion hint) —
                    // admission frees on *other* submitters' completions,
                    // and yield-spinning on that would burn a core
                    match pending.pop_front() {
                        Some(done) => items.push(done.wait().map_err(serve_err)?),
                        None => std::thread::sleep(backoff.next_delay().max(retry_after_hint)),
                    }
                }
                Err(e) => return Err(serve_err(e)),
            }
        }
    }
    for done in pending {
        items.push(done.wait().map_err(serve_err)?);
    }
    if items.is_empty() {
        return Err(Error::Config(
            "a batch needs at least one matrix source".into(),
        ));
    }
    Ok(BatchReport {
        backend: "serve".into(),
        threads,
        items,
        wall_secs: t0.elapsed().as_secs_f64(),
        pool_spawn_secs: if warm { 0.0 } else { service.spawn_secs() },
        cold_spawn_secs: cold,
        pool_reused: warm,
        co_scheduled,
    })
}

#[cfg(test)]
mod tests {
    use super::Backoff;

    /// The Busy-retry backoff is deterministic for a seed, doubles the
    /// base delay up to the cap with every delay inside the ±25% jitter
    /// band, and `reset()` restores the base schedule.
    #[test]
    fn backoff_schedule_is_seeded_bounded_and_resettable() {
        let take = |b: &mut Backoff, n: usize| -> Vec<u128> {
            (0..n).map(|_| b.next_delay().as_micros()).collect()
        };

        let mut a = Backoff::new(42);
        let first = take(&mut a, 8);
        let mut b = Backoff::new(42);
        assert_eq!(first, take(&mut b, 8), "same seed must replay bitwise");
        let mut c = Backoff::new(43);
        assert_ne!(first, take(&mut c, 8), "a different seed must diverge");

        // nominal schedule: 500 µs doubling to the 16 ms cap, then flat
        let nominal = [500u64, 1_000, 2_000, 4_000, 8_000, 16_000, 16_000, 16_000];
        for (d, nom) in first.iter().zip(nominal) {
            let (lo, hi) = ((nom * 3 / 4) as u128, (nom * 5 / 4) as u128);
            assert!(
                (lo..=hi).contains(d),
                "delay {d} µs outside ±25% of nominal {nom} µs"
            );
        }

        // a successful submit resets to the base of the band
        a.reset();
        let after = a.next_delay().as_micros();
        let (lo, hi) = (Backoff::BASE_MICROS * 3 / 4, Backoff::BASE_MICROS * 5 / 4);
        assert!(
            (lo as u128..=hi as u128).contains(&after),
            "post-reset delay {after} µs is not a base delay"
        );
    }
}
