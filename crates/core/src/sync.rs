//! Thin mutex wrapper with an infallible `lock()`.
//!
//! The executor held its queues in `parking_lot::Mutex`; in hermetic
//! builds the workspace is dependency-free, so this wraps
//! `std::sync::Mutex` with the same non-poisoning API: a panicking
//! worker already aborts the factorization via the scoped-thread join,
//! so lock poisoning carries no extra information here.

use std::sync::MutexGuard;

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }
}
