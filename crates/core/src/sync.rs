//! Thin mutex wrapper with an infallible `lock()`, plus the thread
//! affinity shim for topology-aware worker pinning.
//!
//! The executor held its queues in `parking_lot::Mutex`; in hermetic
//! builds the workspace is dependency-free, so this wraps
//! `std::sync::Mutex` with the same non-poisoning API: a panicking
//! worker already aborts the factorization via the scoped-thread join,
//! so lock poisoning carries no extra information here. The same
//! hermeticity rules out the `libc`/`core_affinity` crates, so
//! [`pin_current_thread`] declares the one C symbol it needs
//! (`sched_setaffinity`, provided by the libc Rust's std already links
//! on Linux) directly.

use std::sync::MutexGuard;

/// Pin the calling thread to one logical CPU. Best effort: returns
/// `true` iff the affinity call succeeded; on non-Linux targets (or
/// when the kernel rejects the mask, e.g. under a restrictive cgroup)
/// it returns `false` and the thread keeps its previous affinity —
/// callers treat pinning as an optimization, never a correctness
/// requirement.
#[cfg(target_os = "linux")]
pub fn pin_current_thread(cpu: usize) -> bool {
    // glibc/musl signature: sched_setaffinity(pid_t, size_t, const cpu_set_t*);
    // pid 0 = the calling thread. cpu_set_t is a 1024-bit mask.
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
    const WORDS: usize = 1024 / 64;
    let mut mask = [0u64; WORDS];
    let cpu = cpu % (WORDS * 64); // defensive: stay inside cpu_set_t
    mask[cpu / 64] |= 1u64 << (cpu % 64);
    // SAFETY: the mask outlives the call and cpusetsize matches its
    // length in bytes; sched_setaffinity reads, never writes, it.
    unsafe { sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
}

/// Non-Linux stub: affinity is not portable without a dependency, so
/// pinning silently degrades to "not pinned".
#[cfg(not(target_os = "linux"))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

/// A mutex whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn pinning_is_best_effort_and_survives_bad_cpus() {
        // on Linux pinning to cpu 0 normally succeeds; anywhere it may
        // legitimately fail (sandbox, cgroup) — it must never panic,
        // and computation on the thread continues either way
        let pinned = std::thread::spawn(|| {
            let ok = pin_current_thread(0);
            let _ = pin_current_thread(usize::MAX); // wraps, stays in-mask
            (ok, 6 * 7)
        })
        .join()
        .unwrap();
        assert_eq!(pinned.1, 42);
    }
}
