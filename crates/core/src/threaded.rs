//! The multithreaded tiled CALU executor — Algorithms 1 and 2 for real.
//!
//! Worker threads share:
//!
//! * per-thread **static queues** holding ready tasks whose output tiles
//!   they own under the 2D block-cyclic distribution, ordered by the
//!   static priority (P ≻ L ≻ U ≻ S, look-ahead on early panels);
//! * a **dynamic section** holding ready tasks of the last
//!   `N − Nstatic` panels, ordered by Algorithm 2's left-to-right DFS —
//!   either one shared queue ([`QueueDiscipline::Global`], the paper's
//!   implementation) or per-worker shards with randomized stealing
//!   ([`QueueDiscipline::Sharded`], which removes the single lock the
//!   global queue serializes every dequeue through).
//!
//! A worker always serves its own queue first ("each thread executes in
//! priority tasks from the static part"); when it has nothing it pulls
//! from the dynamic section instead of idling — the load-balancing
//! reservoir that removes Figure 1's idle pockets. Under the sharded
//! discipline a worker pops its own shard, and only when that is empty
//! sweeps the other shards in the seeded-random victim order of
//! [`calu_sched::steal_order`] — the same policy the simulator's
//! sharded hybrid runs. Under the lock-free discipline
//! ([`QueueDiscipline::LockFree`]) the shards are Chase-Lev deques
//! ([`calu_sched::Deque`]): the owner pushes each completion's newly
//! ready successors in descending DAG-priority order and pops LIFO
//! (most critical of the cache-hottest batch first), thieves steal FIFO
//! from the cold end, sweeping victims in the locality-tiered order of
//! [`calu_sched::StealTiers`] (SMT sibling → same socket → remote) over
//! the detected host topology. With [`CaluConfig::pin_workers`] set,
//! each worker is additionally pinned to the CPU that topology maps it
//! to, so "same socket" in the sweep means the same socket in silicon.
//! Dependence tracking is a single atomic counter per task; tile data
//! flows through [`SharedTiles`] under the DAG's exclusive-writer
//! discipline.
//!
//! Each worker owns a [`GemmScratch`] packing arena sized from the
//! configured tile dimension and reused across tasks, so the packed
//! BLAS-3 kernels (trailing updates and triangular solves) run without
//! per-task heap allocation.
//!
//! ## The kernel-set layer
//!
//! Everything above — the static/dynamic split, the queues, the steal
//! tiers, the scratch arenas, the dependence counters — is
//! **algorithm-blind**: it schedules opaque task IDs. What a task
//! *does* is decided by the [`KernelSet`] the item derives from its
//! graph's [`DagVariant`]: the CALU set runs tournament-pivoted panels,
//! `A·U⁻¹` / `L⁻¹·A` solves and GEMM updates, while the tiled-Cholesky
//! set ([`TaskGraph::build_cholesky`]) runs `dpotrf` panels,
//! `A·L⁻ᵀ` solves and SYRK / `A·Bᵀ` GEMM updates over the lower
//! triangle — no pivoting at all. Because the graph carries both the
//! dependency shape and the kernel identity, the solo, batch and
//! service-pool executors all pick the right kernels by simply building
//! the right graph; [`cholesky_factor_report`] is `calu_factor_report`
//! with a different graph constructor.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use calu_dag::{DagVariant, PaperKind, TaskGraph, TaskId, TaskKind};
use calu_kernels::{gemm, lu_nopiv_unblocked, potrf, syrk, trsm, GemmScratch};
use calu_matrix::{
    BclMatrix, CmTiles, DenseMatrix, Layout, ProcessGrid, RowPerm, TileStorage, TlbMatrix,
};
use calu_rand::Rng;
use calu_sched::{
    nstatic_for, priority, steal_order, CpuTopology, Deque, OwnerMap, QueueDiscipline, QueueSource,
    Steal, StealOrder, StealTier, StealTiers,
};
use calu_trace::{SpanKind, TaskSpan, Timeline};

use crate::sync::{pin_current_thread, Mutex};

/// Per-worker queue accounting from one threaded run: where this
/// worker's tasks came from, plus steal/contention counters for the
/// sharded discipline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadStats {
    /// Tasks popped from the worker's own static queue.
    pub local_pops: u64,
    /// Tasks popped from the dynamic section without stealing (the
    /// shared queue, or the worker's own shard).
    pub global_pops: u64,
    /// Tasks stolen from another worker's shard or deque (stealing
    /// disciplines only; always zero under [`QueueDiscipline::Global`]).
    pub steal_pops: u64,
    /// The subset of `steal_pops` whose victim sat on a *different
    /// socket* (lock-free discipline's tiered sweep only; the flat
    /// sharded sweep does not classify victims, so it stays zero there).
    pub remote_steal_pops: u64,
    /// Steal *sweeps* that probed every victim and found all of them
    /// empty — the executor's queue-contention signal: a high ratio of
    /// failed sweeps to steals means workers are sweeping drained
    /// shards instead of computing. Counted per whole sweep, not per
    /// probed victim, so the reading is comparable between the flat
    /// (p − 1 probes) and locality-tiered victim orders.
    pub failed_steals: u64,
    /// Static-section tasks this worker *owned* under the block-cyclic
    /// distribution that were republished into the dynamic queues
    /// because the worker was lost or flagged persistently slow
    /// (fault injection's static-task rescue — always zero without a
    /// [`crate::fault::FaultPlan`]). Rescued tasks execute on whichever
    /// survivor pops them; the exclusive-writer DAG discipline keeps
    /// the factors bitwise-identical to the no-fault run.
    pub rescued: u64,
    /// This worker died mid-run (an injected [`crate::fault::FaultKind::Lose`]):
    /// it rescued its static backlog and exited; the survivors finished
    /// the factorization.
    pub lost: bool,
}

use crate::config::CaluConfig;
use crate::error::CaluError;
use crate::factorization::Factorization;
use crate::fault::{FaultAction, FaultClock, FaultKind, FaultPlan};
use crate::pivot::swaps_for_selection;
use crate::shared::SharedTiles;
use crate::tslu::{Candidate, TreePlan};

type ReadyQueue = Mutex<BinaryHeap<Reverse<(u64, u32)>>>;

/// The dynamic section's queues under each [`QueueDiscipline`].
pub(crate) enum DynQueues {
    /// One shared lock-protected queue (the paper's Algorithm 2).
    Global(ReadyQueue),
    /// One shard per worker; workers push/pop their own and steal from
    /// the rest when empty.
    Sharded(Vec<ReadyQueue>),
    /// One Chase-Lev deque per worker, each sized for the whole graph
    /// so a push can never fail: owners push/pop the bottom, thieves
    /// steal the top in the locality-tiered sweep order.
    LockFree(Vec<Deque>),
}

/// One steal sweep over `victims`, probing each with `probe` until one
/// yields a task. A *wholly empty* sweep counts as exactly one
/// contention failure — not one per probed victim — so
/// `ContentionStats::failure_rate` reads the same whether the sweep
/// visits p − 1 flat victims or the tiered order's fewer-per-tier ones.
pub(crate) fn steal_sweep<V, T>(
    victims: impl Iterator<Item = V>,
    mut probe: impl FnMut(&V) -> Option<T>,
    failed_sweeps: &mut u64,
) -> Option<(T, V)> {
    for v in victims {
        if let Some(t) = probe(&v) {
            return Some((t, v));
        }
    }
    *failed_sweeps += 1;
    None
}

struct PanelState {
    plan: TreePlan,
    slots: Vec<Mutex<Option<Candidate>>>,
    perm: OnceLock<RowPerm>,
}

/// The algorithm-indexed kernel set: which tile-task bodies an item's
/// tasks run. Everything the scheduler does — queues, priorities, steal
/// tiers, dependence counters — is shared across kernel sets; only the
/// per-task math differs. Internally it is derived from the graph's
/// [`DagVariant`], so the dependency shape and the kernels can never
/// disagree; batched ([`crate::batch`]) and pooled ([`crate::pool`])
/// submissions name the kernel set per item and the executor builds the
/// matching graph via the crate-internal `KernelSet::build_graph`, the
/// single validated constructor (Cholesky rejects non-square there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelSet {
    /// CALU: tournament-pivoted panel (leaf/combine/finish), `A·U⁻¹`
    /// and `P·L⁻¹·A` triangular solves, `C − A·B` trailing updates.
    CaluLu,
    /// Tiled Cholesky: `dpotrf` panel, `A·L⁻ᵀ` triangular solve,
    /// lower-triangle SYRK (diagonal tiles) / `C − A·Bᵀ` GEMM
    /// (off-diagonal tiles) trailing updates. No pivoting: the item's
    /// permutation is the identity and the tournament-panel machinery
    /// is never built.
    Cholesky,
}

impl KernelSet {
    pub(crate) fn for_graph(g: &TaskGraph) -> Self {
        match g.variant() {
            DagVariant::TileCholesky => KernelSet::Cholesky,
            _ => KernelSet::CaluLu,
        }
    }

    /// Build the task graph whose [`DagVariant`] selects this kernel
    /// set, for an `m×n` matrix tiled at `b`. Cholesky graphs require a
    /// square matrix (and ignore `leaf_stride` — there is no tournament
    /// reduction tree to shape).
    pub(crate) fn build_graph(
        self,
        m: usize,
        n: usize,
        b: usize,
        leaf_stride: usize,
    ) -> Result<TaskGraph, CaluError> {
        match self {
            KernelSet::CaluLu => Ok(TaskGraph::build_calu(m, n, b, leaf_stride)),
            KernelSet::Cholesky => {
                if m != n {
                    return Err(CaluError::InvalidConfig(format!(
                        "tiled Cholesky factors a square SPD matrix, got {m}×{n}"
                    )));
                }
                Ok(TaskGraph::build_cholesky(n, b))
            }
        }
    }
}

const NOT_SINGULAR: usize = usize::MAX;

/// Per-item execution state: everything one factorization's task bodies
/// touch — tiled storage, dependence counters, tournament panels,
/// priority keys — with *no queues attached*. The solo executor
/// ([`factor_tiled`]) wraps exactly one `ItemState` in its queue set;
/// the batch executor (`crate::batch`) drives many of them through one
/// persistent worker pool and one batch-level queue set; the service
/// pool (`crate::pool`) keeps them alive across requests, which is why
/// the graph is held by [`Arc`] rather than borrowed — service workers
/// are `'static` threads with no scope to borrow from.
pub(crate) struct ItemState<S: TileStorage> {
    pub(crate) g: Arc<TaskGraph>,
    tiles: SharedTiles<S>,
    deps: Vec<AtomicU32>,
    pub(crate) owners: OwnerMap,
    pub(crate) is_static: Vec<bool>,
    pub(crate) static_keys: Vec<u64>,
    pub(crate) dynamic_keys: Vec<u64>,
    pub(crate) done: AtomicUsize,
    singular: AtomicUsize,
    panels: Vec<PanelState>,
    kernels: KernelSet,
    b: usize,
}

impl<S: TileStorage + Send> ItemState<S> {
    /// Build the execution state for one factorization: `nstatic` is the
    /// number of leading tile columns scheduled statically (the `dratio`
    /// split already resolved against this item's panel count).
    pub(crate) fn new(storage: S, g: Arc<TaskGraph>, grid: ProcessGrid, nstatic: usize) -> Self {
        let kinds: Vec<TaskKind> = g.ids().map(|t| g.kind(t)).collect();
        let mt = g.tile_rows();
        let kernels = KernelSet::for_graph(&g);
        Self {
            tiles: SharedTiles::new(storage),
            deps: g.ids().map(|t| AtomicU32::new(g.dep_count(t))).collect(),
            owners: OwnerMap::new(&g, grid),
            is_static: kinds.iter().map(|k| k.writes_col() < nstatic).collect(),
            static_keys: kinds.iter().map(priority::static_key).collect(),
            dynamic_keys: kinds.iter().map(priority::dynamic_key).collect(),
            done: AtomicUsize::new(0),
            singular: AtomicUsize::new(NOT_SINGULAR),
            // tournament-panel state exists only for pivoted kernel sets;
            // Cholesky panels are a single in-tile dpotrf with no
            // candidates to merge and no permutation to record
            panels: match kernels {
                KernelSet::Cholesky => Vec::new(),
                KernelSet::CaluLu => (0..g.num_panels())
                    .map(|k| {
                        let nleaves = g.leaf_stride().min(mt - k);
                        let plan = TreePlan::new(nleaves);
                        PanelState {
                            slots: (0..plan.slots).map(|_| Mutex::new(None)).collect(),
                            plan,
                            perm: OnceLock::new(),
                        }
                    })
                    .collect(),
            },
            kernels,
            b: g.block(),
            g,
        }
    }

    /// Mark `t` done and collect its newly enabled successors into
    /// `ready_buf` (cleared first). Queueing the successors is the
    /// caller's business — the solo executor pushes them into its own
    /// queue set, the batch executor into the batch-level one.
    pub(crate) fn complete_into(&self, t: TaskId, ready_buf: &mut Vec<TaskId>) {
        ready_buf.clear();
        for &s in self.g.successors(t) {
            if self.deps[s.idx()].fetch_sub(1, Ordering::AcqRel) == 1 {
                ready_buf.push(s);
            }
        }
        self.done.fetch_add(1, Ordering::AcqRel);
    }

    /// Consume the state once every task ran: the tiled storage, the
    /// combined permutation (in panel order) and the singular flag.
    pub(crate) fn finish(self) -> (S, RowPerm, Option<usize>) {
        let (perm, singular) = self.finish_by_ref();
        (self.tiles.into_inner(), perm, singular)
    }

    /// [`finish`](Self::finish) without consuming the state: the
    /// permutation and singular flag by value, the storage via
    /// [`storage_ref`](Self::storage_ref). The service pool needs this
    /// split because its items live in `Arc`s shared with in-flight
    /// workers — the finishing worker extracts results by reference and
    /// the `Arc` drops whenever the last clone does.
    pub(crate) fn finish_by_ref(&self) -> (RowPerm, Option<usize>) {
        let mut perm = RowPerm::identity();
        // unpivoted kernel sets (Cholesky) build no panel state: the
        // permutation is the identity
        for k in 0..self.panels.len() {
            perm.extend(self.panels[k].perm.get().expect("all panels finished"));
        }
        let singular = match self.singular.load(Ordering::Acquire) {
            NOT_SINGULAR => None,
            c => Some(c),
        };
        (perm, singular)
    }

    /// Shared view of the tiled storage.
    ///
    /// # Safety
    /// Caller must ensure every task has completed (`done == g.len()`),
    /// so no worker holds a mutable tile pointer.
    pub(crate) unsafe fn storage_ref(&self) -> &S {
        self.tiles.inner()
    }
}

/// Shared fault-injection state of one run — allocated only when the
/// config carries an armed [`FaultPlan`], so the no-fault hot path
/// branches on one `Option` and touches nothing else.
pub(crate) struct FaultShared {
    /// Worker `w` no longer executes its static backlog (dead, or
    /// flagged persistently slow): static tasks owned by `w` are
    /// rerouted to the dynamic section instead. Read and written under
    /// the `local[w]` mutex, so a reroute can never race a drain and
    /// strand a task in a queue nobody serves.
    pub(crate) degraded: Vec<AtomicBool>,
    /// Static tasks owned by worker `w` republished into the dynamic
    /// queues (folded into [`ThreadStats::rescued`] after the join).
    pub(crate) rescued: Vec<AtomicU64>,
    /// A worker hit an unrecoverable fault (injected kernel panic):
    /// everyone stops, the run fails with `fail`'s error.
    pub(crate) abort: AtomicBool,
    /// First unrecoverable error, kept by the first worker to fail.
    pub(crate) fail: Mutex<Option<CaluError>>,
}

impl FaultShared {
    pub(crate) fn new(threads: usize) -> Self {
        Self {
            degraded: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            rescued: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            abort: AtomicBool::new(false),
            fail: Mutex::new(None),
        }
    }

    /// Record the run's first unrecoverable error and tell every worker
    /// to stop.
    pub(crate) fn fail_with(&self, e: CaluError) {
        let mut slot = self.fail.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
        drop(slot);
        self.abort.store(true, Ordering::Release);
    }
}

struct Shared<S: TileStorage> {
    item: ItemState<S>,
    local: Vec<ReadyQueue>,
    dynamic: DynQueues,
    /// Per-worker locality-tiered victim orders (lock-free discipline
    /// only; empty otherwise).
    tiers: Vec<StealTiers>,
    /// Direction the tiered sweep probes its tiers in — the adaptive
    /// controller's steal-order knob (nearest-first by default).
    steal_dir: StealOrder,
    /// Dynamic-section tasks currently queued (sharded discipline only:
    /// incremented before push, decremented after pop), so idle workers
    /// can tell "nothing to steal anywhere" from "a victim shard I
    /// probed was empty" — only the latter is contention. Stays zero
    /// under the global discipline, which never reads it.
    dyn_queued: AtomicUsize,
    /// Fault-injection state; `None` (and never consulted) without an
    /// armed plan.
    fault: Option<FaultShared>,
}

impl<S: TileStorage + Send> Shared<S> {
    /// Queue a ready task. `home` is the worker that enabled it (or a
    /// round-robin index for initially ready tasks): under the sharded
    /// discipline, dynamic tasks land on the enabler's shard so they
    /// tend to run where their inputs are warm.
    ///
    /// With fault injection armed, a static task whose owner is
    /// *degraded* (dead, or flagged persistently slow) is rescued into
    /// the dynamic section instead — checked under the owner's local
    /// lock, the same lock a dying owner holds while draining, so no
    /// task can slip into a queue nobody will ever serve.
    fn push_ready(&self, t: TaskId, home: usize) {
        let item = &self.item;
        if item.is_static[t.idx()] {
            let owner = item.owners.owner(t);
            let mut q = self.local[owner].lock();
            if let Some(f) = &self.fault {
                if f.degraded[owner].load(Ordering::Acquire) {
                    drop(q);
                    f.rescued[owner].fetch_add(1, Ordering::Relaxed);
                    self.push_dynamic(t, home);
                    return;
                }
            }
            q.push(Reverse((item.static_keys[t.idx()], t.0)));
        } else {
            self.push_dynamic(t, home);
        }
    }

    /// Queue a task into the dynamic section (the non-static arm of
    /// [`push_ready`](Self::push_ready), also the landing strip for
    /// rescued static tasks).
    fn push_dynamic(&self, t: TaskId, home: usize) {
        let item = &self.item;
        {
            match &self.dynamic {
                DynQueues::Global(q) => q.lock().push(Reverse((item.dynamic_keys[t.idx()], t.0))),
                DynQueues::Sharded(shards) => {
                    // counter first, push second: the count
                    // over-approximates, so a successful pop's decrement
                    // can never underflow. Stealing disciplines only —
                    // the global discipline never reads it, so the
                    // paper-verbatim path pays no extra shared-line RMWs.
                    self.dyn_queued.fetch_add(1, Ordering::AcqRel);
                    shards[home % shards.len()]
                        .lock()
                        .push(Reverse((item.dynamic_keys[t.idx()], t.0)));
                }
                DynQueues::LockFree(deques) => {
                    self.dyn_queued.fetch_add(1, Ordering::AcqRel);
                    // only the owner pushes its own deque at runtime
                    // (`complete` passes home = the completing worker);
                    // the pre-spawn initial scatter is single-threaded
                    deques[home % deques.len()]
                        .push(t.0 as u64)
                        .expect("deque sized for the whole graph");
                }
            }
        }
    }

    /// Algorithm 1's pop order: own static queue first, then the dynamic
    /// section (Algorithm 2's DFS order is baked into its keys). Under
    /// the stealing disciplines the dynamic section is the worker's own
    /// shard/deque first, then a steal sweep (seeded-random victims for
    /// the sharded discipline, the locality-tiered order for the
    /// lock-free one) — attempted, and counted into
    /// `stats.failed_steals` when wholly empty, only while dynamic tasks
    /// are actually queued somewhere, so idle spins on a drained DAG
    /// don't read as contention.
    fn pop(
        &self,
        me: usize,
        rng: &mut Option<Rng>,
        stats: &mut ThreadStats,
    ) -> Option<(TaskId, QueueSource)> {
        if let Some(Reverse((_, t))) = self.local[me].lock().pop() {
            return Some((TaskId(t), QueueSource::Local));
        }
        match &self.dynamic {
            DynQueues::Global(q) => q
                .lock()
                .pop()
                .map(|Reverse((_, t))| (TaskId(t), QueueSource::Global)),
            DynQueues::Sharded(shards) => {
                if let Some(Reverse((_, t))) = shards[me].lock().pop() {
                    self.dyn_queued.fetch_sub(1, Ordering::AcqRel);
                    return Some((TaskId(t), QueueSource::Shard));
                }
                if self.dyn_queued.load(Ordering::Acquire) == 0 {
                    return None; // nothing queued anywhere: idle, not contention
                }
                let rng = rng.as_mut().expect("stealing workers carry an RNG");
                let stolen = steal_sweep(
                    steal_order(rng, me, shards.len()),
                    |&victim| shards[victim].lock().pop().map(|Reverse((_, t))| TaskId(t)),
                    &mut stats.failed_steals,
                );
                stolen.map(|(t, _)| {
                    self.dyn_queued.fetch_sub(1, Ordering::AcqRel);
                    (t, QueueSource::Stolen)
                })
            }
            DynQueues::LockFree(deques) => {
                if let Some(v) = deques[me].pop() {
                    self.dyn_queued.fetch_sub(1, Ordering::AcqRel);
                    return Some((TaskId(v as u32), QueueSource::Shard));
                }
                if self.dyn_queued.load(Ordering::Acquire) == 0 {
                    return None;
                }
                let rng = rng.as_mut().expect("stealing workers carry an RNG");
                let stolen = steal_sweep(
                    self.tiers[me].sweep_ordered(self.steal_dir, rng),
                    |&(victim, _)| loop {
                        match deques[victim].steal() {
                            Steal::Taken(v) => break Some(TaskId(v as u32)),
                            Steal::Empty => break None,
                            // a lost race means someone else made
                            // progress; re-probe the same victim
                            Steal::Retry => std::hint::spin_loop(),
                        }
                    },
                    &mut stats.failed_steals,
                );
                stolen.map(|(t, (_, tier))| {
                    self.dyn_queued.fetch_sub(1, Ordering::AcqRel);
                    let source = match tier {
                        StealTier::Remote => QueueSource::StolenRemote,
                        _ => QueueSource::Stolen,
                    };
                    (t, source)
                })
            }
        }
    }

    /// Mark `t` done and queue its newly enabled successors.
    /// `ready_buf` is the worker's reusable scratch: under the lock-free
    /// discipline the batch is pushed in *descending* key order (least
    /// critical first), so the owner's LIFO pop serves the batch
    /// most-critical first while a FIFO thief takes its *least*
    /// critical leftover — the victim keeps its critical-path work.
    fn complete(&self, t: TaskId, me: usize, ready_buf: &mut Vec<TaskId>) {
        self.item.complete_into(t, ready_buf);
        if matches!(self.dynamic, DynQueues::LockFree(_)) && ready_buf.len() > 1 {
            ready_buf.sort_unstable_by_key(|s| Reverse(self.item.dynamic_keys[s.idx()]));
        }
        for &s in ready_buf.iter() {
            self.push_ready(s, me);
        }
    }
}

impl<S: TileStorage + Send> ItemState<S> {
    fn flag_singular(&self, col: usize) {
        self.singular.fetch_min(col, Ordering::AcqRel);
    }

    // ----- task bodies -------------------------------------------------

    /// Width of panel `k` (ragged last panel allowed).
    fn panel_width(&self, k: usize) -> usize {
        self.g.tile_col_count(k)
    }

    /// Gather the leaf chunk (every `leaf_stride`-th tile row from `i0`)
    /// of panel `k` and elect its pivot candidates.
    fn run_leaf(&self, k: usize, i0: usize) {
        let w = self.panel_width(k);
        let rows: Vec<usize> = self.g.leaf_rows(k, i0).collect();
        let total: usize = rows.iter().map(|&ti| self.g.tile_row_count(ti)).sum();
        let mut block = DenseMatrix::zeros(total, w);
        let mut ids = Vec::with_capacity(total);
        let mut r = 0;
        for &ti in &rows {
            let rc = self.g.tile_row_count(ti);
            // SAFETY: leaves read their own chunk's tiles; prior writers
            // (previous panel's updates) are ordered before us by deps.
            unsafe {
                let tile = self.tiles.tile_ptr(ti, k);
                for i in 0..rc {
                    for j in 0..w {
                        block.set(r + i, j, tile.get(i, j));
                    }
                }
            }
            for i in 0..rc {
                ids.push(ti * self.b + i);
            }
            r += rc;
        }
        let cand = Candidate::elect(&block, &ids, w);
        let slot = i0 - k;
        *self.panels[k].slots[slot].lock() = Some(cand);
    }

    fn run_combine(&self, k: usize, level: u32, idx: u32) {
        let w = self.panel_width(k);
        let st = self.panels[k].plan.step_for(level, idx);
        let a = self.panels[k].slots[st.left]
            .lock()
            .take()
            .expect("left candidate ready");
        let b = self.panels[k].slots[st.right]
            .lock()
            .take()
            .expect("right candidate ready");
        *self.panels[k].slots[st.out].lock() = Some(Candidate::combine(&a, &b, w));
    }

    /// Swap two global rows within tile column `tj`.
    ///
    /// # Safety
    /// Caller must have exclusive access to the affected tiles.
    unsafe fn swap_rows_in_tile_col(&self, r1: usize, r2: usize, tj: usize) {
        if r1 == r2 {
            return;
        }
        let w = self.g.tile_col_count(tj);
        let (t1, o1) = (r1 / self.b, r1 % self.b);
        let (t2, o2) = (r2 / self.b, r2 % self.b);
        let p1 = self.tiles.tile_ptr(t1, tj);
        let p2 = self.tiles.tile_ptr(t2, tj);
        for j in 0..w {
            let a = p1.get(o1, j);
            let b = p2.get(o2, j);
            p1.set(o1, j, b);
            p2.set(o2, j, a);
        }
    }

    fn run_finish(&self, k: usize) {
        let w = self.panel_width(k);
        let winner = self.panels[k].slots[self.panels[k].plan.root]
            .lock()
            .take()
            .expect("tournament winner ready");
        let selected = &winner.ids[..w.min(winner.ids.len())];
        let perm = swaps_for_selection(k * self.b, selected);
        // apply Π_k to the panel column itself
        unsafe {
            for (t, &p) in perm.pivots().iter().enumerate() {
                self.swap_rows_in_tile_col(k * self.b + t, p, k);
            }
            // factor the diagonal tile without pivoting
            let d = self.tiles.tile_ptr(k, k);
            let span = (d.cols - 1) * d.ld + d.rows;
            let slice = std::slice::from_raw_parts_mut(d.ptr, span);
            if let Some(c) = lu_nopiv_unblocked(d.rows, d.cols, slice, d.ld) {
                self.flag_singular(k * self.b + c);
            }
        }
        self.panels[k]
            .perm
            .set(perm)
            .expect("panel finish runs once");
    }

    fn run_compute_l(&self, k: usize, i: usize, scratch: &mut GemmScratch) {
        // SAFETY: reads diag tile (written by finish, ordered), writes
        // tile (i, k) exclusively.
        unsafe {
            let d = self.tiles.tile_ptr(k, k);
            let t = self.tiles.tile_ptr(i, k);
            trsm::dtrsm_right_upper_raw_packed(t.rows, t.cols, d.ptr, d.ld, t.ptr, t.ld, scratch);
        }
    }

    fn run_compute_u(&self, k: usize, j: usize, scratch: &mut GemmScratch) {
        let perm = self.panels[k].perm.get().expect("finish ordered before U");
        // SAFETY: exclusive access to column j's tiles rows k.. per DAG.
        unsafe {
            for (t, &p) in perm.pivots().iter().enumerate() {
                self.swap_rows_in_tile_col(k * self.b + t, p, j);
            }
            let d = self.tiles.tile_ptr(k, k);
            let t = self.tiles.tile_ptr(k, j);
            trsm::dtrsm_left_lower_unit_raw_packed(
                t.rows, t.cols, d.ptr, d.ld, t.ptr, t.ld, scratch,
            );
        }
    }

    fn run_update(&self, k: usize, i: usize, j: usize, scratch: &mut GemmScratch) {
        // SAFETY: reads L(i,k), U(k,j) (ordered by deps), writes (i,j)
        // exclusively.
        unsafe {
            let l = self.tiles.tile_ptr(i, k);
            let u = self.tiles.tile_ptr(k, j);
            let c = self.tiles.tile_ptr(i, j);
            gemm::dgemm_raw_packed(
                c.rows, c.cols, l.cols, -1.0, l.ptr, l.ld, u.ptr, u.ld, 1.0, c.ptr, c.ld, scratch,
            );
        }
    }

    // ----- Cholesky task bodies ---------------------------------------

    /// Cholesky panel: `dpotrf` on the diagonal tile `(k,k)` in place
    /// (lower triangle only). A non-positive pivot — the input is not
    /// numerically SPD — flags the item singular at its global column.
    fn run_potrf(&self, k: usize) {
        // SAFETY: exclusive write access to tile (k,k) per the DAG; the
        // slice spans only this tile's own storage, same as run_finish.
        unsafe {
            let d = self.tiles.tile_ptr(k, k);
            let span = (d.cols - 1) * d.ld + d.rows;
            let slice = std::slice::from_raw_parts_mut(d.ptr, span);
            if let Some(c) = potrf::dpotrf_blocked(d.rows, slice, d.ld, trsm::TRSM_NB) {
                self.flag_singular(k * self.b + c);
            }
        }
    }

    /// Cholesky triangular solve: `L_ik ← A_ik · L_kk⁻ᵀ`.
    fn run_cholesky_l(&self, k: usize, i: usize, scratch: &mut GemmScratch) {
        // SAFETY: reads diag tile (written by the panel, ordered by
        // deps), writes tile (i, k) exclusively.
        unsafe {
            let d = self.tiles.tile_ptr(k, k);
            let t = self.tiles.tile_ptr(i, k);
            trsm::dtrsm_right_lower_trans_raw_packed(
                t.rows, t.cols, d.ptr, d.ld, t.ptr, t.ld, scratch,
            );
        }
    }

    /// Cholesky trailing update: `A_ij ← A_ij − L_ik·L_jkᵀ` (`j ≤ i`,
    /// lower triangle only). Diagonal tiles (`i == j`) use the
    /// lower-triangle SYRK so their strictly-upper part is never touched;
    /// off-diagonal tiles are a full `A·Bᵀ` GEMM.
    fn run_cholesky_update(&self, k: usize, i: usize, j: usize, scratch: &mut GemmScratch) {
        // SAFETY: reads L(i,k), L(j,k) (ordered by deps), writes (i,j)
        // exclusively.
        unsafe {
            let li = self.tiles.tile_ptr(i, k);
            let c = self.tiles.tile_ptr(i, j);
            if i == j {
                syrk::dsyrk_ln_raw_packed(
                    c.rows, li.cols, -1.0, li.ptr, li.ld, 1.0, c.ptr, c.ld, scratch,
                );
            } else {
                let lj = self.tiles.tile_ptr(j, k);
                gemm::dgemm_nt_raw_packed(
                    c.rows, c.cols, li.cols, -1.0, li.ptr, li.ld, lj.ptr, lj.ld, 1.0, c.ptr, c.ld,
                    scratch,
                );
            }
        }
    }

    /// Run one task's kernel through the item's [`KernelSet`]. `scratch`
    /// is the calling worker's packing arena — pre-sized for
    /// tile-dimension GEMMs, so the BLAS-3 tasks (L, U, S) never touch
    /// the allocator. The task *kinds* are shared across kernel sets
    /// (they encode the dependency shape); the bodies are not.
    pub(crate) fn execute(&self, t: TaskId, scratch: &mut GemmScratch) {
        match (self.kernels, self.g.kind(t)) {
            (KernelSet::CaluLu, TaskKind::PanelLeaf { k, i }) => {
                self.run_leaf(k as usize, i as usize)
            }
            (KernelSet::CaluLu, TaskKind::PanelCombine { k, level, idx }) => {
                self.run_combine(k as usize, level, idx)
            }
            (KernelSet::CaluLu, TaskKind::PanelFinish { k }) => self.run_finish(k as usize),
            (KernelSet::CaluLu, TaskKind::ComputeL { k, i }) => {
                self.run_compute_l(k as usize, i as usize, scratch)
            }
            (KernelSet::CaluLu, TaskKind::ComputeU { k, j }) => {
                self.run_compute_u(k as usize, j as usize, scratch)
            }
            (KernelSet::CaluLu, TaskKind::Update { k, i, j }) => {
                self.run_update(k as usize, i as usize, j as usize, scratch)
            }
            (KernelSet::Cholesky, TaskKind::PanelFinish { k }) => self.run_potrf(k as usize),
            (KernelSet::Cholesky, TaskKind::ComputeL { k, i }) => {
                self.run_cholesky_l(k as usize, i as usize, scratch)
            }
            (KernelSet::Cholesky, TaskKind::Update { k, i, j }) => {
                self.run_cholesky_update(k as usize, i as usize, j as usize, scratch)
            }
            (KernelSet::Cholesky, kind) => {
                unreachable!("tiled Cholesky graphs never emit {kind:?}")
            }
        }
    }
}

/// The host's CPU topology, detected once per process: sysfs parse on
/// Linux, flat fallback elsewhere (see [`CpuTopology::detect`]).
pub(crate) fn host_topology() -> &'static CpuTopology {
    static TOPO: OnceLock<CpuTopology> = OnceLock::new();
    TOPO.get_or_init(CpuTopology::detect)
}

/// What the tiled executor hands back: the factored storage, the
/// combined row permutation, the first singular column (if any), the
/// execution timeline, and per-thread queue/rescue accounting.
type Factored<S> = (S, RowPerm, Option<usize>, Timeline, Vec<ThreadStats>);

/// Factor a tiled storage in place with `threads` workers; returns the
/// combined permutation, the singular flag and the execution trace.
/// `fault` is the run's injection plan ([`FaultPlan::off`] for every
/// production caller): an armed plan can make the run fail with a typed
/// error (injected kernel panic), which is the only `Err` this returns.
#[allow(clippy::too_many_arguments)]
fn factor_tiled<S: TileStorage + Send>(
    storage: S,
    g: &Arc<TaskGraph>,
    grid: ProcessGrid,
    dratio: f64,
    queue: QueueDiscipline,
    steal_dir: StealOrder,
    pin: bool,
    fault: &FaultPlan,
) -> Result<Factored<S>, CaluError> {
    let threads = grid.size();
    let nstatic = nstatic_for(dratio, g.num_panels());
    let topo = host_topology();

    let fault_shared = (!fault.is_off()).then(|| FaultShared::new(threads));
    if let Some(fs) = &fault_shared {
        // a persistently slow worker is degraded from the start: its
        // static backlog routes to the dynamic section, where healthy
        // workers load-balance it (the worker itself keeps executing
        // dynamic tasks at its reduced rate)
        for wf in fault.faults() {
            if matches!(wf.kind, FaultKind::Slow { .. }) {
                fs.degraded[wf.worker].store(true, Ordering::Release);
            }
        }
    }

    let shared = Shared {
        item: ItemState::new(storage, Arc::clone(g), grid, nstatic),
        local: (0..threads)
            .map(|_| Mutex::new(BinaryHeap::new()))
            .collect(),
        dynamic: match queue {
            QueueDiscipline::Global => DynQueues::Global(Mutex::new(BinaryHeap::new())),
            QueueDiscipline::Sharded { .. } => DynQueues::Sharded(
                (0..threads)
                    .map(|_| Mutex::new(BinaryHeap::new()))
                    .collect(),
            ),
            QueueDiscipline::LockFree { .. } => DynQueues::LockFree(
                // each deque sized for the whole graph: a worker can at
                // most hold every task, so pushes never see "full"
                (0..threads)
                    .map(|_| Deque::with_capacity(g.len()))
                    .collect(),
            ),
        },
        tiers: match queue {
            QueueDiscipline::LockFree { .. } => (0..threads)
                .map(|me| StealTiers::for_worker(topo, me, threads))
                .collect(),
            _ => Vec::new(),
        },
        steal_dir,
        dyn_queued: AtomicUsize::new(0),
        fault: fault_shared,
    };

    // scatter initially ready tasks round-robin over the shards (no
    // worker has "enabled" them yet); the Global queue ignores `home`.
    // For the lock-free deques, scatter in descending priority so each
    // deque's LIFO owner pops its share most-critical first.
    let mut initial = g.initial_ready();
    if matches!(queue, QueueDiscipline::LockFree { .. }) {
        initial.sort_unstable_by_key(|t| Reverse(shared.item.dynamic_keys[t.idx()]));
    }
    for (i, t) in initial.into_iter().enumerate() {
        shared.push_ready(t, i);
    }

    let total = g.len();
    let t0 = Instant::now();
    let mut timeline = Timeline::new(threads);
    let mut thread_stats = vec![ThreadStats::default(); threads];

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for me in 0..threads {
            let shared = &shared;
            handles.push(scope.spawn(move || {
                // topology-aware pinning: worker `me` onto the CPU the
                // detected topology maps it to — best effort, a refusal
                // (sandbox, cgroup) leaves the worker floating
                if pin {
                    pin_current_thread(topo.cpu_for_worker(me));
                }
                let mut spans: Vec<TaskSpan> = Vec::new();
                let mut stats = ThreadStats::default();
                // per-worker packing arena, sized once from the config's
                // tile dimension and reused by every kernel this worker
                // runs — the task loop performs no GEMM-path allocation
                let mut scratch =
                    GemmScratch::sized_for(shared.item.b, shared.item.b, shared.item.b);
                // per-worker victim-selection stream: SplitMix64 seeding
                // decorrelates the nearby seeds, so workers sweep
                // victims in unrelated orders
                let mut rng = queue
                    .seed()
                    .map(|seed| Rng::seed_from_u64(seed.wrapping_add(me as u64)));
                // fault clock: disarmed (and never ticked) without a plan
                let mut clock = if shared.fault.is_some() {
                    FaultClock::new(fault, me)
                } else {
                    FaultClock::disarmed()
                };
                let mut ready_buf: Vec<TaskId> = Vec::new();
                let mut idle_spins = 0u32;
                while shared.item.done.load(Ordering::Acquire) < total {
                    if let Some(f) = &shared.fault {
                        if f.abort.load(Ordering::Acquire) {
                            break;
                        }
                        match clock.before_task() {
                            FaultAction::None => {}
                            FaultAction::Stall(d) => {
                                let start = t0.elapsed().as_secs_f64();
                                std::thread::sleep(d);
                                spans.push(TaskSpan {
                                    core: me,
                                    start,
                                    end: t0.elapsed().as_secs_f64(),
                                    kind: SpanKind::Noise,
                                });
                            }
                            FaultAction::Lose => {
                                // static-task rescue: flag ourselves
                                // degraded and drain our static backlog
                                // *under our local lock* (the same lock
                                // push_ready's reroute checks under), then
                                // republish it into the dynamic section
                                // for the survivors. The exclusive-writer
                                // DAG keeps the factors bitwise-identical
                                // no matter who ends up running them.
                                let drained: Vec<u32> = {
                                    let mut q = shared.local[me].lock();
                                    f.degraded[me].store(true, Ordering::Release);
                                    std::iter::from_fn(|| q.pop().map(|Reverse((_, t))| t))
                                        .collect()
                                };
                                f.rescued[me].fetch_add(drained.len() as u64, Ordering::Relaxed);
                                for t in drained {
                                    shared.push_dynamic(TaskId(t), me);
                                }
                                stats.lost = true;
                                break;
                            }
                            FaultAction::Panic => {
                                // a real unwind, really contained: the
                                // injected kernel panic must exercise the
                                // same containment a genuine kernel bug
                                // would
                                let caught = std::panic::catch_unwind(|| {
                                    panic!("injected kernel panic on worker {me} (fault plan)")
                                });
                                debug_assert!(caught.is_err());
                                f.fail_with(CaluError::TaskPanic(format!(
                                    "injected kernel panic on worker {me} (fault plan)"
                                )));
                                break;
                            }
                        }
                    }
                    match shared.pop(me, &mut rng, &mut stats) {
                        Some((t, source)) => {
                            idle_spins = 0;
                            match source {
                                QueueSource::Local => stats.local_pops += 1,
                                QueueSource::Stolen => stats.steal_pops += 1,
                                QueueSource::StolenRemote => {
                                    stats.steal_pops += 1;
                                    stats.remote_steal_pops += 1;
                                }
                                _ => stats.global_pops += 1,
                            }
                            let start = t0.elapsed().as_secs_f64();
                            shared.item.execute(t, &mut scratch);
                            let end = t0.elapsed().as_secs_f64();
                            let kind = match shared.item.g.kind(t).paper_kind() {
                                PaperKind::P => SpanKind::Panel,
                                PaperKind::L => SpanKind::LFactor,
                                PaperKind::U => SpanKind::UFactor,
                                PaperKind::S => SpanKind::Update,
                            };
                            spans.push(TaskSpan {
                                core: me,
                                start,
                                end,
                                kind,
                            });
                            shared.complete(t, me, &mut ready_buf);
                            if shared.fault.is_none() {
                                continue;
                            }
                            if let Some(stall) =
                                clock.after_task(std::time::Duration::from_secs_f64(end - start))
                            {
                                // duty-cycle slowdown: stall in proportion
                                // to the task just run, like the sim's
                                // noise model stretches compute
                                let s0 = t0.elapsed().as_secs_f64();
                                std::thread::sleep(stall);
                                spans.push(TaskSpan {
                                    core: me,
                                    start: s0,
                                    end: t0.elapsed().as_secs_f64(),
                                    kind: SpanKind::Noise,
                                });
                            }
                        }
                        None => {
                            idle_spins += 1;
                            if idle_spins > 64 {
                                std::thread::yield_now();
                            } else {
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
                (spans, stats)
            }));
        }
        for (me, h) in handles.into_iter().enumerate() {
            let (spans, stats) = h.join().expect("worker panicked");
            for span in spans {
                timeline.push(span);
            }
            thread_stats[me] = stats;
        }
    });

    if let Some(f) = &shared.fault {
        if let Some(e) = f.fail.lock().take() {
            return Err(e);
        }
        // attribute rescues to the worker whose static backlog was
        // republished (counted both by its own dying drain and by other
        // workers' rerouted pushes)
        for (w, stat) in thread_stats.iter_mut().enumerate() {
            stat.rescued = f.rescued[w].load(Ordering::Acquire);
        }
    }

    let (storage, perm, singular) = shared.item.finish();
    Ok((storage, perm, singular, timeline, thread_stats))
}

/// Apply the deferred "left swaps" (Algorithm 1, line 43): each panel's
/// permutation is applied to the L columns strictly left of it.
pub(crate) fn apply_left_swaps(lu: &mut DenseMatrix, g: &TaskGraph, perms: &RowPerm, b: usize) {
    // perms is the concatenation of panel perms; walk it panel by panel
    let piv = perms.pivots();
    for k in 0..g.num_panels() {
        let base = k * b;
        let w = g.tile_col_count(k);
        let left_cols = base.min(lu.cols());
        for t in 0..w.min(piv.len().saturating_sub(base)) {
            let r1 = base + t;
            let r2 = piv[base + t];
            if r1 != r2 {
                lu.swap_rows_in_cols(r1, r2, 0, left_cols);
            }
        }
    }
}

/// Run `factor_tiled` on `a` under the config's layout, returning the
/// factored matrix densified — the layout dispatch shared by every
/// kernel set's solo entry point.
fn factor_report_for_graph(
    a: &DenseMatrix,
    cfg: &CaluConfig,
    g: &Arc<TaskGraph>,
    grid: ProcessGrid,
) -> Result<Factored<DenseMatrix>, CaluError> {
    match cfg.layout {
        Layout::ColumnMajor => {
            let s = CmTiles::from_dense(a, cfg.b);
            let (s, p, sing, tl, st) = factor_tiled(
                s,
                g,
                grid,
                cfg.dratio,
                cfg.queue,
                cfg.steal_order,
                cfg.pin_workers,
                &cfg.fault,
            )?;
            Ok((s.to_dense(), p, sing, tl, st))
        }
        Layout::BlockCyclic => {
            let s = BclMatrix::from_dense(a, cfg.b, grid);
            let (s, p, sing, tl, st) = factor_tiled(
                s,
                g,
                grid,
                cfg.dratio,
                cfg.queue,
                cfg.steal_order,
                cfg.pin_workers,
                &cfg.fault,
            )?;
            Ok((s.to_dense(), p, sing, tl, st))
        }
        Layout::TwoLevelBlock => {
            let s = TlbMatrix::from_dense(a, cfg.b, grid);
            let (s, p, sing, tl, st) = factor_tiled(
                s,
                g,
                grid,
                cfg.dratio,
                cfg.queue,
                cfg.steal_order,
                cfg.pin_workers,
                &cfg.fault,
            )?;
            Ok((s.to_dense(), p, sing, tl, st))
        }
    }
}

/// Factor `a` with CALU and return the factorization, the per-thread
/// execution trace, and the per-thread queue-source accounting — the
/// full report the `calu` facade's `ThreadedBackend` builds on.
pub fn calu_factor_report(
    a: &DenseMatrix,
    cfg: &CaluConfig,
) -> Result<(Factorization, Timeline, Vec<ThreadStats>), CaluError> {
    let grid = cfg.validate()?;
    if a.rows() == 0 || a.cols() == 0 {
        return Err(CaluError::EmptyMatrix);
    }
    let leaf_stride = cfg.leaf_stride.unwrap_or_else(|| grid.pr());
    let g = Arc::new(TaskGraph::build_calu(
        a.rows(),
        a.cols(),
        cfg.b,
        leaf_stride,
    ));
    let (mut lu, perm, singular_at, timeline, stats) = factor_report_for_graph(a, cfg, &g, grid)?;
    apply_left_swaps(&mut lu, &g, &perm, cfg.b);
    Ok((
        Factorization {
            lu,
            perm,
            singular_at,
        },
        timeline,
        stats,
    ))
}

/// Factor the symmetric positive-definite `a` as `A = L·Lᵀ` with the
/// tiled Cholesky kernel set on the same hybrid static/dynamic executor
/// as CALU — identical queues, steal tiers and scratch arenas, different
/// task bodies ([`KernelSet::Cholesky`]). Only the lower triangle of `a`
/// is read; on return the factorization's `lu` holds `L` in its lower
/// triangle (non-unit diagonal) with `a`'s untouched strictly-upper part
/// above it, the permutation is the identity, and `singular_at` flags
/// the first column whose pivot was not positive (the input was not
/// numerically SPD). Use [`Factorization::cholesky_residual`] to verify.
pub fn cholesky_factor_report(
    a: &DenseMatrix,
    cfg: &CaluConfig,
) -> Result<(Factorization, Timeline, Vec<ThreadStats>), CaluError> {
    let grid = cfg.validate()?;
    if a.rows() == 0 || a.cols() == 0 {
        return Err(CaluError::EmptyMatrix);
    }
    let g = Arc::new(KernelSet::Cholesky.build_graph(a.rows(), a.cols(), cfg.b, 1)?);
    let (lu, perm, singular_at, timeline, stats) = factor_report_for_graph(a, cfg, &g, grid)?;
    // no pivoting: perm is the identity and there are no left swaps
    Ok((
        Factorization {
            lu,
            perm,
            singular_at,
        },
        timeline,
        stats,
    ))
}

/// [`cholesky_factor_report`] returning only the factorization.
pub fn cholesky_factor(a: &DenseMatrix, cfg: &CaluConfig) -> Result<Factorization, CaluError> {
    cholesky_factor_report(a, cfg).map(|(f, _, _)| f)
}

/// Factor `a` with CALU and return the factorization plus the per-thread
/// execution trace.
pub fn calu_factor_traced(
    a: &DenseMatrix,
    cfg: &CaluConfig,
) -> Result<(Factorization, Timeline), CaluError> {
    calu_factor_report(a, cfg).map(|(f, tl, _)| (f, tl))
}

/// Factor `a` with CALU: tournament pivoting + hybrid static/dynamic
/// scheduling (Algorithm 1).
pub fn calu_factor(a: &DenseMatrix, cfg: &CaluConfig) -> Result<Factorization, CaluError> {
    calu_factor_report(a, cfg).map(|(f, _, _)| f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simple::calu_simple;
    use calu_matrix::gen;

    fn check(a: &DenseMatrix, cfg: &CaluConfig, tol: f64) {
        let f = calu_factor(a, cfg).expect("factor");
        assert!(f.is_nonsingular(), "unexpected singularity");
        let r = f.residual(a);
        assert!(r < tol, "residual {r} with {cfg:?}");
    }

    #[test]
    fn single_thread_matches_reference() {
        let a = gen::uniform(48, 48, 1);
        let cfg = CaluConfig::new(8).with_threads(1);
        let f = calu_factor(&a, &cfg).unwrap();
        let reference = calu_simple(&a, 8, 6); // 6 tiles = 6 leaf chunks? stride=pr=1
                                               // same pivot strategy modulo chunking; both must factor correctly
        assert!(f.residual(&a) < 1e-12);
        assert!(reference.residual(&a) < 1e-12);
    }

    #[test]
    fn multithreaded_all_layouts() {
        let a = gen::uniform(64, 64, 2);
        for layout in [
            Layout::BlockCyclic,
            Layout::TwoLevelBlock,
            Layout::ColumnMajor,
        ] {
            let cfg = CaluConfig::new(16).with_threads(4).with_layout(layout);
            check(&a, &cfg, 1e-12);
        }
    }

    #[test]
    fn dratio_sweep_same_answer() {
        let a = gen::uniform(60, 60, 3);
        let rhs = gen::uniform(60, 1, 4);
        let mut solutions = Vec::new();
        for dratio in [0.0, 0.1, 0.5, 1.0] {
            let cfg = CaluConfig::new(10).with_threads(3).with_dratio(dratio);
            let f = calu_factor(&a, &cfg).unwrap();
            assert!(f.residual(&a) < 1e-12, "dratio {dratio}");
            solutions.push(f.solve(&rhs));
        }
        for s in &solutions[1..] {
            assert!(
                s.approx_eq(&solutions[0], 1e-9),
                "schedule must not change math"
            );
        }
    }

    #[test]
    fn threads_do_not_change_pivots() {
        // determinism: pivot choice depends only on the matrix & grid,
        // not on timing
        let a = gen::uniform(80, 80, 5);
        let f1 = calu_factor(&a, &CaluConfig::new(16).with_threads(4)).unwrap();
        let f2 = calu_factor(&a, &CaluConfig::new(16).with_threads(4)).unwrap();
        assert_eq!(f1.perm.pivots(), f2.perm.pivots());
        assert!(f1.lu.approx_eq(&f2.lu, 0.0), "bitwise deterministic");
    }

    #[test]
    fn tall_matrix() {
        let a = gen::uniform(96, 32, 6);
        let cfg = CaluConfig::new(16).with_threads(4);
        check(&a, &cfg, 1e-12);
    }

    #[test]
    fn ragged_tiles() {
        let a = gen::uniform(50, 50, 7);
        let cfg = CaluConfig::new(16).with_threads(2);
        check(&a, &cfg, 1e-12);
    }

    #[test]
    fn trace_is_complete() {
        let a = gen::uniform(64, 64, 8);
        let cfg = CaluConfig::new(16).with_threads(4);
        let (f, tl) = calu_factor_traced(&a, &cfg).unwrap();
        assert!(f.residual(&a) < 1e-12);
        assert_eq!(tl.cores(), 4);
        let g = TaskGraph::build_calu(64, 64, 16, 2);
        assert_eq!(tl.spans().len(), g.len(), "one span per task");
    }

    #[test]
    fn solve_through_threaded_factorization() {
        let a = gen::uniform(64, 64, 9);
        let x_true = gen::uniform(64, 2, 10);
        let rhs = calu_matrix::ops::matmul(&a, &x_true);
        let f = calu_factor(&a, &CaluConfig::new(8).with_threads(4)).unwrap();
        assert!(f.solve(&rhs).approx_eq(&x_true, 1e-7));
    }

    #[test]
    fn zero_matrix_flagged() {
        let z = DenseMatrix::zeros(16, 16);
        let f = calu_factor(&z, &CaluConfig::new(4).with_threads(2)).unwrap();
        assert!(!f.is_nonsingular());
    }

    #[test]
    fn rejects_bad_config() {
        let a = gen::uniform(8, 8, 11);
        assert!(calu_factor(&a, &CaluConfig::new(0)).is_err());
        assert!(calu_factor(&a, &CaluConfig::new(4).with_threads(0)).is_err());
        for queue in [QueueDiscipline::sharded(), QueueDiscipline::lock_free()] {
            assert!(
                calu_factor(&a, &CaluConfig::new(4).with_dratio(0.0).with_queue(queue)).is_err(),
                "{queue} discipline without a dynamic section is a config error"
            );
        }
    }

    #[test]
    fn sharded_queue_all_layouts() {
        let a = gen::uniform(64, 64, 12);
        for layout in [
            Layout::BlockCyclic,
            Layout::TwoLevelBlock,
            Layout::ColumnMajor,
        ] {
            let cfg = CaluConfig::new(16)
                .with_threads(4)
                .with_dratio(0.5)
                .with_layout(layout)
                .with_queue(QueueDiscipline::sharded());
            check(&a, &cfg, 1e-12);
        }
    }

    #[test]
    fn queue_discipline_does_not_change_the_math() {
        // the schedule (and who steals what) must not affect a single
        // bit of the factors: writes to each tile are totally ordered by
        // the DAG's exclusive-writer discipline
        let a = gen::uniform(80, 80, 13);
        let base = CaluConfig::new(16).with_threads(4).with_dratio(0.5);
        let sharded = base.clone().with_queue(QueueDiscipline::sharded());
        let f1 = calu_factor(&a, &base).unwrap();
        let f2 = calu_factor(&a, &sharded).unwrap();
        assert_eq!(f1.perm.pivots(), f2.perm.pivots());
        assert!(f1.lu.approx_eq(&f2.lu, 0.0), "bitwise identical factors");
    }

    #[test]
    fn global_discipline_never_steals() {
        let a = gen::uniform(64, 64, 14);
        let cfg = CaluConfig::new(16).with_threads(4).with_dratio(0.5);
        let (_, _, stats) = calu_factor_report(&a, &cfg).unwrap();
        for s in &stats {
            assert_eq!(s.steal_pops, 0, "no steal path under Global");
            assert_eq!(s.failed_steals, 0, "no steal probes under Global");
        }
    }

    #[test]
    fn lockfree_queue_all_layouts() {
        let a = gen::uniform(64, 64, 16);
        for layout in [
            Layout::BlockCyclic,
            Layout::TwoLevelBlock,
            Layout::ColumnMajor,
        ] {
            let cfg = CaluConfig::new(16)
                .with_threads(4)
                .with_dratio(0.5)
                .with_layout(layout)
                .with_queue(QueueDiscipline::lock_free());
            check(&a, &cfg, 1e-12);
        }
    }

    #[test]
    fn lockfree_discipline_does_not_change_the_math() {
        let a = gen::uniform(80, 80, 13);
        let base = CaluConfig::new(16).with_threads(4).with_dratio(0.5);
        let lockfree = base.clone().with_queue(QueueDiscipline::lock_free());
        let f1 = calu_factor(&a, &base).unwrap();
        let f2 = calu_factor(&a, &lockfree).unwrap();
        assert_eq!(f1.perm.pivots(), f2.perm.pivots());
        assert!(f1.lu.approx_eq(&f2.lu, 0.0), "bitwise identical factors");
    }

    #[test]
    fn lockfree_stats_attribute_every_task_once() {
        let a = gen::uniform(96, 96, 17);
        let cfg = CaluConfig::new(16)
            .with_threads(4)
            .with_dratio(1.0)
            .with_queue(QueueDiscipline::LockFree { seed: 11 });
        let (f, tl, stats) = calu_factor_report(&a, &cfg).unwrap();
        assert!(f.residual(&a) < 1e-12);
        let total: u64 = stats
            .iter()
            .map(|s| s.local_pops + s.global_pops + s.steal_pops)
            .sum();
        assert_eq!(total as usize, tl.spans().len(), "one pop per span");
        for s in &stats {
            assert!(
                s.remote_steal_pops <= s.steal_pops,
                "remote steals are a subset of steals"
            );
        }
    }

    #[test]
    fn pinned_workers_factor_identically() {
        // pinning moves threads, never data: same bits with and without
        let a = gen::uniform(64, 64, 18);
        let base = CaluConfig::new(16)
            .with_threads(4)
            .with_dratio(0.5)
            .with_queue(QueueDiscipline::lock_free());
        let pinned = base.clone().with_pinning(true);
        let f1 = calu_factor(&a, &base).unwrap();
        let f2 = calu_factor(&a, &pinned).unwrap();
        assert!(f1.residual(&a) < 1e-12 && f2.residual(&a) < 1e-12);
        assert_eq!(f1.perm.pivots(), f2.perm.pivots());
        assert!(f1.lu.approx_eq(&f2.lu, 0.0));
    }

    #[test]
    fn steal_sweep_counts_whole_sweeps_not_victims() {
        // the contention-thermometer regression: an empty sweep over
        // many victims is ONE failure, so failure_rate stays comparable
        // between the flat (p − 1 probes) and tiered victim orders
        let mut failed = 0u64;
        let all_empty = steal_sweep([0usize, 1, 2].into_iter(), |_| None::<TaskId>, &mut failed);
        assert!(all_empty.is_none());
        assert_eq!(failed, 1, "three empty victims, one failed sweep");

        // a sweep that succeeds late counts no failure at all
        let hit = steal_sweep(
            [0usize, 1, 2].into_iter(),
            |&v| (v == 2).then_some(TaskId(7)),
            &mut failed,
        );
        assert_eq!(hit, Some((TaskId(7), 2)));
        assert_eq!(failed, 1, "successful sweep adds no failure");

        // pinned ratio: 1 steal + 1 failed sweep = 50% failure rate,
        // identical whether the sweep visited 3 victims or 30
        let mut failed_wide = 0u64;
        steal_sweep(0..30usize, |_| None::<TaskId>, &mut failed_wide);
        assert_eq!(failed_wide, 1);
        let rate = failed as f64 / (1 + failed) as f64;
        assert!((rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cholesky_factors_spd_on_all_layouts() {
        let a = gen::spd_uniform(64, 21);
        for layout in [
            Layout::ColumnMajor,
            Layout::BlockCyclic,
            Layout::TwoLevelBlock,
        ] {
            let cfg = CaluConfig::new(16).with_threads(4).with_layout(layout);
            let f = cholesky_factor(&a, &cfg).expect("factor");
            assert!(f.is_nonsingular(), "{layout:?}");
            assert!(f.perm.pivots().is_empty(), "Cholesky never pivots");
            let r = f.cholesky_residual(&a);
            assert!(r < 1e-13, "residual {r} on {layout:?}");
        }
    }

    #[test]
    fn cholesky_matches_sequential_dpotrf() {
        // the tiled factor agrees with the dense reference kernel (to
        // roundoff: summation orders differ between tilings)
        let a = gen::spd_uniform(48, 22);
        let mut reference = a.clone();
        let ld = reference.ld();
        assert!(calu_kernels::dpotrf_unblocked(48, reference.as_mut_slice(), ld).is_none());
        let f = cholesky_factor(&a, &CaluConfig::new(16).with_threads(3)).unwrap();
        for i in 0..48 {
            for j in 0..=i {
                let (x, y) = (f.lu.get(i, j), reference.get(i, j));
                assert!((x - y).abs() < 1e-11, "({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn cholesky_bitwise_identical_across_disciplines_and_threads() {
        let a = gen::spd_uniform(80, 23);
        let base = CaluConfig::new(16).with_threads(4).with_dratio(0.5);
        let f0 = cholesky_factor(&a, &base).unwrap();
        for queue in [QueueDiscipline::sharded(), QueueDiscipline::lock_free()] {
            let f = cholesky_factor(&a, &base.clone().with_queue(queue)).unwrap();
            assert!(f.lu.approx_eq(&f0.lu, 0.0), "bitwise across disciplines");
        }
        for threads in [1, 2, 3] {
            let f = cholesky_factor(&a, &base.clone().with_threads(threads)).unwrap();
            assert!(
                f.lu.approx_eq(&f0.lu, 0.0),
                "bitwise across {threads} threads"
            );
        }
    }

    #[test]
    fn cholesky_flags_non_spd_input() {
        // an indefinite symmetric matrix must come back flagged, not
        // panic or hang
        let mut a = gen::spd_uniform(32, 24);
        a.set(10, 10, -5.0);
        let f = cholesky_factor(&a, &CaluConfig::new(8).with_threads(2)).unwrap();
        assert!(!f.is_nonsingular());
        assert!(
            f.singular_at.unwrap() <= 10,
            "flag at or before the bad pivot"
        );
    }

    #[test]
    fn cholesky_rejects_rectangular_input() {
        let a = gen::uniform(32, 16, 25);
        let err = cholesky_factor(&a, &CaluConfig::new(8).with_threads(2)).unwrap_err();
        assert!(err.to_string().contains("square"), "{err}");
    }

    #[test]
    fn cholesky_ragged_tiles() {
        let a = gen::spd_uniform(50, 26);
        let f = cholesky_factor(&a, &CaluConfig::new(16).with_threads(2)).unwrap();
        assert!(f.cholesky_residual(&a) < 1e-13);
    }

    #[test]
    fn lost_worker_is_rescued_bitwise() {
        // the headline rescue invariant: kill a worker mid-run and the
        // survivors produce the exact same bits the healthy pool does
        let a = gen::uniform(96, 96, 31);
        let base = CaluConfig::new(16).with_threads(4).with_dratio(0.3);
        let f0 = calu_factor(&a, &base).unwrap();
        let plan = FaultPlan::off().with_seed(5).lose_worker(2, 3);
        let cfg = base.clone().with_fault(plan);
        let (f, _, stats) = calu_factor_report(&a, &cfg).unwrap();
        assert_eq!(f0.perm.pivots(), f.perm.pivots());
        assert!(f0.lu.approx_eq(&f.lu, 0.0), "bitwise despite the loss");
        assert!(stats[2].lost, "worker 2 recorded as lost");
        assert!(
            stats.iter().map(|s| s.rescued).sum::<u64>() > 0,
            "the dead owner's static backlog was republished"
        );
    }

    #[test]
    fn slow_worker_degrades_but_never_changes_the_bits() {
        let a = gen::uniform(80, 80, 32);
        let base = CaluConfig::new(16)
            .with_threads(4)
            .with_dratio(0.5)
            .with_queue(QueueDiscipline::sharded());
        let f0 = calu_factor(&a, &base).unwrap();
        let cfg = base
            .clone()
            .with_fault(FaultPlan::off().with_seed(9).slow_worker(1, 2.0));
        let (f, _, stats) = calu_factor_report(&a, &cfg).unwrap();
        assert_eq!(f0.perm.pivots(), f.perm.pivots());
        assert!(f0.lu.approx_eq(&f.lu, 0.0));
        assert!(!stats[1].lost, "slow is degraded, not dead");
    }

    #[test]
    fn injected_panic_fails_typed_not_process() {
        let a = gen::uniform(64, 64, 33);
        let cfg = CaluConfig::new(16)
            .with_threads(3)
            .with_fault(FaultPlan::off().panic_worker(0, 1));
        match calu_factor(&a, &cfg) {
            Err(CaluError::TaskPanic(msg)) => {
                assert!(msg.contains("injected"), "{msg}")
            }
            other => panic!("expected TaskPanic, got {other:?}"),
        }
    }

    #[test]
    fn stalled_worker_recovers_and_matches() {
        let a = gen::spd_uniform(64, 34);
        let base = CaluConfig::new(16).with_threads(4).with_dratio(0.5);
        let f0 = cholesky_factor(&a, &base).unwrap();
        let cfg = base
            .clone()
            .with_fault(FaultPlan::off().stall_worker(3, 2, 20));
        let f = cholesky_factor(&a, &cfg).unwrap();
        assert!(f0.lu.approx_eq(&f.lu, 0.0));
    }

    #[test]
    fn sharded_stats_attribute_every_task_once() {
        let a = gen::uniform(96, 96, 15);
        let cfg = CaluConfig::new(16)
            .with_threads(4)
            .with_dratio(1.0)
            .with_queue(QueueDiscipline::Sharded { seed: 9 });
        let (f, tl, stats) = calu_factor_report(&a, &cfg).unwrap();
        assert!(f.residual(&a) < 1e-12);
        let total: u64 = stats
            .iter()
            .map(|s| s.local_pops + s.global_pops + s.steal_pops)
            .sum();
        assert_eq!(total as usize, tl.spans().len(), "one pop per span");
        assert_eq!(
            stats.iter().map(|s| s.local_pops).sum::<u64>(),
            0,
            "dratio 1.0 leaves nothing in the static queues"
        );
    }
}
