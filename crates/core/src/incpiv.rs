//! Tiled LU with incremental (block pairwise) pivoting — the PLASMA
//! `dgetrf_incpiv` baseline (§2, §5.3).
//!
//! Pivoting never looks below the current tile pair: the diagonal tile is
//! factored with GEPP (GETRF), then each sub-diagonal tile is eliminated
//! by factoring the stack `[U_kk; A_ik]` (TSTRF), with the corresponding
//! transformations applied to the trailing tile pairs (GESSM/SSSSM).
//! This removes the panel from the critical path at the cost of extra
//! flops and a weaker pivoting strategy ("whose stability is still under
//! investigation", §5.3).

use calu_kernels::dgetf2;
use calu_matrix::{gen, norms, ops, DenseMatrix};

/// One recorded elimination operator, replayed on right-hand sides by
/// [`IncPivFactors::solve`].
#[derive(Debug, Clone)]
enum Op {
    /// GEPP of the diagonal tile `k` followed by its application to the
    /// whole tile row: rows = `c0 + piv` swaps, `L` = unit-lower `w×w`.
    Diag {
        /// first global row of the tile
        base: usize,
        /// tile-local pivots
        piv: Vec<usize>,
        /// unit-lower factor (strictly lower stored)
        l: DenseMatrix,
    },
    /// TSTRF of the stack `[row block k; row block i]`: `piv` are
    /// stack-local pivots, `l` the `(w+ri)×w` unit-lower trapezoid.
    Stack {
        /// first global row of the top (diagonal) block
        base_top: usize,
        /// first global row of the bottom block
        base_bot: usize,
        /// rows in the top block
        w: usize,
        /// stack-local pivots
        piv: Vec<usize>,
        /// trapezoidal factor
        l: DenseMatrix,
    },
}

/// The factors produced by incremental pivoting. Unlike GEPP/CALU the
/// row transformations interleave with eliminations and cannot be
/// expressed as one global `P`; solving replays them in order.
#[derive(Debug, Clone)]
pub struct IncPivFactors {
    /// The upper-triangular factor (full `n × n`, zeros below).
    pub u: DenseMatrix,
    /// Tile size used.
    pub b: usize,
    /// First column with a zero pivot, if any.
    pub singular_at: Option<usize>,
    ops: Vec<Op>,
}

/// Apply a stack-local swap+forward-elimination to a stacked pair of row
/// blocks of `z` (top at `base_top`, `w` rows; bottom at `base_bot`,
/// `l.rows() - w` rows), restricted to columns `c_lo..c_hi`.
#[allow(clippy::too_many_arguments)]
fn apply_stack(
    z: &mut DenseMatrix,
    base_top: usize,
    base_bot: usize,
    w: usize,
    piv: &[usize],
    l: &DenseMatrix,
    c_lo: usize,
    c_hi: usize,
) {
    let total = l.rows();
    let row_of = |s: usize| {
        if s < w {
            base_top + s
        } else {
            base_bot + (s - w)
        }
    };
    // P
    for (t, &p) in piv.iter().enumerate() {
        if p != t {
            let (r1, r2) = (row_of(t), row_of(p));
            z.swap_rows_in_cols(r1, r2, c_lo, c_hi);
        }
    }
    // L^{-1} (forward elimination with the trapezoid)
    for c in c_lo..c_hi {
        for t in 0..w.min(total) {
            let zt = z.get(row_of(t), c);
            if zt == 0.0 {
                continue;
            }
            for s in (t + 1)..total {
                let v = z.get(row_of(s), c) - l.get(s, t) * zt;
                z.set(row_of(s), c, v);
            }
        }
    }
}

/// Factor `a` with incremental pivoting, tile size `b`.
pub fn incpiv_factor(a: &DenseMatrix, b: usize) -> IncPivFactors {
    assert!(b > 0, "tile size must be positive");
    let n = a.rows();
    assert_eq!(a.cols(), n, "incpiv driver handles square matrices");
    let mut w_mat = a.clone();
    let nt = n.div_ceil(b);
    let mut ops_list: Vec<Op> = Vec::new();
    let mut singular_at = None;

    for k in 0..nt {
        let c0 = k * b;
        let w = b.min(n - c0);

        // --- GETRF(k,k) ---
        let (piv, l) = {
            let mut tile = w_mat.submatrix(c0, c0, w, w);
            let ld = tile.ld();
            let p = dgetf2(w, w, tile.as_mut_slice(), ld);
            if let Some(c) = p.singular_at {
                singular_at.get_or_insert(c0 + c);
            }
            // write factored tile back (upper part = U_kk)
            w_mat.set_submatrix(c0, c0, &tile);
            (p.piv, tile.lower_unit())
        };
        // GESSM: apply to the rest of the tile row
        for j in (k + 1)..nt {
            let j0 = j * b;
            let wj = b.min(n - j0);
            let mut blk = w_mat.submatrix(c0, j0, w, wj);
            // swaps
            for (t, &p) in piv.iter().enumerate() {
                if p != t {
                    blk.swap_rows(t, p);
                }
            }
            // L^{-1}
            let ld = blk.ld();
            calu_kernels::dtrsm_left_lower_unit(
                w,
                wj,
                l.as_slice(),
                l.ld(),
                blk.as_mut_slice(),
                ld,
            );
            w_mat.set_submatrix(c0, j0, &blk);
        }
        ops_list.push(Op::Diag { base: c0, piv, l });

        // --- TSTRF chain + SSSSM updates ---
        for i in (k + 1)..nt {
            let r0 = i * b;
            let ri = b.min(n - r0);
            // stack = [U_kk (current); A_ik]
            let ukk = w_mat.submatrix(c0, c0, w, w);
            let aik = w_mat.submatrix(r0, c0, ri, w);
            let mut stack = DenseMatrix::from_fn(w + ri, w, |r, c| {
                if r < w {
                    if r <= c {
                        ukk.get(r, c)
                    } else {
                        0.0 // strictly-lower of the diag tile is L, not U
                    }
                } else {
                    aik.get(r - w, c)
                }
            });
            let ld = stack.ld();
            let p = dgetf2(w + ri, w, stack.as_mut_slice(), ld);
            if let Some(c) = p.singular_at {
                singular_at.get_or_insert(c0 + c);
            }
            // write back U_kk' (upper of the top block); zero out A_ik
            let new_u = stack.upper(); // w x w
            for r in 0..w {
                for c in r..w {
                    w_mat.set(c0 + r, c0 + c, new_u.get(r, c));
                }
            }
            for r in 0..ri {
                for c in 0..w {
                    w_mat.set(r0 + r, c0 + c, 0.0);
                }
            }
            let l_trap = stack.lower_unit(); // (w+ri) x w
                                             // SSSSM: update the trailing columns of the tile pair
            apply_stack(&mut w_mat, c0, r0, w, &p.piv, &l_trap, c0 + w, n);
            ops_list.push(Op::Stack {
                base_top: c0,
                base_bot: r0,
                w,
                piv: p.piv,
                l: l_trap,
            });
        }
    }

    // extract U: tile row k contributes columns >= its own tile column
    let u = DenseMatrix::from_fn(n, n, |i, j| {
        let (ti, tj) = (i / b, j / b);
        if ti < tj || (ti == tj && i <= j) {
            w_mat.get(i, j)
        } else {
            0.0
        }
    });
    IncPivFactors {
        u,
        b,
        singular_at,
        ops: ops_list,
    }
}

impl IncPivFactors {
    /// True if no zero pivot was hit.
    pub fn is_nonsingular(&self) -> bool {
        self.singular_at.is_none()
    }

    /// Solve `A·x = rhs` by replaying the recorded eliminations on the
    /// right-hand side and back-substituting with `U`.
    pub fn solve(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let n = self.u.rows();
        assert_eq!(rhs.rows(), n, "rhs height mismatch");
        let mut z = rhs.clone();
        for op in &self.ops {
            match op {
                Op::Diag { base, piv, l } => {
                    let w = l.rows();
                    for (t, &p) in piv.iter().enumerate() {
                        if p != t {
                            z.swap_rows(base + t, base + p);
                        }
                    }
                    for c in 0..z.cols() {
                        for t in 0..w {
                            let zt = z.get(base + t, c);
                            if zt == 0.0 {
                                continue;
                            }
                            for s in (t + 1)..w {
                                let v = z.get(base + s, c) - l.get(s, t) * zt;
                                z.set(base + s, c, v);
                            }
                        }
                    }
                }
                Op::Stack {
                    base_top,
                    base_bot,
                    w,
                    piv,
                    l,
                } => {
                    let cols = z.cols();
                    apply_stack(&mut z, *base_top, *base_bot, *w, piv, l, 0, cols);
                }
            }
        }
        // back substitution with U
        let mut x = z;
        for c in 0..x.cols() {
            for k in (0..n).rev() {
                let mut s = x.get(k, c);
                for j in (k + 1)..n {
                    s -= self.u.get(k, j) * x.get(j, c);
                }
                x.set(k, c, s / self.u.get(k, k));
            }
        }
        x
    }

    /// Solution-based relative residual `‖A·x − rhs‖ / (‖A‖·‖x‖)` on a
    /// seeded random right-hand side — incremental pivoting has no single
    /// `P·A = L·U` identity to check directly.
    pub fn residual_via_solve(&self, a: &DenseMatrix, seed: u64) -> f64 {
        let rhs = gen::uniform(a.rows(), 1, seed);
        let x = self.solve(&rhs);
        let ax = ops::matmul(a, &x);
        let diff = ops::sub(&ax, &rhs);
        norms::frobenius(&diff)
            / (norms::frobenius(a) * norms::frobenius(&x)).max(f64::MIN_POSITIVE)
    }

    /// Growth proxy: `max|U| / max|A|`.
    pub fn growth_factor(&self, a: &DenseMatrix) -> f64 {
        self.u.max_abs() / a.max_abs().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gepp::gepp_factor;

    #[test]
    fn solves_random_systems() {
        for (n, b, seed) in [(16, 4, 1), (24, 8, 2), (30, 7, 3), (12, 12, 4)] {
            let a = gen::uniform(n, n, seed);
            let f = incpiv_factor(&a, b);
            assert!(f.is_nonsingular(), "n={n} b={b}");
            let r = f.residual_via_solve(&a, seed + 100);
            assert!(r < 1e-10, "residual {r} for n={n} b={b}");
        }
    }

    #[test]
    fn matches_gepp_solution() {
        let a = gen::uniform(20, 20, 5);
        let rhs = gen::uniform(20, 3, 6);
        let x1 = incpiv_factor(&a, 5).solve(&rhs);
        let x2 = gepp_factor(&a, 5).solve(&rhs);
        assert!(x1.approx_eq(&x2, 1e-8));
    }

    #[test]
    fn single_tile_is_plain_gepp() {
        let a = gen::uniform(10, 10, 7);
        let f = incpiv_factor(&a, 16);
        let g = gepp_factor(&a, 16);
        // single tile: U factors agree exactly
        assert!(f.u.upper().approx_eq(&g.lu.upper(), 1e-12));
    }

    #[test]
    fn growth_is_bounded_on_random() {
        // incremental pivoting is weaker than partial pivoting but must
        // stay within a moderate factor on random matrices
        let a = gen::uniform(32, 32, 8);
        let f = incpiv_factor(&a, 8);
        let g = gepp_factor(&a, 8);
        let ratio = f.growth_factor(&a) / g.growth_factor(&a);
        assert!(ratio < 50.0, "incpiv growth ratio {ratio}");
    }

    #[test]
    fn ragged_edge_tiles() {
        let a = gen::uniform(23, 23, 9);
        let f = incpiv_factor(&a, 8);
        assert!(f.residual_via_solve(&a, 10) < 1e-10);
    }

    #[test]
    fn zero_matrix_flagged_singular() {
        let z = DenseMatrix::zeros(8, 8);
        let f = incpiv_factor(&z, 4);
        assert!(!f.is_nonsingular());
    }
}
