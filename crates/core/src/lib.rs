//! CALU — communication-avoiding LU factorization with tournament
//! pivoting and hybrid static/dynamic scheduling.
//!
//! This crate is the paper's primary contribution, implemented for real:
//!
//! * [`tslu`] — tournament pivoting: candidate pivot rows are selected by
//!   GEPP on row chunks and merged up a binary reduction tree (§2);
//! * [`simple::calu_simple`] — a plain dense reference implementation
//!   (the numerical oracle for everything else);
//! * [`threaded`] — the multithreaded tiled executor implementing
//!   Algorithm 1/2: the first `Nstatic` panels are scheduled statically
//!   by block-cyclic ownership, the rest through a shared dynamic queue,
//!   and idle threads pull dynamic tasks while waiting on the panel;
//! * [`gepp`] — blocked Gaussian elimination with partial pivoting (the
//!   MKL `dgetrf` stand-in);
//! * [`incpiv`] — tiled LU with incremental (block pairwise) pivoting
//!   (the PLASMA `dgetrf_incpiv` stand-in);
//! * [`verify`] — residuals, growth factors, triangular solves.
//!
//! Entry point: [`calu_factor`] (see [`CaluConfig`]).

pub mod config;
pub mod error;
pub mod factorization;
pub mod gepp;
pub mod incpiv;
pub mod pivot;
pub mod shared;
pub mod simple;
pub mod sync;
pub mod threaded;
pub mod tslu;
pub mod verify;

pub use config::CaluConfig;
pub use error::CaluError;
pub use factorization::Factorization;
pub use gepp::gepp_factor;
pub use incpiv::{incpiv_factor, IncPivFactors};
pub use simple::calu_simple;
pub use threaded::{calu_factor, calu_factor_report, calu_factor_traced, ThreadStats};
