//! CALU — communication-avoiding LU factorization with tournament
//! pivoting and hybrid static/dynamic scheduling.
//!
//! This crate is the paper's primary contribution, implemented for real:
//!
//! * [`tslu`] — tournament pivoting: candidate pivot rows are selected by
//!   GEPP on row chunks and merged up a binary reduction tree (§2);
//! * [`simple::calu_simple`] — a plain dense reference implementation
//!   (the numerical oracle for everything else);
//! * [`threaded`] — the multithreaded tiled executor implementing
//!   Algorithm 1/2: the first `Nstatic` panels are scheduled statically
//!   by block-cyclic ownership, the rest through the dynamic section,
//!   and idle threads pull dynamic tasks while waiting on the panel;
//! * [`batch`] — batched many-matrix sweeps on one persistent worker
//!   pool ([`calu_factor_batch`]): spawned once, per-worker scratch and
//!   deques alive across items, small items co-scheduled
//!   whole-per-worker, large ones on the full hybrid schedule;
//! * [`gepp`] — blocked Gaussian elimination with partial pivoting (the
//!   MKL `dgetrf` stand-in);
//! * [`incpiv`] — tiled LU with incremental (block pairwise) pivoting
//!   (the PLASMA `dgetrf_incpiv` stand-in);
//! * [`verify`] — residuals, growth factors, triangular solves.
//!
//! Entry points: [`calu_factor`] for one matrix, [`calu_factor_batch`]
//! for a sweep (see [`CaluConfig`]).
//!
//! ## How the dynamic section is queued
//!
//! [`CaluConfig::queue`] selects the dynamic section's
//! [`QueueDiscipline`](calu_sched::QueueDiscipline) — the paper's
//! shared global queue, per-worker mutex shards with randomized
//! stealing, or per-worker lock-free Chase-Lev deques with
//! locality-tiered stealing. The full matrix (structures, defaults,
//! steal counters, when to pick which) lives in the `calu-sched` crate
//! docs; the one guarantee to remember here is that **the discipline
//! never changes the math**: writes to every tile are totally ordered
//! by the DAG's exclusive-writer rule, so all three disciplines — and
//! the batch executor's co-scheduled and co-operative paths — produce
//! bitwise-identical factors for the same input and config.

pub mod batch;
pub mod config;
pub mod error;
pub mod factorization;
pub mod fault;
pub mod gepp;
pub mod incpiv;
pub mod pivot;
pub mod pool;
pub mod shared;
pub mod simple;
pub mod sync;
pub mod threaded;
pub mod tslu;
pub mod verify;

pub use batch::{
    calu_factor_batch, calu_factor_batch_from, factor_batch, BatchItem, BatchItemOutcome,
    BatchOutcome, BatchSource,
};
pub use config::{CaluConfig, DEFAULT_BATCH_SMALL_CUTOFF};
pub use error::CaluError;
pub use factorization::Factorization;
pub use fault::{FaultKind, FaultPlan, WorkerFault};
pub use gepp::gepp_factor;
pub use incpiv::{incpiv_factor, IncPivFactors};
pub use pool::{JobSink, PoolOutcome, PoolSource, PoolSplit, ServicePool};
pub use simple::calu_simple;
pub use threaded::{
    calu_factor, calu_factor_report, calu_factor_traced, cholesky_factor, cholesky_factor_report,
    KernelSet, ThreadStats,
};
