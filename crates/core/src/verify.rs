//! Standalone verification helpers used by tests and examples.

use calu_matrix::{norms, ops, DenseMatrix};

/// Relative backward error of a solve: `‖A·x − b‖ / (‖A‖·‖x‖ + ‖b‖)`.
pub fn backward_error(a: &DenseMatrix, x: &DenseMatrix, b: &DenseMatrix) -> f64 {
    let ax = ops::matmul(a, x);
    let diff = ops::sub(&ax, b);
    norms::frobenius(&diff)
        / (norms::frobenius(a) * norms::frobenius(x) + norms::frobenius(b)).max(f64::MIN_POSITIVE)
}

/// Componentwise check that a matrix contains no NaN or infinity.
pub fn all_finite(a: &DenseMatrix) -> bool {
    a.as_slice().iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gepp::gepp_factor;
    use calu_matrix::gen;

    #[test]
    fn backward_error_small_for_good_solve() {
        let a = gen::uniform(20, 20, 1);
        let x_true = gen::uniform(20, 1, 2);
        let b = ops::matmul(&a, &x_true);
        let x = gepp_factor(&a, 4).solve(&b);
        assert!(backward_error(&a, &x, &b) < 1e-13);
    }

    #[test]
    fn backward_error_large_for_wrong_solution() {
        let a = gen::uniform(10, 10, 3);
        let b = gen::uniform(10, 1, 4);
        let junk = gen::uniform(10, 1, 5);
        assert!(backward_error(&a, &junk, &b) > 1e-3);
    }

    #[test]
    fn finiteness_check() {
        let a = gen::uniform(4, 4, 6);
        assert!(all_finite(&a));
        let mut bad = a.clone();
        bad.set(1, 1, f64::NAN);
        assert!(!all_finite(&bad));
        bad.set(1, 1, f64::INFINITY);
        assert!(!all_finite(&bad));
    }
}
