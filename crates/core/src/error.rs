//! Error type of the factorization drivers.

use std::fmt;

/// Errors returned by the factorization drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaluError {
    /// Invalid configuration (bad block size, zero threads, dratio out of
    /// range, …).
    InvalidConfig(String),
    /// The matrix is empty.
    EmptyMatrix,
}

impl fmt::Display for CaluError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaluError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            CaluError::EmptyMatrix => write!(f, "matrix is empty"),
        }
    }
}

impl std::error::Error for CaluError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CaluError::InvalidConfig("b = 0".into())
            .to_string()
            .contains("b = 0"));
        assert!(CaluError::EmptyMatrix.to_string().contains("empty"));
    }
}
