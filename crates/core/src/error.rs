//! Error type of the factorization drivers.

use std::fmt;

/// Errors returned by the factorization drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaluError {
    /// Invalid configuration (bad block size, zero threads, dratio out of
    /// range, …).
    InvalidConfig(String),
    /// The matrix is empty.
    EmptyMatrix,
    /// A worker panicked while executing the job (kernel assert, index
    /// bug). The job fails; the pool survives and keeps serving.
    TaskPanic(String),
    /// A worker was lost (or stopped making progress) mid-factorization
    /// and the job could not be completed by the survivors — e.g. the
    /// service watchdog detected a progress stall. The job fails; the
    /// pool survives and keeps serving on the remaining workers.
    WorkerLost(String),
}

impl fmt::Display for CaluError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaluError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            CaluError::EmptyMatrix => write!(f, "matrix is empty"),
            CaluError::TaskPanic(s) => write!(f, "worker panicked while executing the job: {s}"),
            CaluError::WorkerLost(s) => write!(f, "worker lost while executing the job: {s}"),
        }
    }
}

impl std::error::Error for CaluError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CaluError::InvalidConfig("b = 0".into())
            .to_string()
            .contains("b = 0"));
        assert!(CaluError::EmptyMatrix.to_string().contains("empty"));
        assert!(CaluError::TaskPanic("index 9 out of bounds".into())
            .to_string()
            .contains("panicked"));
        assert!(CaluError::WorkerLost("worker 2 died".into())
            .to_string()
            .contains("lost"));
    }
}
