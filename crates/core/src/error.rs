//! Error type of the factorization drivers.

use std::fmt;

/// Errors returned by the factorization drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaluError {
    /// Invalid configuration (bad block size, zero threads, dratio out of
    /// range, …).
    InvalidConfig(String),
    /// The matrix is empty.
    EmptyMatrix,
    /// A worker panicked while executing the job (kernel assert, index
    /// bug). The job fails; the pool survives and keeps serving.
    TaskPanic(String),
}

impl fmt::Display for CaluError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaluError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            CaluError::EmptyMatrix => write!(f, "matrix is empty"),
            CaluError::TaskPanic(s) => write!(f, "worker panicked while executing the job: {s}"),
        }
    }
}

impl std::error::Error for CaluError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CaluError::InvalidConfig("b = 0".into())
            .to_string()
            .contains("b = 0"));
        assert!(CaluError::EmptyMatrix.to_string().contains("empty"));
        assert!(CaluError::TaskPanic("index 9 out of bounds".into())
            .to_string()
            .contains("panicked"));
    }
}
