//! The result of an LU factorization: `P·A = L·U`.

use calu_kernels::{dtrsm_left_lower_unit, laswp};
use calu_matrix::{norms, ops, DenseMatrix, RowPerm};

/// A completed factorization `P·A = L·U` with partial/tournament
/// pivoting. `lu` packs `L` (unit diagonal implicit) below the diagonal
/// and `U` on/above it, LAPACK-style.
#[derive(Debug, Clone)]
pub struct Factorization {
    /// Packed factors.
    pub lu: DenseMatrix,
    /// Row permutation (`P` as a swap sequence).
    pub perm: RowPerm,
    /// First column where a zero pivot appeared, if the matrix was
    /// numerically singular.
    pub singular_at: Option<usize>,
}

impl Factorization {
    /// True if no zero pivot was hit.
    pub fn is_nonsingular(&self) -> bool {
        self.singular_at.is_none()
    }

    /// Reconstruct `L·U`.
    pub fn reconstruct(&self) -> DenseMatrix {
        ops::matmul(&self.lu.lower_unit(), &self.lu.upper())
    }

    /// Relative residual `‖P·A − L·U‖_F / ‖A‖_F`.
    pub fn residual(&self, a: &DenseMatrix) -> f64 {
        let pa = self.perm.permuted(a);
        let diff = ops::sub(&self.reconstruct(), &pa);
        norms::frobenius(&diff) / norms::frobenius(a).max(f64::MIN_POSITIVE)
    }

    /// Lower-triangular Cholesky factor `L` (non-unit diagonal) read
    /// from the packed storage — meaningful only for factorizations
    /// produced by the Cholesky kernel set, whose `lu` holds `L` on and
    /// below the diagonal and the untouched input above it.
    pub fn cholesky_l(&self) -> DenseMatrix {
        let n = self.lu.rows();
        DenseMatrix::from_fn(n, n, |i, j| if i >= j { self.lu.get(i, j) } else { 0.0 })
    }

    /// Relative residual `‖A − L·Lᵀ‖_F / ‖A‖_F` of a Cholesky
    /// factorization (the permutation is the identity — Cholesky does
    /// not pivot).
    pub fn cholesky_residual(&self, a: &DenseMatrix) -> f64 {
        let l = self.cholesky_l();
        let lt = DenseMatrix::from_fn(l.rows(), l.rows(), |i, j| l.get(j, i));
        let diff = ops::sub(&ops::matmul(&l, &lt), a);
        norms::frobenius(&diff) / norms::frobenius(a).max(f64::MIN_POSITIVE)
    }

    /// Element growth factor `max|U| / max|A|` — the pivoting-stability
    /// figure the paper cites for tournament vs. partial pivoting.
    pub fn growth_factor(&self, a: &DenseMatrix) -> f64 {
        self.lu.upper().max_abs() / a.max_abs().max(f64::MIN_POSITIVE)
    }

    /// Solve `A·x = rhs` (square systems) using the factors.
    pub fn solve(&self, rhs: &DenseMatrix) -> DenseMatrix {
        let n = self.lu.rows();
        assert_eq!(self.lu.cols(), n, "solve needs a square factorization");
        assert_eq!(rhs.rows(), n, "rhs height mismatch");
        let mut x = rhs.clone();
        // x <- P rhs
        let nrhs = x.cols();
        let ld = x.ld();
        laswp::dlaswp(
            nrhs,
            x.as_mut_slice(),
            ld,
            self.perm.offset(),
            self.perm.pivots(),
        );
        // forward: L y = P rhs
        dtrsm_left_lower_unit(
            n,
            nrhs,
            self.lu.as_slice(),
            self.lu.ld(),
            x.as_mut_slice(),
            ld,
        );
        // back substitution: U x = y
        for col in 0..nrhs {
            for k in (0..n).rev() {
                let mut s = x.get(k, col);
                for j in (k + 1)..n {
                    s -= self.lu.get(k, j) * x.get(j, col);
                }
                x.set(k, col, s / self.lu.get(k, k));
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_kernels::dgetf2;
    use calu_matrix::gen;

    fn factor(a: &DenseMatrix) -> Factorization {
        let mut lu = a.clone();
        let (m, n, ld) = (lu.rows(), lu.cols(), lu.ld());
        let p = dgetf2(m, n, lu.as_mut_slice(), ld);
        Factorization {
            lu,
            perm: RowPerm::from_pivots(0, p.piv),
            singular_at: p.singular_at,
        }
    }

    #[test]
    fn residual_is_small_for_random() {
        let a = gen::uniform(40, 40, 1);
        let f = factor(&a);
        assert!(f.is_nonsingular());
        assert!(f.residual(&a) < 1e-13, "residual {}", f.residual(&a));
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = gen::uniform(30, 30, 2);
        let x_true = gen::uniform(30, 2, 3);
        let rhs = ops::matmul(&a, &x_true);
        let f = factor(&a);
        let x = f.solve(&rhs);
        assert!(x.approx_eq(&x_true, 1e-8));
    }

    #[test]
    fn growth_factor_of_wilkinson() {
        let a = gen::wilkinson(12);
        let f = factor(&a);
        let g = f.growth_factor(&a);
        assert!(
            (g - 2f64.powi(11)).abs() < 1e-6,
            "GEPP growth 2^(n-1), got {g}"
        );
    }

    #[test]
    fn singular_flag_propagates() {
        let z = DenseMatrix::zeros(4, 4);
        let f = factor(&z);
        assert!(!f.is_nonsingular());
        assert_eq!(f.singular_at, Some(0));
    }
}
