//! Plain dense CALU — the numerical oracle.
//!
//! A direct transcription of the algorithm in §2 on a single dense
//! matrix: per panel, tournament-pivot, swap, factor the panel without
//! further pivoting, triangular-solve the U block row, update the
//! trailing matrix. No tiles, no threads, no layouts — just the math.
//! Every optimized path in this crate is tested against it.

use crate::factorization::Factorization;
use crate::pivot::swaps_for_selection;
use crate::tslu::tournament_pivots;
use calu_kernels::{dgemm, dtrsm_left_lower_unit, lu_nopiv_unblocked};
use calu_matrix::{DenseMatrix, RowPerm};

/// Sequential dense CALU with tournament pivoting.
///
/// `b` is the panel width; `chunks` the number of TSLU chunks per panel
/// (the paper uses one chunk per thread of the panel's grid column).
pub fn calu_simple(a: &DenseMatrix, b: usize, chunks: usize) -> Factorization {
    assert!(b > 0, "panel width must be positive");
    assert!(chunks > 0, "need at least one TSLU chunk");
    let m = a.rows();
    let n = a.cols();
    let mut lu = a.clone();
    let mut perm = RowPerm::identity();
    let mut singular_at = None;
    let kmax = m.min(n);

    let mut k0 = 0;
    while k0 < kmax {
        let w = b.min(kmax - k0);
        // --- TSLU: elect pivots for the panel A[k0.., k0..k0+w] ---
        let panel = lu.submatrix(k0, k0, m - k0, w);
        let local = tournament_pivots(&panel, chunks);
        let selected: Vec<usize> = local.iter().map(|r| r + k0).collect();
        let pk = swaps_for_selection(k0, &selected);
        // apply the swaps to the whole matrix (right swaps for trailing
        // columns + immediate left swaps; algebraically identical to the
        // paper's deferred dlaswp at line 43)
        pk.apply(&mut lu);
        perm.extend(&pk);

        // --- factor the panel with no pivoting ---
        {
            let ld = lu.ld();
            let off = k0 * ld + k0;
            if let Some(c) = lu_nopiv_unblocked(m - k0, w, &mut lu.as_mut_slice()[off..], ld) {
                if singular_at.is_none() {
                    singular_at = Some(k0 + c);
                }
            }
        }

        let next = k0 + w;
        if next < n {
            // --- U block row: A[k0..next, next..n] ← L_kk⁻¹ · A[..] ---
            let ld = lu.ld();
            let (head, tail) = lu.as_mut_slice().split_at_mut(next * ld);
            let lkk = &head[k0 * ld + k0..];
            dtrsm_left_lower_unit(w, n - next, lkk, ld, &mut tail[k0..], ld);
            // --- trailing update ---
            if next < m {
                unsafe {
                    let a21 = head.as_ptr().add(k0 * ld + next);
                    let u12 = tail.as_ptr().add(k0);
                    let a22 = tail.as_mut_ptr().add(next);
                    calu_kernels::gemm::dgemm_raw(
                        m - next,
                        n - next,
                        w,
                        -1.0,
                        a21,
                        ld,
                        u12,
                        ld,
                        1.0,
                        a22,
                        ld,
                    );
                }
            }
        }
        k0 = next;
    }
    let _ = dgemm; // silence unused import on some configurations
    Factorization {
        lu,
        perm,
        singular_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gepp::gepp_factor;
    use calu_matrix::{gen, ops};

    #[test]
    fn factors_random_square_matrices() {
        for (n, b, chunks, seed) in [(16, 4, 2, 1), (50, 8, 4, 2), (64, 16, 1, 3), (37, 10, 3, 4)] {
            let a = gen::uniform(n, n, seed);
            let f = calu_simple(&a, b, chunks);
            assert!(f.is_nonsingular(), "n={n} b={b}");
            let r = f.residual(&a);
            assert!(r < 1e-12, "residual {r} for n={n} b={b} chunks={chunks}");
        }
    }

    #[test]
    fn factors_tall_matrices() {
        let a = gen::uniform(60, 24, 5);
        let f = calu_simple(&a, 8, 4);
        assert!(f.residual(&a) < 1e-12);
        // L is 60x24 trapezoid, U 24x24
        assert_eq!(f.lu.rows(), 60);
    }

    #[test]
    fn single_panel_equals_whole_matrix() {
        let a = gen::uniform(20, 20, 6);
        let f = calu_simple(&a, 32, 2);
        assert!(f.residual(&a) < 1e-13);
    }

    #[test]
    fn block_size_does_not_change_solution() {
        let a = gen::uniform(48, 48, 7);
        let rhs = gen::uniform(48, 1, 8);
        let x1 = calu_simple(&a, 6, 2).solve(&rhs);
        let x2 = calu_simple(&a, 16, 4).solve(&rhs);
        let x3 = gepp_factor(&a, 8).solve(&rhs);
        assert!(x1.approx_eq(&x2, 1e-8));
        assert!(x1.approx_eq(&x3, 1e-8));
    }

    #[test]
    fn growth_factor_comparable_to_gepp_on_random() {
        // tournament pivoting is "as stable as partial pivoting in
        // practice" (§2) — growth within a small factor of GEPP's
        let a = gen::uniform(64, 64, 9);
        let calu = calu_simple(&a, 8, 4);
        let gepp = gepp_factor(&a, 8);
        let gc = calu.growth_factor(&a);
        let gg = gepp.growth_factor(&a);
        assert!(gc < 8.0 * gg, "calu growth {gc} vs gepp {gg}");
    }

    #[test]
    fn diagonally_dominant_needs_no_row_exchanges() {
        let a = gen::diag_dominant(32, 10);
        let f = calu_simple(&a, 8, 2);
        assert!(f.residual(&a) < 1e-13);
        // every pivot stays on the diagonal
        assert_eq!(f.perm.sign(), 1.0);
        assert!(f.perm.pivots().iter().enumerate().all(|(k, &p)| p == k));
    }

    #[test]
    fn singular_matrix_is_flagged() {
        let a = gen::rank_deficient(24, 24, 10, 11);
        let f = calu_simple(&a, 6, 2);
        // exact zero pivots may be perturbed by roundoff; at minimum the
        // factorization must complete and reconstruct PA where defined
        if f.is_nonsingular() {
            // near-singular: huge growth is acceptable, but shape holds
            assert_eq!(f.lu.rows(), 24);
        } else {
            assert!(f.singular_at.unwrap() >= 10 - 1);
        }
        let z = DenseMatrix::zeros(8, 8);
        let fz = calu_simple(&z, 4, 2);
        assert_eq!(fz.singular_at, Some(0));
    }

    #[test]
    fn permutation_is_consistent() {
        let a = gen::uniform(30, 30, 12);
        let f = calu_simple(&a, 10, 3);
        // P A == L U within tolerance, via explicit permutation
        let pa = f.perm.permuted(&a);
        let lu = ops::matmul(&f.lu.lower_unit(), &f.lu.upper());
        assert!(lu.approx_eq(&pa, 1e-11));
    }
}
