//! Shared tile access for the parallel executor.
//!
//! All tile storages keep their elements in one contiguous buffer
//! (`calu-matrix`'s [`TileStorage`] contract). The executor needs many
//! threads writing *different* tiles of that buffer concurrently; the
//! task DAG guarantees the tiles are disjoint, and this module funnels
//! the one unavoidable `unsafe` into a single audited wrapper.

use calu_matrix::storage::TileLoc;
use calu_matrix::TileStorage;
use std::cell::UnsafeCell;

/// A raw, writable view of one tile (column-major, leading dimension
/// `ld`).
#[derive(Debug, Clone, Copy)]
pub struct TilePtr {
    /// Pointer to element `(0, 0)` of the tile.
    pub ptr: *mut f64,
    /// Leading dimension.
    pub ld: usize,
    /// Tile rows.
    pub rows: usize,
    /// Tile columns.
    pub cols: usize,
}

impl TilePtr {
    /// Read element `(i, j)`.
    ///
    /// # Safety
    /// The caller must have (shared) access to the tile per the DAG.
    #[inline]
    pub unsafe fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        *self.ptr.add(i + j * self.ld)
    }

    /// Write element `(i, j)`.
    ///
    /// # Safety
    /// The caller must have exclusive access to the tile per the DAG.
    #[inline]
    pub unsafe fn set(&self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        *self.ptr.add(i + j * self.ld) = v;
    }
}

/// Storage wrapper handing out per-tile raw pointers.
///
/// Safety model: tasks of the factorization DAG write disjoint tiles at
/// any instant (enforced by dependence counting), so concurrent
/// [`SharedTiles::tile_ptr`] uses never alias writes. Tiles may share
/// cache lines (CM/BCL interleave tiles within columns of the parent
/// buffer) but never share *elements*.
pub struct SharedTiles<S: TileStorage> {
    inner: UnsafeCell<S>,
}

// SAFETY: access discipline is delegated to the task DAG; see type docs.
unsafe impl<S: TileStorage + Send> Send for SharedTiles<S> {}
unsafe impl<S: TileStorage + Send> Sync for SharedTiles<S> {}

impl<S: TileStorage> SharedTiles<S> {
    /// Wrap a storage for shared tile access.
    pub fn new(storage: S) -> Self {
        Self {
            inner: UnsafeCell::new(storage),
        }
    }

    /// Unwrap the storage after all workers have finished.
    pub fn into_inner(self) -> S {
        self.inner.into_inner()
    }

    /// Shared view of the storage without consuming the wrapper — for
    /// callers that hold the wrapper behind an `Arc` (the service pool)
    /// and extract results once the DAG has drained.
    ///
    /// # Safety
    /// All tasks must have completed: no thread may hold (or later
    /// create) a writable tile view while the returned borrow lives.
    pub unsafe fn inner(&self) -> &S {
        &*self.inner.get()
    }

    /// Tile location metadata (no data access).
    pub fn loc(&self, ti: usize, tj: usize) -> TileLoc {
        // SAFETY: tile_loc reads immutable geometry only.
        unsafe { (*self.inner.get()).tile_loc(ti, tj) }
    }

    /// Raw pointer to tile `(ti, tj)`.
    ///
    /// # Safety
    /// Callers must respect the DAG: no two threads may hold a writable
    /// view of the same tile at the same time, and readers must be
    /// ordered after the writer that produced the data.
    pub unsafe fn tile_ptr(&self, ti: usize, tj: usize) -> TilePtr {
        let loc = self.loc(ti, tj);
        let base = (*self.inner.get()).buffer_mut().as_mut_ptr();
        TilePtr {
            ptr: base.add(loc.offset),
            ld: loc.ld,
            rows: loc.rows,
            cols: loc.cols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::{gen, BclMatrix, ProcessGrid, TileStorage};

    #[test]
    fn tile_ptr_reads_match_storage() {
        let a = gen::uniform(12, 12, 1);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let s = BclMatrix::from_dense(&a, 4, grid);
        let shared = SharedTiles::new(s);
        unsafe {
            let t = shared.tile_ptr(1, 2);
            assert_eq!(t.rows, 4);
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(t.get(i, j), a.get(4 + i, 8 + j));
                }
            }
        }
    }

    #[test]
    fn writes_are_visible_after_unwrap() {
        let a = gen::uniform(8, 8, 2);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let shared = SharedTiles::new(BclMatrix::from_dense(&a, 4, grid));
        unsafe {
            let t = shared.tile_ptr(0, 0);
            t.set(1, 1, 42.0);
        }
        let back = shared.into_inner().to_dense();
        assert_eq!(back.get(1, 1), 42.0);
        assert_eq!(back.get(0, 0), a.get(0, 0));
    }

    #[test]
    fn disjoint_tiles_have_disjoint_elements() {
        let grid = ProcessGrid::new(2, 2).unwrap();
        let shared = SharedTiles::new(BclMatrix::zeros(8, 8, 4, grid));
        unsafe {
            let a = shared.tile_ptr(0, 0);
            let b = shared.tile_ptr(1, 1);
            a.set(0, 0, 1.0);
            b.set(0, 0, 2.0);
            assert_eq!(a.get(0, 0), 1.0);
            assert_eq!(b.get(0, 0), 2.0);
        }
    }
}
