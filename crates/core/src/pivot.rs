//! From tournament winners to swap sequences.
//!
//! TSLU returns the *set* of global rows selected as pivots for a panel;
//! the factorization needs that as a LAPACK-style sequence of row swaps
//! `Π_K` that moves those rows into the diagonal block (§2: "these pivots
//! are permuted into the diagonal positions").

use calu_matrix::RowPerm;
use std::collections::HashMap;

/// Build the swap sequence that brings `selected[t]` (global row ids, all
/// `>= base`) to row `base + t`, for `t = 0..selected.len()`, emulating
/// the swaps being applied in order.
///
/// Panics if a selected row is out of range or repeated.
pub fn swaps_for_selection(base: usize, selected: &[usize]) -> RowPerm {
    // current position of any row that has been displaced
    let mut pos_of: HashMap<usize, usize> = HashMap::new();
    // which row currently sits at a position (only tracked once touched)
    let mut row_at: HashMap<usize, usize> = HashMap::new();

    let mut piv = Vec::with_capacity(selected.len());
    for (t, &row) in selected.iter().enumerate() {
        assert!(
            row >= base,
            "selected row {row} above the panel base {base}"
        );
        let target = base + t;
        let src = *pos_of.get(&row).unwrap_or(&row);
        assert!(src >= target, "row {row} selected twice");
        piv.push(src);
        if src != target {
            let displaced = *row_at.get(&target).unwrap_or(&target);
            // swap occupants of `target` and `src`
            row_at.insert(target, row);
            row_at.insert(src, displaced);
            pos_of.insert(row, target);
            pos_of.insert(displaced, src);
        } else {
            row_at.insert(target, row);
            pos_of.insert(row, target);
        }
    }
    RowPerm::from_pivots(base, piv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::DenseMatrix;

    /// after applying the swaps, rows base..base+w of the matrix must be
    /// exactly the selected rows, in order
    fn check(base: usize, selected: &[usize], nrows: usize) {
        let a = DenseMatrix::from_fn(nrows, 1, |i, _| i as f64);
        let perm = swaps_for_selection(base, selected);
        let p = perm.permuted(&a);
        for (t, &row) in selected.iter().enumerate() {
            assert_eq!(
                p.get(base + t, 0),
                row as f64,
                "selection {selected:?} base {base}"
            );
        }
    }

    #[test]
    fn identity_selection() {
        check(0, &[0, 1, 2], 5);
        let perm = swaps_for_selection(0, &[0, 1, 2]);
        assert_eq!(perm.pivots(), &[0, 1, 2]); // all no-op swaps
    }

    #[test]
    fn simple_selection() {
        check(0, &[3, 1], 5);
        check(0, &[4, 3, 2], 6);
    }

    #[test]
    fn selection_with_base_offset() {
        check(2, &[5, 2, 4], 8);
        check(3, &[3, 7], 8);
    }

    #[test]
    fn selection_that_displaces_earlier_targets() {
        // selecting row that currently holds a displaced occupant
        check(0, &[2, 0, 1], 4);
        check(0, &[1, 0], 3);
        check(0, &[3, 2, 1, 0], 4);
    }

    #[test]
    fn long_random_selection() {
        // deterministic shuffle of 0..16 taken 8 at a time
        let sel = [9, 3, 15, 0, 7, 12, 4, 11];
        check(0, &sel, 16);
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn rejects_duplicates() {
        swaps_for_selection(0, &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "above the panel base")]
    fn rejects_rows_above_base() {
        swaps_for_selection(3, &[1]);
    }
}
