//! TSLU — tournament pivoting for tall-skinny panels (§2).
//!
//! The panel's rows are split into chunks; each chunk elects `w`
//! candidate rows by Gaussian elimination with partial pivoting (the
//! "best available sequential algorithm" — we use recursive LU, like the
//! paper); candidates meet in a binary knockout tree whose matches are
//! again GEPP on the two stacked candidate sets. The winners are pivots
//! for the whole panel, selected with one reduction instead of one
//! synchronization per column.

use calu_kernels::dgetrf_recursive;
use calu_matrix::DenseMatrix;

/// A candidate set: up to `w` rows with their original values and the
/// row indices they came from (indices are whatever space the caller
/// works in — local to the panel here, global in the executor).
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Original (unfactored) values of the candidate rows, `len × w`.
    pub rows: DenseMatrix,
    /// Source index of each candidate row.
    pub ids: Vec<usize>,
}

impl Candidate {
    /// Elect up to `w` pivot candidates from the given rows by GEPP.
    ///
    /// `block` holds the rows' values (`r × w`), `ids` their source
    /// indices. The returned candidate carries the *original* values of
    /// the winning rows — candidates are never partially eliminated.
    pub fn elect(block: &DenseMatrix, ids: &[usize], w: usize) -> Candidate {
        assert_eq!(block.rows(), ids.len(), "one id per row");
        assert_eq!(block.cols(), w, "panel width mismatch");
        let keep = w.min(block.rows());
        // run GEPP on a scratch copy to discover the row ranking
        let mut scratch = block.clone();
        let (r, ld) = (scratch.rows(), scratch.ld());
        let piv = dgetrf_recursive(r, w, scratch.as_mut_slice(), ld);
        // replay the swap sequence on the id list
        let mut order: Vec<usize> = (0..r).collect();
        for (k, &p) in piv.piv.iter().enumerate() {
            order.swap(k, p);
        }
        let rows = DenseMatrix::from_fn(keep, w, |i, j| block.get(order[i], j));
        let ids = order[..keep].iter().map(|&i| ids[i]).collect();
        Candidate { rows, ids }
    }

    /// Play one knockout match: stack two candidate sets and elect again.
    pub fn combine(a: &Candidate, b: &Candidate, w: usize) -> Candidate {
        let total = a.ids.len() + b.ids.len();
        let stacked = DenseMatrix::from_fn(total, w, |i, j| {
            if i < a.ids.len() {
                a.rows.get(i, j)
            } else {
                b.rows.get(i - a.ids.len(), j)
            }
        });
        let ids: Vec<usize> = a.ids.iter().chain(b.ids.iter()).copied().collect();
        Candidate::elect(&stacked, &ids, w)
    }
}

/// One knockout match of the reduction tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CombineStep {
    /// Tree level (1 = just above the leaves) — matches the DAG's
    /// `PanelCombine { level, .. }`.
    pub level: u32,
    /// Position within the level — matches the DAG's `idx` (promoted odd
    /// nodes consume an index without producing a step, exactly like the
    /// DAG builder).
    pub idx: u32,
    /// Input slot (left child).
    pub left: usize,
    /// Input slot (right child).
    pub right: usize,
    /// Output slot.
    pub out: usize,
}

/// The shape of the reduction tree for `nleaves` leaves — built exactly
/// like the DAG builder pairs nodes (chunks of two, odd node promoted),
/// so the threaded executor and the task graph agree on structure.
#[derive(Debug, Clone)]
pub struct TreePlan {
    /// Combine steps in execution order; slots `0..nleaves` are leaves,
    /// combines allocate new slots upward.
    pub steps: Vec<CombineStep>,
    /// Slot holding the final winner.
    pub root: usize,
    /// Total slots (leaves + combines).
    pub slots: usize,
}

impl TreePlan {
    /// Plan the reduction over `nleaves` leaves (must be > 0).
    pub fn new(nleaves: usize) -> TreePlan {
        assert!(nleaves > 0, "tree needs at least one leaf");
        let mut steps = Vec::new();
        let mut level_nodes: Vec<usize> = (0..nleaves).collect();
        let mut next_slot = nleaves;
        let mut level = 1u32;
        while level_nodes.len() > 1 {
            let mut next = Vec::with_capacity(level_nodes.len().div_ceil(2));
            for (idx, pair) in level_nodes.chunks(2).enumerate() {
                if pair.len() == 2 {
                    steps.push(CombineStep {
                        level,
                        idx: idx as u32,
                        left: pair[0],
                        right: pair[1],
                        out: next_slot,
                    });
                    next.push(next_slot);
                    next_slot += 1;
                } else {
                    next.push(pair[0]);
                }
            }
            level_nodes = next;
            level += 1;
        }
        TreePlan {
            steps,
            root: level_nodes[0],
            slots: next_slot,
        }
    }

    /// Find the step for the DAG task `PanelCombine { level, idx }`.
    pub fn step_for(&self, level: u32, idx: u32) -> &CombineStep {
        self.steps
            .iter()
            .find(|s| s.level == level && s.idx == idx)
            .expect("combine step must exist for every DAG combine task")
    }
}

/// Run the whole tournament sequentially on a dense panel (`rows × w`):
/// split rows into `nchunks` contiguous chunks, elect per chunk, reduce.
/// Returns the selected pivot rows as indices into the panel (`0-based`,
/// `min(rows, w)` of them).
pub fn tournament_pivots(panel: &DenseMatrix, nchunks: usize) -> Vec<usize> {
    let rows = panel.rows();
    let w = panel.cols();
    assert!(rows > 0 && w > 0, "empty panel");
    let nchunks = nchunks.clamp(1, rows);
    let chunk = rows.div_ceil(nchunks);

    let mut slots: Vec<Option<Candidate>> = Vec::new();
    let mut r0 = 0;
    while r0 < rows {
        let len = chunk.min(rows - r0);
        let block = panel.submatrix(r0, 0, len, w);
        let ids: Vec<usize> = (r0..r0 + len).collect();
        slots.push(Some(Candidate::elect(&block, &ids, w)));
        r0 += len;
    }
    let plan = TreePlan::new(slots.len());
    slots.resize(plan.slots, None);
    for s in &plan.steps {
        let a = slots[s.left].take().expect("left child ready");
        let b = slots[s.right].take().expect("right child ready");
        slots[s.out] = Some(Candidate::combine(&a, &b, w));
    }
    slots[plan.root].take().expect("root").ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_matrix::gen;

    #[test]
    fn tree_plan_shapes() {
        let p1 = TreePlan::new(1);
        assert!(p1.steps.is_empty());
        assert_eq!(p1.root, 0);
        let p2 = TreePlan::new(2);
        assert_eq!(p2.steps.len(), 1);
        assert_eq!(
            (p2.steps[0].left, p2.steps[0].right, p2.steps[0].out),
            (0, 1, 2)
        );
        assert_eq!(p2.root, 2);
        // 5 leaves: (0,1)->5, (2,3)->6, 4 promoted; (5,6)->7, 4 promoted;
        // (7,4)->8
        let p5 = TreePlan::new(5);
        let triples: Vec<_> = p5.steps.iter().map(|s| (s.left, s.right, s.out)).collect();
        assert_eq!(triples, vec![(0, 1, 5), (2, 3, 6), (5, 6, 7), (7, 4, 8)]);
        assert_eq!(p5.root, 8);
        assert_eq!(p5.slots, 9);
        // level/idx addressing matches the DAG's enumeration (promoted
        // node at level 1 consumed idx 2; level 2 pairs idx 0 = (5,6),
        // the promoted leaf 4 is idx 1; level 3 pairs idx 0 = (7,4))
        assert_eq!(p5.step_for(1, 0).out, 5);
        assert_eq!(p5.step_for(1, 1).out, 6);
        assert_eq!(p5.step_for(2, 0).out, 7);
        assert_eq!(p5.step_for(3, 0).out, 8);
    }

    #[test]
    fn tree_plan_matches_dag_combine_count() {
        for leaves in 1..20 {
            let plan = TreePlan::new(leaves);
            assert_eq!(plan.steps.len(), leaves - 1, "{leaves} leaves");
        }
    }

    #[test]
    fn single_chunk_matches_gepp() {
        // with one chunk the tournament IS plain GEPP candidate election
        let a = gen::uniform(20, 4, 3);
        let piv = tournament_pivots(&a, 1);
        assert_eq!(piv.len(), 4);
        // GEPP's first pivot is the largest entry of column 0
        let max0 = (0..20)
            .max_by(|&i, &j| a.get(i, 0).abs().total_cmp(&a.get(j, 0).abs()))
            .unwrap();
        assert_eq!(piv[0], max0);
    }

    #[test]
    fn pivots_are_distinct_and_in_range() {
        for (rows, w, chunks, seed) in [(32, 8, 4, 1), (50, 5, 7, 2), (16, 16, 2, 3), (9, 3, 3, 4)]
        {
            let a = gen::uniform(rows, w, seed);
            let piv = tournament_pivots(&a, chunks);
            assert_eq!(piv.len(), w.min(rows));
            let mut sorted = piv.clone();
            sorted.sort();
            sorted.dedup();
            assert_eq!(sorted.len(), piv.len(), "duplicate pivot rows");
            assert!(piv.iter().all(|&r| r < rows));
        }
    }

    #[test]
    fn tournament_first_pivot_is_global_max_of_first_column() {
        // The first tournament winner always carries the panel's largest
        // first-column magnitude: it wins every local match.
        for chunks in [1, 2, 3, 8] {
            let a = gen::uniform(64, 6, 77);
            let piv = tournament_pivots(&a, chunks);
            let max0 = (0..64)
                .max_by(|&i, &j| a.get(i, 0).abs().total_cmp(&a.get(j, 0).abs()))
                .unwrap();
            assert_eq!(piv[0], max0, "chunks = {chunks}");
        }
    }

    #[test]
    fn tournament_pivot_block_is_nonsingular() {
        // the selected rows must form a well-conditioned w×w block for
        // random matrices: LU without pivoting on it succeeds
        let a = gen::uniform(40, 8, 9);
        let piv = tournament_pivots(&a, 5);
        let block = DenseMatrix::from_fn(8, 8, |i, j| a.get(piv[i], j));
        let mut f = block.clone();
        let ld = f.ld();
        let s = calu_kernels::lu_nopiv_unblocked(8, 8, f.as_mut_slice(), ld);
        assert!(s.is_none(), "pivot block must factor without pivoting");
        // and its diagonal pivots are not tiny
        for t in 0..8 {
            assert!(f.get(t, t).abs() > 1e-8);
        }
    }

    #[test]
    fn candidate_elect_keeps_original_values() {
        let a = gen::uniform(10, 3, 5);
        let ids: Vec<usize> = (100..110).collect();
        let c = Candidate::elect(&a, &ids, 3);
        assert_eq!(c.ids.len(), 3);
        for (t, &id) in c.ids.iter().enumerate() {
            let src = id - 100;
            for j in 0..3 {
                assert_eq!(c.rows.get(t, j), a.get(src, j), "values must be pristine");
            }
        }
    }

    #[test]
    fn short_panel_fewer_rows_than_width() {
        let a = gen::uniform(2, 2, 8);
        let piv = tournament_pivots(&a, 4);
        assert_eq!(piv.len(), 2);
    }

    #[test]
    fn wilkinson_growth_bounded_like_gepp() {
        // on Wilkinson's matrix tournament pivoting may pick different
        // pivots than GEPP but must still select distinct usable rows
        let a = gen::wilkinson(32);
        let panel = a.submatrix(0, 0, 32, 8);
        let piv = tournament_pivots(&panel, 4);
        assert_eq!(piv.len(), 8);
    }
}
