//! Blocked Gaussian elimination with partial pivoting — the LAPACK/MKL
//! `dgetrf` baseline the paper compares against (Figures 16–17).

use crate::factorization::Factorization;
use calu_kernels::{dgetrf_recursive, dtrsm_left_lower_unit, gemm::dgemm_raw, laswp};
use calu_matrix::{DenseMatrix, RowPerm};

/// Right-looking blocked GEPP with panel width `b`. The panel is
/// factored by recursive LU (sequentially — this is the critical-path
/// bottleneck the paper's CALU removes).
pub fn gepp_factor(a: &DenseMatrix, b: usize) -> Factorization {
    assert!(b > 0, "panel width must be positive");
    let m = a.rows();
    let n = a.cols();
    let mut lu = a.clone();
    let mut perm = RowPerm::identity();
    let mut singular_at = None;
    let kmax = m.min(n);
    let ld = lu.ld();

    let mut k0 = 0;
    while k0 < kmax {
        let w = b.min(kmax - k0);
        // factor panel A[k0.., k0..k0+w]
        let piv = {
            let off = k0 * ld + k0;
            dgetrf_recursive(m - k0, w, &mut lu.as_mut_slice()[off..], ld)
        };
        if let Some(c) = piv.singular_at {
            if singular_at.is_none() {
                singular_at = Some(k0 + c);
            }
        }
        // absolute pivots
        let abs_piv: Vec<usize> = piv.piv.iter().map(|p| p + k0).collect();
        // apply swaps to the left part (cols 0..k0) and right part
        {
            let s = lu.as_mut_slice();
            // left of the panel
            laswp::dlaswp(k0, &mut s[k0..], ld, 0, &piv.piv);
            // right of the panel
            let next = k0 + w;
            if next < n {
                laswp::dlaswp(n - next, &mut s[next * ld + k0..], ld, 0, &piv.piv);
            }
        }
        perm.extend(&RowPerm::from_pivots(k0, abs_piv));

        let next = k0 + w;
        if next < n {
            let (head, tail) = lu.as_mut_slice().split_at_mut(next * ld);
            let lkk = &head[k0 * ld + k0..];
            dtrsm_left_lower_unit(w, n - next, lkk, ld, &mut tail[k0..], ld);
            if next < m {
                unsafe {
                    let a21 = head.as_ptr().add(k0 * ld + next);
                    let u12 = tail.as_ptr().add(k0);
                    let a22 = tail.as_mut_ptr().add(next);
                    dgemm_raw(m - next, n - next, w, -1.0, a21, ld, u12, ld, 1.0, a22, ld);
                }
            }
        }
        k0 = next;
    }
    Factorization {
        lu,
        perm,
        singular_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_kernels::dgetf2;
    use calu_matrix::gen;

    #[test]
    fn matches_unblocked_reference_exactly() {
        for (n, b, seed) in [(24, 8, 1), (33, 7, 2), (16, 32, 3)] {
            let a = gen::uniform(n, n, seed);
            let blocked = gepp_factor(&a, b);
            let mut unblocked = a.clone();
            let ld = unblocked.ld();
            let piv = dgetf2(n, n, unblocked.as_mut_slice(), ld);
            assert_eq!(
                blocked.perm.pivots(),
                &piv.piv[..],
                "pivot sequences must agree (n={n}, b={b})"
            );
            assert!(blocked.lu.approx_eq(&unblocked, 1e-10));
        }
    }

    #[test]
    fn residual_small_on_random() {
        for n in [10, 47, 100] {
            let a = gen::uniform(n, n, n as u64);
            let f = gepp_factor(&a, 16);
            assert!(f.residual(&a) < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn rectangular_shapes() {
        let tall = gen::uniform(80, 30, 4);
        assert!(gepp_factor(&tall, 12).residual(&tall) < 1e-12);
        let wide = gen::uniform(30, 80, 5);
        assert!(gepp_factor(&wide, 12).residual(&wide) < 1e-12);
    }

    #[test]
    fn wilkinson_growth_is_exactly_gepp() {
        let a = gen::wilkinson(16);
        let f = gepp_factor(&a, 4);
        assert!((f.growth_factor(&a) - 2f64.powi(15)).abs() < 1e-8);
    }
}
