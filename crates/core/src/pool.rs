//! The request-persistent worker pool behind the factorization service.
//!
//! `crate::batch` spawns its pool per call and joins it when the sweep
//! drains; this module generalizes that to a [`ServicePool`] whose
//! workers are spawned **once** and then block on a service queue until
//! [`ServicePool::drain`] — the substrate `calu-serve`'s `FactorService`
//! builds its admission, lifecycle and streaming layers on. The
//! execution modes are the batch executor's two, verbatim:
//!
//! * **small** jobs (larger dimension ≤ [`CaluConfig::batch_small_cutoff`]
//!   with [`CaluConfig::batch_threads_per_item`] `<` threads) are
//!   *co-scheduled*: the claiming worker materializes the source, builds
//!   the item state and drains the DAG sequentially, all worker-locally
//!   (the same `run_item_sequential` the batch path runs, so the bits
//!   are too);
//! * **large** jobs run the hybrid static/dynamic schedule
//!   co-operatively: the claiming worker publishes a shared run every
//!   pool worker pulls from — static tasks from the per-worker queues by
//!   block-cyclic ownership, dynamic ones from a *per-run* shared heap
//!   in Algorithm 2's DFS order (the paper-verbatim
//!   [`QueueDiscipline::Global`](calu_sched::QueueDiscipline) shape;
//!   queue discipline never changes the math, so the service runs every
//!   job's dynamic section on the simplest one).
//!
//! Job ordering is delegated to [`ClassLanes`]: workers prefer
//! higher-priority classes with bounded starvation of lower ones.
//! Results leave through a caller-supplied [`JobSink`] — the pool knows
//! nothing about handles, events or admission; that is the service
//! crate's business.
//!
//! Worker wakeup is a condition variable with a 1 ms timed wait, so a
//! notification lost to a race costs at most one tick, never a hang.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use calu_dag::TaskId;
use calu_kernels::GemmScratch;
use calu_matrix::{
    gen, BclMatrix, CmTiles, DenseMatrix, Layout, ProcessGrid, TileStorage, TlbMatrix,
};
use calu_sched::{nstatic_for, ClassLanes, JobClass, QueueSource};
use calu_trace::{TaskSpan, Timeline};

use crate::batch::{run_item_sequential, span_kind, WorkerHaul};
use crate::config::CaluConfig;
use crate::error::CaluError;
use crate::factorization::Factorization;
use crate::fault::{FaultAction, FaultClock, FaultKind};
use crate::sync::{pin_current_thread, Mutex};
use crate::threaded::{apply_left_swaps, host_topology, ItemState, KernelSet, ThreadStats};

/// What one service job factors. Owned (`'static`) so a job can outlive
/// its submitter: either dense data moved in, or a seeded generator
/// materialized lazily on the worker that claims the job.
#[derive(Debug, Clone)]
pub enum PoolSource {
    /// Dense data, moved into the job.
    Dense(DenseMatrix),
    /// A seeded uniform generator matrix, materialized on the claiming
    /// worker (`calu_matrix::gen::uniform`).
    Uniform {
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A seeded symmetric positive-definite generator matrix,
    /// materialized on the claiming worker
    /// (`calu_matrix::gen::spd_uniform`) — the natural source for
    /// [`KernelSet::Cholesky`] jobs.
    SpdUniform {
        /// Order (the matrix is `n×n`).
        n: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl PoolSource {
    /// `(rows, cols)` without materializing.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            PoolSource::Dense(a) => (a.rows(), a.cols()),
            PoolSource::Uniform { m, n, .. } => (*m, *n),
            PoolSource::SpdUniform { n, .. } => (*n, *n),
        }
    }

    /// The element data, generated on the calling thread for the
    /// generator variants.
    pub fn materialize(self) -> DenseMatrix {
        match self {
            PoolSource::Dense(a) => a,
            PoolSource::Uniform { m, n, seed } => gen::uniform(m, n, seed),
            PoolSource::SpdUniform { n, seed } => gen::spd_uniform(n, seed),
        }
    }
}

/// Everything the pool knows about one completed job — the raw
/// material the service's report builder shapes into a facade `Report`.
#[derive(Debug)]
pub struct PoolOutcome {
    /// The factors, bitwise-identical to a solo `calu_factor` /
    /// `cholesky_factor` with the same config.
    pub factorization: Factorization,
    /// Which algorithm's kernels factored the job — the service's
    /// report builder keys its residual/flops shaping on this.
    pub kernels: KernelSet,
    /// Per-worker spans, time-shifted so the job's first task starts
    /// at 0.
    pub timeline: Timeline,
    /// Per-worker queue accounting for this job's tasks.
    pub stats: Vec<ThreadStats>,
    /// First task start → last task end.
    pub makespan: f64,
    /// Whether the job was claimed whole by one worker (small route)
    /// rather than run co-operatively by the pool.
    pub co_scheduled: bool,
    /// `(rows, cols)` of the input.
    pub dims: (usize, usize),
    /// `‖PA − LU‖ / ‖A‖` (LU jobs) or `‖A − LLᵀ‖ / ‖A‖` (Cholesky
    /// jobs), when the pool was spawned with verification.
    pub residual: Option<f64>,
    /// Element growth factor, when verification is on — LU jobs only
    /// (Cholesky does not pivot, so the figure is meaningless there).
    pub growth_factor: Option<f64>,
}

impl PoolOutcome {
    /// Distill this job's schedule readings into an
    /// [`Observation`](calu_sched::adaptive::Observation) — the pool's
    /// feedback hook for the adaptive split controller. The formulas
    /// match the facade's `ScheduleMetrics` accessors (failure rate =
    /// failed sweeps / total sweeps, remote fraction = remote steals /
    /// total steals), so observations fed from a service job and from a
    /// solo run's `Report::schedule` read on one scale.
    pub fn observation(&self) -> calu_sched::adaptive::Observation {
        let threads = self.stats.len().max(1);
        let total_idle: f64 = (0..self.timeline.cores())
            .map(|c| self.timeline.idle_time(c))
            .sum();
        let steals: u64 = self.stats.iter().map(|s| s.steal_pops).sum();
        let remote: u64 = self.stats.iter().map(|s| s.remote_steal_pops).sum();
        let failed: u64 = self.stats.iter().map(|s| s.failed_steals).sum();
        let sweeps = steals + failed;
        let contention = if sweeps == 0 {
            0.0
        } else {
            failed as f64 / sweeps as f64
        };
        let remote_fraction = if steals == 0 {
            0.0
        } else {
            remote as f64 / steals as f64
        };
        calu_sched::adaptive::Observation::new(threads, self.makespan, total_idle)
            .with_contention(contention)
            .with_remote_fraction(remote_fraction)
            .with_lost(self.stats.iter().filter(|s| s.lost).count())
            .with_rescued(self.stats.iter().map(|s| s.rescued).sum())
            .with_dims(self.dims.0, self.dims.1)
    }
}

/// Where a job's result goes. The service layer implements this to
/// route outcomes into handles and event streams; tests implement it
/// with a channel. `started` fires when a worker claims the job (the
/// `Queued → Running` transition), `finished` exactly once with the
/// terminal result.
pub trait JobSink: Send + 'static {
    /// A worker claimed the job.
    fn started(&self) {}
    /// The job reached a terminal state.
    fn finished(self: Box<Self>, res: Result<PoolOutcome, CaluError>);
}

/// Tile storages the pool can run — the three paper layouts, each
/// knowing how to build itself from dense data. `to_dense` comes with
/// [`TileStorage`].
trait PoolStorage: TileStorage + Send + 'static {
    fn build(a: &DenseMatrix, b: usize, grid: ProcessGrid) -> Self;
}

impl PoolStorage for CmTiles {
    fn build(a: &DenseMatrix, b: usize, _grid: ProcessGrid) -> Self {
        CmTiles::from_dense(a, b)
    }
}

impl PoolStorage for BclMatrix {
    fn build(a: &DenseMatrix, b: usize, grid: ProcessGrid) -> Self {
        BclMatrix::from_dense(a, b, grid)
    }
}

impl PoolStorage for TlbMatrix {
    fn build(a: &DenseMatrix, b: usize, grid: ProcessGrid) -> Self {
        TlbMatrix::from_dense(a, b, grid)
    }
}

/// The verification figures a `verify` pool reports per job: each
/// kernel set's own residual, plus element growth for pivoted LU only
/// (Cholesky does not pivot, so the figure is meaningless there).
fn verify_figures(
    kernels: KernelSet,
    f: &Factorization,
    a: &DenseMatrix,
) -> (Option<f64>, Option<f64>) {
    match kernels {
        KernelSet::CaluLu => (Some(f.residual(a)), Some(f.growth_factor(a))),
        KernelSet::Cholesky => (Some(f.cholesky_residual(a)), None),
    }
}

/// Best-effort panic payload → job error. `panic!` carries a `&str` or
/// a formatted `String`; anything else keeps only the fact.
fn panic_error(payload: Box<dyn std::any::Any + Send>) -> CaluError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    CaluError::TaskPanic(msg)
}

/// A job waiting in the lanes.
struct QueuedJob {
    id: u64,
    kernels: KernelSet,
    source: PoolSource,
    sink: Box<dyn JobSink>,
}

/// One queued-but-unclaimed job handed back by
/// [`ServicePool::extract_queued`] — everything the submitter gave the
/// pool, sink included (uncalled), so a successor pool can re-admit the
/// job under the same identity during a live-reconfigure handover.
pub struct ExtractedJob {
    /// The caller's correlation key, unchanged.
    pub id: u64,
    /// The class the job was queued under.
    pub class: JobClass,
    /// Which algorithm's kernels factor the job.
    pub kernels: KernelSet,
    /// The job's matrix source, unmaterialized.
    pub source: PoolSource,
    /// The job's sink, never invoked by the extracting pool.
    pub sink: Box<dyn JobSink>,
}

/// Fault bookkeeping shared by the engine's workers — present only when
/// the pool was spawned with an armed [`crate::fault::FaultPlan`], so
/// the no-fault hot path pays a single `Option` check.
struct EngineFault {
    /// Worker `w` no longer takes static work: dead ([`FaultKind::Lose`])
    /// or persistently slow ([`FaultKind::Slow`], pre-marked at spawn so
    /// its block-cyclic share rides the dynamic section from the first
    /// panel). Consulted inside each run's `local[w]` mutex, so a
    /// publish-time reroute can never race a retiring worker's drain and
    /// strand a task.
    degraded: Vec<AtomicBool>,
    /// Workers that exited after an injected loss.
    lost_workers: AtomicUsize,
    /// Static tasks republished into dynamic heaps, pool-wide.
    rescued: AtomicU64,
}

impl EngineFault {
    fn new(threads: usize, plan: &crate::fault::FaultPlan) -> Self {
        let f = EngineFault {
            degraded: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            lost_workers: AtomicUsize::new(0),
            rescued: AtomicU64::new(0),
        };
        for wf in plan.faults() {
            if matches!(wf.kind, FaultKind::Slow { .. }) {
                f.degraded[wf.worker].store(true, Ordering::Release);
            }
        }
        f
    }
}

type RunHeap = Mutex<BinaryHeap<Reverse<(u64, u32)>>>;

/// One co-operative (large) job in flight: the item state plus this
/// run's own queue set. Runs are shared by `Arc` between the `active`
/// list and whichever workers are mid-task, which is why results are
/// extracted by reference (`finish_by_ref`/`storage_ref`) instead of
/// by value.
struct LargeRun<S: TileStorage> {
    item: ItemState<S>,
    total: usize,
    /// The service job id — the key `fail_active`/`progress_of` find
    /// this run by (the watchdog's handle on a running job).
    id: u64,
    /// Tasks retired so far: bumped on every completion, read by the
    /// service watchdog to tell a slow job from a stalled one.
    heartbeat: AtomicU64,
    /// Per-worker static queues (block-cyclic ownership).
    local: Vec<RunHeap>,
    /// This run's dynamic section: one shared heap in DFS order.
    dynamic: RunHeap,
    spans: Mutex<Vec<TaskSpan>>,
    stats: Mutex<Vec<ThreadStats>>,
    sink: Mutex<Option<Box<dyn JobSink>>>,
    /// The input, kept only when the pool verifies results.
    a: Option<DenseMatrix>,
    dims: (usize, usize),
    /// First finisher wins; everyone else moves on.
    finishing: AtomicBool,
    /// Lane index of the job's class — `active` is kept sorted by
    /// `(class_rank, seq)` so workers serve higher-class runs first.
    class_rank: usize,
    seq: u64,
}

impl<S: TileStorage + Send> LargeRun<S> {
    /// Queue a ready task: static tasks to their owner's queue, dynamic
    /// ones to the run's shared heap (the solo executor's
    /// `Global`-discipline shape). A static task whose owner is degraded
    /// (lost or persistently slow under an armed fault plan) is
    /// *rescued* at publish time: republished into the dynamic heap in
    /// DFS order, where any surviving worker pops it. The degraded flag
    /// is read under the owner's queue mutex — the same mutex a retiring
    /// worker drains under — so a push can never land after the drain
    /// without seeing the flag.
    fn push_ready(&self, t: TaskId, fault: Option<&EngineFault>) {
        let item = &self.item;
        if item.is_static[t.idx()] {
            let owner = item.owners.owner(t);
            let mut q = self.local[owner].lock();
            if let Some(f) = fault {
                if f.degraded[owner].load(Ordering::Acquire) {
                    drop(q);
                    f.rescued.fetch_add(1, Ordering::Relaxed);
                    self.stats.lock()[owner].rescued += 1;
                    self.dynamic
                        .lock()
                        .push(Reverse((item.dynamic_keys[t.idx()], t.0)));
                    return;
                }
            }
            q.push(Reverse((item.static_keys[t.idx()], t.0)));
        } else {
            self.dynamic
                .lock()
                .push(Reverse((item.dynamic_keys[t.idx()], t.0)));
        }
    }
}

struct EngineState<S: TileStorage> {
    lanes: ClassLanes<QueuedJob>,
    /// In-flight co-operative runs, sorted by `(class_rank, seq)`.
    active: Vec<Arc<LargeRun<S>>>,
    /// Claimed-but-unfinished jobs (small and large).
    in_flight: usize,
    draining: bool,
    /// A panic escaped a worker's catch-unwind perimeter (e.g. inside a
    /// sink callback): the pool is dead; `drain` fails fast instead of
    /// waiting for jobs that will never finish.
    poisoned: bool,
    workers_started: usize,
    next_seq: u64,
}

struct Engine<S: TileStorage> {
    cfg: CaluConfig,
    grid: ProcessGrid,
    leaf_stride: usize,
    verify: bool,
    epoch: Instant,
    /// `Some` only when `cfg.fault` is armed; the no-fault hot path
    /// never pays more than this `Option` check.
    fault: Option<EngineFault>,
    state: Mutex<EngineState<S>>,
    /// Signalled when work may be available (submit, new run, task
    /// completions enabling successors).
    work: Condvar,
    /// Signalled when the pool may have gone idle (job finished,
    /// worker started) — what `drain` and `spawn` wait on.
    idle: Condvar,
}

/// How long an idle worker sleeps between wakeup checks: long enough
/// to cost nothing, short enough that a lost notification is harmless.
const IDLE_TICK: Duration = Duration::from_millis(1);

impl<S: PoolStorage> Engine<S> {
    fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Try to pop one co-operative task, serving higher-class runs
    /// first: worker `me`'s static queue of each run, then the run's
    /// dynamic heap.
    fn pop_coop(&self, me: usize) -> Option<(Arc<LargeRun<S>>, TaskId, QueueSource)> {
        let runs: Vec<Arc<LargeRun<S>>> = self.state.lock().active.clone();
        for run in runs {
            let own = run.local[me].lock().pop();
            if let Some(Reverse((_, t))) = own {
                return Some((run, TaskId(t), QueueSource::Local));
            }
            let dynamic = run.dynamic.lock().pop();
            if let Some(Reverse((_, t))) = dynamic {
                return Some((run, TaskId(t), QueueSource::Global));
            }
        }
        None
    }

    /// Execute one co-operative task and queue its successors; the
    /// worker whose completion retires the run's last task finishes it.
    #[allow(clippy::too_many_arguments)]
    fn run_task(
        &self,
        run: &Arc<LargeRun<S>>,
        t: TaskId,
        source: QueueSource,
        me: usize,
        scratch: &mut GemmScratch,
        ready_buf: &mut Vec<TaskId>,
        inject_panic: bool,
    ) {
        let start = self.epoch.elapsed().as_secs_f64();
        // contain kernel panics to the job: fail its sink and keep the
        // pool alive (an uncontained panic drops this worker with
        // in_flight still counted, hanging drain and the job's waiter)
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| {
            if inject_panic {
                panic!("injected kernel panic on worker {me} (fault plan)");
            }
            run.item.execute(t, scratch)
        })) {
            self.fail_run(run, panic_error(p));
            return;
        }
        run.heartbeat.fetch_add(1, Ordering::Relaxed);
        let end = self.epoch.elapsed().as_secs_f64();
        run.spans.lock().push(TaskSpan {
            core: me,
            start,
            end,
            kind: span_kind(&run.item.g, t),
        });
        {
            let mut stats = run.stats.lock();
            match source {
                QueueSource::Local => stats[me].local_pops += 1,
                _ => stats[me].global_pops += 1,
            }
        }
        run.item.complete_into(t, ready_buf);
        for &s in ready_buf.iter() {
            run.push_ready(s, self.fault.as_ref());
        }
        if !ready_buf.is_empty() {
            self.work.notify_all();
        }
        if run.item.done.load(Ordering::Acquire) == run.total
            && !run.finishing.swap(true, Ordering::AcqRel)
        {
            self.finish_run(run);
        }
    }

    /// A task body panicked (or the watchdog condemned the run): fail
    /// the whole run, once (`finishing` arbitrates against a concurrent
    /// normal finish — `false` means that race was lost and the run
    /// finished normally). Removing the run from `active` stops workers
    /// popping its remaining tasks; peers already executing one may
    /// finish or panic harmlessly — the sink is gone and `done` can no
    /// longer trigger `finish_run`.
    fn fail_run(&self, run: &Arc<LargeRun<S>>, err: CaluError) -> bool {
        if run.finishing.swap(true, Ordering::AcqRel) {
            return false;
        }
        {
            let mut st = self.state.lock();
            st.active.retain(|r| !Arc::ptr_eq(r, run));
        }
        let sink = run.sink.lock().take().expect("run finishes once");
        sink.finished(Err(err));
        let mut st = self.state.lock();
        st.in_flight -= 1;
        drop(st);
        self.idle.notify_all();
        self.work.notify_all();
        true
    }

    /// Extract a drained run's results and deliver them. Called by
    /// exactly one worker (the `finishing` flag), with every task done.
    fn finish_run(&self, run: &Arc<LargeRun<S>>) {
        {
            let mut st = self.state.lock();
            st.active.retain(|r| !Arc::ptr_eq(r, run));
        }
        let (perm, singular_at) = run.item.finish_by_ref();
        // SAFETY: done == total was observed with Acquire ordering, so
        // every task body's writes are visible and no worker holds a
        // tile pointer into this run.
        let mut lu = unsafe { run.item.storage_ref() }.to_dense();
        apply_left_swaps(&mut lu, &run.item.g, &perm, self.cfg.b);
        let factorization = Factorization {
            lu,
            perm,
            singular_at,
        };
        let kernels = KernelSet::for_graph(&run.item.g);
        let (residual, growth_factor) = match &run.a {
            Some(a) => verify_figures(kernels, &factorization, a),
            None => (None, None),
        };
        let spans = std::mem::take(&mut *run.spans.lock());
        let t_start = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
        let mut timeline = Timeline::new(self.threads());
        for s in &spans {
            timeline.push(TaskSpan {
                start: s.start - t_start,
                end: s.end - t_start,
                ..*s
            });
        }
        let stats = std::mem::take(&mut *run.stats.lock());
        let makespan = timeline.makespan();
        let sink = run.sink.lock().take().expect("run finishes once");
        // deliver with no pool lock held: sinks may take service locks
        sink.finished(Ok(PoolOutcome {
            factorization,
            kernels,
            timeline,
            stats,
            makespan,
            co_scheduled: false,
            dims: run.dims,
            residual,
            growth_factor,
        }));
        let mut st = self.state.lock();
        st.in_flight -= 1;
        drop(st);
        self.idle.notify_all();
        self.work.notify_all();
    }

    /// One claimed job reached a terminal state without ever running a
    /// task: deliver, release its in-flight slot, wake `drain`.
    fn end_job(&self, sink: Box<dyn JobSink>, res: Result<PoolOutcome, CaluError>) {
        sink.finished(res);
        let mut st = self.state.lock();
        st.in_flight -= 1;
        drop(st);
        self.idle.notify_all();
    }

    /// Run one claimed job. Small jobs complete entirely on this
    /// worker; large ones are published as a [`LargeRun`] for the pool
    /// to drain co-operatively. Source materialization, tile builds and
    /// kernels all run under `catch_unwind`: a panicking job fails its
    /// own sink instead of killing the worker (which would strand the
    /// in-flight count and hang `drain` and the job's waiter).
    ///
    /// Returns `false` when an injected worker loss fired mid-way
    /// through a co-scheduled item: the whole item has been requeued
    /// (its claim was atomic, so redoing it from the source is exact)
    /// and the calling worker must retire.
    #[allow(clippy::too_many_arguments)]
    fn start_job(
        &self,
        class: JobClass,
        seq: u64,
        job: QueuedJob,
        me: usize,
        scratch: &mut GemmScratch,
        clock: &mut FaultClock,
        inject_panic: bool,
    ) -> bool {
        let QueuedJob {
            id,
            kernels,
            source,
            sink,
        } = job;
        sink.started();
        let dims = source.dims();
        let (m, n) = dims;
        let co_schedule = self.cfg.batch_threads_per_item < self.cfg.threads;
        let small = co_schedule && m.max(n) <= self.cfg.batch_small_cutoff;

        if small {
            // a mid-item worker loss has no partial-state recovery
            // path: keep the source so the whole item can be requeued
            let backup = self.fault.as_ref().map(|_| source.clone());
            let res = catch_unwind(AssertUnwindSafe(|| {
                if inject_panic {
                    panic!("injected kernel panic on worker {me} (fault plan)");
                }
                self.run_small(kernels, source, dims, me, scratch, clock)
            }));
            match res {
                Ok(Ok(Some(out))) => self.end_job(sink, Ok(out)),
                Ok(Ok(None)) => {
                    // worker lost mid-item: discard the partial state
                    // and put the whole job back in its lane for a
                    // surviving worker; the sink stays attached (its
                    // `started` is idempotent on the service side)
                    let job = QueuedJob {
                        id,
                        kernels,
                        source: backup.expect("interrupts need an armed fault plan"),
                        sink,
                    };
                    let mut st = self.state.lock();
                    st.lanes.push(class, job);
                    st.in_flight -= 1;
                    drop(st);
                    self.work.notify_all();
                    self.idle.notify_all();
                    return false;
                }
                Ok(Err(e)) => self.end_job(sink, Err(e)),
                Err(p) => self.end_job(sink, Err(panic_error(p))),
            }
            return true;
        }

        let built = catch_unwind(AssertUnwindSafe(|| -> Result<_, CaluError> {
            if inject_panic {
                panic!("injected kernel panic on worker {me} (fault plan)");
            }
            let a = source.materialize();
            let g = Arc::new(kernels.build_graph(m, n, self.cfg.b, self.leaf_stride)?);
            let nstatic = nstatic_for(self.cfg.dratio, g.num_panels());
            let item = ItemState::new(S::build(&a, self.cfg.b, self.grid), g, self.grid, nstatic);
            Ok((a, item))
        }));
        let (a, item) = match built {
            Ok(Ok(parts)) => parts,
            Ok(Err(e)) => {
                self.end_job(sink, Err(e));
                return true;
            }
            Err(p) => {
                self.end_job(sink, Err(panic_error(p)));
                return true;
            }
        };
        let total = item.g.len();
        let run = Arc::new(LargeRun {
            total,
            id,
            heartbeat: AtomicU64::new(0),
            local: (0..self.threads())
                .map(|_| Mutex::new(BinaryHeap::new()))
                .collect(),
            dynamic: Mutex::new(BinaryHeap::new()),
            spans: Mutex::new(Vec::new()),
            stats: Mutex::new(vec![ThreadStats::default(); self.threads()]),
            sink: Mutex::new(Some(sink)),
            a: self.verify.then_some(a),
            dims,
            finishing: AtomicBool::new(false),
            class_rank: class.lane(),
            seq,
            item,
        });
        // publish the (still-empty) run *before* queueing its initial
        // tasks: a worker retiring concurrently snapshots `active` with
        // the degraded flag already set under the same state lock, so
        // either this run is in its snapshot (drained) or this insert
        // happened after (every push below sees the flag and reroutes).
        // Popping from an empty run is harmless.
        {
            let mut st = self.state.lock();
            let key = (run.class_rank, run.seq);
            let pos = st.active.partition_point(|r| (r.class_rank, r.seq) <= key);
            st.active.insert(pos, Arc::clone(&run));
        }
        for t in run.item.g.initial_ready() {
            run.push_ready(t, self.fault.as_ref());
        }
        self.work.notify_all();
        true
    }

    /// The co-scheduled (small) route: materialize, build and drain the
    /// whole DAG worker-locally — the batch path's
    /// `run_item_sequential`, so the bits match a solo run.
    ///
    /// Under an armed fault plan the drain is interruptible: the
    /// closure ticks this worker's [`FaultClock`] per task (stalls and
    /// slowdowns sleep in place; an injected panic unwinds into the
    /// caller's perimeter) and a fired loss abandons the item, returning
    /// `Ok(None)` so the caller can requeue it whole.
    fn run_small(
        &self,
        kernels: KernelSet,
        source: PoolSource,
        dims: (usize, usize),
        me: usize,
        scratch: &mut GemmScratch,
        clock: &mut FaultClock,
    ) -> Result<Option<PoolOutcome>, CaluError> {
        let (m, n) = dims;
        let a = source.materialize();
        let g = Arc::new(kernels.build_graph(m, n, self.cfg.b, self.leaf_stride)?);
        let nstatic = nstatic_for(self.cfg.dratio, g.num_panels());
        let item = ItemState::new(
            S::build(&a, self.cfg.b, self.grid),
            Arc::clone(&g),
            self.grid,
            nstatic,
        );
        let mut haul = WorkerHaul {
            spans: Vec::new(),
            stats: vec![ThreadStats::default()],
            start_offset: 0.0,
            failed_sweeps: 0,
        };
        let completed = if self.fault.is_none() {
            run_item_sequential(&item, 0, me, scratch, &self.epoch, &mut haul, None)
        } else {
            let mut last: Option<Instant> = None;
            let mut stop = || {
                if let Some(prev) = last {
                    if let Some(stall) = clock.after_task(prev.elapsed()) {
                        std::thread::sleep(stall);
                    }
                }
                last = Some(Instant::now());
                match clock.before_task() {
                    FaultAction::None => false,
                    FaultAction::Stall(d) => {
                        std::thread::sleep(d);
                        false
                    }
                    FaultAction::Lose => true,
                    FaultAction::Panic => {
                        panic!("injected kernel panic on worker {me} (fault plan)")
                    }
                }
            };
            run_item_sequential(
                &item,
                0,
                me,
                scratch,
                &self.epoch,
                &mut haul,
                Some(&mut stop),
            )
        };
        if !completed {
            return Ok(None);
        }
        let (s, perm, singular_at) = item.finish();
        let mut lu = s.to_dense();
        apply_left_swaps(&mut lu, &g, &perm, self.cfg.b);
        let factorization = Factorization {
            lu,
            perm,
            singular_at,
        };
        let (residual, growth_factor) = if self.verify {
            verify_figures(kernels, &factorization, &a)
        } else {
            (None, None)
        };
        drop(a);
        let t_start = haul
            .spans
            .iter()
            .map(|(_, s)| s.start)
            .fold(f64::INFINITY, f64::min);
        let mut timeline = Timeline::new(self.threads());
        for (_, s) in &haul.spans {
            timeline.push(TaskSpan {
                start: s.start - t_start,
                end: s.end - t_start,
                ..*s
            });
        }
        let mut stats = vec![ThreadStats::default(); self.threads()];
        stats[me] = haul.stats[0];
        let makespan = timeline.makespan();
        Ok(Some(PoolOutcome {
            factorization,
            kernels,
            timeline,
            stats,
            makespan,
            co_scheduled: true,
            dims,
            residual,
            growth_factor,
        }))
    }

    /// An injected loss fired on worker `me`: republish every static
    /// task queued to it across all active runs into those runs'
    /// dynamic heaps (rescue), mark it degraded so future static
    /// assignments reroute at publish time, and count the loss. The
    /// caller returns from the worker loop afterwards — `PanicGuard`
    /// does not poison a clean exit, so the pool keeps serving with one
    /// worker fewer and `drain` still joins everything.
    fn retire_worker(&self, me: usize) {
        let f = self
            .fault
            .as_ref()
            .expect("losses need an armed fault plan");
        let runs: Vec<Arc<LargeRun<S>>> = {
            // flag and snapshot under one state lock: a run published
            // after this releases observes the flag (all its pushes
            // reroute); one published before is in the snapshot (its
            // queue gets drained under the same mutex pushes take)
            let st = self.state.lock();
            f.degraded[me].store(true, Ordering::Release);
            st.active.clone()
        };
        f.lost_workers.fetch_add(1, Ordering::Relaxed);
        for run in runs {
            let drained: Vec<u32> = {
                let mut q = run.local[me].lock();
                std::iter::from_fn(|| q.pop().map(|Reverse((_, t))| t)).collect()
            };
            {
                let mut stats = run.stats.lock();
                stats[me].lost = true;
                stats[me].rescued += drained.len() as u64;
            }
            f.rescued.fetch_add(drained.len() as u64, Ordering::Relaxed);
            if !drained.is_empty() {
                let mut dy = run.dynamic.lock();
                for t in drained {
                    dy.push(Reverse((run.item.dynamic_keys[t as usize], t)));
                }
            }
        }
        self.work.notify_all();
        self.idle.notify_all();
    }

    fn worker_loop(self: &Arc<Self>, me: usize) {
        if self.cfg.pin_workers {
            pin_current_thread(host_topology().cpu_for_worker(me));
        }
        let _guard = PanicGuard(&**self);
        let mut scratch = GemmScratch::sized_for(self.cfg.b, self.cfg.b, self.cfg.b);
        let mut ready_buf: Vec<TaskId> = Vec::new();
        let armed = self.fault.is_some();
        let mut clock = if armed {
            FaultClock::new(&self.cfg.fault, me)
        } else {
            FaultClock::disarmed()
        };
        // an injected panic latches until the next piece of work, where
        // it unwinds inside that job's containment perimeter
        let mut panic_pending = false;
        {
            let mut st = self.state.lock();
            st.workers_started += 1;
            drop(st);
            self.idle.notify_all();
        }
        loop {
            if armed {
                match clock.before_task() {
                    FaultAction::None => {}
                    FaultAction::Stall(d) => std::thread::sleep(d),
                    FaultAction::Lose => {
                        self.retire_worker(me);
                        return;
                    }
                    FaultAction::Panic => panic_pending = true,
                }
            }
            if let Some((run, t, src)) = self.pop_coop(me) {
                let before = armed.then(Instant::now);
                self.run_task(
                    &run,
                    t,
                    src,
                    me,
                    &mut scratch,
                    &mut ready_buf,
                    std::mem::take(&mut panic_pending),
                );
                if let Some(b) = before {
                    if let Some(stall) = clock.after_task(b.elapsed()) {
                        std::thread::sleep(stall);
                    }
                }
                continue;
            }
            let mut st = self.state.lock();
            if let Some((class, job)) = st.lanes.pop() {
                st.in_flight += 1;
                let seq = st.next_seq;
                st.next_seq += 1;
                drop(st);
                if !self.start_job(
                    class,
                    seq,
                    job,
                    me,
                    &mut scratch,
                    &mut clock,
                    std::mem::take(&mut panic_pending),
                ) {
                    // a loss fired mid-way through a co-scheduled item;
                    // the item is already back in its lane
                    self.retire_worker(me);
                    return;
                }
                continue;
            }
            if st.draining && st.lanes.is_empty() && st.in_flight == 0 {
                // truly nothing left: no queued jobs and no claimed
                // ones. Gating on in_flight (not `active`) matters — a
                // peer that popped a large job but has not yet published
                // its run still holds an in-flight slot, and that run
                // will assign static tasks to *this* worker's queue by
                // block-cyclic ownership; leaving early would strand
                // them (pop_coop has no stealing) and hang the drain
                return;
            }
            if st.draining && st.poisoned {
                // a peer died with a job claimed; that job can never
                // finish, so leave and let drain fail fast at the join
                return;
            }
            let _ = self
                .work
                .wait_timeout(st, IDLE_TICK)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Belt-and-braces behind `start_job`'s catch-unwind perimeter: if a
/// panic still escapes a worker (a sink callback, the report-shaping
/// code), mark the engine poisoned on the way down so `drain` stops
/// waiting for progress that will never come and fails fast at the
/// join instead of hanging.
struct PanicGuard<'a, S: TileStorage>(&'a Engine<S>);

impl<S: TileStorage> Drop for PanicGuard<'_, S> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut st = self.0.state.lock();
            st.poisoned = true;
            drop(st);
            self.0.idle.notify_all();
            self.0.work.notify_all();
        }
    }
}

/// Pool state shared by the public handle, generic over storage.
struct PoolCore<S: PoolStorage> {
    engine: Arc<Engine<S>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<S: PoolStorage> PoolCore<S> {
    fn spawn(cfg: CaluConfig, grid: ProcessGrid, verify: bool, limit: usize) -> (Self, f64) {
        let leaf_stride = cfg.leaf_stride.unwrap_or_else(|| grid.pr());
        let threads = cfg.threads;
        let fault = (!cfg.fault.is_off()).then(|| EngineFault::new(threads, &cfg.fault));
        let engine = Arc::new(Engine {
            cfg,
            grid,
            leaf_stride,
            verify,
            epoch: Instant::now(),
            fault,
            state: Mutex::new(EngineState {
                lanes: ClassLanes::new(limit),
                active: Vec::new(),
                in_flight: 0,
                draining: false,
                poisoned: false,
                workers_started: 0,
                next_seq: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles: Vec<JoinHandle<()>> = (0..threads)
            .map(|me| {
                let eng = Arc::clone(&engine);
                std::thread::spawn(move || eng.worker_loop(me))
            })
            .collect();
        // spawn cost = time until the last worker enters its loop
        let mut st = engine.state.lock();
        while st.workers_started < threads {
            st = engine
                .idle
                .wait_timeout(st, IDLE_TICK)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        drop(st);
        let spawn_secs = engine.epoch.elapsed().as_secs_f64();
        (
            PoolCore {
                engine,
                handles: Mutex::new(handles),
            },
            spawn_secs,
        )
    }

    fn submit(
        &self,
        id: u64,
        class: JobClass,
        kernels: KernelSet,
        source: PoolSource,
        sink: Box<dyn JobSink>,
    ) -> Result<(), Box<dyn JobSink>> {
        let mut st = self.engine.state.lock();
        if st.draining {
            drop(st);
            // refuse by handing the sink back *uncalled*: callers may
            // hold their own locks across submit (the service holds its
            // admission lock so drain cannot slip between its check and
            // ours), and a synchronous sink callback here could
            // re-enter them — the caller decides how to fail the job
            return Err(sink);
        }
        st.lanes.push(
            class,
            QueuedJob {
                id,
                kernels,
                source,
                sink,
            },
        );
        drop(st);
        self.engine.work.notify_all();
        Ok(())
    }

    fn cancel(&self, id: u64) -> Option<Box<dyn JobSink>> {
        let mut st = self.engine.state.lock();
        st.lanes
            .remove_where(|j| j.id == id)
            .map(|(_, job)| job.sink)
    }

    fn extract_queued(&self) -> Vec<ExtractedJob> {
        let jobs = {
            let mut st = self.engine.state.lock();
            // stop admission first, under the same lock the pop runs
            // under: nothing can slip into the lanes after the sweep,
            // so the handover is exact — every unclaimed job leaves
            // here, every claimed one finishes on this pool's workers
            st.draining = true;
            let mut jobs = Vec::with_capacity(st.lanes.len());
            while let Some((class, j)) = st.lanes.pop() {
                jobs.push(ExtractedJob {
                    id: j.id,
                    class,
                    kernels: j.kernels,
                    source: j.source,
                    sink: j.sink,
                });
            }
            jobs
        };
        self.engine.work.notify_all();
        self.engine.idle.notify_all();
        jobs
    }

    fn drain(&self) {
        {
            let mut st = self.engine.state.lock();
            st.draining = true;
        }
        self.engine.work.notify_all();
        let mut st = self.engine.state.lock();
        // a poisoned engine never makes progress again: stop waiting
        // and let the join below propagate the worker's panic
        while !(st.poisoned || st.lanes.is_empty() && st.in_flight == 0) {
            st = self
                .engine
                .idle
                .wait_timeout(st, IDLE_TICK)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        drop(st);
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            h.join().expect("pool worker panicked");
        }
    }

    fn queued(&self) -> usize {
        self.engine.state.lock().lanes.len()
    }

    fn queued_in(&self, class: JobClass) -> usize {
        self.engine.state.lock().lanes.len_in(class)
    }

    fn in_flight(&self) -> usize {
        self.engine.state.lock().in_flight
    }

    fn co_schedules(&self, dims: (usize, usize)) -> bool {
        let cfg = &self.engine.cfg;
        cfg.batch_threads_per_item < cfg.threads && dims.0.max(dims.1) <= cfg.batch_small_cutoff
    }

    fn fail_active(&self, id: u64, err: CaluError) -> bool {
        let run = {
            let st = self.engine.state.lock();
            st.active.iter().find(|r| r.id == id).cloned()
        };
        match run {
            Some(run) => self.engine.fail_run(&run, err),
            None => false,
        }
    }

    fn progress_of(&self, id: u64) -> Option<u64> {
        let st = self.engine.state.lock();
        st.active
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.heartbeat.load(Ordering::Acquire))
    }

    fn lost_workers(&self) -> usize {
        self.engine
            .fault
            .as_ref()
            .map(|f| f.lost_workers.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    fn rescued_tasks(&self) -> u64 {
        self.engine
            .fault
            .as_ref()
            .map(|f| f.rescued.load(Ordering::Acquire))
            .unwrap_or(0)
    }
}

enum PoolInner {
    Cm(PoolCore<CmTiles>),
    Bcl(PoolCore<BclMatrix>),
    Tlb(PoolCore<TlbMatrix>),
}

macro_rules! dispatch {
    ($self:expr, $core:ident => $body:expr) => {
        match &$self.inner {
            PoolInner::Cm($core) => $body,
            PoolInner::Bcl($core) => $body,
            PoolInner::Tlb($core) => $body,
        }
    };
}

/// A spawn-once worker pool serving factorization jobs until drained.
///
/// All jobs share one [`CaluConfig`] (the per-job knobs are the
/// service's `JobSpec` dims and seed); the config's layout picks the
/// tile storage once, at spawn. Dropping the pool drains it.
pub struct ServicePool {
    inner: PoolInner,
    threads: usize,
    spawn_secs: f64,
    split: PoolSplit,
}

/// The scheduling split one [`ServicePool`] generation runs under,
/// frozen at spawn — the knobs an adaptive controller moves between
/// generations. A live reconfigure swaps the whole pool, so reading
/// this off the *current* pool is always coherent: no generation ever
/// changes its split mid-life.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoolSplit {
    /// Fraction of panels scheduled dynamically.
    pub dratio: f64,
    /// Items at most this large (max dimension) co-schedule whole.
    pub batch_small_cutoff: usize,
    /// Workers per co-scheduled item.
    pub batch_threads_per_item: usize,
    /// Direction of the lock-free victim sweep.
    pub steal_order: calu_sched::StealOrder,
}

impl ServicePool {
    /// Validate `cfg` and spawn its worker pool. `verify` makes every
    /// job compute a residual and growth factor against its input;
    /// `starvation_limit` bounds how many higher-class pops may pass
    /// over a waiting lower-class job (see [`ClassLanes`]).
    pub fn spawn(
        cfg: &CaluConfig,
        verify: bool,
        starvation_limit: usize,
    ) -> Result<ServicePool, CaluError> {
        let grid = cfg.validate()?;
        let threads = cfg.threads;
        let (inner, spawn_secs) = match cfg.layout {
            Layout::ColumnMajor => {
                let (c, s) = PoolCore::spawn(cfg.clone(), grid, verify, starvation_limit);
                (PoolInner::Cm(c), s)
            }
            Layout::BlockCyclic => {
                let (c, s) = PoolCore::spawn(cfg.clone(), grid, verify, starvation_limit);
                (PoolInner::Bcl(c), s)
            }
            Layout::TwoLevelBlock => {
                let (c, s) = PoolCore::spawn(cfg.clone(), grid, verify, starvation_limit);
                (PoolInner::Tlb(c), s)
            }
        };
        Ok(ServicePool {
            inner,
            threads,
            spawn_secs,
            split: PoolSplit {
                dratio: cfg.dratio,
                batch_small_cutoff: cfg.batch_small_cutoff,
                batch_threads_per_item: cfg.batch_threads_per_item,
                steal_order: cfg.steal_order,
            },
        })
    }

    /// The scheduling split this pool generation runs under.
    pub fn split(&self) -> PoolSplit {
        self.split
    }

    /// Enqueue a job. `id` is the caller's correlation key (used by
    /// [`cancel`](Self::cancel)); `kernels` names the algorithm's tile
    /// kernels — one pool freely interleaves [`KernelSet::CaluLu`] and
    /// [`KernelSet::Cholesky`] jobs; results leave through `sink`.
    /// After [`drain`](Self::drain) began the job is refused and the
    /// sink is handed back **uncalled** — never invoked synchronously,
    /// so callers may hold their own locks across `submit` without
    /// risking re-entrancy. The caller fails the returned sink however
    /// it sees fit.
    pub fn submit(
        &self,
        id: u64,
        class: JobClass,
        kernels: KernelSet,
        source: PoolSource,
        sink: Box<dyn JobSink>,
    ) -> Result<(), Box<dyn JobSink>> {
        dispatch!(self, c => c.submit(id, class, kernels, source, sink))
    }

    /// Remove a still-queued job. Returns its sink (uncalled) when the
    /// job was found; `None` means the job already started or finished
    /// — the race resolves to normal completion.
    pub fn cancel(&self, id: u64) -> Option<Box<dyn JobSink>> {
        dispatch!(self, c => c.cancel(id))
    }

    /// Stop admission and hand back every queued-but-unclaimed job with
    /// its identity and sink intact — the live-reconfigure handover
    /// primitive. After this returns the pool refuses new submits (like
    /// [`drain`](Self::drain) began), jobs already claimed keep running
    /// to completion on this pool's workers, and the extracted jobs'
    /// sinks have not been invoked, so the caller can re-admit them into
    /// a successor pool under the same ids with zero loss. Follow with
    /// [`drain`](Self::drain) to finish the in-flight tail and join the
    /// workers.
    pub fn extract_queued(&self) -> Vec<ExtractedJob> {
        dispatch!(self, c => c.extract_queued())
    }

    /// Stop admitting, finish everything queued and in flight, join the
    /// workers. Idempotent; also runs on drop.
    pub fn drain(&self) {
        dispatch!(self, c => c.drain())
    }

    /// Jobs waiting in the lanes.
    pub fn queued(&self) -> usize {
        dispatch!(self, c => c.queued())
    }

    /// Jobs waiting in `class`'s lane.
    pub fn queued_in(&self, class: JobClass) -> usize {
        dispatch!(self, c => c.queued_in(class))
    }

    /// Claimed-but-unfinished jobs.
    pub fn in_flight(&self) -> usize {
        dispatch!(self, c => c.in_flight())
    }

    /// Whether a job of `dims` would take the co-scheduled (small)
    /// route: claimed whole by one worker instead of running the
    /// co-operative hybrid schedule. The exact predicate the workers
    /// apply — callers can pre-classify a sweep without running it.
    pub fn co_schedules(&self, dims: (usize, usize)) -> bool {
        dispatch!(self, c => c.co_schedules(dims))
    }

    /// Fail an *active co-operative run* by job id, delivering `err` to
    /// its sink — the service watchdog's lever for deadline and stall
    /// enforcement. Workers mid-task on the run finish or abandon their
    /// task harmlessly; the pool keeps serving. Returns `false` when no
    /// active run carries `id` (the job is still queued, co-scheduled,
    /// or already terminal) or a concurrent normal finish won the race
    /// — either way, nothing was failed.
    pub fn fail_active(&self, id: u64, err: CaluError) -> bool {
        dispatch!(self, c => c.fail_active(id, err))
    }

    /// Tasks retired so far by the active co-operative run with job id
    /// `id` — a monotone heartbeat the service watchdog compares across
    /// ticks to tell a slow job from a stalled one. `None` when no
    /// active run carries `id` (queued, co-scheduled, or terminal).
    pub fn progress_of(&self, id: u64) -> Option<u64> {
        dispatch!(self, c => c.progress_of(id))
    }

    /// Workers lost to an injected fault since spawn (0 on an unfaulted
    /// pool). The service layer surfaces increases as degradation
    /// events.
    pub fn lost_workers(&self) -> usize {
        dispatch!(self, c => c.lost_workers())
    }

    /// Static tasks republished into dynamic heaps because their owner
    /// was lost or persistently slow — the rescue counter backing
    /// `ThreadStats::rescued`, aggregated pool-wide.
    pub fn rescued_tasks(&self) -> u64 {
        dispatch!(self, c => c.rescued_tasks())
    }

    /// Pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Seconds until the last worker entered its loop — paid once at
    /// spawn, amortized over every job the pool ever serves.
    pub fn spawn_secs(&self) -> f64 {
        self.spawn_secs
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::calu_factor;
    use std::sync::mpsc;

    struct ChanSink(mpsc::Sender<Result<PoolOutcome, CaluError>>);

    impl JobSink for ChanSink {
        fn finished(self: Box<Self>, res: Result<PoolOutcome, CaluError>) {
            let _ = self.0.send(res);
        }
    }

    fn cfg4() -> CaluConfig {
        CaluConfig::new(16).with_threads(4).with_dratio(0.5)
    }

    /// Assert a submit was admitted (the rejection arm returns the sink,
    /// which has no `Debug` for a plain `unwrap`).
    fn accept(r: Result<(), Box<dyn JobSink>>) {
        assert!(r.is_ok(), "pool rejected a submit while not draining");
    }

    #[test]
    fn small_jobs_match_solo_runs_bitwise() {
        let cfg = cfg4().with_batch_small_cutoff(100);
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        for seed in 0..4u64 {
            accept(pool.submit(
                seed,
                JobClass::Batch,
                KernelSet::CaluLu,
                PoolSource::Uniform { m: 64, n: 64, seed },
                Box::new(ChanSink(tx.clone())),
            ));
        }
        let mut outcomes: Vec<PoolOutcome> = (0..4).map(|_| rx.recv().unwrap().unwrap()).collect();
        pool.drain();
        outcomes.sort_by_key(|o| o.factorization.lu.as_slice().len()); // all same; stable no-op
        for o in &outcomes {
            assert!(o.co_scheduled);
        }
        // parity: match each outcome to its seed by re-factoring
        for seed in 0..4u64 {
            let a = gen::uniform(64, 64, seed);
            let solo = calu_factor(&a, &cfg).unwrap();
            assert!(
                outcomes
                    .iter()
                    .any(|o| o.factorization.lu.as_slice() == solo.lu.as_slice()
                        && o.factorization.perm.pivots() == solo.perm.pivots()),
                "seed {seed} missing from pool outcomes"
            );
        }
    }

    #[test]
    fn large_jobs_match_solo_runs_bitwise() {
        // cutoff 0 forces the co-operative route
        let cfg = cfg4().with_batch_small_cutoff(0);
        let pool = ServicePool::spawn(&cfg, true, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        let a = gen::uniform(192, 192, 7);
        accept(pool.submit(
            1,
            JobClass::Interactive,
            KernelSet::CaluLu,
            PoolSource::Dense(a.clone()),
            Box::new(ChanSink(tx)),
        ));
        let out = rx.recv().unwrap().unwrap();
        pool.drain();
        assert!(!out.co_scheduled);
        let solo = calu_factor(&a, &cfg).unwrap();
        assert_eq!(out.factorization.lu.as_slice(), solo.lu.as_slice());
        assert_eq!(out.factorization.perm.pivots(), solo.perm.pivots());
        assert!(out.residual.unwrap() < 1e-12);
        let tasks: u64 = out.stats.iter().map(|s| s.local_pops + s.global_pops).sum();
        assert_eq!(tasks as usize, out.timeline.spans().len());
    }

    #[test]
    fn mixed_lu_and_cholesky_jobs_share_one_pool() {
        // one pool, both kernel sets, both routes (small + large)
        let cfg = cfg4().with_batch_small_cutoff(100);
        let pool = ServicePool::spawn(&cfg, true, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        let jobs: [(u64, KernelSet, PoolSource); 4] = [
            (
                1,
                KernelSet::CaluLu,
                PoolSource::Uniform {
                    m: 64,
                    n: 64,
                    seed: 1,
                },
            ),
            (
                2,
                KernelSet::Cholesky,
                PoolSource::SpdUniform { n: 64, seed: 2 },
            ),
            (
                3,
                KernelSet::CaluLu,
                PoolSource::Uniform {
                    m: 192,
                    n: 192,
                    seed: 3,
                },
            ),
            (
                4,
                KernelSet::Cholesky,
                PoolSource::SpdUniform { n: 192, seed: 4 },
            ),
        ];
        for (id, kernels, source) in jobs {
            accept(pool.submit(
                id,
                JobClass::Batch,
                kernels,
                source,
                Box::new(ChanSink(tx.clone())),
            ));
        }
        let outcomes: Vec<PoolOutcome> = (0..4).map(|_| rx.recv().unwrap().unwrap()).collect();
        pool.drain();
        for n in [64usize, 192] {
            let lu_in = gen::uniform(n, n, if n == 64 { 1 } else { 3 });
            let spd_in = gen::spd_uniform(n, if n == 64 { 2 } else { 4 });
            let solo_lu = calu_factor(&lu_in, &cfg).unwrap();
            let solo_ch = crate::threaded::cholesky_factor(&spd_in, &cfg).unwrap();
            let lu_out = outcomes
                .iter()
                .find(|o| o.dims == (n, n) && o.kernels == KernelSet::CaluLu)
                .unwrap();
            let ch_out = outcomes
                .iter()
                .find(|o| o.dims == (n, n) && o.kernels == KernelSet::Cholesky)
                .unwrap();
            assert_eq!(lu_out.factorization.lu.as_slice(), solo_lu.lu.as_slice());
            assert_eq!(ch_out.factorization.lu.as_slice(), solo_ch.lu.as_slice());
            assert!(lu_out.residual.unwrap() < 1e-12);
            assert!(lu_out.growth_factor.is_some());
            assert!(ch_out.residual.unwrap() < 1e-13);
            assert!(ch_out.growth_factor.is_none(), "Cholesky has no growth");
        }
    }

    #[test]
    fn cholesky_job_with_rectangular_source_fails_typed() {
        for cutoff in [100usize, 0] {
            // both routes must refuse with InvalidConfig, not a panic
            let pool =
                ServicePool::spawn(&cfg4().with_batch_small_cutoff(cutoff), false, 4).unwrap();
            let (tx, rx) = mpsc::channel();
            accept(pool.submit(
                1,
                JobClass::Batch,
                KernelSet::Cholesky,
                PoolSource::Uniform {
                    m: 96,
                    n: 64,
                    seed: 1,
                },
                Box::new(ChanSink(tx)),
            ));
            match rx.recv().unwrap() {
                Err(CaluError::InvalidConfig(msg)) => {
                    assert!(msg.contains("square"), "msg: {msg}")
                }
                other => panic!("cutoff {cutoff}: expected InvalidConfig, got {other:?}"),
            }
            pool.drain();
        }
    }

    #[test]
    fn drain_finishes_jobs_queued_in_every_class() {
        let cfg = cfg4().with_batch_small_cutoff(100).with_threads(2);
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        let n_jobs = 9;
        for i in 0..n_jobs {
            let class = JobClass::ALL[i % 3];
            accept(pool.submit(
                i as u64,
                class,
                KernelSet::CaluLu,
                PoolSource::Uniform {
                    m: 48,
                    n: 48,
                    seed: i as u64,
                },
                Box::new(ChanSink(tx.clone())),
            ));
        }
        pool.drain();
        // every job completed before drain returned
        let done: Vec<_> = rx.try_iter().collect();
        assert_eq!(done.len(), n_jobs);
        assert!(done.iter().all(|r| r.is_ok()));
        assert_eq!(pool.queued(), 0);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn cancel_removes_a_queued_job() {
        // single worker + a job in front keeps the victim queued long
        // enough to cancel deterministically… unless the first job wins
        // the race, which the assertion tolerates by checking either
        // outcome is consistent
        let cfg = cfg4().with_threads(1).with_batch_small_cutoff(0);
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        accept(pool.submit(
            1,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 256,
                n: 256,
                seed: 1,
            },
            Box::new(ChanSink(tx.clone())),
        ));
        accept(pool.submit(
            2,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 64,
                n: 64,
                seed: 2,
            },
            Box::new(ChanSink(tx.clone())),
        ));
        let cancelled = pool.cancel(2).is_some();
        pool.drain();
        let done = rx.try_iter().count();
        assert_eq!(done, if cancelled { 1 } else { 2 });
    }

    #[test]
    fn submit_after_drain_returns_the_sink_uncalled() {
        let pool = ServicePool::spawn(&cfg4(), false, 4).unwrap();
        pool.drain();
        let (tx, rx) = mpsc::channel();
        let rejected = pool.submit(
            1,
            JobClass::Interactive,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 8,
                n: 8,
                seed: 0,
            },
            Box::new(ChanSink(tx)),
        );
        let sink = match rejected {
            Ok(()) => panic!("a draining pool must refuse submits"),
            Err(sink) => sink,
        };
        // the pool never invoked the sink — re-entrancy-safe for
        // callers submitting under their own locks
        assert!(rx.try_recv().is_err());
        sink.finished(Err(CaluError::InvalidConfig(
            "pool is shutting down".into(),
        )));
        assert!(matches!(
            rx.recv().unwrap(),
            Err(CaluError::InvalidConfig(_))
        ));
        pool.drain(); // idempotent
    }

    #[test]
    fn drain_racing_a_large_job_claim_never_strands_it() {
        // regression: drain() used to let idle workers exit on
        // `draining && active.is_empty()`, which is observable while a
        // peer has *claimed* a large job (in_flight counted) but not
        // yet published its run — the run's static tasks then belonged
        // to exited workers and the job never finished. Iterate to give
        // the race room; the exit gate on in_flight must keep every
        // worker around until the claimed job is done.
        let cfg = cfg4().with_batch_small_cutoff(0); // every job co-operative
        for round in 0..10u64 {
            let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
            let (tx, rx) = mpsc::channel();
            accept(pool.submit(
                round,
                JobClass::Batch,
                KernelSet::CaluLu,
                PoolSource::Uniform {
                    m: 128,
                    n: 128,
                    seed: round,
                },
                Box::new(ChanSink(tx)),
            ));
            // drain immediately: workers observe `draining` while the
            // claimant is still materializing/building the run
            pool.drain();
            let out = rx.recv().expect("job stranded by drain").unwrap();
            assert!(!out.co_scheduled);
            assert!(out.factorization.is_nonsingular());
        }
    }

    #[test]
    fn lost_worker_mid_small_item_requeues_it_whole() {
        // regression: an injected worker loss that fires while the
        // worker is draining a co-scheduled item used to have no
        // recovery path — the partially-factored item died with the
        // worker. The fix requeues the whole item (its claim was
        // atomic, so redoing it from the source is exact) and lets a
        // survivor redo it. `lose_worker(0, 3)` can only fire after 3
        // task ticks, which only happen inside an item, so worker 0 is
        // guaranteed to die mid-item.
        use crate::fault::FaultPlan;
        let cfg = cfg4()
            .with_threads(2)
            .with_batch_small_cutoff(100)
            .with_fault(FaultPlan::off().lose_worker(0, 3));
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        let n_jobs = 6u64;
        for seed in 0..n_jobs {
            accept(pool.submit(
                seed,
                JobClass::Batch,
                KernelSet::CaluLu,
                PoolSource::Uniform { m: 64, n: 64, seed },
                Box::new(ChanSink(tx.clone())),
            ));
        }
        let outcomes: Vec<PoolOutcome> = (0..n_jobs).map(|_| rx.recv().unwrap().unwrap()).collect();
        pool.drain();
        assert_eq!(pool.lost_workers(), 1, "worker 0 must have died");
        // drain stranded nothing and every item matches an unfaulted
        // solo run of the same shape (threads drive the TSLU grid)
        let clean = cfg4().with_threads(2);
        for seed in 0..n_jobs {
            let a = gen::uniform(64, 64, seed);
            let solo = calu_factor(&a, &clean).unwrap();
            assert!(
                outcomes
                    .iter()
                    .any(|o| o.factorization.lu.as_slice() == solo.lu.as_slice()),
                "seed {seed} missing or wrong after the mid-item loss"
            );
        }
    }

    #[test]
    fn lost_worker_during_a_cooperative_run_is_rescued() {
        // losing a worker mid-run republishes its static backlog into
        // the run's dynamic heap; the exclusive-writer DAG makes the
        // rerouted completion bitwise-identical to the unfaulted run
        use crate::fault::FaultPlan;
        let cfg = cfg4()
            .with_batch_small_cutoff(0)
            .with_fault(FaultPlan::off().lose_worker(1, 4));
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        let a = gen::uniform(192, 192, 11);
        accept(pool.submit(
            1,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Dense(a.clone()),
            Box::new(ChanSink(tx)),
        ));
        let out = rx.recv().unwrap().unwrap();
        pool.drain();
        assert_eq!(pool.lost_workers(), 1);
        assert!(out.stats[1].lost, "the dead worker is flagged in stats");
        let rescued: u64 = out.stats.iter().map(|s| s.rescued).sum();
        assert!(rescued > 0, "the dead worker's static share was rescued");
        assert_eq!(rescued, pool.rescued_tasks());
        let solo = calu_factor(&a, &cfg4()).unwrap();
        assert_eq!(out.factorization.lu.as_slice(), solo.lu.as_slice());
        assert_eq!(out.factorization.perm.pivots(), solo.perm.pivots());
    }

    #[test]
    fn panicking_job_fails_its_sink_and_the_pool_survives() {
        // a 0×0 source trips `TaskGraph::build_calu`'s non-empty assert
        // on the claiming worker; the panic must be contained to the
        // job (sink failed with TaskPanic), not kill the worker
        let cfg = cfg4().with_batch_small_cutoff(100);
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        accept(pool.submit(
            1,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 0,
                n: 0,
                seed: 0,
            },
            Box::new(ChanSink(tx.clone())),
        ));
        assert!(matches!(rx.recv().unwrap(), Err(CaluError::TaskPanic(_))));
        // same through the co-operative route: cutoff 0 with one
        // non-zero dimension routes large, and the build still asserts
        let large = ServicePool::spawn(&cfg4().with_batch_small_cutoff(0), false, 4).unwrap();
        let (ltx, lrx) = mpsc::channel();
        accept(large.submit(
            2,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 0,
                n: 5,
                seed: 0,
            },
            Box::new(ChanSink(ltx)),
        ));
        assert!(matches!(lrx.recv().unwrap(), Err(CaluError::TaskPanic(_))));
        // both pools keep serving after the panic
        accept(pool.submit(
            3,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 48,
                n: 48,
                seed: 3,
            },
            Box::new(ChanSink(tx)),
        ));
        assert!(rx.recv().unwrap().is_ok());
        pool.drain();
        large.drain();
    }
}
