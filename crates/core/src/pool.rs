//! The request-persistent worker pool behind the factorization service.
//!
//! `crate::batch` spawns its pool per call and joins it when the sweep
//! drains; this module generalizes that to a [`ServicePool`] whose
//! workers are spawned **once** and then block on a service queue until
//! [`ServicePool::drain`] — the substrate `calu-serve`'s `FactorService`
//! builds its admission, lifecycle and streaming layers on. The
//! execution modes are the batch executor's two, verbatim:
//!
//! * **small** jobs (larger dimension ≤ [`CaluConfig::batch_small_cutoff`]
//!   with [`CaluConfig::batch_threads_per_item`] `<` threads) are
//!   *co-scheduled*: the claiming worker materializes the source, builds
//!   the item state and drains the DAG sequentially, all worker-locally
//!   (the same `run_item_sequential` the batch path runs, so the bits
//!   are too);
//! * **large** jobs run the hybrid static/dynamic schedule
//!   co-operatively: the claiming worker publishes a shared run every
//!   pool worker pulls from — static tasks from the per-worker queues by
//!   block-cyclic ownership, dynamic ones from a *per-run* shared heap
//!   in Algorithm 2's DFS order (the paper-verbatim
//!   [`QueueDiscipline::Global`](calu_sched::QueueDiscipline) shape;
//!   queue discipline never changes the math, so the service runs every
//!   job's dynamic section on the simplest one).
//!
//! Job ordering is delegated to [`ClassLanes`]: workers prefer
//! higher-priority classes with bounded starvation of lower ones.
//! Results leave through a caller-supplied [`JobSink`] — the pool knows
//! nothing about handles, events or admission; that is the service
//! crate's business.
//!
//! Worker wakeup is a condition variable with a 1 ms timed wait, so a
//! notification lost to a race costs at most one tick, never a hang.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use calu_dag::TaskId;
use calu_kernels::GemmScratch;
use calu_matrix::{
    gen, BclMatrix, CmTiles, DenseMatrix, Layout, ProcessGrid, TileStorage, TlbMatrix,
};
use calu_sched::{nstatic_for, ClassLanes, JobClass, QueueSource};
use calu_trace::{TaskSpan, Timeline};

use crate::batch::{run_item_sequential, span_kind, WorkerHaul};
use crate::config::CaluConfig;
use crate::error::CaluError;
use crate::factorization::Factorization;
use crate::sync::{pin_current_thread, Mutex};
use crate::threaded::{apply_left_swaps, host_topology, ItemState, KernelSet, ThreadStats};

/// What one service job factors. Owned (`'static`) so a job can outlive
/// its submitter: either dense data moved in, or a seeded generator
/// materialized lazily on the worker that claims the job.
#[derive(Debug, Clone)]
pub enum PoolSource {
    /// Dense data, moved into the job.
    Dense(DenseMatrix),
    /// A seeded uniform generator matrix, materialized on the claiming
    /// worker (`calu_matrix::gen::uniform`).
    Uniform {
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A seeded symmetric positive-definite generator matrix,
    /// materialized on the claiming worker
    /// (`calu_matrix::gen::spd_uniform`) — the natural source for
    /// [`KernelSet::Cholesky`] jobs.
    SpdUniform {
        /// Order (the matrix is `n×n`).
        n: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl PoolSource {
    /// `(rows, cols)` without materializing.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            PoolSource::Dense(a) => (a.rows(), a.cols()),
            PoolSource::Uniform { m, n, .. } => (*m, *n),
            PoolSource::SpdUniform { n, .. } => (*n, *n),
        }
    }

    /// The element data, generated on the calling thread for the
    /// generator variants.
    pub fn materialize(self) -> DenseMatrix {
        match self {
            PoolSource::Dense(a) => a,
            PoolSource::Uniform { m, n, seed } => gen::uniform(m, n, seed),
            PoolSource::SpdUniform { n, seed } => gen::spd_uniform(n, seed),
        }
    }
}

/// Everything the pool knows about one completed job — the raw
/// material the service's report builder shapes into a facade `Report`.
#[derive(Debug)]
pub struct PoolOutcome {
    /// The factors, bitwise-identical to a solo `calu_factor` /
    /// `cholesky_factor` with the same config.
    pub factorization: Factorization,
    /// Which algorithm's kernels factored the job — the service's
    /// report builder keys its residual/flops shaping on this.
    pub kernels: KernelSet,
    /// Per-worker spans, time-shifted so the job's first task starts
    /// at 0.
    pub timeline: Timeline,
    /// Per-worker queue accounting for this job's tasks.
    pub stats: Vec<ThreadStats>,
    /// First task start → last task end.
    pub makespan: f64,
    /// Whether the job was claimed whole by one worker (small route)
    /// rather than run co-operatively by the pool.
    pub co_scheduled: bool,
    /// `(rows, cols)` of the input.
    pub dims: (usize, usize),
    /// `‖PA − LU‖ / ‖A‖` (LU jobs) or `‖A − LLᵀ‖ / ‖A‖` (Cholesky
    /// jobs), when the pool was spawned with verification.
    pub residual: Option<f64>,
    /// Element growth factor, when verification is on — LU jobs only
    /// (Cholesky does not pivot, so the figure is meaningless there).
    pub growth_factor: Option<f64>,
}

/// Where a job's result goes. The service layer implements this to
/// route outcomes into handles and event streams; tests implement it
/// with a channel. `started` fires when a worker claims the job (the
/// `Queued → Running` transition), `finished` exactly once with the
/// terminal result.
pub trait JobSink: Send + 'static {
    /// A worker claimed the job.
    fn started(&self) {}
    /// The job reached a terminal state.
    fn finished(self: Box<Self>, res: Result<PoolOutcome, CaluError>);
}

/// Tile storages the pool can run — the three paper layouts, each
/// knowing how to build itself from dense data. `to_dense` comes with
/// [`TileStorage`].
trait PoolStorage: TileStorage + Send + 'static {
    fn build(a: &DenseMatrix, b: usize, grid: ProcessGrid) -> Self;
}

impl PoolStorage for CmTiles {
    fn build(a: &DenseMatrix, b: usize, _grid: ProcessGrid) -> Self {
        CmTiles::from_dense(a, b)
    }
}

impl PoolStorage for BclMatrix {
    fn build(a: &DenseMatrix, b: usize, grid: ProcessGrid) -> Self {
        BclMatrix::from_dense(a, b, grid)
    }
}

impl PoolStorage for TlbMatrix {
    fn build(a: &DenseMatrix, b: usize, grid: ProcessGrid) -> Self {
        TlbMatrix::from_dense(a, b, grid)
    }
}

/// The verification figures a `verify` pool reports per job: each
/// kernel set's own residual, plus element growth for pivoted LU only
/// (Cholesky does not pivot, so the figure is meaningless there).
fn verify_figures(
    kernels: KernelSet,
    f: &Factorization,
    a: &DenseMatrix,
) -> (Option<f64>, Option<f64>) {
    match kernels {
        KernelSet::CaluLu => (Some(f.residual(a)), Some(f.growth_factor(a))),
        KernelSet::Cholesky => (Some(f.cholesky_residual(a)), None),
    }
}

/// Best-effort panic payload → job error. `panic!` carries a `&str` or
/// a formatted `String`; anything else keeps only the fact.
fn panic_error(payload: Box<dyn std::any::Any + Send>) -> CaluError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    CaluError::TaskPanic(msg)
}

/// A job waiting in the lanes.
struct QueuedJob {
    id: u64,
    kernels: KernelSet,
    source: PoolSource,
    sink: Box<dyn JobSink>,
}

type RunHeap = Mutex<BinaryHeap<Reverse<(u64, u32)>>>;

/// One co-operative (large) job in flight: the item state plus this
/// run's own queue set. Runs are shared by `Arc` between the `active`
/// list and whichever workers are mid-task, which is why results are
/// extracted by reference (`finish_by_ref`/`storage_ref`) instead of
/// by value.
struct LargeRun<S: TileStorage> {
    item: ItemState<S>,
    total: usize,
    /// Per-worker static queues (block-cyclic ownership).
    local: Vec<RunHeap>,
    /// This run's dynamic section: one shared heap in DFS order.
    dynamic: RunHeap,
    spans: Mutex<Vec<TaskSpan>>,
    stats: Mutex<Vec<ThreadStats>>,
    sink: Mutex<Option<Box<dyn JobSink>>>,
    /// The input, kept only when the pool verifies results.
    a: Option<DenseMatrix>,
    dims: (usize, usize),
    /// First finisher wins; everyone else moves on.
    finishing: AtomicBool,
    /// Lane index of the job's class — `active` is kept sorted by
    /// `(class_rank, seq)` so workers serve higher-class runs first.
    class_rank: usize,
    seq: u64,
}

impl<S: TileStorage + Send> LargeRun<S> {
    /// Queue a ready task: static tasks to their owner's queue, dynamic
    /// ones to the run's shared heap (the solo executor's
    /// `Global`-discipline shape).
    fn push_ready(&self, t: TaskId) {
        let item = &self.item;
        if item.is_static[t.idx()] {
            let owner = item.owners.owner(t);
            self.local[owner]
                .lock()
                .push(Reverse((item.static_keys[t.idx()], t.0)));
        } else {
            self.dynamic
                .lock()
                .push(Reverse((item.dynamic_keys[t.idx()], t.0)));
        }
    }
}

struct EngineState<S: TileStorage> {
    lanes: ClassLanes<QueuedJob>,
    /// In-flight co-operative runs, sorted by `(class_rank, seq)`.
    active: Vec<Arc<LargeRun<S>>>,
    /// Claimed-but-unfinished jobs (small and large).
    in_flight: usize,
    draining: bool,
    /// A panic escaped a worker's catch-unwind perimeter (e.g. inside a
    /// sink callback): the pool is dead; `drain` fails fast instead of
    /// waiting for jobs that will never finish.
    poisoned: bool,
    workers_started: usize,
    next_seq: u64,
}

struct Engine<S: TileStorage> {
    cfg: CaluConfig,
    grid: ProcessGrid,
    leaf_stride: usize,
    verify: bool,
    epoch: Instant,
    state: Mutex<EngineState<S>>,
    /// Signalled when work may be available (submit, new run, task
    /// completions enabling successors).
    work: Condvar,
    /// Signalled when the pool may have gone idle (job finished,
    /// worker started) — what `drain` and `spawn` wait on.
    idle: Condvar,
}

/// How long an idle worker sleeps between wakeup checks: long enough
/// to cost nothing, short enough that a lost notification is harmless.
const IDLE_TICK: Duration = Duration::from_millis(1);

impl<S: PoolStorage> Engine<S> {
    fn threads(&self) -> usize {
        self.cfg.threads
    }

    /// Try to pop one co-operative task, serving higher-class runs
    /// first: worker `me`'s static queue of each run, then the run's
    /// dynamic heap.
    fn pop_coop(&self, me: usize) -> Option<(Arc<LargeRun<S>>, TaskId, QueueSource)> {
        let runs: Vec<Arc<LargeRun<S>>> = self.state.lock().active.clone();
        for run in runs {
            let own = run.local[me].lock().pop();
            if let Some(Reverse((_, t))) = own {
                return Some((run, TaskId(t), QueueSource::Local));
            }
            let dynamic = run.dynamic.lock().pop();
            if let Some(Reverse((_, t))) = dynamic {
                return Some((run, TaskId(t), QueueSource::Global));
            }
        }
        None
    }

    /// Execute one co-operative task and queue its successors; the
    /// worker whose completion retires the run's last task finishes it.
    fn run_task(
        &self,
        run: &Arc<LargeRun<S>>,
        t: TaskId,
        source: QueueSource,
        me: usize,
        scratch: &mut GemmScratch,
        ready_buf: &mut Vec<TaskId>,
    ) {
        let start = self.epoch.elapsed().as_secs_f64();
        // contain kernel panics to the job: fail its sink and keep the
        // pool alive (an uncontained panic drops this worker with
        // in_flight still counted, hanging drain and the job's waiter)
        if let Err(p) = catch_unwind(AssertUnwindSafe(|| run.item.execute(t, scratch))) {
            self.fail_run(run, panic_error(p));
            return;
        }
        let end = self.epoch.elapsed().as_secs_f64();
        run.spans.lock().push(TaskSpan {
            core: me,
            start,
            end,
            kind: span_kind(&run.item.g, t),
        });
        {
            let mut stats = run.stats.lock();
            match source {
                QueueSource::Local => stats[me].local_pops += 1,
                _ => stats[me].global_pops += 1,
            }
        }
        run.item.complete_into(t, ready_buf);
        for &s in ready_buf.iter() {
            run.push_ready(s);
        }
        if !ready_buf.is_empty() {
            self.work.notify_all();
        }
        if run.item.done.load(Ordering::Acquire) == run.total
            && !run.finishing.swap(true, Ordering::AcqRel)
        {
            self.finish_run(run);
        }
    }

    /// A task body panicked: fail the whole run, once (`finishing`
    /// arbitrates against a concurrent normal finish). Removing the run
    /// from `active` stops workers popping its remaining tasks; peers
    /// already executing one may finish or panic harmlessly — the sink
    /// is gone and `done` can no longer trigger `finish_run`.
    fn fail_run(&self, run: &Arc<LargeRun<S>>, err: CaluError) {
        if run.finishing.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut st = self.state.lock();
            st.active.retain(|r| !Arc::ptr_eq(r, run));
        }
        let sink = run.sink.lock().take().expect("run finishes once");
        sink.finished(Err(err));
        let mut st = self.state.lock();
        st.in_flight -= 1;
        drop(st);
        self.idle.notify_all();
        self.work.notify_all();
    }

    /// Extract a drained run's results and deliver them. Called by
    /// exactly one worker (the `finishing` flag), with every task done.
    fn finish_run(&self, run: &Arc<LargeRun<S>>) {
        {
            let mut st = self.state.lock();
            st.active.retain(|r| !Arc::ptr_eq(r, run));
        }
        let (perm, singular_at) = run.item.finish_by_ref();
        // SAFETY: done == total was observed with Acquire ordering, so
        // every task body's writes are visible and no worker holds a
        // tile pointer into this run.
        let mut lu = unsafe { run.item.storage_ref() }.to_dense();
        apply_left_swaps(&mut lu, &run.item.g, &perm, self.cfg.b);
        let factorization = Factorization {
            lu,
            perm,
            singular_at,
        };
        let kernels = KernelSet::for_graph(&run.item.g);
        let (residual, growth_factor) = match &run.a {
            Some(a) => verify_figures(kernels, &factorization, a),
            None => (None, None),
        };
        let spans = std::mem::take(&mut *run.spans.lock());
        let t_start = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
        let mut timeline = Timeline::new(self.threads());
        for s in &spans {
            timeline.push(TaskSpan {
                start: s.start - t_start,
                end: s.end - t_start,
                ..*s
            });
        }
        let stats = std::mem::take(&mut *run.stats.lock());
        let makespan = timeline.makespan();
        let sink = run.sink.lock().take().expect("run finishes once");
        // deliver with no pool lock held: sinks may take service locks
        sink.finished(Ok(PoolOutcome {
            factorization,
            kernels,
            timeline,
            stats,
            makespan,
            co_scheduled: false,
            dims: run.dims,
            residual,
            growth_factor,
        }));
        let mut st = self.state.lock();
        st.in_flight -= 1;
        drop(st);
        self.idle.notify_all();
        self.work.notify_all();
    }

    /// One claimed job reached a terminal state without ever running a
    /// task: deliver, release its in-flight slot, wake `drain`.
    fn end_job(&self, sink: Box<dyn JobSink>, res: Result<PoolOutcome, CaluError>) {
        sink.finished(res);
        let mut st = self.state.lock();
        st.in_flight -= 1;
        drop(st);
        self.idle.notify_all();
    }

    /// Run one claimed job. Small jobs complete entirely on this
    /// worker; large ones are published as a [`LargeRun`] for the pool
    /// to drain co-operatively. Source materialization, tile builds and
    /// kernels all run under `catch_unwind`: a panicking job fails its
    /// own sink instead of killing the worker (which would strand the
    /// in-flight count and hang `drain` and the job's waiter).
    fn start_job(
        &self,
        class: JobClass,
        seq: u64,
        job: QueuedJob,
        me: usize,
        scratch: &mut GemmScratch,
    ) {
        let QueuedJob {
            kernels,
            source,
            sink,
            ..
        } = job;
        sink.started();
        let dims = source.dims();
        let (m, n) = dims;
        let co_schedule = self.cfg.batch_threads_per_item < self.cfg.threads;
        let small = co_schedule && m.max(n) <= self.cfg.batch_small_cutoff;

        if small {
            let res = catch_unwind(AssertUnwindSafe(|| {
                self.run_small(kernels, source, dims, me, scratch)
            }));
            self.end_job(sink, res.map_err(panic_error).and_then(|r| r));
            return;
        }

        let built = catch_unwind(AssertUnwindSafe(|| -> Result<_, CaluError> {
            let a = source.materialize();
            let g = Arc::new(kernels.build_graph(m, n, self.cfg.b, self.leaf_stride)?);
            let nstatic = nstatic_for(self.cfg.dratio, g.num_panels());
            let item = ItemState::new(S::build(&a, self.cfg.b, self.grid), g, self.grid, nstatic);
            Ok((a, item))
        }));
        let (a, item) = match built {
            Ok(Ok(parts)) => parts,
            Ok(Err(e)) => {
                self.end_job(sink, Err(e));
                return;
            }
            Err(p) => {
                self.end_job(sink, Err(panic_error(p)));
                return;
            }
        };
        let total = item.g.len();
        let run = Arc::new(LargeRun {
            total,
            local: (0..self.threads())
                .map(|_| Mutex::new(BinaryHeap::new()))
                .collect(),
            dynamic: Mutex::new(BinaryHeap::new()),
            spans: Mutex::new(Vec::new()),
            stats: Mutex::new(vec![ThreadStats::default(); self.threads()]),
            sink: Mutex::new(Some(sink)),
            a: self.verify.then_some(a),
            dims,
            finishing: AtomicBool::new(false),
            class_rank: class.lane(),
            seq,
            item,
        });
        for t in run.item.g.initial_ready() {
            run.push_ready(t);
        }
        {
            let mut st = self.state.lock();
            let key = (run.class_rank, run.seq);
            let pos = st
                .active
                .partition_point(|r| (r.class_rank, r.seq) <= key);
            st.active.insert(pos, Arc::clone(&run));
        }
        self.work.notify_all();
    }

    /// The co-scheduled (small) route: materialize, build and drain the
    /// whole DAG worker-locally — the batch path's
    /// `run_item_sequential`, so the bits match a solo run.
    fn run_small(
        &self,
        kernels: KernelSet,
        source: PoolSource,
        dims: (usize, usize),
        me: usize,
        scratch: &mut GemmScratch,
    ) -> Result<PoolOutcome, CaluError> {
        let (m, n) = dims;
        let a = source.materialize();
        let g = Arc::new(kernels.build_graph(m, n, self.cfg.b, self.leaf_stride)?);
        let nstatic = nstatic_for(self.cfg.dratio, g.num_panels());
        let item = ItemState::new(
            S::build(&a, self.cfg.b, self.grid),
            Arc::clone(&g),
            self.grid,
            nstatic,
        );
        let mut haul = WorkerHaul {
            spans: Vec::new(),
            stats: vec![ThreadStats::default()],
            start_offset: 0.0,
            failed_sweeps: 0,
        };
        run_item_sequential(&item, 0, me, scratch, &self.epoch, &mut haul);
        let (s, perm, singular_at) = item.finish();
        let mut lu = s.to_dense();
        apply_left_swaps(&mut lu, &g, &perm, self.cfg.b);
        let factorization = Factorization {
            lu,
            perm,
            singular_at,
        };
        let (residual, growth_factor) = if self.verify {
            verify_figures(kernels, &factorization, &a)
        } else {
            (None, None)
        };
        drop(a);
        let t_start = haul
            .spans
            .iter()
            .map(|(_, s)| s.start)
            .fold(f64::INFINITY, f64::min);
        let mut timeline = Timeline::new(self.threads());
        for (_, s) in &haul.spans {
            timeline.push(TaskSpan {
                start: s.start - t_start,
                end: s.end - t_start,
                ..*s
            });
        }
        let mut stats = vec![ThreadStats::default(); self.threads()];
        stats[me] = haul.stats[0];
        let makespan = timeline.makespan();
        Ok(PoolOutcome {
            factorization,
            kernels,
            timeline,
            stats,
            makespan,
            co_scheduled: true,
            dims,
            residual,
            growth_factor,
        })
    }

    fn worker_loop(self: &Arc<Self>, me: usize) {
        if self.cfg.pin_workers {
            pin_current_thread(host_topology().cpu_for_worker(me));
        }
        let _guard = PanicGuard(&**self);
        let mut scratch = GemmScratch::sized_for(self.cfg.b, self.cfg.b, self.cfg.b);
        let mut ready_buf: Vec<TaskId> = Vec::new();
        {
            let mut st = self.state.lock();
            st.workers_started += 1;
            drop(st);
            self.idle.notify_all();
        }
        loop {
            if let Some((run, t, src)) = self.pop_coop(me) {
                self.run_task(&run, t, src, me, &mut scratch, &mut ready_buf);
                continue;
            }
            let mut st = self.state.lock();
            if let Some((class, job)) = st.lanes.pop() {
                st.in_flight += 1;
                let seq = st.next_seq;
                st.next_seq += 1;
                drop(st);
                self.start_job(class, seq, job, me, &mut scratch);
                continue;
            }
            if st.draining && st.lanes.is_empty() && st.in_flight == 0 {
                // truly nothing left: no queued jobs and no claimed
                // ones. Gating on in_flight (not `active`) matters — a
                // peer that popped a large job but has not yet published
                // its run still holds an in-flight slot, and that run
                // will assign static tasks to *this* worker's queue by
                // block-cyclic ownership; leaving early would strand
                // them (pop_coop has no stealing) and hang the drain
                return;
            }
            if st.draining && st.poisoned {
                // a peer died with a job claimed; that job can never
                // finish, so leave and let drain fail fast at the join
                return;
            }
            let _ = self
                .work
                .wait_timeout(st, IDLE_TICK)
                .unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Belt-and-braces behind `start_job`'s catch-unwind perimeter: if a
/// panic still escapes a worker (a sink callback, the report-shaping
/// code), mark the engine poisoned on the way down so `drain` stops
/// waiting for progress that will never come and fails fast at the
/// join instead of hanging.
struct PanicGuard<'a, S: TileStorage>(&'a Engine<S>);

impl<S: TileStorage> Drop for PanicGuard<'_, S> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let mut st = self.0.state.lock();
            st.poisoned = true;
            drop(st);
            self.0.idle.notify_all();
            self.0.work.notify_all();
        }
    }
}

/// Pool state shared by the public handle, generic over storage.
struct PoolCore<S: PoolStorage> {
    engine: Arc<Engine<S>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<S: PoolStorage> PoolCore<S> {
    fn spawn(cfg: CaluConfig, grid: ProcessGrid, verify: bool, limit: usize) -> (Self, f64) {
        let leaf_stride = cfg.leaf_stride.unwrap_or_else(|| grid.pr());
        let threads = cfg.threads;
        let engine = Arc::new(Engine {
            cfg,
            grid,
            leaf_stride,
            verify,
            epoch: Instant::now(),
            state: Mutex::new(EngineState {
                lanes: ClassLanes::new(limit),
                active: Vec::new(),
                in_flight: 0,
                draining: false,
                poisoned: false,
                workers_started: 0,
                next_seq: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles: Vec<JoinHandle<()>> = (0..threads)
            .map(|me| {
                let eng = Arc::clone(&engine);
                std::thread::spawn(move || eng.worker_loop(me))
            })
            .collect();
        // spawn cost = time until the last worker enters its loop
        let mut st = engine.state.lock();
        while st.workers_started < threads {
            st = engine
                .idle
                .wait_timeout(st, IDLE_TICK)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        drop(st);
        let spawn_secs = engine.epoch.elapsed().as_secs_f64();
        (
            PoolCore {
                engine,
                handles: Mutex::new(handles),
            },
            spawn_secs,
        )
    }

    fn submit(
        &self,
        id: u64,
        class: JobClass,
        kernels: KernelSet,
        source: PoolSource,
        sink: Box<dyn JobSink>,
    ) -> Result<(), Box<dyn JobSink>> {
        let mut st = self.engine.state.lock();
        if st.draining {
            drop(st);
            // refuse by handing the sink back *uncalled*: callers may
            // hold their own locks across submit (the service holds its
            // admission lock so drain cannot slip between its check and
            // ours), and a synchronous sink callback here could
            // re-enter them — the caller decides how to fail the job
            return Err(sink);
        }
        st.lanes.push(
            class,
            QueuedJob {
                id,
                kernels,
                source,
                sink,
            },
        );
        drop(st);
        self.engine.work.notify_all();
        Ok(())
    }

    fn cancel(&self, id: u64) -> Option<Box<dyn JobSink>> {
        let mut st = self.engine.state.lock();
        st.lanes
            .remove_where(|j| j.id == id)
            .map(|(_, job)| job.sink)
    }

    fn drain(&self) {
        {
            let mut st = self.engine.state.lock();
            st.draining = true;
        }
        self.engine.work.notify_all();
        let mut st = self.engine.state.lock();
        // a poisoned engine never makes progress again: stop waiting
        // and let the join below propagate the worker's panic
        while !(st.poisoned || st.lanes.is_empty() && st.in_flight == 0) {
            st = self
                .engine
                .idle
                .wait_timeout(st, IDLE_TICK)
                .unwrap_or_else(|e| e.into_inner())
                .0;
        }
        drop(st);
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            h.join().expect("pool worker panicked");
        }
    }

    fn queued(&self) -> usize {
        self.engine.state.lock().lanes.len()
    }

    fn queued_in(&self, class: JobClass) -> usize {
        self.engine.state.lock().lanes.len_in(class)
    }

    fn in_flight(&self) -> usize {
        self.engine.state.lock().in_flight
    }

    fn co_schedules(&self, dims: (usize, usize)) -> bool {
        let cfg = &self.engine.cfg;
        cfg.batch_threads_per_item < cfg.threads && dims.0.max(dims.1) <= cfg.batch_small_cutoff
    }
}

enum PoolInner {
    Cm(PoolCore<CmTiles>),
    Bcl(PoolCore<BclMatrix>),
    Tlb(PoolCore<TlbMatrix>),
}

macro_rules! dispatch {
    ($self:expr, $core:ident => $body:expr) => {
        match &$self.inner {
            PoolInner::Cm($core) => $body,
            PoolInner::Bcl($core) => $body,
            PoolInner::Tlb($core) => $body,
        }
    };
}

/// A spawn-once worker pool serving factorization jobs until drained.
///
/// All jobs share one [`CaluConfig`] (the per-job knobs are the
/// service's `JobSpec` dims and seed); the config's layout picks the
/// tile storage once, at spawn. Dropping the pool drains it.
pub struct ServicePool {
    inner: PoolInner,
    threads: usize,
    spawn_secs: f64,
}

impl ServicePool {
    /// Validate `cfg` and spawn its worker pool. `verify` makes every
    /// job compute a residual and growth factor against its input;
    /// `starvation_limit` bounds how many higher-class pops may pass
    /// over a waiting lower-class job (see [`ClassLanes`]).
    pub fn spawn(
        cfg: &CaluConfig,
        verify: bool,
        starvation_limit: usize,
    ) -> Result<ServicePool, CaluError> {
        let grid = cfg.validate()?;
        let threads = cfg.threads;
        let (inner, spawn_secs) = match cfg.layout {
            Layout::ColumnMajor => {
                let (c, s) = PoolCore::spawn(cfg.clone(), grid, verify, starvation_limit);
                (PoolInner::Cm(c), s)
            }
            Layout::BlockCyclic => {
                let (c, s) = PoolCore::spawn(cfg.clone(), grid, verify, starvation_limit);
                (PoolInner::Bcl(c), s)
            }
            Layout::TwoLevelBlock => {
                let (c, s) = PoolCore::spawn(cfg.clone(), grid, verify, starvation_limit);
                (PoolInner::Tlb(c), s)
            }
        };
        Ok(ServicePool {
            inner,
            threads,
            spawn_secs,
        })
    }

    /// Enqueue a job. `id` is the caller's correlation key (used by
    /// [`cancel`](Self::cancel)); `kernels` names the algorithm's tile
    /// kernels — one pool freely interleaves [`KernelSet::CaluLu`] and
    /// [`KernelSet::Cholesky`] jobs; results leave through `sink`.
    /// After [`drain`](Self::drain) began the job is refused and the
    /// sink is handed back **uncalled** — never invoked synchronously,
    /// so callers may hold their own locks across `submit` without
    /// risking re-entrancy. The caller fails the returned sink however
    /// it sees fit.
    pub fn submit(
        &self,
        id: u64,
        class: JobClass,
        kernels: KernelSet,
        source: PoolSource,
        sink: Box<dyn JobSink>,
    ) -> Result<(), Box<dyn JobSink>> {
        dispatch!(self, c => c.submit(id, class, kernels, source, sink))
    }

    /// Remove a still-queued job. Returns its sink (uncalled) when the
    /// job was found; `None` means the job already started or finished
    /// — the race resolves to normal completion.
    pub fn cancel(&self, id: u64) -> Option<Box<dyn JobSink>> {
        dispatch!(self, c => c.cancel(id))
    }

    /// Stop admitting, finish everything queued and in flight, join the
    /// workers. Idempotent; also runs on drop.
    pub fn drain(&self) {
        dispatch!(self, c => c.drain())
    }

    /// Jobs waiting in the lanes.
    pub fn queued(&self) -> usize {
        dispatch!(self, c => c.queued())
    }

    /// Jobs waiting in `class`'s lane.
    pub fn queued_in(&self, class: JobClass) -> usize {
        dispatch!(self, c => c.queued_in(class))
    }

    /// Claimed-but-unfinished jobs.
    pub fn in_flight(&self) -> usize {
        dispatch!(self, c => c.in_flight())
    }

    /// Whether a job of `dims` would take the co-scheduled (small)
    /// route: claimed whole by one worker instead of running the
    /// co-operative hybrid schedule. The exact predicate the workers
    /// apply — callers can pre-classify a sweep without running it.
    pub fn co_schedules(&self, dims: (usize, usize)) -> bool {
        dispatch!(self, c => c.co_schedules(dims))
    }

    /// Pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Seconds until the last worker entered its loop — paid once at
    /// spawn, amortized over every job the pool ever serves.
    pub fn spawn_secs(&self) -> f64 {
        self.spawn_secs
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::calu_factor;
    use std::sync::mpsc;

    struct ChanSink(mpsc::Sender<Result<PoolOutcome, CaluError>>);

    impl JobSink for ChanSink {
        fn finished(self: Box<Self>, res: Result<PoolOutcome, CaluError>) {
            let _ = self.0.send(res);
        }
    }

    fn cfg4() -> CaluConfig {
        CaluConfig::new(16).with_threads(4).with_dratio(0.5)
    }

    /// Assert a submit was admitted (the rejection arm returns the sink,
    /// which has no `Debug` for a plain `unwrap`).
    fn accept(r: Result<(), Box<dyn JobSink>>) {
        assert!(r.is_ok(), "pool rejected a submit while not draining");
    }

    #[test]
    fn small_jobs_match_solo_runs_bitwise() {
        let cfg = cfg4().with_batch_small_cutoff(100);
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        for seed in 0..4u64 {
            accept(pool.submit(
                seed,
                JobClass::Batch,
                KernelSet::CaluLu,
                PoolSource::Uniform {
                    m: 64,
                    n: 64,
                    seed,
                },
                Box::new(ChanSink(tx.clone())),
            ));
        }
        let mut outcomes: Vec<PoolOutcome> = (0..4).map(|_| rx.recv().unwrap().unwrap()).collect();
        pool.drain();
        outcomes.sort_by_key(|o| o.factorization.lu.as_slice().len()); // all same; stable no-op
        for o in &outcomes {
            assert!(o.co_scheduled);
        }
        // parity: match each outcome to its seed by re-factoring
        for seed in 0..4u64 {
            let a = gen::uniform(64, 64, seed);
            let solo = calu_factor(&a, &cfg).unwrap();
            assert!(
                outcomes
                    .iter()
                    .any(|o| o.factorization.lu.as_slice() == solo.lu.as_slice()
                        && o.factorization.perm.pivots() == solo.perm.pivots()),
                "seed {seed} missing from pool outcomes"
            );
        }
    }

    #[test]
    fn large_jobs_match_solo_runs_bitwise() {
        // cutoff 0 forces the co-operative route
        let cfg = cfg4().with_batch_small_cutoff(0);
        let pool = ServicePool::spawn(&cfg, true, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        let a = gen::uniform(192, 192, 7);
        accept(pool.submit(
            1,
            JobClass::Interactive,
            KernelSet::CaluLu,
            PoolSource::Dense(a.clone()),
            Box::new(ChanSink(tx)),
        ));
        let out = rx.recv().unwrap().unwrap();
        pool.drain();
        assert!(!out.co_scheduled);
        let solo = calu_factor(&a, &cfg).unwrap();
        assert_eq!(out.factorization.lu.as_slice(), solo.lu.as_slice());
        assert_eq!(out.factorization.perm.pivots(), solo.perm.pivots());
        assert!(out.residual.unwrap() < 1e-12);
        let tasks: u64 = out
            .stats
            .iter()
            .map(|s| s.local_pops + s.global_pops)
            .sum();
        assert_eq!(tasks as usize, out.timeline.spans().len());
    }

    #[test]
    fn mixed_lu_and_cholesky_jobs_share_one_pool() {
        // one pool, both kernel sets, both routes (small + large)
        let cfg = cfg4().with_batch_small_cutoff(100);
        let pool = ServicePool::spawn(&cfg, true, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        let jobs: [(u64, KernelSet, PoolSource); 4] = [
            (1, KernelSet::CaluLu, PoolSource::Uniform { m: 64, n: 64, seed: 1 }),
            (2, KernelSet::Cholesky, PoolSource::SpdUniform { n: 64, seed: 2 }),
            (3, KernelSet::CaluLu, PoolSource::Uniform { m: 192, n: 192, seed: 3 }),
            (4, KernelSet::Cholesky, PoolSource::SpdUniform { n: 192, seed: 4 }),
        ];
        for (id, kernels, source) in jobs {
            accept(pool.submit(
                id,
                JobClass::Batch,
                kernels,
                source,
                Box::new(ChanSink(tx.clone())),
            ));
        }
        let outcomes: Vec<PoolOutcome> = (0..4).map(|_| rx.recv().unwrap().unwrap()).collect();
        pool.drain();
        for n in [64usize, 192] {
            let lu_in = gen::uniform(n, n, if n == 64 { 1 } else { 3 });
            let spd_in = gen::spd_uniform(n, if n == 64 { 2 } else { 4 });
            let solo_lu = calu_factor(&lu_in, &cfg).unwrap();
            let solo_ch = crate::threaded::cholesky_factor(&spd_in, &cfg).unwrap();
            let lu_out = outcomes
                .iter()
                .find(|o| o.dims == (n, n) && o.kernels == KernelSet::CaluLu)
                .unwrap();
            let ch_out = outcomes
                .iter()
                .find(|o| o.dims == (n, n) && o.kernels == KernelSet::Cholesky)
                .unwrap();
            assert_eq!(lu_out.factorization.lu.as_slice(), solo_lu.lu.as_slice());
            assert_eq!(ch_out.factorization.lu.as_slice(), solo_ch.lu.as_slice());
            assert!(lu_out.residual.unwrap() < 1e-12);
            assert!(lu_out.growth_factor.is_some());
            assert!(ch_out.residual.unwrap() < 1e-13);
            assert!(ch_out.growth_factor.is_none(), "Cholesky has no growth");
        }
    }

    #[test]
    fn cholesky_job_with_rectangular_source_fails_typed() {
        for cutoff in [100usize, 0] {
            // both routes must refuse with InvalidConfig, not a panic
            let pool =
                ServicePool::spawn(&cfg4().with_batch_small_cutoff(cutoff), false, 4).unwrap();
            let (tx, rx) = mpsc::channel();
            accept(pool.submit(
                1,
                JobClass::Batch,
                KernelSet::Cholesky,
                PoolSource::Uniform { m: 96, n: 64, seed: 1 },
                Box::new(ChanSink(tx)),
            ));
            match rx.recv().unwrap() {
                Err(CaluError::InvalidConfig(msg)) => {
                    assert!(msg.contains("square"), "msg: {msg}")
                }
                other => panic!("cutoff {cutoff}: expected InvalidConfig, got {other:?}"),
            }
            pool.drain();
        }
    }

    #[test]
    fn drain_finishes_jobs_queued_in_every_class() {
        let cfg = cfg4().with_batch_small_cutoff(100).with_threads(2);
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        let n_jobs = 9;
        for i in 0..n_jobs {
            let class = JobClass::ALL[i % 3];
            accept(pool.submit(
                i as u64,
                class,
                KernelSet::CaluLu,
                PoolSource::Uniform {
                    m: 48,
                    n: 48,
                    seed: i as u64,
                },
                Box::new(ChanSink(tx.clone())),
            ));
        }
        pool.drain();
        // every job completed before drain returned
        let done: Vec<_> = rx.try_iter().collect();
        assert_eq!(done.len(), n_jobs);
        assert!(done.iter().all(|r| r.is_ok()));
        assert_eq!(pool.queued(), 0);
        assert_eq!(pool.in_flight(), 0);
    }

    #[test]
    fn cancel_removes_a_queued_job() {
        // single worker + a job in front keeps the victim queued long
        // enough to cancel deterministically… unless the first job wins
        // the race, which the assertion tolerates by checking either
        // outcome is consistent
        let cfg = cfg4().with_threads(1).with_batch_small_cutoff(0);
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        accept(pool.submit(
            1,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 256,
                n: 256,
                seed: 1,
            },
            Box::new(ChanSink(tx.clone())),
        ));
        accept(pool.submit(
            2,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 64,
                n: 64,
                seed: 2,
            },
            Box::new(ChanSink(tx.clone())),
        ));
        let cancelled = pool.cancel(2).is_some();
        pool.drain();
        let done = rx.try_iter().count();
        assert_eq!(done, if cancelled { 1 } else { 2 });
    }

    #[test]
    fn submit_after_drain_returns_the_sink_uncalled() {
        let pool = ServicePool::spawn(&cfg4(), false, 4).unwrap();
        pool.drain();
        let (tx, rx) = mpsc::channel();
        let rejected = pool.submit(
            1,
            JobClass::Interactive,
            KernelSet::CaluLu,
            PoolSource::Uniform { m: 8, n: 8, seed: 0 },
            Box::new(ChanSink(tx)),
        );
        let sink = match rejected {
            Ok(()) => panic!("a draining pool must refuse submits"),
            Err(sink) => sink,
        };
        // the pool never invoked the sink — re-entrancy-safe for
        // callers submitting under their own locks
        assert!(rx.try_recv().is_err());
        sink.finished(Err(CaluError::InvalidConfig("pool is shutting down".into())));
        assert!(matches!(
            rx.recv().unwrap(),
            Err(CaluError::InvalidConfig(_))
        ));
        pool.drain(); // idempotent
    }

    #[test]
    fn drain_racing_a_large_job_claim_never_strands_it() {
        // regression: drain() used to let idle workers exit on
        // `draining && active.is_empty()`, which is observable while a
        // peer has *claimed* a large job (in_flight counted) but not
        // yet published its run — the run's static tasks then belonged
        // to exited workers and the job never finished. Iterate to give
        // the race room; the exit gate on in_flight must keep every
        // worker around until the claimed job is done.
        let cfg = cfg4().with_batch_small_cutoff(0); // every job co-operative
        for round in 0..10u64 {
            let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
            let (tx, rx) = mpsc::channel();
            accept(pool.submit(
                round,
                JobClass::Batch,
                KernelSet::CaluLu,
                PoolSource::Uniform {
                    m: 128,
                    n: 128,
                    seed: round,
                },
                Box::new(ChanSink(tx)),
            ));
            // drain immediately: workers observe `draining` while the
            // claimant is still materializing/building the run
            pool.drain();
            let out = rx.recv().expect("job stranded by drain").unwrap();
            assert!(!out.co_scheduled);
            assert!(out.factorization.is_nonsingular());
        }
    }

    #[test]
    fn panicking_job_fails_its_sink_and_the_pool_survives() {
        // a 0×0 source trips `TaskGraph::build_calu`'s non-empty assert
        // on the claiming worker; the panic must be contained to the
        // job (sink failed with TaskPanic), not kill the worker
        let cfg = cfg4().with_batch_small_cutoff(100);
        let pool = ServicePool::spawn(&cfg, false, 4).unwrap();
        let (tx, rx) = mpsc::channel();
        accept(pool.submit(
            1,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform { m: 0, n: 0, seed: 0 },
            Box::new(ChanSink(tx.clone())),
        ));
        assert!(matches!(
            rx.recv().unwrap(),
            Err(CaluError::TaskPanic(_))
        ));
        // same through the co-operative route: cutoff 0 with one
        // non-zero dimension routes large, and the build still asserts
        let large = ServicePool::spawn(&cfg4().with_batch_small_cutoff(0), false, 4).unwrap();
        let (ltx, lrx) = mpsc::channel();
        accept(large.submit(
            2,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform { m: 0, n: 5, seed: 0 },
            Box::new(ChanSink(ltx)),
        ));
        assert!(matches!(
            lrx.recv().unwrap(),
            Err(CaluError::TaskPanic(_))
        ));
        // both pools keep serving after the panic
        accept(pool.submit(
            3,
            JobClass::Batch,
            KernelSet::CaluLu,
            PoolSource::Uniform {
                m: 48,
                n: 48,
                seed: 3,
            },
            Box::new(ChanSink(tx)),
        ));
        assert!(rx.recv().unwrap().is_ok());
        pool.drain();
        large.drain();
    }
}
