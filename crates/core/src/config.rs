//! Configuration of the CALU driver — the paper's design space knobs
//! (Table 1): block size, thread count/grid, data layout, and the
//! percentage of dynamically scheduled panels.

use crate::error::CaluError;
use crate::fault::FaultPlan;
use calu_matrix::{Layout, ProcessGrid};
use calu_sched::{AdaptivePolicy, QueueDiscipline, StealOrder};

/// Configuration for [`crate::calu_factor`].
#[derive(Debug, Clone, PartialEq)]
pub struct CaluConfig {
    /// Tile size `b`.
    pub b: usize,
    /// Number of worker threads.
    pub threads: usize,
    /// Fraction of panels scheduled dynamically (`0.0` = fully static,
    /// `1.0` = fully dynamic). The paper finds `0.1` a good default.
    pub dratio: f64,
    /// Data layout for the tiled storage.
    pub layout: Layout,
    /// Grouping width for BLAS-3 calls on owned blocks (the paper uses
    /// `k = 3` with the BCL layout).
    pub group: usize,
    /// TSLU leaves per panel. `None` uses the thread grid's row count,
    /// as in the paper.
    pub leaf_stride: Option<usize>,
    /// How the dynamic-section ready queue is organized: the paper's
    /// single shared queue, per-worker mutex shards with randomized
    /// stealing ([`QueueDiscipline::Sharded`]), or per-worker lock-free
    /// Chase-Lev deques with locality-tiered stealing
    /// ([`QueueDiscipline::LockFree`]).
    pub queue: QueueDiscipline,
    /// Pin worker `w` to the logical CPU the detected topology maps it
    /// to (`CpuTopology::cpu_for_worker`). Off by default: pinning is a
    /// throughput optimization for dedicated machines and can hurt on
    /// oversubscribed ones. Best effort — an unpinnable CPU (sandbox,
    /// cgroup) leaves the worker floating.
    pub pin_workers: bool,
    /// Batched sweeps only ([`crate::calu_factor_batch`]): the
    /// co-scheduling switch and modelled group width. Any value `<`
    /// `threads` enables co-scheduling; `threads` disables it (every
    /// item runs the full hybrid static/dynamic schedule on the whole
    /// pool). **The threaded pool always runs a co-scheduled item on
    /// exactly one worker** — whole items in parallel, zero intra-item
    /// synchronization — regardless of the value; the simulated
    /// backend additionally uses it as the core-group width its batch
    /// model assigns each small item to (`k`-wide groups per item is
    /// planned, not implemented, on the real executor). Must lie in
    /// `1..=threads`.
    pub batch_threads_per_item: usize,
    /// Batched sweeps only: items whose larger dimension is at most
    /// this cutoff count as *small* and are co-scheduled; larger items
    /// are executed co-operatively by the whole pool under the full
    /// hybrid static/dynamic schedule. `0` co-schedules nothing.
    pub batch_small_cutoff: usize,
    /// Deterministic fault injection for chaos testing
    /// ([`FaultPlan::off`] by default — the hot path never consults a
    /// disarmed plan). See [`crate::fault`] for the fault kinds and the
    /// static-task rescue guarantees.
    pub fault: FaultPlan,
    /// Direction of the lock-free discipline's tiered victim sweep
    /// (default nearest-first). The adaptive controller flips it to
    /// farthest-first when most successful steals already cross
    /// sockets; either direction factors bitwise-identically.
    pub steal_order: StealOrder,
    /// Adaptive split policy, when the run's knobs were chosen by the
    /// feedback controller ([`calu_sched::adaptive`]). Carried for
    /// validation and reporting — executors run the already-resolved
    /// `dratio`/cutoffs above; adaptation never happens mid-DAG.
    pub adaptive: Option<AdaptivePolicy>,
}

/// Default [`CaluConfig::batch_small_cutoff`]: matrices up to 384×384
/// (a handful of tiles at the paper's `b = 100`) are cheaper to factor
/// whole-item-per-worker than to synchronize across the pool.
pub const DEFAULT_BATCH_SMALL_CUTOFF: usize = 384;

impl CaluConfig {
    /// Defaults from the paper's best configuration: BCL layout, 10%
    /// dynamic, grouping 3, single thread (callers set their own).
    pub fn new(b: usize) -> Self {
        Self {
            b,
            threads: 1,
            dratio: 0.1,
            layout: Layout::BlockCyclic,
            group: 3,
            leaf_stride: None,
            queue: QueueDiscipline::Global,
            pin_workers: false,
            batch_threads_per_item: 1,
            batch_small_cutoff: DEFAULT_BATCH_SMALL_CUTOFF,
            fault: FaultPlan::off(),
            steal_order: StealOrder::default(),
            adaptive: None,
        }
    }

    /// Set the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the dynamic fraction.
    pub fn with_dratio(mut self, dratio: f64) -> Self {
        self.dratio = dratio;
        self
    }

    /// Set the data layout.
    pub fn with_layout(mut self, layout: Layout) -> Self {
        self.layout = layout;
        self
    }

    /// Override the TSLU leaves per panel (default: grid row count).
    pub fn with_tslu_leaves(mut self, stride: usize) -> Self {
        self.leaf_stride = Some(stride);
        self
    }

    /// Set the dynamic-section queue discipline (default
    /// [`QueueDiscipline::Global`]).
    pub fn with_queue(mut self, queue: QueueDiscipline) -> Self {
        self.queue = queue;
        self
    }

    /// Pin workers to CPUs by the detected topology (default off).
    pub fn with_pinning(mut self, pin: bool) -> Self {
        self.pin_workers = pin;
        self
    }

    /// Set the workers per co-scheduled batch item (default 1).
    pub fn with_batch_threads_per_item(mut self, k: usize) -> Self {
        self.batch_threads_per_item = k;
        self
    }

    /// Set the small-item cutoff for batched sweeps (default
    /// [`DEFAULT_BATCH_SMALL_CUTOFF`]).
    pub fn with_batch_small_cutoff(mut self, cutoff: usize) -> Self {
        self.batch_small_cutoff = cutoff;
        self
    }

    /// Inject a deterministic [`FaultPlan`] (default [`FaultPlan::off`]).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Set the lock-free steal-sweep direction (default nearest-first).
    pub fn with_steal_order(mut self, order: StealOrder) -> Self {
        self.steal_order = order;
        self
    }

    /// Record the adaptive policy that chose this config's split.
    pub fn with_adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }

    /// Validate and derive the thread grid.
    pub fn validate(&self) -> Result<ProcessGrid, CaluError> {
        if self.b == 0 {
            return Err(CaluError::InvalidConfig(
                "block size must be positive".into(),
            ));
        }
        if self.threads == 0 {
            return Err(CaluError::InvalidConfig("need at least one thread".into()));
        }
        if !(0.0..=1.0).contains(&self.dratio) {
            return Err(CaluError::InvalidConfig(format!(
                "dratio {} out of [0,1]",
                self.dratio
            )));
        }
        if self.group == 0 {
            return Err(CaluError::InvalidConfig("group must be positive".into()));
        }
        if self.leaf_stride == Some(0) {
            return Err(CaluError::InvalidConfig(
                "tslu_leaves(0) is meaningless: each panel needs at least one \
                 TSLU leaf; use 1 for a sequential panel"
                    .into(),
            ));
        }
        if self.batch_threads_per_item == 0 {
            return Err(CaluError::InvalidConfig(
                "batch_threads_per_item must be at least 1 (one worker per \
                 co-scheduled item)"
                    .into(),
            ));
        }
        if self.batch_threads_per_item > self.threads {
            return Err(CaluError::InvalidConfig(format!(
                "batch_threads_per_item {} exceeds the thread count {}; a \
                 co-scheduled item cannot use more workers than the pool has",
                self.batch_threads_per_item, self.threads
            )));
        }
        self.fault.validate(self.threads)?;
        if let Some(policy) = &self.adaptive {
            policy.validate().map_err(CaluError::InvalidConfig)?;
        }
        if self.queue.steals() && self.dratio == 0.0 {
            return Err(CaluError::InvalidConfig(format!(
                "the {} queue discipline organizes the dynamic section, \
                 but dratio is 0 (fully static) so there is nothing to shard \
                 or steal; raise dratio or use QueueDiscipline::Global",
                self.queue
            )));
        }
        ProcessGrid::square_for(self.threads).map_err(|e| CaluError::InvalidConfig(e.to_string()))
    }

    /// Effective BLAS-3 grouping: only the BCL layout can group (§4).
    pub fn effective_group(&self) -> usize {
        if self.layout.supports_grouping() {
            self.group
        } else {
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_best() {
        let c = CaluConfig::new(100);
        assert_eq!(c.b, 100);
        assert_eq!(c.dratio, 0.1);
        assert_eq!(c.layout, Layout::BlockCyclic);
        assert_eq!(c.group, 3);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chain() {
        let c = CaluConfig::new(64)
            .with_threads(8)
            .with_dratio(0.25)
            .with_layout(Layout::TwoLevelBlock);
        assert_eq!(c.threads, 8);
        assert_eq!(c.dratio, 0.25);
        assert_eq!(c.effective_group(), 1, "2l-BL cannot group");
        let grid = c.validate().unwrap();
        assert_eq!(grid.size(), 8);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(CaluConfig::new(0).validate().is_err());
        assert!(CaluConfig::new(8).with_threads(0).validate().is_err());
        assert!(CaluConfig::new(8).with_dratio(1.5).validate().is_err());
        let mut c = CaluConfig::new(8);
        c.group = 0;
        assert!(c.validate().is_err());
        assert!(CaluConfig::new(8).with_tslu_leaves(0).validate().is_err());
    }

    #[test]
    fn sharded_queue_needs_a_dynamic_section() {
        for queue in [QueueDiscipline::sharded(), QueueDiscipline::lock_free()] {
            let cfg = CaluConfig::new(8).with_dratio(0.0).with_queue(queue);
            let err = cfg.validate().unwrap_err();
            assert!(
                err.to_string().contains("dynamic") && err.to_string().contains(&queue.to_string()),
                "actionable message naming {queue}, got: {err}"
            );
            // any non-zero dynamic share is fine
            assert!(CaluConfig::new(8)
                .with_dratio(0.1)
                .with_queue(queue)
                .validate()
                .is_ok());
        }
        // and Global never conflicts
        assert!(CaluConfig::new(8).with_dratio(0.0).validate().is_ok());
    }

    #[test]
    fn batch_knobs_validate() {
        let c = CaluConfig::new(8);
        assert_eq!(c.batch_threads_per_item, 1);
        assert_eq!(c.batch_small_cutoff, DEFAULT_BATCH_SMALL_CUTOFF);
        assert!(c.validate().is_ok());
        assert!(
            CaluConfig::new(8)
                .with_batch_threads_per_item(0)
                .validate()
                .is_err(),
            "zero workers per item is meaningless"
        );
        let err = CaluConfig::new(8)
            .with_threads(4)
            .with_batch_threads_per_item(8)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
        // k == threads is the "no co-scheduling" edge, not an error
        assert!(CaluConfig::new(8)
            .with_threads(4)
            .with_batch_threads_per_item(4)
            .validate()
            .is_ok());
        assert!(CaluConfig::new(8)
            .with_batch_small_cutoff(0)
            .validate()
            .is_ok());
    }

    #[test]
    fn fault_plan_validates_through_config() {
        use crate::fault::FaultPlan;
        let c = CaluConfig::new(8).with_threads(4);
        assert!(c.fault.is_off(), "off by default");
        assert!(c
            .clone()
            .with_fault(FaultPlan::off().slow_worker(1, 2.0))
            .validate()
            .is_ok());
        let err = c
            .with_fault(FaultPlan::off().lose_worker(9, 1))
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("worker 9"), "{err}");
    }

    #[test]
    fn adaptive_policy_validates_through_config() {
        let c = CaluConfig::new(8).with_threads(4);
        assert!(c.adaptive.is_none(), "off by default");
        assert_eq!(c.steal_order, StealOrder::NearestFirst);
        assert!(c
            .clone()
            .with_adaptive(AdaptivePolicy::new(7))
            .with_steal_order(StealOrder::FarthestFirst)
            .validate()
            .is_ok());
        let err = c
            .with_adaptive(AdaptivePolicy::new(7).with_dratio_bounds(0.0, 0.5))
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("adaptive"), "{err}");
    }

    #[test]
    fn pinning_is_a_free_knob() {
        let c = CaluConfig::new(8).with_pinning(true);
        assert!(c.pin_workers);
        assert!(c.validate().is_ok());
        assert!(!CaluConfig::new(8).pin_workers, "off by default");
    }
}
