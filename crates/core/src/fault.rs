//! Deterministic fault injection for the real executors.
//!
//! The paper's case for hybrid static/dynamic scheduling is that the
//! dynamic section absorbs *adversity* — slow cores, OS noise, lost
//! workers. The simulator proves that under modelled noise
//! (`calu-sim`'s `NoiseConfig` / `slow_core`); a [`FaultPlan`] proves it
//! on real threads: it makes the threaded executor and the service pool
//! misbehave *on purpose*, deterministically, so chaos runs replay
//! bit for bit from a seed.
//!
//! A plan holds at most one [`FaultKind`] per worker:
//!
//! * [`FaultKind::Slow`] — a persistent duty-cycle slowdown: after every
//!   task the worker stalls for `(factor − 1) ×` the task's duration
//!   (±25 % seeded jitter), mirroring the sim's noise model. The
//!   executor treats a slow-flagged worker as *degraded* and routes its
//!   block-cyclic static tasks to the dynamic section instead, where the
//!   healthy workers load-balance them.
//! * [`FaultKind::StallOnce`] — one long stall at a chosen task count
//!   (a GC pause, a page-fault storm): the worker freezes, then resumes.
//! * [`FaultKind::Lose`] — the worker *dies* at a chosen task count.
//!   Before exiting it republishes its unexecuted static-section tasks
//!   into the dynamic queues (static-task rescue), so the survivors
//!   finish the factorization — bitwise identical to the no-fault run,
//!   because the DAG's exclusive-writer discipline makes the factors
//!   schedule-independent.
//! * [`FaultKind::Panic`] — the worker's next kernel panics. The
//!   executor contains it and fails the run with a typed
//!   [`CaluError::TaskPanic`]; the service pool keeps serving.
//!
//! [`FaultPlan::off`] is the default everywhere, and a disarmed plan
//! costs the hot path nothing: the executors only consult fault state
//! when a plan is armed.
//!
//! [`CaluError::TaskPanic`]: crate::CaluError::TaskPanic

use std::time::Duration;

use calu_rand::Rng;

use crate::error::CaluError;

/// What a faulty worker does, and when (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Persistent slowdown: after each task, stall for
    /// `(factor − 1) ×` the task's own duration, with ±25 % seeded
    /// jitter — a duty-cycle model of a core running at `1/factor`
    /// speed. Requires `factor ≥ 1`.
    Slow {
        /// Effective slowdown multiplier (2.0 = half speed).
        factor: f64,
    },
    /// One-shot freeze: after `after_tasks` completed tasks the worker
    /// sleeps `millis`, then resumes normally.
    StallOnce {
        /// Tasks this worker completes before the stall.
        after_tasks: u64,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Worker loss: after `after_tasks` completed tasks the worker
    /// rescues its static backlog into the dynamic queues and exits.
    Lose {
        /// Tasks this worker completes before dying.
        after_tasks: u64,
    },
    /// Injected kernel panic: the task popped after `after_tasks`
    /// completed tasks panics mid-kernel.
    Panic {
        /// Tasks this worker completes before the panicking one.
        after_tasks: u64,
    },
}

/// One worker's fault assignment inside a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerFault {
    /// Worker index the fault applies to (must be `< threads`).
    pub worker: usize,
    /// The fault.
    pub kind: FaultKind,
}

/// A seeded, deterministic fault-injection plan (see module docs).
/// Validated through `CaluConfig::validate`; off by default.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the stall-jitter streams (each worker derives its own
    /// stream from `seed + worker`), so a chaos run replays bitwise.
    pub seed: u64,
    faults: Vec<WorkerFault>,
}

impl FaultPlan {
    /// The default: no faults injected anywhere.
    pub fn off() -> Self {
        Self::default()
    }

    /// True when the plan injects nothing (the hot path is untouched).
    pub fn is_off(&self) -> bool {
        self.faults.is_empty()
    }

    /// Set the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Run `worker` at `1/factor` effective speed (duty-cycle stalls).
    pub fn slow_worker(mut self, worker: usize, factor: f64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::Slow { factor },
        });
        self
    }

    /// Freeze `worker` once for `millis` ms after `after_tasks` tasks.
    pub fn stall_worker(mut self, worker: usize, after_tasks: u64, millis: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::StallOnce {
                after_tasks,
                millis,
            },
        });
        self
    }

    /// Kill `worker` after it completes `after_tasks` tasks.
    pub fn lose_worker(mut self, worker: usize, after_tasks: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::Lose { after_tasks },
        });
        self
    }

    /// Make `worker`'s next kernel after `after_tasks` tasks panic.
    pub fn panic_worker(mut self, worker: usize, after_tasks: u64) -> Self {
        self.faults.push(WorkerFault {
            worker,
            kind: FaultKind::Panic { after_tasks },
        });
        self
    }

    /// The plan's fault list.
    pub fn faults(&self) -> &[WorkerFault] {
        &self.faults
    }

    /// The fault assigned to `worker`, if any.
    pub fn fault_for(&self, worker: usize) -> Option<FaultKind> {
        self.faults
            .iter()
            .find(|f| f.worker == worker)
            .map(|f| f.kind)
    }

    /// Validate against a worker count: every fault targets an existing
    /// worker, no worker carries two faults, slow factors are ≥ 1, and
    /// at least one worker survives every `Lose` (otherwise no run could
    /// ever finish and `drain` could hang — exactly what the adversity
    /// layer promises never happens).
    pub fn validate(&self, threads: usize) -> Result<(), CaluError> {
        let mut seen = vec![false; threads];
        let mut losses = 0usize;
        for f in &self.faults {
            if f.worker >= threads {
                return Err(CaluError::InvalidConfig(format!(
                    "fault plan targets worker {} but the run has {} threads",
                    f.worker, threads
                )));
            }
            if seen[f.worker] {
                return Err(CaluError::InvalidConfig(format!(
                    "fault plan assigns two faults to worker {}",
                    f.worker
                )));
            }
            seen[f.worker] = true;
            match f.kind {
                FaultKind::Slow { factor } if !(factor.is_finite() && factor >= 1.0) => {
                    return Err(CaluError::InvalidConfig(format!(
                        "slow-worker factor must be a finite value ≥ 1, got {factor}"
                    )));
                }
                FaultKind::Lose { .. } => losses += 1,
                _ => {}
            }
        }
        if losses > 0 && losses >= threads {
            return Err(CaluError::InvalidConfig(format!(
                "fault plan loses all {threads} workers; at least one must \
                 survive to finish the factorization"
            )));
        }
        Ok(())
    }
}

/// What the executor should do right now, as told by a [`FaultClock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FaultAction {
    /// Keep working normally.
    None,
    /// Sleep this long, then continue (one-shot stall).
    Stall(Duration),
    /// Rescue the static backlog and exit (worker loss).
    Lose,
    /// Panic inside the next kernel.
    Panic,
}

/// Per-worker runtime fault state: the executors call
/// [`FaultClock::before_task`] before popping and
/// [`FaultClock::after_task`] after each completed task, and obey.
pub(crate) struct FaultClock {
    kind: Option<FaultKind>,
    /// Tasks this worker has completed.
    tasks: u64,
    /// The one-shot fault (stall / lose / panic) already fired.
    fired: bool,
    /// Jitter stream for `Slow` stalls (seeded from the plan).
    rng: Rng,
}

impl FaultClock {
    /// The clock for `worker` under `plan` (disarmed if the plan assigns
    /// it no fault).
    pub(crate) fn new(plan: &FaultPlan, worker: usize) -> Self {
        Self {
            kind: plan.fault_for(worker),
            tasks: 0,
            fired: false,
            rng: Rng::seed_from_u64(plan.seed.wrapping_add(worker as u64)),
        }
    }

    /// A permanently disarmed clock (for workers of a fault-free run).
    pub(crate) fn disarmed() -> Self {
        Self {
            kind: None,
            tasks: 0,
            fired: false,
            rng: Rng::seed_from_u64(0),
        }
    }

    /// True when this worker carries a persistent slowdown (executors
    /// read the plan's kinds directly; the clock's own tests use this).
    #[cfg(test)]
    pub(crate) fn is_slow(&self) -> bool {
        matches!(self.kind, Some(FaultKind::Slow { .. }))
    }

    /// Consult the clock before claiming the next task.
    pub(crate) fn before_task(&mut self) -> FaultAction {
        if self.fired {
            return FaultAction::None;
        }
        match self.kind {
            Some(FaultKind::StallOnce {
                after_tasks,
                millis,
            }) if self.tasks >= after_tasks => {
                self.fired = true;
                FaultAction::Stall(Duration::from_millis(millis))
            }
            Some(FaultKind::Lose { after_tasks }) if self.tasks >= after_tasks => {
                self.fired = true;
                FaultAction::Lose
            }
            Some(FaultKind::Panic { after_tasks }) if self.tasks >= after_tasks => {
                self.fired = true;
                FaultAction::Panic
            }
            _ => FaultAction::None,
        }
    }

    /// Record one completed task that took `busy`; returns the extra
    /// stall a `Slow` worker owes (duty-cycle slowdown with ±25 %
    /// seeded jitter).
    pub(crate) fn after_task(&mut self, busy: Duration) -> Option<Duration> {
        self.tasks += 1;
        match self.kind {
            Some(FaultKind::Slow { factor }) if factor > 1.0 => {
                let jitter = 0.75 + 0.5 * self.rng.next_f64();
                Some(busy.mul_f64((factor - 1.0) * jitter))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_plan_is_default_and_validates_everywhere() {
        let p = FaultPlan::off();
        assert!(p.is_off());
        assert_eq!(p, FaultPlan::default());
        for threads in 1..8 {
            p.validate(threads).unwrap();
        }
    }

    #[test]
    fn builders_accumulate_and_validate() {
        let p = FaultPlan::off()
            .with_seed(7)
            .slow_worker(0, 2.0)
            .lose_worker(1, 5)
            .stall_worker(2, 3, 10)
            .panic_worker(3, 2);
        assert!(!p.is_off());
        assert_eq!(p.faults().len(), 4);
        p.validate(4).unwrap();
        assert_eq!(p.fault_for(1), Some(FaultKind::Lose { after_tasks: 5 }));
        assert_eq!(p.fault_for(7), None);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        // out-of-range worker
        let e = FaultPlan::off().lose_worker(4, 1).validate(4).unwrap_err();
        assert!(e.to_string().contains("worker 4"), "{e}");
        // duplicate worker
        let e = FaultPlan::off()
            .slow_worker(1, 2.0)
            .lose_worker(1, 3)
            .validate(4)
            .unwrap_err();
        assert!(e.to_string().contains("two faults"), "{e}");
        // slow factor below 1
        let e = FaultPlan::off()
            .slow_worker(0, 0.5)
            .validate(2)
            .unwrap_err();
        assert!(e.to_string().contains("≥ 1"), "{e}");
        // losing every worker can never finish
        let e = FaultPlan::off()
            .lose_worker(0, 1)
            .lose_worker(1, 1)
            .validate(2)
            .unwrap_err();
        assert!(e.to_string().contains("survive"), "{e}");
        // …but losing all-but-one is fine
        FaultPlan::off()
            .lose_worker(0, 1)
            .lose_worker(1, 1)
            .validate(3)
            .unwrap();
    }

    #[test]
    fn clock_fires_one_shot_faults_at_the_task_count() {
        let plan = FaultPlan::off().lose_worker(0, 2).panic_worker(1, 0);
        let mut c = FaultClock::new(&plan, 0);
        assert_eq!(c.before_task(), FaultAction::None);
        c.after_task(Duration::from_millis(1));
        assert_eq!(c.before_task(), FaultAction::None);
        c.after_task(Duration::from_millis(1));
        assert_eq!(c.before_task(), FaultAction::Lose);
        // one-shot: fired once, never again
        assert_eq!(c.before_task(), FaultAction::None);

        let mut p = FaultClock::new(&plan, 1);
        assert_eq!(p.before_task(), FaultAction::Panic);
        assert_eq!(p.before_task(), FaultAction::None);

        // a worker without a fault never fires
        let mut h = FaultClock::new(&plan, 2);
        for _ in 0..10 {
            assert_eq!(h.before_task(), FaultAction::None);
            assert!(h.after_task(Duration::from_millis(1)).is_none());
        }
    }

    #[test]
    fn slow_clock_stalls_proportionally_and_replays_bitwise() {
        let plan = FaultPlan::off().with_seed(42).slow_worker(0, 3.0);
        let run = || {
            let mut c = FaultClock::new(&plan, 0);
            assert!(c.is_slow());
            (0..8)
                .map(|_| c.after_task(Duration::from_millis(10)).unwrap())
                .collect::<Vec<_>>()
        };
        let stalls = run();
        // factor 3 → stall ≈ 2× the task, jittered ±25%
        for s in &stalls {
            let ms = s.as_secs_f64() * 1e3;
            assert!((15.0..=25.0).contains(&ms), "stall {ms} ms out of band");
        }
        assert_eq!(stalls, run(), "same seed, same stall schedule");
        // a different seed moves the jitter
        let other = FaultPlan::off().with_seed(43).slow_worker(0, 3.0);
        let mut c2 = FaultClock::new(&other, 0);
        c2.after_task(Duration::from_millis(10));
        assert!(FaultClock::new(&other, 0).is_slow());
    }

    #[test]
    fn stall_once_sleeps_exactly_once() {
        let plan = FaultPlan::off().stall_worker(0, 1, 25);
        let mut c = FaultClock::new(&plan, 0);
        assert_eq!(c.before_task(), FaultAction::None);
        c.after_task(Duration::ZERO);
        assert_eq!(
            c.before_task(),
            FaultAction::Stall(Duration::from_millis(25))
        );
        c.after_task(Duration::ZERO);
        assert_eq!(c.before_task(), FaultAction::None);
    }
}
