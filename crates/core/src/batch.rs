//! Batched many-matrix sweeps on one persistent worker pool.
//!
//! Serving-style workloads factor *many small matrices*, where the
//! per-call costs the solo driver happily amortizes over one large
//! factorization — planning, thread spawn/join, queue construction —
//! come to dominate. [`calu_factor_batch`] spawns the worker pool
//! **once** and drains the whole batch through it:
//!
//! * each worker keeps one [`GemmScratch`] packing arena alive across
//!   every item it touches, so the BLAS-3 path never allocates no
//!   matter how many matrices flow through;
//! * the dynamic section runs on one *batch-level* queue set (shared
//!   queue, mutex shards, or Chase-Lev deques per
//!   [`CaluConfig::queue`]) whose entries pack `(item, task)` into one
//!   word — the deques live exactly as long as the pool, not one item;
//! * **small** items (larger dimension ≤
//!   [`CaluConfig::batch_small_cutoff`], with
//!   [`CaluConfig::batch_threads_per_item`] `<` threads) are
//!   *co-scheduled*: a pool worker claims the whole item and factors it
//!   sequentially — items run in parallel with zero intra-item
//!   synchronization, which beats splitting a tiny DAG across the pool;
//! * **large** items run the full hybrid static/dynamic schedule
//!   co-operatively: static tasks go to their block-cyclic owner's
//!   queue, dynamic ones to the batch queue set, and because queue
//!   entries carry their item, workers pipeline — one can start item
//!   `j + 1` while another finishes the tail of item `j`.
//!
//! Work priority per worker: own static queue → own dynamic
//! shard/deque → claim a whole small item → steal. An idle worker thus
//! prefers a guaranteed-useful small item over a contended steal — the
//! small items are the batch's load-balancing reservoir, exactly the
//! role the paper's dynamic section plays within one factorization.
//!
//! Scheduling never changes the math: every item factors
//! bitwise-identically to a solo [`crate::calu_factor`] call with the
//! same config (same DAG, same kernels, writes to each tile totally
//! ordered by the exclusive-writer discipline) — the facade's
//! backend-parity suite pins this down.

use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use calu_dag::{PaperKind, TaskGraph, TaskId};
use calu_kernels::GemmScratch;
use calu_matrix::{
    gen, BclMatrix, CmTiles, DenseMatrix, Layout, ProcessGrid, TileStorage, TlbMatrix,
};
use calu_rand::Rng;
use calu_sched::{
    nstatic_for, steal_order, Deque, QueueDiscipline, QueueSource, Steal, StealOrder, StealTier,
    StealTiers,
};
use calu_trace::{SpanKind, TaskSpan, Timeline};

use crate::config::CaluConfig;
use crate::error::CaluError;
use crate::factorization::Factorization;
use crate::sync::{pin_current_thread, Mutex};
use crate::threaded::{
    apply_left_swaps, host_topology, steal_sweep, ItemState, KernelSet, ThreadStats,
};

/// What one batch item factors: either a caller-held dense matrix, or
/// a *generator* whose tile data is built lazily on the worker that
/// claims the item. Lazy sources keep submission O(1) per item — the
/// caller thread never touches element data, and for co-scheduled
/// items the materialized matrix lives only on the claiming worker.
#[derive(Debug, Clone)]
pub enum BatchSource<'a> {
    /// Borrowed dense data, materialized by the caller.
    Dense(&'a DenseMatrix),
    /// A seeded uniform generator matrix (`calu_matrix::gen::uniform`),
    /// materialized on the worker that claims the item.
    Uniform {
        /// Rows.
        m: usize,
        /// Columns.
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A seeded symmetric positive-definite generator matrix
    /// (`calu_matrix::gen::spd_uniform`) — the natural source for
    /// [`KernelSet::Cholesky`] items, materialized on the worker that
    /// claims the item.
    SpdUniform {
        /// Order (the matrix is `n×n`).
        n: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl BatchSource<'_> {
    /// `(rows, cols)` without materializing.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            BatchSource::Dense(a) => (a.rows(), a.cols()),
            BatchSource::Uniform { m, n, .. } => (*m, *n),
            BatchSource::SpdUniform { n, .. } => (*n, *n),
        }
    }

    /// The element data: borrowed for [`BatchSource::Dense`], generated
    /// on the calling thread for the generator variants.
    pub fn materialize(&self) -> Cow<'_, DenseMatrix> {
        match self {
            BatchSource::Dense(a) => Cow::Borrowed(*a),
            BatchSource::Uniform { m, n, seed } => Cow::Owned(gen::uniform(*m, *n, *seed)),
            BatchSource::SpdUniform { n, seed } => Cow::Owned(gen::spd_uniform(*n, *seed)),
        }
    }
}

/// One item of a mixed-algorithm batch: the matrix source plus the
/// [`KernelSet`] that factors it. [`factor_batch`] accepts any mix —
/// CALU and Cholesky items share the pool, the queues and the per-worker
/// scratch arenas; only the per-task kernels differ.
#[derive(Debug, Clone)]
pub struct BatchItem<'a> {
    /// What to factor.
    pub source: BatchSource<'a>,
    /// Which algorithm's tile kernels factor it.
    pub kernels: KernelSet,
}

impl<'a> BatchItem<'a> {
    /// A CALU (LU) item.
    pub fn lu(source: BatchSource<'a>) -> Self {
        BatchItem {
            source,
            kernels: KernelSet::CaluLu,
        }
    }

    /// A tiled-Cholesky item (its source must be square).
    pub fn cholesky(source: BatchSource<'a>) -> Self {
        BatchItem {
            source,
            kernels: KernelSet::Cholesky,
        }
    }
}

/// One factored batch item, in input order.
#[derive(Debug)]
pub struct BatchItemOutcome {
    /// The factors, exactly as a solo [`crate::calu_factor`] with the
    /// same config would produce them.
    pub factorization: Factorization,
    /// Per-worker spans of this item, time-shifted so the item's first
    /// task starts at 0.
    pub timeline: Timeline,
    /// Per-worker queue accounting for this item's tasks. Steal-sweep
    /// *failures* are batch-level (a failed sweep probes every item's
    /// work at once) and live in [`BatchOutcome::failed_steal_sweeps`].
    pub stats: Vec<ThreadStats>,
    /// Wall-clock extent of this item inside the batch (first task
    /// start → last task end). Co-scheduled items overlap, so these do
    /// not sum to the batch wall time.
    pub makespan: f64,
    /// Whether the item was co-scheduled (claimed whole by one worker)
    /// rather than run co-operatively by the pool.
    pub co_scheduled: bool,
}

/// Result of one [`calu_factor_batch`] sweep.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-item outcomes, in input order.
    pub items: Vec<BatchItemOutcome>,
    /// End-to-end wall time of the sweep (pool spawn → last join).
    pub wall_secs: f64,
    /// Seconds until the last pool worker entered its work loop — the
    /// one-off spawn cost the batch amortizes over all items.
    pub pool_spawn_secs: f64,
    /// Steal sweeps that probed every victim and found nothing,
    /// batch-wide (stealing disciplines only).
    pub failed_steal_sweeps: u64,
}

/// Pack a (item, task) pair into one queue word.
#[inline]
fn pack(item: usize, t: TaskId) -> u64 {
    debug_assert!(item < u32::MAX as usize, "batch larger than u32 items");
    ((item as u64) << 32) | t.0 as u64
}

/// Inverse of [`pack`].
#[inline]
fn unpack(v: u64) -> (usize, TaskId) {
    ((v >> 32) as usize, TaskId(v as u32))
}

/// Batch-level heap entry: items first (earlier items drain first),
/// then the per-item priority key, then the task id as tiebreak.
type BatchKey = (usize, u64, u32);
type BatchHeap = Mutex<BinaryHeap<Reverse<BatchKey>>>;

/// The batch-level dynamic section under each [`QueueDiscipline`] —
/// the same three shapes as the solo executor's, holding packed
/// `(item, task)` entries so one queue set serves the whole sweep.
enum BatchDyn {
    Global(BatchHeap),
    Sharded(Vec<BatchHeap>),
    LockFree(Vec<Deque>),
}

struct BatchShared<S: TileStorage> {
    /// Per-item execution state — pre-built for co-operative (large)
    /// items only. Co-scheduled items build theirs *inside* the
    /// claiming worker, so their storage is allocated, used and freed
    /// item-locally (the allocator hands consecutive items the same
    /// hot memory, exactly like a loop of solo runs) instead of the
    /// whole batch's working set sitting live at once.
    items: Vec<Option<ItemState<S>>>,
    /// Per-worker static queues, batch-keyed (large items only).
    local: Vec<BatchHeap>,
    dynamic: BatchDyn,
    tiers: Vec<StealTiers>,
    /// Direction of the tiered sweep (the adaptive steal-order knob).
    steal_dir: StealOrder,
    dyn_queued: AtomicUsize,
    /// Next unclaimed co-scheduled item (index into `smalls`).
    next_small: AtomicUsize,
    smalls: Vec<usize>,
    /// Remaining work units: one per large-item task + one per small
    /// item. The pool exits when this hits zero.
    work_left: AtomicUsize,
    /// Remaining *large-item* tasks. Once zero (and every small item is
    /// claimed), no new work can ever appear in the queues, so an idle
    /// worker exits instead of spinning — on oversubscribed hosts a
    /// spinning worker steals cycles from the one still computing.
    large_left: AtomicUsize,
}

impl<S: TileStorage + Send> BatchShared<S> {
    /// Queue a ready task of large item `it` (mirror of the solo
    /// executor's `push_ready`, with batch-packed entries).
    fn push_ready(&self, it: usize, t: TaskId, home: usize) {
        let item = self.items[it].as_ref().expect("co-operative item state");
        if item.is_static[t.idx()] {
            let owner = item.owners.owner(t);
            self.local[owner]
                .lock()
                .push(Reverse((it, item.static_keys[t.idx()], t.0)));
        } else {
            match &self.dynamic {
                BatchDyn::Global(q) => {
                    q.lock()
                        .push(Reverse((it, item.dynamic_keys[t.idx()], t.0)))
                }
                BatchDyn::Sharded(shards) => {
                    self.dyn_queued.fetch_add(1, Ordering::AcqRel);
                    shards[home % shards.len()].lock().push(Reverse((
                        it,
                        item.dynamic_keys[t.idx()],
                        t.0,
                    )));
                }
                BatchDyn::LockFree(deques) => {
                    self.dyn_queued.fetch_add(1, Ordering::AcqRel);
                    deques[home % deques.len()]
                        .push(pack(it, t))
                        .expect("deque sized for every large task");
                }
            }
        }
    }

    /// Pop co-operative work the worker can reach *without stealing*:
    /// its own static queue, then its own share of the dynamic section
    /// (the shared queue under the global discipline, the worker's own
    /// shard or deque otherwise). Stealing is deliberately separate —
    /// the worker loop tries to claim a whole small item first, so an
    /// idle worker prefers guaranteed-useful work over a contended
    /// sweep of other workers' queues.
    fn pop_own(&self, me: usize) -> Option<(usize, TaskId, QueueSource)> {
        if let Some(Reverse((it, _, t))) = self.local[me].lock().pop() {
            return Some((it, TaskId(t), QueueSource::Local));
        }
        match &self.dynamic {
            BatchDyn::Global(q) => q
                .lock()
                .pop()
                .map(|Reverse((it, _, t))| (it, TaskId(t), QueueSource::Global)),
            BatchDyn::Sharded(shards) => shards[me].lock().pop().map(|Reverse((it, _, t))| {
                self.dyn_queued.fetch_sub(1, Ordering::AcqRel);
                (it, TaskId(t), QueueSource::Shard)
            }),
            BatchDyn::LockFree(deques) => deques[me].pop().map(|v| {
                self.dyn_queued.fetch_sub(1, Ordering::AcqRel);
                let (it, t) = unpack(v);
                (it, t, QueueSource::Shard)
            }),
        }
    }

    /// Steal from the other workers' dynamic shards/deques — attempted
    /// only while dynamic work is queued somewhere, so idle spins on a
    /// drained batch don't read as contention. Wholly empty sweeps
    /// count once into `failed_sweeps` — batch-wide, since a sweep
    /// probes every item's work at once.
    fn steal(
        &self,
        me: usize,
        rng: &mut Option<Rng>,
        failed_sweeps: &mut u64,
    ) -> Option<(usize, TaskId, QueueSource)> {
        match &self.dynamic {
            BatchDyn::Global(_) => None, // one shared queue: nothing to steal
            BatchDyn::Sharded(shards) => {
                if self.dyn_queued.load(Ordering::Acquire) == 0 {
                    return None;
                }
                let rng = rng.as_mut().expect("stealing workers carry an RNG");
                let stolen = steal_sweep(
                    steal_order(rng, me, shards.len()),
                    |&victim| {
                        shards[victim]
                            .lock()
                            .pop()
                            .map(|Reverse((it, _, t))| (it, TaskId(t)))
                    },
                    failed_sweeps,
                );
                stolen.map(|((it, t), _)| {
                    self.dyn_queued.fetch_sub(1, Ordering::AcqRel);
                    (it, t, QueueSource::Stolen)
                })
            }
            BatchDyn::LockFree(deques) => {
                if self.dyn_queued.load(Ordering::Acquire) == 0 {
                    return None;
                }
                let rng = rng.as_mut().expect("stealing workers carry an RNG");
                let stolen = steal_sweep(
                    self.tiers[me].sweep_ordered(self.steal_dir, rng),
                    |&(victim, _)| loop {
                        match deques[victim].steal() {
                            Steal::Taken(v) => break Some(unpack(v)),
                            Steal::Empty => break None,
                            Steal::Retry => std::hint::spin_loop(),
                        }
                    },
                    failed_sweeps,
                );
                stolen.map(|((it, t), (_, tier))| {
                    self.dyn_queued.fetch_sub(1, Ordering::AcqRel);
                    let source = match tier {
                        StealTier::Remote => QueueSource::StolenRemote,
                        _ => QueueSource::Stolen,
                    };
                    (it, t, source)
                })
            }
        }
    }

    /// Claim the next co-scheduled item, if any are left. The cheap
    /// pre-check keeps idle workers from hammering the shared counter
    /// once the small list is drained.
    fn claim_small(&self) -> Option<usize> {
        if self.next_small.load(Ordering::Acquire) >= self.smalls.len() {
            return None;
        }
        let i = self.next_small.fetch_add(1, Ordering::AcqRel);
        self.smalls.get(i).copied()
    }

    /// Whether work could still appear for an idle worker: large tasks
    /// are outstanding (their successors will be queued) or small items
    /// remain unclaimed. When false, an idle worker leaves the pool.
    fn more_work_possible(&self) -> bool {
        self.large_left.load(Ordering::Acquire) > 0
            || self.next_small.load(Ordering::Acquire) < self.smalls.len()
    }
}

/// Map a task kind onto its timeline span kind.
pub(crate) fn span_kind(g: &TaskGraph, t: TaskId) -> SpanKind {
    match g.kind(t).paper_kind() {
        PaperKind::P => SpanKind::Panel,
        PaperKind::L => SpanKind::LFactor,
        PaperKind::U => SpanKind::UFactor,
        PaperKind::S => SpanKind::Update,
    }
}

/// What each worker brings home from the pool.
pub(crate) struct WorkerHaul {
    /// `(item, span)` for every task this worker ran.
    pub(crate) spans: Vec<(u32, TaskSpan)>,
    /// Per-item queue accounting (indexed like the batch).
    pub(crate) stats: Vec<ThreadStats>,
    /// When this worker entered its work loop (batch clock).
    pub(crate) start_offset: f64,
    /// Wholly empty steal sweeps (batch-level, not per item).
    pub(crate) failed_sweeps: u64,
}

/// Factor a co-scheduled item sequentially on the calling worker: a
/// plain ready-stack drain of the item's DAG, most-critical-first by
/// the dynamic priority key. No queues, no cross-worker contention —
/// the DAG and kernels are identical to the co-operative path, so the
/// bits are too.
///
/// `interrupt` is polled between tasks (fault injection in the service
/// pool): returning `true` abandons the drain mid-item, and the
/// function reports `false` — the item did **not** complete and its
/// state must be discarded (the pool requeues the whole item; its claim
/// was atomic, so a fresh claimant rebuilds from the source). Batch
/// callers pass `None` and always get `true`.
pub(crate) fn run_item_sequential<S: TileStorage + Send>(
    item: &ItemState<S>,
    idx: usize,
    me: usize,
    scratch: &mut GemmScratch,
    t0: &Instant,
    haul: &mut WorkerHaul,
    mut interrupt: Option<&mut dyn FnMut() -> bool>,
) -> bool {
    let mut stack = item.g.initial_ready();
    // descending key order so `pop` serves the smallest (most critical)
    // key first; freshly enabled successors are re-sorted the same way
    stack.sort_unstable_by_key(|t| Reverse(item.dynamic_keys[t.idx()]));
    let mut buf: Vec<TaskId> = Vec::new();
    while let Some(t) = stack.pop() {
        if let Some(stop) = interrupt.as_deref_mut() {
            if stop() {
                return false;
            }
        }
        let start = t0.elapsed().as_secs_f64();
        item.execute(t, scratch);
        let end = t0.elapsed().as_secs_f64();
        haul.spans.push((
            idx as u32,
            TaskSpan {
                core: me,
                start,
                end,
                kind: span_kind(&item.g, t),
            },
        ));
        item.complete_into(t, &mut buf);
        if buf.len() > 1 {
            buf.sort_unstable_by_key(|t| Reverse(item.dynamic_keys[t.idx()]));
        }
        stack.extend(buf.iter().copied());
        haul.stats[idx].local_pops += 1;
    }
    debug_assert_eq!(item.done.load(Ordering::Acquire), item.g.len());
    true
}

/// Build, drain and finish one co-scheduled item entirely on the
/// calling worker: source materialization and storage conversion in,
/// sequential DAG drain, factors out. Keeping the item's whole
/// lifecycle worker-local means the allocator hands consecutive items
/// the same hot memory and the batch's peak footprint stays at "items
/// in flight", not "items in batch" — and on multicore hosts both the
/// generator fills and the conversions run in parallel instead of
/// serializing on the caller.
#[allow(clippy::too_many_arguments)]
fn run_small_item<S: TileStorage + Send>(
    src: &BatchSource<'_>,
    g: &Arc<TaskGraph>,
    grid: ProcessGrid,
    cfg: &CaluConfig,
    make: &(impl Fn(&DenseMatrix) -> S + Sync),
    into_dense: &(impl Fn(S) -> DenseMatrix + Sync),
    idx: usize,
    me: usize,
    scratch: &mut GemmScratch,
    t0: &Instant,
    haul: &mut WorkerHaul,
) -> Factorization {
    let a = src.materialize();
    let item = ItemState::new(
        make(&a),
        Arc::clone(g),
        grid,
        nstatic_for(cfg.dratio, g.num_panels()),
    );
    drop(a); // tile data is converted; free the generator fill early
    run_item_sequential(&item, idx, me, scratch, t0, haul, None);
    let (s, perm, singular_at) = item.finish();
    let mut lu = into_dense(s);
    apply_left_swaps(&mut lu, g, &perm, cfg.b);
    Factorization {
        lu,
        perm,
        singular_at,
    }
}

/// The generic pool: matrices and graphs are per item, everything else
/// is shared. Returns per-item `(factorization, timeline, stats,
/// makespan)` plus the batch-level accounting.
#[allow(clippy::type_complexity)]
fn batch_tiled<S: TileStorage + Send>(
    sources: &[BatchSource<'_>],
    graphs: &[Arc<TaskGraph>],
    small: &[bool],
    grid: ProcessGrid,
    cfg: &CaluConfig,
    make: &(impl Fn(&DenseMatrix) -> S + Sync),
    into_dense: &(impl Fn(S) -> DenseMatrix + Sync),
) -> (
    Vec<(Factorization, Timeline, Vec<ThreadStats>, f64)>,
    f64,
    f64,
    u64,
) {
    let threads = grid.size();
    let queue = cfg.queue;
    let topo = host_topology();
    // co-operative items are pre-built (their state is shared by every
    // worker); co-scheduled ones stay None — their source is
    // materialized and their state built at claim time, on the worker
    let items: Vec<Option<ItemState<S>>> = sources
        .iter()
        .zip(graphs)
        .zip(small)
        .map(|((src, g), &is_small)| {
            (!is_small).then(|| {
                let a = src.materialize();
                ItemState::new(
                    make(&a),
                    Arc::clone(g),
                    grid,
                    nstatic_for(cfg.dratio, g.num_panels()),
                )
            })
        })
        .collect();
    let smalls: Vec<usize> = (0..items.len()).filter(|&i| small[i]).collect();
    let larges: Vec<usize> = (0..items.len()).filter(|&i| !small[i]).collect();
    let large_tasks: usize = larges.iter().map(|&i| graphs[i].len()).sum();
    let small_results: Vec<Mutex<Option<Factorization>>> =
        (0..items.len()).map(|_| Mutex::new(None)).collect();

    let shared = BatchShared {
        local: (0..threads)
            .map(|_| Mutex::new(BinaryHeap::new()))
            .collect(),
        dynamic: match queue {
            QueueDiscipline::Global => BatchDyn::Global(Mutex::new(BinaryHeap::new())),
            QueueDiscipline::Sharded { .. } => BatchDyn::Sharded(
                (0..threads)
                    .map(|_| Mutex::new(BinaryHeap::new()))
                    .collect(),
            ),
            QueueDiscipline::LockFree { .. } => BatchDyn::LockFree(
                // sized for every co-operative task in the whole batch:
                // pushes can never fail, and the deques persist across
                // items instead of being rebuilt per factorization
                (0..threads)
                    .map(|_| Deque::with_capacity(large_tasks.max(1)))
                    .collect(),
            ),
        },
        tiers: match queue {
            QueueDiscipline::LockFree { .. } => (0..threads)
                .map(|me| StealTiers::for_worker(topo, me, threads))
                .collect(),
            _ => Vec::new(),
        },
        steal_dir: cfg.steal_order,
        dyn_queued: AtomicUsize::new(0),
        next_small: AtomicUsize::new(0),
        smalls,
        work_left: AtomicUsize::new(large_tasks + small.iter().filter(|&&s| s).count()),
        large_left: AtomicUsize::new(large_tasks),
        items,
    };

    // scatter the co-operative items' initially ready tasks round-robin
    // (same policy as the solo executor, item-major so earlier items
    // drain first; descending priority per item for the LIFO deques)
    let mut home = 0usize;
    for &it in &larges {
        let mut initial = graphs[it].initial_ready();
        if matches!(queue, QueueDiscipline::LockFree { .. }) {
            let keys = &shared.items[it].as_ref().expect("co-op item").dynamic_keys;
            initial.sort_unstable_by_key(|t| Reverse(keys[t.idx()]));
        }
        for t in initial {
            shared.push_ready(it, t, home);
            home = home.wrapping_add(1);
        }
    }

    let t0 = Instant::now();
    let n_items = shared.items.len();
    let mut hauls: Vec<WorkerHaul> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let small_results = &small_results;
        for me in 0..threads {
            let shared = &shared;
            let t0 = &t0;
            handles.push(scope.spawn(move || {
                if cfg.pin_workers {
                    pin_current_thread(topo.cpu_for_worker(me));
                }
                let mut haul = WorkerHaul {
                    spans: Vec::new(),
                    stats: vec![ThreadStats::default(); n_items],
                    start_offset: t0.elapsed().as_secs_f64(),
                    failed_sweeps: 0,
                };
                let mut scratch = GemmScratch::sized_for(cfg.b, cfg.b, cfg.b);
                let mut rng = queue
                    .seed()
                    .map(|seed| Rng::seed_from_u64(seed.wrapping_add(me as u64)));
                let mut ready_buf: Vec<TaskId> = Vec::new();
                let mut idle_spins = 0u32;
                #[derive(Clone, Copy)]
                enum Work {
                    Coop(usize, TaskId, QueueSource),
                    Small(usize),
                }
                while shared.work_left.load(Ordering::Acquire) > 0 {
                    // the documented priority: own static queue → own
                    // dynamic shard/deque → claim a whole small item →
                    // only then a contended sweep of other workers'
                    // queues (a small item is guaranteed-useful work;
                    // a steal may come home empty)
                    let work = shared
                        .pop_own(me)
                        .map(|(it, t, src)| Work::Coop(it, t, src))
                        .or_else(|| shared.claim_small().map(Work::Small))
                        .or_else(|| {
                            shared
                                .steal(me, &mut rng, &mut haul.failed_sweeps)
                                .map(|(it, t, src)| Work::Coop(it, t, src))
                        });
                    if let Some(Work::Coop(it, t, source)) = work {
                        idle_spins = 0;
                        let stats = &mut haul.stats[it];
                        match source {
                            QueueSource::Local => stats.local_pops += 1,
                            QueueSource::Stolen => stats.steal_pops += 1,
                            QueueSource::StolenRemote => {
                                stats.steal_pops += 1;
                                stats.remote_steal_pops += 1;
                            }
                            _ => stats.global_pops += 1,
                        }
                        let item = shared.items[it].as_ref().expect("co-op item state");
                        let start = t0.elapsed().as_secs_f64();
                        item.execute(t, &mut scratch);
                        let end = t0.elapsed().as_secs_f64();
                        haul.spans.push((
                            it as u32,
                            TaskSpan {
                                core: me,
                                start,
                                end,
                                kind: span_kind(&item.g, t),
                            },
                        ));
                        item.complete_into(t, &mut ready_buf);
                        if matches!(shared.dynamic, BatchDyn::LockFree(_)) && ready_buf.len() > 1 {
                            ready_buf.sort_unstable_by_key(|s| Reverse(item.dynamic_keys[s.idx()]));
                        }
                        for &s in ready_buf.iter() {
                            shared.push_ready(it, s, me);
                        }
                        shared.large_left.fetch_sub(1, Ordering::AcqRel);
                        shared.work_left.fetch_sub(1, Ordering::AcqRel);
                    } else if let Some(Work::Small(it)) = work {
                        idle_spins = 0;
                        let f = run_small_item(
                            &sources[it],
                            &graphs[it],
                            grid,
                            cfg,
                            make,
                            into_dense,
                            it,
                            me,
                            &mut scratch,
                            t0,
                            &mut haul,
                        );
                        *small_results[it].lock() = Some(f);
                        shared.work_left.fetch_sub(1, Ordering::AcqRel);
                    } else if !shared.more_work_possible() {
                        // every small item is claimed and every large
                        // task retired: nothing can reach this worker
                        // any more, so leave instead of burning cycles
                        // the still-working claimants could use
                        break;
                    } else {
                        idle_spins += 1;
                        if idle_spins > 64 {
                            std::thread::yield_now();
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                }
                haul
            }));
        }
        for h in handles {
            hauls.push(h.join().expect("batch worker panicked"));
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let pool_spawn = hauls.iter().map(|h| h.start_offset).fold(0.0, f64::max);
    let failed_sweeps: u64 = hauls.iter().map(|h| h.failed_sweeps).sum();

    // reassemble per item: spans shifted so each item's clock starts at
    // its first task, stats merged across workers
    let mut spans_by_item: Vec<Vec<TaskSpan>> = vec![Vec::new(); n_items];
    for haul in &hauls {
        for &(it, span) in &haul.spans {
            spans_by_item[it as usize].push(span);
        }
    }
    let results = shared
        .items
        .into_iter()
        .enumerate()
        .map(|(it, item)| {
            let factorization = match item {
                // co-operative items are finished here, after the pool
                Some(item) => {
                    let (s, perm, singular_at) = item.finish();
                    let mut lu = into_dense(s);
                    apply_left_swaps(&mut lu, &graphs[it], &perm, cfg.b);
                    Factorization {
                        lu,
                        perm,
                        singular_at,
                    }
                }
                // co-scheduled items were finished by their claimant
                None => small_results[it]
                    .lock()
                    .take()
                    .expect("claimed small item left its factors"),
            };
            let spans = &spans_by_item[it];
            let t_start = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
            let mut tl = Timeline::new(threads);
            for s in spans {
                tl.push(TaskSpan {
                    start: s.start - t_start,
                    end: s.end - t_start,
                    ..*s
                });
            }
            let stats: Vec<ThreadStats> = (0..threads).map(|w| hauls[w].stats[it]).collect();
            let makespan = tl.makespan();
            (factorization, tl, stats, makespan)
        })
        .collect();
    (results, wall, pool_spawn, failed_sweeps)
}

/// Factor every matrix in `mats` with CALU on one persistent worker
/// pool (see the module docs for the scheduling model). All items share
/// one [`CaluConfig`] — the batch knobs
/// ([`CaluConfig::batch_threads_per_item`],
/// [`CaluConfig::batch_small_cutoff`]) choose which items are
/// co-scheduled. Every item's factors are bitwise-identical to a solo
/// [`crate::calu_factor`] call with the same config.
pub fn calu_factor_batch(
    mats: &[&DenseMatrix],
    cfg: &CaluConfig,
) -> Result<BatchOutcome, CaluError> {
    let sources: Vec<BatchSource<'_>> = mats.iter().map(|a| BatchSource::Dense(a)).collect();
    calu_factor_batch_from(&sources, cfg)
}

/// [`calu_factor_batch`] over [`BatchSource`]s: generator items are
/// materialized lazily on the worker that claims them, so submitting a
/// sweep of seeded matrices costs the caller thread nothing per item.
pub fn calu_factor_batch_from(
    sources: &[BatchSource<'_>],
    cfg: &CaluConfig,
) -> Result<BatchOutcome, CaluError> {
    let items: Vec<BatchItem<'_>> = sources.iter().cloned().map(BatchItem::lu).collect();
    factor_batch(&items, cfg)
}

/// Factor a mixed-algorithm batch: each [`BatchItem`] names its own
/// [`KernelSet`], so one sweep — one pool spawn, one batch-level queue
/// set, one scratch arena per worker — can interleave CALU and tiled
/// Cholesky factorizations. Per item the result is bitwise-identical to
/// the matching solo call ([`crate::calu_factor`] /
/// [`crate::cholesky_factor`]) with the same config.
pub fn factor_batch(items: &[BatchItem<'_>], cfg: &CaluConfig) -> Result<BatchOutcome, CaluError> {
    let grid = cfg.validate()?;
    if !cfg.fault.is_off() {
        return Err(CaluError::InvalidConfig(
            "fault injection is not supported on the scoped batch executor; \
             inject through a solo run (calu_factor) or a long-running \
             service pool (ServicePool / FactorService), which carry the \
             rescue and requeue machinery"
                .into(),
        ));
    }
    if items.is_empty() {
        return Err(CaluError::InvalidConfig(
            "a batch needs at least one matrix".into(),
        ));
    }
    let sources: Vec<BatchSource<'_>> = items.iter().map(|it| it.source.clone()).collect();
    let dims: Vec<(usize, usize)> = sources.iter().map(BatchSource::dims).collect();
    if dims.iter().any(|&(m, n)| m == 0 || n == 0) {
        return Err(CaluError::EmptyMatrix);
    }
    let leaf_stride = cfg.leaf_stride.unwrap_or_else(|| grid.pr());
    let graphs: Vec<Arc<TaskGraph>> = items
        .iter()
        .zip(&dims)
        .map(|(it, &(m, n))| {
            it.kernels
                .build_graph(m, n, cfg.b, leaf_stride)
                .map(Arc::new)
        })
        .collect::<Result<_, _>>()?;
    // co-scheduling applies to items at or under the cutoff, and only
    // while co-scheduled items use fewer workers than the pool has
    let co_schedule = cfg.batch_threads_per_item < cfg.threads;
    let small: Vec<bool> = dims
        .iter()
        .map(|&(m, n)| co_schedule && m.max(n) <= cfg.batch_small_cutoff)
        .collect();

    macro_rules! run_layout {
        ($make:expr, $into:expr) => {{
            let (results, wall, spawn, failed) =
                batch_tiled(&sources, &graphs, &small, grid, cfg, &$make, &$into);
            let items = results
                .into_iter()
                .enumerate()
                .map(
                    |(i, (factorization, timeline, stats, makespan))| BatchItemOutcome {
                        factorization,
                        timeline,
                        stats,
                        makespan,
                        co_scheduled: small[i],
                    },
                )
                .collect();
            BatchOutcome {
                items,
                wall_secs: wall,
                pool_spawn_secs: spawn,
                failed_steal_sweeps: failed,
            }
        }};
    }

    Ok(match cfg.layout {
        Layout::ColumnMajor => run_layout!(
            |a: &DenseMatrix| CmTiles::from_dense(a, cfg.b),
            |s: CmTiles| s.to_dense()
        ),
        Layout::BlockCyclic => run_layout!(
            |a: &DenseMatrix| BclMatrix::from_dense(a, cfg.b, grid),
            |s: BclMatrix| s.to_dense()
        ),
        Layout::TwoLevelBlock => run_layout!(
            |a: &DenseMatrix| TlbMatrix::from_dense(a, cfg.b, grid),
            |s: TlbMatrix| s.to_dense()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threaded::calu_factor;
    use calu_matrix::gen;

    fn cfg4() -> CaluConfig {
        CaluConfig::new(16).with_threads(4).with_dratio(0.5)
    }

    #[test]
    fn batch_items_match_solo_runs_bitwise() {
        // mixed small (co-scheduled) and large (co-operative) items
        let mats: Vec<DenseMatrix> = [(48usize, 1u64), (96, 2), (450, 3), (64, 4)]
            .iter()
            .map(|&(n, seed)| gen::uniform(n, n, seed))
            .collect();
        let refs: Vec<&DenseMatrix> = mats.iter().collect();
        let cfg = cfg4().with_batch_small_cutoff(100);
        let out = calu_factor_batch(&refs, &cfg).unwrap();
        assert_eq!(out.items.len(), 4);
        assert!(out.wall_secs > 0.0 && out.pool_spawn_secs >= 0.0);
        for (i, (a, item)) in mats.iter().zip(&out.items).enumerate() {
            let solo = calu_factor(a, &cfg).unwrap();
            assert_eq!(
                item.factorization.lu.as_slice(),
                solo.lu.as_slice(),
                "item {i}: batch factors must match solo bitwise"
            );
            assert_eq!(item.factorization.perm.pivots(), solo.perm.pivots());
            assert!(item.factorization.residual(a) < 1e-12, "item {i}");
            assert_eq!(item.co_scheduled, a.rows() <= 100, "item {i}");
            assert!(item.makespan > 0.0 && item.makespan <= out.wall_secs);
        }
    }

    #[test]
    fn every_task_is_attributed_exactly_once() {
        let mats: Vec<DenseMatrix> = (0..6).map(|i| gen::uniform(80, 80, 50 + i)).collect();
        let refs: Vec<&DenseMatrix> = mats.iter().collect();
        for cutoff in [0usize, 1000] {
            // cutoff 0: all co-operative; cutoff 1000: all co-scheduled
            let cfg = cfg4().with_batch_small_cutoff(cutoff);
            let out = calu_factor_batch(&refs, &cfg).unwrap();
            for (item, g) in out.items.iter().zip(&mats) {
                let expected = TaskGraph::build_calu(g.rows(), g.cols(), 16, 2).len();
                let popped: u64 = item
                    .stats
                    .iter()
                    .map(|s| s.local_pops + s.global_pops + s.steal_pops)
                    .sum();
                assert_eq!(popped as usize, expected, "cutoff {cutoff}");
                assert_eq!(item.timeline.spans().len(), expected, "cutoff {cutoff}");
                assert_eq!(item.co_scheduled, cutoff == 1000);
            }
        }
    }

    #[test]
    fn batch_runs_under_every_queue_discipline() {
        let mats: Vec<DenseMatrix> = (0..3).map(|i| gen::uniform(450, 450, 7 + i)).collect();
        let refs: Vec<&DenseMatrix> = mats.iter().collect();
        let mut packed: Vec<Vec<f64>> = Vec::new();
        for queue in [
            QueueDiscipline::Global,
            QueueDiscipline::sharded(),
            QueueDiscipline::lock_free(),
        ] {
            let cfg = cfg4().with_queue(queue).with_batch_small_cutoff(0);
            let out = calu_factor_batch(&refs, &cfg).unwrap();
            packed.push(out.items[0].factorization.lu.as_slice().to_vec());
            for item in &out.items {
                assert!(!item.co_scheduled);
            }
        }
        assert_eq!(packed[0], packed[1], "global vs sharded");
        assert_eq!(packed[0], packed[2], "global vs lockfree");
    }

    #[test]
    fn empty_batch_and_empty_matrices_are_rejected() {
        assert!(matches!(
            calu_factor_batch(&[], &cfg4()),
            Err(CaluError::InvalidConfig(_))
        ));
        let z = DenseMatrix::zeros(0, 4);
        assert!(matches!(
            calu_factor_batch(&[&z], &cfg4()),
            Err(CaluError::EmptyMatrix)
        ));
    }

    #[test]
    fn lazy_sources_match_dense_sources_bitwise() {
        // a Uniform source materialized on the claiming worker must
        // factor exactly like the same matrix passed in dense — for
        // both co-scheduled and co-operative routing
        let dims_seeds = [(48usize, 21u64), (96, 22), (450, 23)];
        let mats: Vec<DenseMatrix> = dims_seeds
            .iter()
            .map(|&(n, seed)| gen::uniform(n, n, seed))
            .collect();
        let refs: Vec<&DenseMatrix> = mats.iter().collect();
        let lazy: Vec<BatchSource<'_>> = dims_seeds
            .iter()
            .map(|&(n, seed)| BatchSource::Uniform { m: n, n, seed })
            .collect();
        let cfg = cfg4().with_batch_small_cutoff(100);
        let dense_out = calu_factor_batch(&refs, &cfg).unwrap();
        let lazy_out = calu_factor_batch_from(&lazy, &cfg).unwrap();
        for (i, (d, l)) in dense_out.items.iter().zip(&lazy_out.items).enumerate() {
            assert_eq!(
                d.factorization.lu.as_slice(),
                l.factorization.lu.as_slice(),
                "item {i}"
            );
            assert_eq!(d.factorization.perm.pivots(), l.factorization.perm.pivots());
            assert_eq!(d.co_scheduled, l.co_scheduled, "item {i}");
        }
    }

    #[test]
    fn mixed_lu_and_cholesky_batch_matches_solo_bitwise() {
        // small (co-scheduled) and large (co-operative) items of both
        // kernel sets through one pool; each must match its solo driver
        let lu_mats: Vec<DenseMatrix> = [(48usize, 31u64), (450, 32)]
            .iter()
            .map(|&(n, seed)| gen::uniform(n, n, seed))
            .collect();
        let spd_mats: Vec<DenseMatrix> = [(64usize, 33u64), (300, 34)]
            .iter()
            .map(|&(n, seed)| gen::spd_uniform(n, seed))
            .collect();
        let items: Vec<BatchItem<'_>> = vec![
            BatchItem::lu(BatchSource::Dense(&lu_mats[0])),
            BatchItem::cholesky(BatchSource::Dense(&spd_mats[0])),
            BatchItem::lu(BatchSource::Dense(&lu_mats[1])),
            BatchItem::cholesky(BatchSource::Dense(&spd_mats[1])),
        ];
        let cfg = cfg4().with_batch_small_cutoff(100);
        let out = factor_batch(&items, &cfg).unwrap();
        assert_eq!(out.items.len(), 4);

        let solo_lu0 = calu_factor(&lu_mats[0], &cfg).unwrap();
        let solo_lu1 = calu_factor(&lu_mats[1], &cfg).unwrap();
        let solo_ch0 = crate::threaded::cholesky_factor(&spd_mats[0], &cfg).unwrap();
        let solo_ch1 = crate::threaded::cholesky_factor(&spd_mats[1], &cfg).unwrap();
        for (i, solo) in [solo_lu0, solo_ch0, solo_lu1, solo_ch1].iter().enumerate() {
            assert_eq!(
                out.items[i].factorization.lu.as_slice(),
                solo.lu.as_slice(),
                "item {i}: mixed batch must match solo bitwise"
            );
        }
        // Cholesky items: identity perm, tight reconstruction residual
        for (item, a) in [(&out.items[1], &spd_mats[0]), (&out.items[3], &spd_mats[1])] {
            assert!(item.factorization.perm.pivots().is_empty());
            let r = item.factorization.cholesky_residual(a);
            assert!(r < 1e-13, "cholesky residual {r}");
        }
        assert!(out.items[0].co_scheduled && out.items[1].co_scheduled);
        assert!(!out.items[2].co_scheduled && !out.items[3].co_scheduled);
    }

    #[test]
    fn spd_generator_items_match_dense_sources_bitwise() {
        let dims_seeds = [(64usize, 41u64), (300, 42)];
        let mats: Vec<DenseMatrix> = dims_seeds
            .iter()
            .map(|&(n, seed)| gen::spd_uniform(n, seed))
            .collect();
        let dense: Vec<BatchItem<'_>> = mats
            .iter()
            .map(|a| BatchItem::cholesky(BatchSource::Dense(a)))
            .collect();
        let lazy: Vec<BatchItem<'_>> = dims_seeds
            .iter()
            .map(|&(n, seed)| BatchItem::cholesky(BatchSource::SpdUniform { n, seed }))
            .collect();
        let cfg = cfg4().with_batch_small_cutoff(100);
        let d = factor_batch(&dense, &cfg).unwrap();
        let l = factor_batch(&lazy, &cfg).unwrap();
        for (i, (a, b)) in d.items.iter().zip(&l.items).enumerate() {
            assert_eq!(
                a.factorization.lu.as_slice(),
                b.factorization.lu.as_slice(),
                "item {i}"
            );
        }
    }

    #[test]
    fn cholesky_batch_item_rejects_rectangular_source() {
        let items = [BatchItem::cholesky(BatchSource::Uniform {
            m: 40,
            n: 32,
            seed: 1,
        })];
        match factor_batch(&items, &cfg4()) {
            Err(CaluError::InvalidConfig(msg)) => {
                assert!(msg.contains("square"), "msg: {msg}")
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn single_item_batch_matches_solo() {
        let a = gen::uniform(72, 72, 9);
        let cfg = cfg4();
        let out = calu_factor_batch(&[&a], &cfg).unwrap();
        let solo = calu_factor(&a, &cfg).unwrap();
        assert_eq!(out.items[0].factorization.lu.as_slice(), solo.lu.as_slice());
        assert_eq!(out.items[0].factorization.perm.pivots(), solo.perm.pivots());
    }
}
