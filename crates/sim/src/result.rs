//! Simulation outputs.

use calu_trace::Timeline;

/// Per-core accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreStats {
    /// Seconds of useful kernel work.
    pub work: f64,
    /// Seconds of scheduler overhead (dequeues, steals).
    pub overhead: f64,
    /// Seconds of injected OS noise while busy.
    pub noise: f64,
    /// Seconds of memory stalls (cache misses).
    pub memory: f64,
    /// Tasks executed.
    pub tasks: u64,
    /// Batched task groups executed.
    pub batches: u64,
    /// Bytes pulled from a remote socket.
    pub remote_bytes: f64,
    /// Bytes refilled from the local socket.
    pub local_bytes: f64,
    /// Tile-cache hits.
    pub cache_hits: u64,
    /// Tile-cache misses.
    pub cache_misses: u64,
    /// Tasks popped from the core's own static queue.
    pub local_pops: u64,
    /// Tasks popped from the shared dynamic queue.
    pub global_pops: u64,
    /// Tasks stolen from another core's deque.
    pub stolen_pops: u64,
    /// The subset of `stolen_pops` whose victim sat on a different
    /// socket (locality-tiered lock-free discipline only).
    pub remote_stolen_pops: u64,
    /// Static tasks this core owned that were republished into the
    /// dynamic section after the core was lost
    /// ([`crate::machine::MachineConfig::lost_core`]).
    pub rescued: u64,
    /// Whether this core was lost mid-run by the injected failure.
    pub lost: bool,
}

/// Result of one simulated factorization.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Simulated wall-clock time.
    pub makespan: f64,
    /// Useful flops actually executed (CALU does more than the nominal
    /// LU count because of the tournament).
    pub executed_flops: f64,
    /// The nominal LU flop count `mn² − n³/3` used for Gflop/s plots.
    pub nominal_flops: f64,
    /// Per-core accounting.
    pub cores: Vec<CoreStats>,
    /// Full per-task trace, if recording was enabled.
    pub timeline: Option<Timeline>,
    /// Total tasks executed.
    pub tasks: usize,
}

impl SimResult {
    /// Gflop/s by the paper's convention (nominal flops / makespan).
    pub fn gflops(&self) -> f64 {
        self.nominal_flops / self.makespan / 1e9
    }

    /// Machine utilization: useful work time over `makespan × cores`.
    pub fn utilization(&self) -> f64 {
        let work: f64 = self.cores.iter().map(|c| c.work).sum();
        work / (self.makespan * self.cores.len() as f64)
    }

    /// Total remote bytes moved (the NUMA traffic the paper's static
    /// distribution avoids).
    pub fn remote_bytes(&self) -> f64 {
        self.cores.iter().map(|c| c.remote_bytes).sum()
    }

    /// Overall tile-cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.cores.iter().map(|c| c.cache_hits).sum();
        let misses: u64 = self.cores.iter().map(|c| c.cache_misses).sum();
        if hits + misses == 0 {
            0.0
        } else {
            hits as f64 / (hits + misses) as f64
        }
    }

    /// Total scheduler overhead (core-seconds).
    pub fn total_overhead(&self) -> f64 {
        self.cores.iter().map(|c| c.overhead).sum()
    }

    /// Total injected noise absorbed while busy (core-seconds).
    pub fn total_noise(&self) -> f64 {
        self.cores.iter().map(|c| c.noise).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SimResult {
            makespan: 2.0,
            executed_flops: 4e9,
            nominal_flops: 3e9,
            cores: vec![
                CoreStats {
                    work: 1.5,
                    remote_bytes: 10.0,
                    cache_hits: 3,
                    cache_misses: 1,
                    ..Default::default()
                },
                CoreStats {
                    work: 0.5,
                    remote_bytes: 5.0,
                    cache_hits: 1,
                    cache_misses: 3,
                    ..Default::default()
                },
            ],
            timeline: None,
            tasks: 10,
        };
        assert!((r.gflops() - 1.5).abs() < 1e-12);
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert_eq!(r.remote_bytes(), 15.0);
        assert!((r.cache_hit_rate() - 0.5).abs() < 1e-12);
    }
}
