//! The task cost model: flops, kernel efficiencies, dequeue/steal
//! pricing, and touched tiles.

use calu_dag::{DagVariant, TaskGraph, TaskId, TaskKind};
use calu_matrix::Layout;
use calu_sched::QueueSource;

use crate::machine::MachineConfig;

/// Extra-work multiplier of incremental pivoting's stacked panel
/// factorizations (TSTRF) relative to a plain trsm — the price PLASMA
/// pays for taking the panel off the critical path.
const INCPIV_TSTRF_OVERHEAD: f64 = 1.20;
/// Extra-work multiplier of SSSSM relative to a plain gemm tile update
/// (inner-blocking overhead of incremental pivoting).
const INCPIV_SSSSM_OVERHEAD: f64 = 1.12;

/// Flops of GEPP on an `m × n` panel.
fn getrf_flops(m: usize, n: usize) -> f64 {
    let (m, n) = (m as f64, n as f64);
    (m * n * n - n * n * n / 3.0).max(0.0)
}

/// Useful flops of task `t` in graph `g`, honoring the DAG variant and
/// ragged edge tiles.
pub fn task_flops(g: &TaskGraph, t: TaskId) -> f64 {
    let b = g.block();
    let kind = g.kind(t);
    let rc = |i: usize| g.tile_row_count(i) as f64;
    let cc = |j: usize| g.tile_col_count(j) as f64;
    match (g.variant(), kind) {
        // --- CALU ---
        (DagVariant::Calu, TaskKind::PanelLeaf { k, i }) => {
            let rows: usize = g
                .leaf_rows(k as usize, i as usize)
                .map(|ti| g.tile_row_count(ti))
                .sum();
            getrf_flops(rows, g.tile_col_count(k as usize))
        }
        (DagVariant::Calu, TaskKind::PanelCombine { k, .. }) => {
            let w = g.tile_col_count(k as usize);
            getrf_flops(2 * w, w)
        }
        (DagVariant::Calu, TaskKind::PanelFinish { k }) => {
            let w = g.tile_col_count(k as usize);
            getrf_flops(w, w)
        }
        (DagVariant::Calu, TaskKind::ComputeL { k, i }) => {
            cc(k as usize) * cc(k as usize) * rc(i as usize)
        }

        // --- GEPP with sequential panel: finish covers the whole panel ---
        (DagVariant::GeppPanelSeq, TaskKind::PanelFinish { k }) => {
            let rows = g.rows() - (k as usize) * b;
            getrf_flops(rows, g.tile_col_count(k as usize))
        }

        // --- Cholesky (future-work extension, §9) ---
        (DagVariant::TileCholesky, TaskKind::PanelFinish { k }) => {
            // POTRF: n^3/3
            let w = cc(k as usize);
            w * w * w / 3.0
        }
        (DagVariant::TileCholesky, TaskKind::ComputeL { k, i }) => {
            cc(k as usize) * cc(k as usize) * rc(i as usize)
        }
        (DagVariant::TileCholesky, TaskKind::Update { k, i, j }) => {
            let f = 2.0 * rc(i as usize) * cc(j as usize) * cc(k as usize);
            if i == j {
                f / 2.0 // SYRK does half the gemm flops
            } else {
                f
            }
        }

        // --- incremental pivoting ---
        (DagVariant::TileIncPiv, TaskKind::PanelFinish { k }) => {
            let w = g.tile_col_count(k as usize);
            getrf_flops(w, w)
        }
        (DagVariant::TileIncPiv, TaskKind::ComputeL { k, i }) => {
            INCPIV_TSTRF_OVERHEAD * rc(i as usize) * cc(k as usize) * cc(k as usize)
        }
        (DagVariant::TileIncPiv, TaskKind::Update { k, i, j }) => {
            INCPIV_SSSSM_OVERHEAD * 2.0 * rc(i as usize) * cc(j as usize) * cc(k as usize)
        }

        // --- shared shapes ---
        (_, TaskKind::ComputeU { k, j }) => cc(k as usize) * cc(k as usize) * cc(j as usize),
        (_, TaskKind::Update { k, i, j }) => 2.0 * rc(i as usize) * cc(j as usize) * cc(k as usize),
        // unreachable combinations (e.g. GEPP PanelLeaf) cost nothing
        _ => 0.0,
    }
}

/// Kernel efficiency (fraction of core peak) for a task of `kind` on
/// `layout` executed as part of a batch of `batch` grouped tasks.
///
/// Values approximate how our pure-Rust kernels (and any BLAS) behave:
/// panel factorizations are BLAS-2-bound, triangular solves middling, and
/// gemm efficiency grows with operand size — which is exactly why the BCL
/// layout's grouped updates (§4.1) pay off, and why the 2l-BL layout's
/// cache-resident tiles beat plain column-major.
///
/// Calibration note: `calu-kernels` moved from the seed jki AXPY loop to
/// BLIS-style packed, register-tiled kernels (MR/NR/MC/KC/NC blocking —
/// see the `calu_kernels::gemm` module docs), which roughly tripled
/// sustained GEMM Gflop/s and raised TRSM/GETRF accordingly (measure
/// with the `kernels` bench bin). The *relative* efficiencies encoded
/// here (panel < trsm < gemm, and the layout/grouping ordering) still
/// match that kernel family; only the absolute peak fraction each row
/// represents shifted with the faster kernels.
pub fn kernel_eff(g: &TaskGraph, kind: &TaskKind, layout: Layout, batch: usize) -> f64 {
    let incpiv = g.variant() == DagVariant::TileIncPiv;
    match kind {
        TaskKind::PanelLeaf { .. } | TaskKind::PanelCombine { .. } => 0.34,
        TaskKind::PanelFinish { .. } => match g.variant() {
            // MKL-style sequential full-panel GEPP: unblocked BLAS-2,
            // memory-bandwidth bound over the whole panel
            DagVariant::GeppPanelSeq => 0.15,
            _ => 0.34,
        },
        TaskKind::ComputeL { .. } | TaskKind::ComputeU { .. } => {
            let base = match layout {
                Layout::ColumnMajor => 0.50,
                Layout::BlockCyclic => 0.55,
                Layout::TwoLevelBlock => 0.58,
            };
            let _ = incpiv;
            base
        }
        TaskKind::Update { .. } => {
            let single = match layout {
                Layout::ColumnMajor => 0.66,
                Layout::BlockCyclic => 0.76,
                Layout::TwoLevelBlock => 0.80,
            };
            let eff = match batch {
                0 | 1 => single,
                2 => 0.84,
                _ => 0.88,
            };
            if layout == Layout::BlockCyclic {
                eff
            } else {
                single
            }
        }
    }
}

/// Seconds of scheduler overhead for one dequeue of a task obtained
/// from `source` on machine `m` — §1's "dequeue overhead to pull a task
/// from a work queue", priced by where the task came from:
///
/// * [`QueueSource::Local`] — the core's own static queue: cheapest.
/// * [`QueueSource::Global`] — the shared dynamic queue: the base pop
///   plus a lock-contention term that grows with every other core.
/// * [`QueueSource::Shard`] — the core's own dynamic shard under the
///   mutex-sharded discipline: the base pop, but the lock is per-worker
///   so no all-core contention term — the point of sharding. Under the
///   lock-free discipline the own-deque pop has no lock at all and is
///   priced like a local pop.
/// * [`QueueSource::Stolen`] — a near steal (same socket): the base pop
///   plus half a sweep of per-victim probes.
/// * [`QueueSource::StolenRemote`] — a cross-socket steal: the same
///   sweep, with the per-victim cost scaled by
///   [`MachineConfig::remote_steal_factor`] — the migrated working set
///   crosses the NUMA interconnect ("dynamic migration of data has a
///   significant cost", §1). Only the locality-tiered lock-free
///   discipline reports this source.
///
/// `lock_free` selects the cheaper own-shard pricing described above.
pub fn dequeue_cost(m: &MachineConfig, source: QueueSource, lock_free: bool) -> f64 {
    let p = m.cores() as f64;
    match source {
        QueueSource::Local => m.dequeue_local,
        QueueSource::Global => m.dequeue_global + m.dequeue_contention * (p - 1.0),
        QueueSource::Shard if lock_free => m.dequeue_local,
        QueueSource::Shard => m.dequeue_global,
        QueueSource::Stolen => m.dequeue_global + m.steal_cost * (p / 2.0),
        QueueSource::StolenRemote => {
            m.dequeue_global + m.steal_cost * m.remote_steal_factor * (p / 2.0)
        }
    }
}

/// Tiles a task reads or writes (cache/NUMA-relevant traffic). The small
/// candidate buffers of the TSLU reduction are ignored — they fit in L1.
pub fn task_tiles(g: &TaskGraph, t: TaskId, out: &mut Vec<(usize, usize)>) {
    out.clear();
    let kind = g.kind(t);
    match (g.variant(), kind) {
        (DagVariant::GeppPanelSeq, TaskKind::PanelFinish { k }) => {
            // the sequential panel task sweeps the whole panel column
            for i in (k as usize)..g.tile_rows() {
                out.push((i, k as usize));
            }
        }
        (DagVariant::Calu, TaskKind::PanelLeaf { k, i }) => {
            for ti in g.leaf_rows(k as usize, i as usize) {
                out.push((ti, k as usize));
            }
        }
        (_, TaskKind::PanelLeaf { k, i }) => out.push((i as usize, k as usize)),
        (_, TaskKind::PanelCombine { .. }) => {}
        (_, TaskKind::PanelFinish { k }) => out.push((k as usize, k as usize)),
        (_, TaskKind::ComputeL { k, i }) => {
            out.push((k as usize, k as usize));
            out.push((i as usize, k as usize));
        }
        (_, TaskKind::ComputeU { k, j }) => {
            out.push((k as usize, k as usize));
            out.push((k as usize, j as usize));
        }
        (_, TaskKind::Update { k, i, j }) => {
            out.push((i as usize, k as usize));
            out.push((k as usize, j as usize));
            out.push((i as usize, j as usize));
        }
    }
}

/// The tile a task *writes* (dirty-line coherence traffic follows this
/// tile when consecutive writers differ).
pub fn task_written_tile(g: &TaskGraph, t: TaskId) -> Option<(usize, usize)> {
    match g.kind(t) {
        TaskKind::PanelLeaf { .. } | TaskKind::PanelCombine { .. } => None,
        TaskKind::PanelFinish { k } => Some((k as usize, k as usize)),
        TaskKind::ComputeL { k, i } => Some((i as usize, k as usize)),
        TaskKind::ComputeU { k, j } => Some((k as usize, j as usize)),
        TaskKind::Update { k: _, i, j } => Some((i as usize, j as usize)),
    }
}

/// Bytes of one tile.
pub fn tile_bytes(g: &TaskGraph, ti: usize, tj: usize) -> f64 {
    (g.tile_row_count(ti) * g.tile_col_count(tj) * 8) as f64
}

/// Total useful flops of the whole graph.
pub fn total_flops(g: &TaskGraph) -> f64 {
    g.ids().map(|t| task_flops(g, t)).sum()
}

/// The standard LU figure-of-merit flop count used for Gflop/s
/// reporting, matching the paper's plots: `2(mnr − (m+n)r²/2 + r³/3)`
/// with `r = min(m, n)`, which reduces to the familiar `mn² − n³/3`
/// for `m ≥ n` (`(2/3)n³` when square) and stays positive for wide
/// matrices.
pub fn lu_nominal_flops(m: usize, n: usize) -> f64 {
    let r = m.min(n) as f64;
    let (m, n) = (m as f64, n as f64);
    2.0 * m * n * r - (m + n) * r * r + 2.0 * r * r * r / 3.0
}

/// Cholesky figure-of-merit flop count, `n³/3`.
pub fn cholesky_nominal_flops(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calu_total_flops_close_to_nominal() {
        let g = TaskGraph::build(2000, 2000, 100);
        let total = total_flops(&g);
        let nominal = lu_nominal_flops(2000, 2000);
        // tournament pivoting adds panel work; total within [1x, 1.2x]
        assert!(total > nominal, "CALU does at least the nominal flops");
        assert!(total < 1.2 * nominal, "panel overhead is lower-order");
    }

    #[test]
    fn incpiv_costs_more_than_calu() {
        // compare against the thread-chunked CALU actually simulated
        // (per-tile leaves deliberately over-count the tournament)
        let calu = total_flops(&TaskGraph::build_calu(1500, 1500, 100, 4));
        let incpiv = total_flops(&TaskGraph::build_incpiv(1500, 1500, 100));
        assert!(
            incpiv > 1.03 * calu,
            "incremental pivoting pays extra flops"
        );
        assert!(incpiv < 1.5 * calu);
        // the SSSSM overhead is on the O(n^3) term, so the gap widens
        // with matrix size while CALU's tournament overhead (O(n^2 b))
        // fades
        let calu_big = total_flops(&TaskGraph::build_calu(3000, 3000, 100, 4));
        let incpiv_big = total_flops(&TaskGraph::build_incpiv(3000, 3000, 100));
        assert!(incpiv_big / calu_big > incpiv / calu);
    }

    #[test]
    fn gepp_panel_task_covers_whole_panel() {
        let g = TaskGraph::build_gepp(1000, 1000, 100);
        let f0 = task_flops(&g, g.panel_finish(0));
        assert!((f0 - getrf_flops(1000, 100)).abs() < 1.0);
        let f9 = task_flops(&g, g.panel_finish(9));
        assert!((f9 - getrf_flops(100, 100)).abs() < 1.0);
    }

    #[test]
    fn update_flops_respect_ragged_tiles() {
        let g = TaskGraph::build(250, 250, 100);
        // tile (2,2) is 50x50; update S(0, 2, 2) = 2*50*50*100
        let t = g
            .ids()
            .find(|&t| g.kind(t) == TaskKind::Update { k: 0, i: 2, j: 2 })
            .unwrap();
        assert!((task_flops(&g, t) - 2.0 * 50.0 * 50.0 * 100.0).abs() < 1.0);
    }

    #[test]
    fn batching_raises_gemm_efficiency_only_for_bcl() {
        let g = TaskGraph::build(400, 400, 100);
        let s = TaskKind::Update { k: 0, i: 1, j: 1 };
        let single = kernel_eff(&g, &s, Layout::BlockCyclic, 1);
        let batched = kernel_eff(&g, &s, Layout::BlockCyclic, 3);
        assert!(batched > single);
        let tlb1 = kernel_eff(&g, &s, Layout::TwoLevelBlock, 1);
        let tlb3 = kernel_eff(&g, &s, Layout::TwoLevelBlock, 3);
        assert_eq!(tlb1, tlb3, "2l-BL cannot group (§4.2)");
    }

    #[test]
    fn cm_layout_is_least_efficient_for_gemm() {
        let g = TaskGraph::build(400, 400, 100);
        let s = TaskKind::Update { k: 0, i: 1, j: 1 };
        let cm = kernel_eff(&g, &s, Layout::ColumnMajor, 1);
        let bcl = kernel_eff(&g, &s, Layout::BlockCyclic, 1);
        let tlb = kernel_eff(&g, &s, Layout::TwoLevelBlock, 1);
        assert!(cm < bcl && bcl < tlb);
    }

    #[test]
    fn tiles_touched_per_task() {
        let g = TaskGraph::build(400, 400, 100);
        let mut tiles = Vec::new();
        let s = g
            .ids()
            .find(|&t| g.kind(t) == TaskKind::Update { k: 0, i: 2, j: 3 })
            .unwrap();
        task_tiles(&g, s, &mut tiles);
        assert_eq!(tiles, vec![(2, 0), (0, 3), (2, 3)]);
        let gepp = TaskGraph::build_gepp(400, 400, 100);
        task_tiles(&gepp, gepp.panel_finish(1), &mut tiles);
        assert_eq!(tiles, vec![(1, 1), (2, 1), (3, 1)]);
    }

    #[test]
    fn tile_bytes_ragged() {
        let g = TaskGraph::build(250, 250, 100);
        assert_eq!(tile_bytes(&g, 0, 0), 100.0 * 100.0 * 8.0);
        assert_eq!(tile_bytes(&g, 2, 2), 50.0 * 50.0 * 8.0);
    }

    #[test]
    fn dequeue_pricing_orders_the_sources() {
        use crate::machine::NoiseConfig;
        let m = MachineConfig::amd_opteron_48(NoiseConfig::off());
        let local = dequeue_cost(&m, QueueSource::Local, false);
        let shard = dequeue_cost(&m, QueueSource::Shard, false);
        let shard_lf = dequeue_cost(&m, QueueSource::Shard, true);
        let global = dequeue_cost(&m, QueueSource::Global, false);
        let near = dequeue_cost(&m, QueueSource::Stolen, true);
        let remote = dequeue_cost(&m, QueueSource::StolenRemote, true);
        assert!(local < shard, "own shard still pays its (uncontended) lock");
        assert_eq!(shard_lf, local, "lock-free own pop loses the lock");
        assert!(shard < global, "the global queue pays all-core contention");
        assert!(near < remote, "remote steals cross the interconnect");
        assert!(
            (remote - m.dequeue_global) > (near - m.dequeue_global) * m.remote_steal_factor * 0.99,
            "remote scaling applies to the sweep term"
        );
    }

    #[test]
    fn nominal_flops_square() {
        let f = lu_nominal_flops(3000, 3000);
        assert!((f - 2.0 / 3.0 * 3000f64.powi(3)).abs() / f < 1e-12);
    }

    #[test]
    fn nominal_flops_rectangular() {
        // tall case keeps the mn² − n³/3 convention
        let (m, n) = (4000f64, 1000f64);
        let tall = lu_nominal_flops(4000, 1000);
        assert!((tall - (m * n * n - n * n * n / 3.0)).abs() / tall < 1e-12);
        // wide case is positive and symmetric with the tall case
        let wide = lu_nominal_flops(1000, 4000);
        assert!(wide > 0.0);
        assert!((wide - tall).abs() / tall < 1e-12);
    }
}
