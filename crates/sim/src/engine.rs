//! The discrete-event engine: executes a task graph on a machine model
//! under a scheduling policy.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use calu_dag::{PaperKind, TaskGraph, TaskId};
use calu_matrix::{Layout, ProcessGrid};
use calu_sched::{
    make_policy_ordered, CpuTopology, Policy, QueueDiscipline, QueueSource, SchedulerKind,
    StealOrder,
};
use calu_trace::{SpanKind, TaskSpan, Timeline};

use crate::cache::{tile_key, TileCache};
use crate::cost::{
    dequeue_cost, kernel_eff, lu_nominal_flops, task_flops, task_tiles, task_written_tile,
    tile_bytes, total_flops,
};
use crate::machine::MachineConfig;
use crate::noise::NoiseProcess;
use crate::result::{CoreStats, SimResult};

/// Stride penalty of the column-major layout: a tile is spread over `m`-
/// long columns, so refills move more lines than the tile's payload.
const CM_BYTE_FACTOR: f64 = 1.4;

/// Coherence (dirty-line migration) cost relative to a remote refill,
/// charged when a tile's consecutive writers are different cores — "the
/// act of such dynamic migration of data has a significant cost" (§1).
const COHERENCE_FACTOR: f64 = 0.75;

/// One simulated experiment.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The machine model.
    pub machine: MachineConfig,
    /// Data layout of the matrix (drives efficiency, homes and caching).
    pub layout: Layout,
    /// Scheduling policy.
    pub sched: SchedulerKind,
    /// Dynamic-section queue discipline (one shared queue vs. per-core
    /// shards with stealing); ignored by policies without a dynamic
    /// section.
    pub queue: QueueDiscipline,
    /// Thread grid for the block-cyclic distribution; its size must equal
    /// the machine's core count.
    pub grid: ProcessGrid,
    /// Maximum tiles grouped into one BLAS-3 call (3 for BCL as in §3).
    pub group_max: usize,
    /// Column-granular dynamic tasks: one dequeued unit updates a whole
    /// column (`for all I`, Algorithm 2 line 8) — the granularity of the
    /// paper's fully dynamic implementation, responsible for the early
    /// core drain of Figure 14.
    pub column_granular: bool,
    /// Record the full per-task timeline (memory-heavy for big runs).
    pub record_trace: bool,
    /// Direction of the lock-free discipline's tiered victim sweep —
    /// the adaptive controller's steal-order knob, modelled so the
    /// simulator sweeps victims in the same order the real executor
    /// would (steal *prices* still come from the victim's tier, so the
    /// order changes who is probed first, never what a steal costs).
    pub steal_order: StealOrder,
}

impl SimConfig {
    /// Canonical configuration: near-square grid over all cores, grouping
    /// `k = 3` iff the layout supports it (§3: "with k = 3").
    pub fn new(machine: MachineConfig, layout: Layout, sched: SchedulerKind) -> Self {
        let grid = ProcessGrid::square_for(machine.cores()).expect("non-empty machine");
        let group_max = if layout.supports_grouping() { 3 } else { 1 };
        Self {
            machine,
            layout,
            sched,
            queue: QueueDiscipline::Global,
            grid,
            group_max,
            column_granular: false,
            record_trace: false,
            steal_order: StealOrder::default(),
        }
    }

    /// Set the dynamic-section queue discipline.
    pub fn with_queue(mut self, queue: QueueDiscipline) -> Self {
        self.queue = queue;
        self
    }

    /// Set the lock-free steal-sweep direction (default nearest-first).
    pub fn with_steal_order(mut self, order: StealOrder) -> Self {
        self.steal_order = order;
        self
    }

    /// Enable timeline recording.
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Use column-granular dynamic tasks (see [`SimConfig::column_granular`]).
    pub fn with_column_granularity(mut self) -> Self {
        self.column_granular = true;
        self
    }
}

#[derive(Debug, PartialEq)]
struct HeapEv {
    t: f64,
    seq: u64,
    core: u32,
}

impl Eq for HeapEv {}
impl PartialOrd for HeapEv {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEv {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t
            .total_cmp(&other.t)
            .then(self.seq.cmp(&other.seq))
            .then(self.core.cmp(&other.core))
    }
}

struct Engine<'a> {
    g: &'a TaskGraph,
    cfg: &'a SimConfig,
    policy: Box<dyn Policy>,
    deps: Vec<u32>,
    caches: Vec<TileCache>,
    noise: Vec<NoiseProcess>,
    stats: Vec<CoreStats>,
    in_flight: Vec<Vec<TaskId>>,
    /// Last core that wrote each tile (`u32::MAX` = untouched).
    last_writer: Vec<u32>,
    idle: Vec<bool>,
    /// Cores retired by the injected loss: never dispatched again.
    dead: Vec<bool>,
    /// Tasks completed per core — the loss trigger's counter.
    done_tasks: Vec<u64>,
    heap: BinaryHeap<Reverse<HeapEv>>,
    seq: u64,
    timeline: Option<Timeline>,
    tile_buf: Vec<(usize, usize)>,
    noise_buf: Vec<(f64, f64)>,
}

impl<'a> Engine<'a> {
    fn new(g: &'a TaskGraph, cfg: &'a SimConfig) -> Self {
        let p = cfg.machine.cores();
        assert_eq!(
            cfg.grid.size(),
            p,
            "grid size must equal machine core count"
        );
        if let Some((lc, _)) = cfg.machine.lost_core {
            assert!(lc < p, "lost core {lc} outside the {p}-core machine");
            assert!(p > 1, "losing the only core leaves nothing to finish");
        }
        let cache_cap = if cfg.layout == Layout::ColumnMajor {
            cfg.machine.cache_tiles / 2
        } else {
            cfg.machine.cache_tiles
        };
        // the simulated machine's socket layout feeds the lock-free
        // discipline's tiered victim sweeps, so a simulated steal probes
        // same-socket victims before remote ones exactly like a real one
        let topo = CpuTopology::uniform(cfg.machine.sockets, cfg.machine.cores_per_socket);
        let policy = make_policy_ordered(cfg.sched, cfg.queue, cfg.steal_order, &topo, g, cfg.grid);
        Self {
            g,
            cfg,
            policy,
            deps: g.ids().map(|t| g.dep_count(t)).collect(),
            caches: (0..p).map(|_| TileCache::new(cache_cap)).collect(),
            noise: (0..p)
                .map(|c| NoiseProcess::new(&cfg.machine.noise, c))
                .collect(),
            stats: vec![CoreStats::default(); p],
            in_flight: vec![Vec::new(); p],
            last_writer: vec![u32::MAX; g.tile_rows() * g.tile_cols()],
            idle: vec![true; p],
            dead: vec![false; p],
            done_tasks: vec![0; p],
            heap: BinaryHeap::new(),
            seq: 0,
            timeline: cfg.record_trace.then(|| Timeline::new(p)),
            tile_buf: Vec::with_capacity(8),
            noise_buf: Vec::with_capacity(8),
        }
    }

    /// Home socket of a tile: the socket of its block-cyclic owner, or a
    /// page-interleaved pseudo-home for column-major storage.
    #[inline]
    fn home_socket(&self, ti: usize, tj: usize) -> usize {
        match self.cfg.layout {
            Layout::ColumnMajor => (ti + tj) % self.cfg.machine.sockets,
            _ => self.cfg.machine.socket_of(self.cfg.grid.owner(ti, tj)),
        }
    }

    /// Retire `core` after an injected loss: rescue its queued static
    /// tasks into the dynamic section (priced per task as scheduler
    /// overhead) and bar it from ever dispatching again. Returns how
    /// many tasks moved.
    fn retire(&mut self, core: usize) -> usize {
        self.dead[core] = true;
        self.idle[core] = false;
        let moved = self.policy.rescue(core);
        let st = &mut self.stats[core];
        st.lost = true;
        st.rescued = moved as u64;
        st.overhead += moved as f64 * self.cfg.machine.rescue_task_cost;
        moved
    }

    /// Try to hand `core` a batch at time `now`; returns true on success.
    fn dispatch(&mut self, core: usize, now: f64) -> bool {
        if self.dead[core] {
            return false;
        }
        let max = if self.cfg.column_granular {
            usize::MAX
        } else {
            self.cfg.group_max
        };
        let batch: Vec<_> = if max > 1 {
            self.policy.pop_batch(core, max)
        } else {
            self.policy.pop(core).into_iter().collect()
        };
        if batch.is_empty() {
            self.idle[core] = true;
            return false;
        }
        self.idle[core] = false;
        let m = &self.cfg.machine;

        // scheduler overhead: one dequeue per batch, priced per source
        // (and per steal locality) by the shared cost model
        let dq = dequeue_cost(m, batch[0].source, self.cfg.queue.is_lock_free());
        for popped in &batch {
            match popped.source {
                QueueSource::Local => self.stats[core].local_pops += 1,
                // shard pops are dynamic-section pops, same as global
                QueueSource::Global | QueueSource::Shard => self.stats[core].global_pops += 1,
                QueueSource::Stolen => self.stats[core].stolen_pops += 1,
                QueueSource::StolenRemote => {
                    self.stats[core].stolen_pops += 1;
                    self.stats[core].remote_stolen_pops += 1;
                }
            }
        }

        // memory: cache misses pay local/remote byte costs
        let socket = m.socket_of(core);
        let byte_factor = if self.cfg.layout == Layout::ColumnMajor {
            CM_BYTE_FACTOR
        } else {
            1.0
        };
        let mut mem = 0.0;
        let nt = self.g.tile_cols();
        for popped in &batch {
            let written = task_written_tile(self.g, popped.task);
            let mut tiles = std::mem::take(&mut self.tile_buf);
            task_tiles(self.g, popped.task, &mut tiles);
            for &(ti, tj) in &tiles {
                // dirty-line migration: the tile we are about to write was
                // last written by a different core -> coherence transfer,
                // regardless of what our own cache believes
                let migrated = written == Some((ti, tj)) && {
                    let lw = self.last_writer[ti * nt + tj];
                    lw != u32::MAX && lw != core as u32
                };
                let hit = self.caches[core].touch(tile_key(ti, tj)) && !migrated;
                if hit {
                    self.stats[core].cache_hits += 1;
                } else {
                    self.stats[core].cache_misses += 1;
                    let bytes = tile_bytes(self.g, ti, tj) * byte_factor;
                    if migrated {
                        mem += bytes * m.remote_byte_cost * COHERENCE_FACTOR;
                        self.stats[core].remote_bytes += bytes;
                    } else if self.home_socket(ti, tj) == socket {
                        mem += bytes * m.local_byte_cost;
                        self.stats[core].local_bytes += bytes;
                    } else {
                        mem += bytes * m.remote_byte_cost;
                        self.stats[core].remote_bytes += bytes;
                    }
                }
            }
            if let Some((ti, tj)) = written {
                self.last_writer[ti * nt + tj] = core as u32;
            }
            self.tile_buf = tiles;
        }

        // compute
        let flops: f64 = batch.iter().map(|pp| task_flops(self.g, pp.task)).sum();
        let first_kind = self.g.kind(batch[0].task);
        let eff = if self.g.variant() == calu_dag::DagVariant::GeppPanelSeq
            && matches!(first_kind, calu_dag::TaskKind::PanelFinish { .. })
        {
            // the vendor library's panel runs at its own calibrated rate
            m.gepp_panel_eff * m.eff_scale
        } else {
            kernel_eff(self.g, &first_kind, self.cfg.layout, batch.len()) * m.eff_scale
        };
        let compute = flops / (m.core_flops * m.core_speed(core) * eff);

        let busy = dq + mem + compute;
        let mut noise_spans = std::mem::take(&mut self.noise_buf);
        let end = self.noise[core].stretch(now, busy, &mut noise_spans);
        let noise_total: f64 = noise_spans.iter().map(|(_, d)| d).sum();

        let st = &mut self.stats[core];
        st.work += compute;
        st.memory += mem;
        st.overhead += dq;
        st.noise += noise_total;
        st.tasks += batch.len() as u64;
        st.batches += 1;

        if let Some(tl) = &mut self.timeline {
            let span_kind = match first_kind.paper_kind() {
                PaperKind::P => SpanKind::Panel,
                PaperKind::L => SpanKind::LFactor,
                PaperKind::U => SpanKind::UFactor,
                PaperKind::S => SpanKind::Update,
            };
            if dq > 0.0 {
                tl.push(TaskSpan {
                    core,
                    start: now,
                    end: now + dq,
                    kind: SpanKind::Overhead,
                });
            }
            // work interleaved with noise preemptions
            let mut cur = now + dq;
            for &(at, d) in &noise_spans {
                if at > cur {
                    tl.push(TaskSpan {
                        core,
                        start: cur,
                        end: at,
                        kind: span_kind,
                    });
                }
                tl.push(TaskSpan {
                    core,
                    start: at,
                    end: at + d,
                    kind: SpanKind::Noise,
                });
                cur = at + d;
            }
            if end > cur {
                tl.push(TaskSpan {
                    core,
                    start: cur,
                    end,
                    kind: span_kind,
                });
            }
        }
        noise_spans.clear();
        self.noise_buf = noise_spans;

        self.in_flight[core] = batch.into_iter().map(|pp| pp.task).collect();
        self.seq += 1;
        self.heap.push(Reverse(HeapEv {
            t: end,
            seq: self.seq,
            core: core as u32,
        }));
        true
    }

    fn run(mut self) -> SimResult {
        let total = self.g.len();
        let p = self.cfg.machine.cores();
        for t in self.g.initial_ready() {
            self.policy.on_ready(t, None);
        }
        // a loss "after 0 tasks" fires before the core ever runs
        if let Some((lc, 0)) = self.cfg.machine.lost_core {
            self.retire(lc);
        }
        for core in 0..p {
            self.dispatch(core, 0.0);
        }
        let mut completed = 0usize;
        let mut makespan = 0.0f64;
        while completed < total {
            let Some(Reverse(ev)) = self.heap.pop() else {
                panic!(
                    "simulator deadlock: {completed}/{total} tasks done, {} queued",
                    self.policy.queued()
                );
            };
            let now = ev.t;
            makespan = makespan.max(now);
            let core = ev.core as usize;
            let batch = std::mem::take(&mut self.in_flight[core]);
            let mut newly_ready = false;
            self.done_tasks[core] += batch.len() as u64;
            for t in batch {
                completed += 1;
                for &s in self.g.successors(t) {
                    self.deps[s.idx()] -= 1;
                    if self.deps[s.idx()] == 0 {
                        self.policy.on_ready(s, Some(core));
                        newly_ready = true;
                    }
                }
            }
            // the injected loss fires at this completion boundary, like
            // the real executor's worker retiring between tasks; rescued
            // tasks become servable by everyone else, so wake the idle
            if let Some((lc, after)) = self.cfg.machine.lost_core {
                if lc == core && !self.dead[core] && self.done_tasks[core] >= after {
                    self.retire(core);
                    newly_ready = true;
                }
            }
            self.dispatch(core, now);
            if newly_ready {
                for c in 0..p {
                    if self.idle[c] {
                        self.dispatch(c, now);
                    }
                }
            }
        }
        let nominal_flops = match self.g.variant() {
            calu_dag::DagVariant::TileCholesky => {
                crate::cost::cholesky_nominal_flops(self.g.rows())
            }
            _ => lu_nominal_flops(self.g.rows(), self.g.cols()),
        };
        SimResult {
            makespan,
            executed_flops: total_flops(self.g),
            nominal_flops,
            cores: self.stats,
            timeline: self.timeline,
            tasks: total,
        }
    }
}

/// Run one simulated factorization of `g` under `cfg`.
pub fn run(g: &TaskGraph, cfg: &SimConfig) -> SimResult {
    Engine::new(g, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::NoiseConfig;
    use calu_dag::TaskGraph;

    fn intel(sched: SchedulerKind) -> SimConfig {
        SimConfig::new(
            MachineConfig::intel_xeon_16(NoiseConfig::off()),
            Layout::BlockCyclic,
            sched,
        )
    }

    #[test]
    fn executes_all_tasks() {
        let g = TaskGraph::build(1000, 1000, 100);
        for sched in [
            SchedulerKind::Static,
            SchedulerKind::Dynamic,
            SchedulerKind::Hybrid { dratio: 0.2 },
            SchedulerKind::WorkStealing { seed: 1 },
        ] {
            let r = run(&g, &intel(sched));
            let total: u64 = r.cores.iter().map(|c| c.tasks).sum();
            assert_eq!(total as usize, g.len(), "{sched:?}");
            assert!(r.makespan > 0.0);
            assert!(r.gflops() > 0.0);
        }
    }

    #[test]
    fn deterministic() {
        let g = TaskGraph::build(800, 800, 100);
        let cfg = intel(SchedulerKind::Hybrid { dratio: 0.1 });
        let a = run(&g, &cfg);
        let b = run(&g, &cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.cores, b.cores);
    }

    #[test]
    fn sharded_discipline_executes_all_tasks_and_steals() {
        let g = TaskGraph::build(1500, 1500, 100);
        let cfg = intel(SchedulerKind::Hybrid { dratio: 0.5 })
            .with_queue(QueueDiscipline::Sharded { seed: 3 });
        let r = run(&g, &cfg);
        let total: u64 = r.cores.iter().map(|c| c.tasks).sum();
        assert_eq!(total as usize, g.len());
        let stolen: u64 = r.cores.iter().map(|c| c.stolen_pops).sum();
        assert!(stolen > 0, "a 16-core sharded run must steal at least once");
        // same DAG under the Global discipline never steals
        let rg = run(&g, &intel(SchedulerKind::Hybrid { dratio: 0.5 }));
        assert_eq!(rg.cores.iter().map(|c| c.stolen_pops).sum::<u64>(), 0);
    }

    #[test]
    fn lockfree_discipline_executes_all_tasks_and_classifies_steals() {
        let g = TaskGraph::build(1500, 1500, 100);
        let cfg = intel(SchedulerKind::Hybrid { dratio: 0.5 })
            .with_queue(QueueDiscipline::LockFree { seed: 3 });
        let r = run(&g, &cfg);
        let total: u64 = r.cores.iter().map(|c| c.tasks).sum();
        assert_eq!(total as usize, g.len());
        let stolen: u64 = r.cores.iter().map(|c| c.stolen_pops).sum();
        let remote: u64 = r.cores.iter().map(|c| c.remote_stolen_pops).sum();
        assert!(stolen > 0, "a 16-core lock-free run must steal");
        assert!(remote <= stolen, "remote steals are a subset");
        // determinism: same seed, same schedule
        let r2 = run(&g, &cfg);
        assert_eq!(r.makespan, r2.makespan);
        assert_eq!(r.cores, r2.cores);
        // the flat sharded sweep never classifies a steal as remote
        let sh = run(
            &g,
            &intel(SchedulerKind::Hybrid { dratio: 0.5 })
                .with_queue(QueueDiscipline::Sharded { seed: 3 }),
        );
        assert_eq!(
            sh.cores.iter().map(|c| c.remote_stolen_pops).sum::<u64>(),
            0
        );
    }

    #[test]
    fn remote_steals_cost_more_on_numa_heavy_machines() {
        use crate::cost::dequeue_cost;
        let amd = MachineConfig::amd_opteron_48(NoiseConfig::off());
        let intel = MachineConfig::intel_xeon_16(NoiseConfig::off());
        for m in [&amd, &intel] {
            assert!(
                dequeue_cost(m, QueueSource::StolenRemote, true)
                    > dequeue_cost(m, QueueSource::Stolen, true)
            );
        }
        // the AMD interconnect premium dwarfs the Intel one in absolute terms
        let premium = |m: &MachineConfig| {
            dequeue_cost(m, QueueSource::StolenRemote, true)
                - dequeue_cost(m, QueueSource::Stolen, true)
        };
        assert!(premium(&amd) > premium(&intel));
    }

    #[test]
    fn makespan_at_least_ideal_time() {
        let g = TaskGraph::build(1200, 1200, 100);
        let cfg = intel(SchedulerKind::Hybrid { dratio: 0.1 });
        let r = run(&g, &cfg);
        // perfect machine bound: executed flops at peak with no overheads
        let ideal = r.executed_flops / cfg.machine.peak_flops();
        assert!(
            r.makespan > ideal,
            "makespan {} cannot beat ideal {}",
            r.makespan,
            ideal
        );
        // and utilization cannot exceed 1
        assert!(r.utilization() <= 1.0);
    }

    #[test]
    fn more_cores_help() {
        let g = TaskGraph::build(2000, 2000, 100);
        let amd48 = SimConfig::new(
            MachineConfig::amd_opteron_48(NoiseConfig::off()),
            Layout::BlockCyclic,
            SchedulerKind::Hybrid { dratio: 0.1 },
        );
        let amd24 = SimConfig::new(
            MachineConfig::amd_opteron_with_cores(24, NoiseConfig::off()),
            Layout::BlockCyclic,
            SchedulerKind::Hybrid { dratio: 0.1 },
        );
        let r48 = run(&g, &amd48);
        let r24 = run(&g, &amd24);
        assert!(r48.makespan < r24.makespan, "48 cores must beat 24");
    }

    #[test]
    fn trace_recording_matches_makespan() {
        let g = TaskGraph::build(600, 600, 100);
        let cfg = intel(SchedulerKind::Static).with_trace();
        let r = run(&g, &cfg);
        let tl = r.timeline.as_ref().expect("trace requested");
        assert!((tl.makespan() - r.makespan).abs() < 1e-9);
        assert!(tl.spans().len() >= g.len() / 3, "spans recorded per batch");
    }

    #[test]
    fn noise_slows_static_more_than_hybrid() {
        let g = TaskGraph::build_calu(4000, 4000, 100, 4);
        let noise = NoiseConfig {
            rate_hz: 50.0,
            mean_duration: 1e-3,
            seed: 11,
        };
        let mk = |sched| {
            SimConfig::new(
                MachineConfig::intel_xeon_16(noise),
                Layout::BlockCyclic,
                sched,
            )
        };
        let stat = run(&g, &mk(SchedulerKind::Static));
        let hyb = run(&g, &mk(SchedulerKind::Hybrid { dratio: 0.2 }));
        assert!(
            hyb.makespan < stat.makespan,
            "hybrid {} must absorb noise better than static {}",
            hyb.makespan,
            stat.makespan
        );
    }

    #[test]
    fn dynamic_migrates_more_data_than_static() {
        let g = TaskGraph::build(1600, 1600, 100);
        let stat = run(&g, &intel(SchedulerKind::Static));
        let dynamic = run(&g, &intel(SchedulerKind::Dynamic));
        assert!(
            dynamic.remote_bytes() > stat.remote_bytes(),
            "dynamic scheduling must move more remote data"
        );
        assert!(dynamic.cache_hit_rate() < stat.cache_hit_rate());
    }

    #[test]
    #[should_panic(expected = "grid size")]
    fn grid_must_match_machine() {
        let g = TaskGraph::build(400, 400, 100);
        let mut cfg = intel(SchedulerKind::Static);
        cfg.grid = ProcessGrid::new(2, 2).unwrap();
        run(&g, &cfg);
    }
}

#[cfg(test)]
mod slow_core_tests {
    use super::*;
    use crate::machine::NoiseConfig;
    use calu_dag::TaskGraph;

    #[test]
    fn slow_core_hurts_static_more_than_hybrid() {
        // one core at 40% speed: the static schedule convoys behind it,
        // the hybrid re-routes around it through the dynamic queue
        let g = TaskGraph::build_calu(3000, 3000, 100, 4);
        let mut mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
        mach.slow_core = Some((5, 0.4));
        let mk = |sched| SimConfig::new(mach.clone(), Layout::BlockCyclic, sched);
        let stat = run(&g, &mk(SchedulerKind::Static));
        let hyb = run(&g, &mk(SchedulerKind::Hybrid { dratio: 0.2 }));
        let dynamic = run(&g, &mk(SchedulerKind::Dynamic));
        assert!(
            hyb.makespan < stat.makespan,
            "hybrid must absorb the slow core"
        );
        // and the slowdown vs the healthy machine is bounded for dynamic
        let healthy = run(
            &TaskGraph::build_calu(3000, 3000, 100, 4),
            &SimConfig::new(
                MachineConfig::intel_xeon_16(NoiseConfig::off()),
                Layout::BlockCyclic,
                SchedulerKind::Dynamic,
            ),
        );
        assert!(dynamic.makespan < healthy.makespan * 1.35);
    }

    #[test]
    fn lost_core_is_rescued_and_every_task_still_executes() {
        let g = TaskGraph::build_calu(2000, 2000, 100, 4);
        let mut mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
        // crawl first so ready static work piles up in the doomed
        // core's queue, then lose it: the rescue has something to move
        mach.slow_core = Some((3, 0.05));
        mach.lost_core = Some((3, 10));
        let cfg = SimConfig::new(
            mach,
            Layout::BlockCyclic,
            SchedulerKind::Hybrid { dratio: 0.2 },
        );
        let r = run(&g, &cfg);
        let total: u64 = r.cores.iter().map(|c| c.tasks).sum();
        assert_eq!(total as usize, g.len(), "no task left behind");
        assert!(r.cores[3].lost, "the lost core is flagged");
        assert!(
            r.cores[3].rescued > 0,
            "a backlogged loss leaves queued static tasks to rescue"
        );
        assert!(
            r.cores[3].overhead >= r.cores[3].rescued as f64 * cfg.machine.rescue_task_cost,
            "each rescued task is priced as overhead"
        );
        assert!(
            (10..10 + 3).contains(&r.cores[3].tasks),
            "the core stops at the first completion boundary past its \
             threshold (its last batch may overshoot by up to group_max), \
             got {} tasks",
            r.cores[3].tasks
        );
        assert!(r.cores.iter().enumerate().all(|(c, s)| s.lost == (c == 3)));
        // degraded but correct: slower than the healthy run, and
        // deterministic for replay
        let healthy = run(
            &g,
            &SimConfig::new(
                MachineConfig::intel_xeon_16(NoiseConfig::off()),
                Layout::BlockCyclic,
                SchedulerKind::Hybrid { dratio: 0.2 },
            ),
        );
        assert!(r.makespan > healthy.makespan, "15 cores cannot beat 16");
        let again = run(&g, &cfg);
        assert_eq!(r.makespan, again.makespan);
        assert_eq!(r.cores, again.cores);
    }

    #[test]
    fn a_core_lost_before_its_first_task_never_runs() {
        let g = TaskGraph::build_calu(1200, 1200, 100, 4);
        let mut mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
        mach.lost_core = Some((0, 0));
        let cfg = SimConfig::new(
            mach,
            Layout::BlockCyclic,
            SchedulerKind::Hybrid { dratio: 0.2 },
        );
        let r = run(&g, &cfg);
        assert_eq!(r.cores[0].tasks, 0);
        assert!(r.cores[0].lost);
        let total: u64 = r.cores.iter().map(|c| c.tasks).sum();
        assert_eq!(total as usize, g.len());
    }

    #[test]
    fn slow_core_speed_lookup() {
        let mut mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
        assert_eq!(mach.core_speed(3), 1.0);
        mach.slow_core = Some((3, 0.5));
        assert_eq!(mach.core_speed(3), 0.5);
        assert_eq!(mach.core_speed(4), 1.0);
    }
}
