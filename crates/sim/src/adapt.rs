//! Simulated adaptive sweeps: the facade's feedback loop replayed
//! entirely in simulated time.
//!
//! The adaptive controller ([`calu_sched::adaptive`]) is backend-
//! agnostic — it consumes [`Observation`]s and recommends splits. This
//! module closes the same loop the real executor closes, but against
//! the discrete-event machine model: run a factorization under the
//! controller's current split, distill the [`SimResult`] into an
//! observation with the *same formulas* the facade uses on real thread
//! stats, feed it back, repeat. Because both the simulator and the
//! controller are deterministic, a whole convergence trajectory (does a
//! lost core push `dratio` up? where does it settle?) costs
//! milliseconds instead of a real-machine campaign — and the test
//! harness can assert the simulated controller and the threaded one
//! choose identical splits from identical traces.

use calu_dag::TaskGraph;
use calu_matrix::Layout;
use calu_sched::adaptive::{AdaptiveController, AdaptivePolicy, Observation, SplitChoice};
use calu_sched::{CpuTopology, QueueDiscipline, SchedulerKind};

use crate::engine::{run, SimConfig};
use crate::machine::MachineConfig;
use crate::result::SimResult;

/// Distill a simulated run into the controller's input, with the same
/// formulas the facade applies to real thread stats: idle = makespan −
/// busy per core, remote fraction = remote steals / total steals. The
/// simulator's decision-procedure queues never fail a steal sweep, so
/// the contention reading stays 0 — matching the facade's
/// `failed_steals: 0` for simulated reports.
pub fn observe_result(r: &SimResult, dims: (usize, usize)) -> Observation {
    let threads = r.cores.len().max(1);
    let total_idle: f64 = r
        .cores
        .iter()
        .map(|c| (r.makespan - (c.work + c.overhead + c.memory + c.noise)).max(0.0))
        .sum();
    let steals: u64 = r.cores.iter().map(|c| c.stolen_pops).sum();
    let remote: u64 = r.cores.iter().map(|c| c.remote_stolen_pops).sum();
    let remote_fraction = if steals == 0 {
        0.0
    } else {
        remote as f64 / steals as f64
    };
    Observation::new(threads, r.makespan, total_idle)
        .with_remote_fraction(remote_fraction)
        .with_lost(r.cores.iter().filter(|c| c.lost).count())
        .with_rescued(r.cores.iter().map(|c| c.rescued).sum())
        .with_dims(dims.0, dims.1)
}

/// The [`CpuTopology`] of a machine model — socket-major uniform, the
/// layout [`SimConfig`]'s policies already sweep by.
pub fn machine_topology(machine: &MachineConfig) -> CpuTopology {
    CpuTopology::uniform(machine.sockets, machine.cores_per_socket)
}

/// Run `runs` consecutive simulated factorizations of an `m×n` matrix
/// (tile size `b`, layout/queue as given) on `machine`, each under the
/// split the controller currently recommends, feeding every result
/// back. Returns each run's [`SplitChoice`] in order — the last entry
/// is the converged split. Deterministic: same inputs, same trajectory.
#[allow(clippy::too_many_arguments)]
pub fn simulate_adaptation(
    machine: &MachineConfig,
    layout: Layout,
    dims: (usize, usize),
    b: usize,
    queue: QueueDiscipline,
    policy: AdaptivePolicy,
    runs: usize,
) -> Vec<SplitChoice> {
    let topo = machine_topology(machine);
    let mut controller = AdaptiveController::new(policy, &topo, machine.cores());
    let g = TaskGraph::build(dims.0, dims.1, b);
    let mut choices = Vec::with_capacity(runs);
    for _ in 0..runs {
        let choice = controller.plan_choice();
        choices.push(choice);
        let cfg = SimConfig::new(
            machine.clone(),
            layout,
            SchedulerKind::Hybrid {
                dratio: choice.dratio,
            },
        )
        .with_queue(queue)
        .with_steal_order(choice.steal_order);
        let r = run(&g, &cfg);
        controller.observe(&observe_result(&r, dims));
    }
    choices
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::NoiseConfig;

    #[test]
    fn simulated_adaptation_is_deterministic() {
        let machine = MachineConfig::intel_xeon_16(NoiseConfig::off());
        let sweep = || {
            simulate_adaptation(
                &machine,
                Layout::BlockCyclic,
                (1600, 1600),
                100,
                QueueDiscipline::Global,
                AdaptivePolicy::new(42),
                4,
            )
        };
        let a = sweep();
        assert_eq!(a, sweep());
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn a_lost_core_drives_the_split_dynamic() {
        let healthy = MachineConfig::intel_xeon_16(NoiseConfig::off());
        let mut degraded = healthy.clone();
        degraded.lost_core = Some((0, 0)); // core 0 dies before its first task
        let run_on = |m: &MachineConfig| {
            simulate_adaptation(
                m,
                Layout::BlockCyclic,
                (4800, 4800),
                100,
                QueueDiscipline::Global,
                AdaptivePolicy::new(7),
                6,
            )
        };
        let h = run_on(&healthy);
        let d = run_on(&degraded);
        assert!(
            d.last().unwrap().dratio > h.last().unwrap().dratio,
            "losing a core must converge to a larger dynamic share \
             (healthy {}, degraded {})",
            h.last().unwrap().dratio,
            d.last().unwrap().dratio
        );
    }
}
