//! Discrete-event multicore/NUMA machine simulator.
//!
//! The paper's evaluation ran on two real machines — a 16-core Intel Xeon
//! (4 sockets × 4 cores, 85.3 Gflop/s peak) and a 48-core AMD Opteron
//! NUMA box (8 sockets × 6 cores, 539.5 Gflop/s peak). This reproduction
//! runs on whatever host executes the tests, so the machines are rebuilt
//! as *models*: a deterministic discrete-event simulator that executes
//! the real task DAG under the real scheduling policies and prices each
//! task with
//!
//! ```text
//! t(task) = flops / (core_rate · eff(kind, layout, batch))   — compute
//!         + Σ_tiles miss(tile) · bytes · byte_cost(home, socket)  — memory
//!         + dequeue(queue source, contention)                 — scheduler
//!         + OS noise (Poisson excess work, §6's δ)            — noise
//! ```
//!
//! Locality is not hand-waved: every tile has a NUMA *home* (the socket
//! of its block-cyclic owner; page-interleaved for the CM layout), every
//! core has an LRU tile cache, and remote misses cost more than local
//! ones. Static scheduling therefore exhibits cache reuse and NUMA
//! affinity *emergently*, dynamic scheduling migrates data and pays for
//! it, and the hybrid splits the difference — the paper's entire
//! qualitative story falls out of the event loop.
//!
//! Everything is seeded and deterministic; the same
//! [`SimConfig`] always yields the same [`SimResult`].

pub mod adapt;
pub mod cache;
pub mod cost;
pub mod engine;
pub mod machine;
pub mod noise;
pub mod result;

pub use adapt::{machine_topology, observe_result, simulate_adaptation};
pub use engine::{run, SimConfig};
pub use machine::{MachineConfig, NoiseConfig};
pub use result::{CoreStats, SimResult};
