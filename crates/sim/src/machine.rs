//! Machine models: topology, rates, overhead constants, noise.
//!
//! The two presets mirror the paper's testbeds (§5). Constants marked
//! *calibrated* were tuned once so that the simulated Gflop/s land in the
//! same regime as the paper's measurements; EXPERIMENTS.md records the
//! calibration targets. The *relative* behaviour (who wins, where the
//! crossovers are) is what the model is for.

/// OS-noise model: per-core Poisson-arriving excess work, the `δ` of the
/// paper's §6 analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseConfig {
    /// Mean noise events per second per core (Poisson rate). 0 disables.
    pub rate_hz: f64,
    /// Mean duration of one noise event (seconds, exponential).
    pub mean_duration: f64,
    /// RNG seed for the noise processes.
    pub seed: u64,
}

impl NoiseConfig {
    /// No noise at all.
    pub fn off() -> Self {
        Self {
            rate_hz: 0.0,
            mean_duration: 0.0,
            seed: 0,
        }
    }

    /// Light daemon-style noise typical of a general-purpose OS: ~25
    /// interruptions per second of ~0.4 ms each (~1% average load, but
    /// bursty enough to leave Fig 1's idle pockets in static schedules).
    pub fn os_daemons(seed: u64) -> Self {
        Self {
            rate_hz: 25.0,
            mean_duration: 0.4e-3,
            seed,
        }
    }

    /// Expected fraction of core time consumed by noise.
    pub fn average_load(&self) -> f64 {
        self.rate_hz * self.mean_duration
    }
}

/// A multicore NUMA machine model.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Number of sockets (NUMA domains).
    pub sockets: usize,
    /// Cores per socket.
    pub cores_per_socket: usize,
    /// Per-core peak double-precision rate (flop/s).
    pub core_flops: f64,
    /// Seconds to pop the core's own queue.
    pub dequeue_local: f64,
    /// Base seconds to pop the shared global queue.
    pub dequeue_global: f64,
    /// Extra seconds per *other* core on a global pop (lock contention).
    pub dequeue_contention: f64,
    /// Seconds charged per visited victim on a steal attempt.
    pub steal_cost: f64,
    /// Multiplier on `steal_cost` when the victim sits on a different
    /// socket: a remote steal drags the task's working set across the
    /// NUMA interconnect on top of the dequeue itself. Only the
    /// locality-tiered lock-free discipline reports remote steals; flat
    /// stealing is priced at the near rate.
    pub remote_steal_factor: f64,
    /// Seconds per byte to pull data from another socket (calibrated).
    pub remote_byte_cost: f64,
    /// Seconds per byte to refill from the local socket's memory
    /// (calibrated).
    pub local_byte_cost: f64,
    /// Per-core tile-cache capacity, in tiles (~ L2+L3 share).
    pub cache_tiles: usize,
    /// Sustained fraction of nominal peak achievable by the best kernels
    /// on this machine (memory-bandwidth ceiling; calibrated).
    pub eff_scale: f64,
    /// Effective rate (fraction of one core's peak) of the vendor
    /// library's panel factorization, which uses multithreaded BLAS-2
    /// internally and therefore scales with socket memory bandwidth
    /// (calibrated; used only for the GEPP/MKL baseline DAG).
    pub gepp_panel_eff: f64,
    /// OS noise.
    pub noise: NoiseConfig,
    /// Failure injection: make one core run at a fraction of its rate
    /// (`(core, speed)` with `0 < speed <= 1`) — §6's persistent `δ_i`
    /// in its purest form.
    pub slow_core: Option<(usize, f64)>,
    /// Failure injection: lose one core entirely after it has completed
    /// `n` tasks (`(core, n)`). The engine retires the core at its next
    /// completion boundary, rescues its queued static tasks into the
    /// dynamic section ([`calu_sched::Policy::rescue`]) at
    /// [`rescue_task_cost`](MachineConfig::rescue_task_cost) per task,
    /// and never dispatches it again — the simulated twin of the real
    /// executor's worker-loss fault. Requires a policy that can reroute
    /// the lost core's work (hybrid/dynamic/work-stealing); under a
    /// purely static policy the dead core's queue is unreachable and
    /// the engine reports a deadlock.
    pub lost_core: Option<(usize, u64)>,
    /// Seconds charged (as scheduler overhead) per static task rescued
    /// off a lost core — pricing the queue-drain-and-republish walk.
    pub rescue_task_cost: f64,
}

impl MachineConfig {
    /// Total cores.
    pub fn cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Socket of a core.
    #[inline]
    pub fn socket_of(&self, core: usize) -> usize {
        core / self.cores_per_socket
    }

    /// Machine peak in flop/s.
    pub fn peak_flops(&self) -> f64 {
        self.core_flops * self.cores() as f64
    }

    /// The paper's 16-core Intel Xeon EMT64: 4 sockets × 4 cores,
    /// 2.67 GHz, 85.3 Gflop/s peak, 8 MB shared L3 per socket. Coherence
    /// misses are cheap ("on the Intel machine, communication compared to
    /// computation is negligible", §6), so remote traffic costs little.
    pub fn intel_xeon_16(noise: NoiseConfig) -> Self {
        Self {
            name: "intel-xeon-16",
            sockets: 4,
            cores_per_socket: 4,
            core_flops: 85.3e9 / 16.0,
            dequeue_local: 0.2e-6,
            dequeue_global: 2.5e-6,
            dequeue_contention: 0.15e-6,
            steal_cost: 0.5e-6,
            remote_steal_factor: 1.5,  // cheap coherence fabric (§6)
            remote_byte_cost: 0.12e-9, // calibrated: low NUMA penalty
            local_byte_cost: 0.015e-9,
            cache_tiles: 20,
            eff_scale: 1.0,
            gepp_panel_eff: 0.25,
            noise,
            slow_core: None,
            lost_core: None,
            rescue_task_cost: 1.0e-6,
        }
    }

    /// The paper's 48-core AMD Opteron: 8 sockets × 6 cores, 2.1 GHz,
    /// 539.5 Gflop/s peak, 5 MB L3 per socket. Remote memory is expensive
    /// ("on NUMA machines where remote memory access is costly", §1) and
    /// the global queue contends across 48 cores.
    pub fn amd_opteron_48(noise: NoiseConfig) -> Self {
        Self {
            name: "amd-opteron-48",
            sockets: 8,
            cores_per_socket: 6,
            core_flops: 539.5e9 / 48.0,
            dequeue_local: 0.2e-6,
            dequeue_global: 4.0e-6,
            dequeue_contention: 2.0e-6,
            steal_cost: 0.8e-6,
            remote_steal_factor: 4.0, // HyperTransport hops dominate
            remote_byte_cost: 0.8e-9, // calibrated: heavy NUMA penalty
            local_byte_cost: 0.04e-9,
            cache_tiles: 10,
            eff_scale: 0.80, // Opteron sustains ~80% of nominal peak
            gepp_panel_eff: 0.55,
            noise,
            slow_core: None,
            lost_core: None,
            rescue_task_cost: 1.5e-6,
        }
    }

    /// Rate multiplier of a core (1.0 unless it is the injected slow
    /// core).
    pub fn core_speed(&self, core: usize) -> f64 {
        match self.slow_core {
            Some((c, speed)) if c == core => {
                assert!(speed > 0.0 && speed <= 1.0, "slow-core speed in (0,1]");
                speed
            }
            _ => 1.0,
        }
    }

    /// Same AMD model restricted to `cores` cores (the paper's 24-core
    /// runs use half the machine).
    pub fn amd_opteron_with_cores(cores: usize, noise: NoiseConfig) -> Self {
        assert!(
            cores.is_multiple_of(6) && cores <= 48,
            "AMD model scales by whole sockets"
        );
        Self {
            sockets: cores / 6,
            ..Self::amd_opteron_48(noise)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_specs() {
        let intel = MachineConfig::intel_xeon_16(NoiseConfig::off());
        assert_eq!(intel.cores(), 16);
        assert!((intel.peak_flops() - 85.3e9).abs() < 1e6);
        let amd = MachineConfig::amd_opteron_48(NoiseConfig::off());
        assert_eq!(amd.cores(), 48);
        assert!((amd.peak_flops() - 539.5e9).abs() < 1e6);
        assert!(
            amd.remote_byte_cost > intel.remote_byte_cost * 3.0,
            "AMD NUMA penalty dominates"
        );
        assert!(
            amd.remote_steal_factor > intel.remote_steal_factor,
            "remote steals hurt more where NUMA is expensive"
        );
        assert!(intel.remote_steal_factor >= 1.0);
    }

    #[test]
    fn socket_mapping() {
        let amd = MachineConfig::amd_opteron_48(NoiseConfig::off());
        assert_eq!(amd.socket_of(0), 0);
        assert_eq!(amd.socket_of(5), 0);
        assert_eq!(amd.socket_of(6), 1);
        assert_eq!(amd.socket_of(47), 7);
    }

    #[test]
    fn partial_amd_machine() {
        let half = MachineConfig::amd_opteron_with_cores(24, NoiseConfig::off());
        assert_eq!(half.cores(), 24);
        assert_eq!(half.sockets, 4);
        assert!((half.peak_flops() - 539.5e9 / 2.0).abs() < 1e6);
    }

    #[test]
    #[should_panic(expected = "whole sockets")]
    fn partial_amd_validates() {
        MachineConfig::amd_opteron_with_cores(20, NoiseConfig::off());
    }

    #[test]
    fn noise_load() {
        assert_eq!(NoiseConfig::off().average_load(), 0.0);
        let n = NoiseConfig::os_daemons(1);
        assert!(n.average_load() > 0.005 && n.average_load() < 0.05);
    }
}
