//! Per-core OS-noise processes: Poisson-arriving excess work (§6's δ).

use crate::machine::NoiseConfig;
use calu_rand::Rng;

/// A single core's noise process. Events arrive with exponential
/// inter-arrival times (rate `rate_hz`) and exponential durations (mean
/// `mean_duration`); while a core is idle, pending noise is absorbed
/// invisibly (it delays nothing).
#[derive(Debug, Clone)]
pub struct NoiseProcess {
    rng: Rng,
    rate: f64,
    mean_dur: f64,
    next_event: f64,
}

impl NoiseProcess {
    /// Create the process for one core.
    pub fn new(cfg: &NoiseConfig, core: usize) -> Self {
        let mut rng = Rng::seed_from_u64(
            cfg.seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(core as u64),
        );
        let rate = cfg.rate_hz;
        let mean_dur = cfg.mean_duration;
        let next_event = if rate > 0.0 {
            exp_sample(&mut rng, 1.0 / rate)
        } else {
            f64::INFINITY
        };
        Self {
            rng,
            rate,
            mean_dur,
            next_event,
        }
    }

    /// A noiseless process.
    pub fn off() -> Self {
        Self {
            rng: Rng::seed_from_u64(0),
            rate: 0.0,
            mean_dur: 0.0,
            next_event: f64::INFINITY,
        }
    }

    /// Stretch a task that starts at `start` with busy duration `dur` by
    /// the noise events preempting it. Returns the task's actual end time
    /// and the noise intervals `(start, duration)` that interrupted it.
    pub fn stretch(&mut self, start: f64, dur: f64, noise_out: &mut Vec<(f64, f64)>) -> f64 {
        noise_out.clear();
        if self.rate == 0.0 {
            return start + dur;
        }
        // noise that would have fired while the core idled is absorbed
        while self.next_event < start {
            let d = exp_sample(&mut self.rng, self.mean_dur);
            self.next_event += d + exp_sample(&mut self.rng, 1.0 / self.rate);
        }
        let mut end = start + dur;
        while self.next_event < end {
            let at = self.next_event;
            let d = exp_sample(&mut self.rng, self.mean_dur);
            noise_out.push((at, d));
            end += d;
            self.next_event = at + d + exp_sample(&mut self.rng, 1.0 / self.rate);
        }
        end
    }
}

fn exp_sample(rng: &mut Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -u.ln() * mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_noise_passthrough() {
        let mut p = NoiseProcess::off();
        let mut spans = vec![];
        assert_eq!(p.stretch(1.0, 2.0, &mut spans), 3.0);
        assert!(spans.is_empty());
    }

    #[test]
    fn noise_stretches_tasks() {
        let cfg = NoiseConfig {
            rate_hz: 1000.0,
            mean_duration: 1e-3,
            seed: 42,
        };
        let mut p = NoiseProcess::new(&cfg, 0);
        let mut spans = vec![];
        let end = p.stretch(0.0, 1.0, &mut spans);
        assert!(end > 1.0, "heavy noise must extend the task");
        assert!(!spans.is_empty());
        // all noise intervals lie within the stretched execution
        for (at, d) in &spans {
            assert!(*at >= 0.0 && at + d <= end + 1e-9);
        }
    }

    #[test]
    fn average_load_roughly_matches_config() {
        let cfg = NoiseConfig {
            rate_hz: 100.0,
            mean_duration: 1e-3,
            seed: 7,
        }; // 10% load
        let mut p = NoiseProcess::new(&cfg, 3);
        let mut spans = vec![];
        let end = p.stretch(0.0, 100.0, &mut spans);
        let noise_total: f64 = spans.iter().map(|(_, d)| d).sum();
        assert!((end - 100.0 - noise_total).abs() < 1e-6);
        let load = noise_total / 100.0;
        assert!((load - 0.1).abs() < 0.05, "measured load {load}");
    }

    #[test]
    fn idle_noise_is_absorbed() {
        let cfg = NoiseConfig {
            rate_hz: 1000.0,
            mean_duration: 1e-4,
            seed: 3,
        };
        let mut p = NoiseProcess::new(&cfg, 0);
        let mut spans = vec![];
        // long idle period before the task: pending events must not pile up
        let end = p.stretch(1000.0, 0.001, &mut spans);
        assert!(
            end - 1000.001 < 0.05,
            "idle noise must not delay future work"
        );
    }

    #[test]
    fn deterministic_per_seed_and_core() {
        let cfg = NoiseConfig {
            rate_hz: 500.0,
            mean_duration: 1e-3,
            seed: 9,
        };
        let run = |core| {
            let mut p = NoiseProcess::new(&cfg, core);
            let mut spans = vec![];
            p.stretch(0.0, 5.0, &mut spans)
        };
        assert_eq!(run(0), run(0));
        assert_ne!(run(0), run(1), "cores get independent processes");
    }
}
