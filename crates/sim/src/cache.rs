//! Per-core tile cache: a small LRU over tile ids.
//!
//! This is what makes locality *emergent* in the simulator: a core that
//! keeps operating on the same tiles (static scheduling) hits its cache
//! and pays nothing for data; a core that executes whatever the global
//! queue hands it (dynamic scheduling) misses constantly and pays the
//! local/remote byte costs — "dynamic scheduling provides no guarantee
//! for threads to reuse data resident in their local cache" (§1).

/// LRU set of tile keys with fixed capacity.
#[derive(Debug, Clone)]
pub struct TileCache {
    /// Most-recent at the back.
    entries: Vec<u64>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl TileCache {
    /// Create a cache holding at most `capacity` tiles.
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Touch a tile: returns `true` on hit. On miss the tile is inserted,
    /// evicting the least recently used entry if full.
    pub fn touch(&mut self, key: u64) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        if let Some(pos) = self.entries.iter().position(|&e| e == key) {
            // move to back (most recent)
            let k = self.entries.remove(pos);
            self.entries.push(k);
            self.hits += 1;
            true
        } else {
            if self.entries.len() == self.capacity {
                self.entries.remove(0);
            }
            self.entries.push(key);
            self.misses += 1;
            false
        }
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Pack a tile coordinate into a cache key.
#[inline]
pub fn tile_key(ti: usize, tj: usize) -> u64 {
    ((ti as u64) << 32) | tj as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut c = TileCache::new(4);
        assert!(!c.touch(tile_key(0, 0)));
        assert!(c.touch(tile_key(0, 0)));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = TileCache::new(2);
        c.touch(1);
        c.touch(2);
        c.touch(1); // 1 is now most recent
        c.touch(3); // evicts 2
        assert!(c.touch(1), "1 must survive");
        assert!(!c.touch(2), "2 was evicted");
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = TileCache::new(0);
        assert!(!c.touch(5));
        assert!(!c.touch(5));
        assert_eq!(c.hits(), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn distinct_coordinates_distinct_keys() {
        assert_ne!(tile_key(1, 2), tile_key(2, 1));
        assert_ne!(tile_key(0, 7), tile_key(7, 0));
    }

    #[test]
    fn capacity_respected() {
        let mut c = TileCache::new(3);
        for k in 0..10 {
            c.touch(k);
        }
        assert_eq!(c.len(), 3);
    }
}
