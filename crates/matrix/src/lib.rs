//! Dense-matrix substrate for the CALU reproduction.
//!
//! This crate provides the storage formats and helpers that the paper's
//! algorithms operate on:
//!
//! * [`DenseMatrix`] — a classic column-major (LAPACK-style) matrix,
//! * [`BclMatrix`] — the *block cyclic layout* of §4.1: the matrix is
//!   distributed over a 2D grid of threads and each thread's submatrix is
//!   stored contiguously in column-major order,
//! * [`TlbMatrix`] — the *two-level block layout* of §4.2: on top of the
//!   block-cyclic distribution, each `b × b` tile is stored contiguously,
//! * [`ProcessGrid`] — the 2D block-cyclic ownership map,
//! * matrix generators ([`gen`]) and norms ([`norms`]) used by tests and
//!   benchmarks.
//!
//! All three layouts implement [`TileStorage`], the tile-level access
//! interface consumed by the factorization kernels, so the same CALU code
//! runs unmodified on every layout in the paper's design space (Table 1).

pub mod dense;
pub mod error;
pub mod gen;
pub mod grid;
pub mod layout;
pub mod norms;
pub mod ops;
pub mod perm;
pub mod storage;
pub mod tile;

pub use dense::DenseMatrix;
pub use error::MatrixError;
pub use grid::ProcessGrid;
pub use layout::Layout;
pub use perm::RowPerm;
pub use storage::{BclMatrix, CmTiles, TileStorage, TlbMatrix};
pub use tile::{TileDims, Tiling};
