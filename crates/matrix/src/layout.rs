//! The data-layout design space of the paper (§4, Table 1).

use std::fmt;
use std::str::FromStr;

/// The three data layouts evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Classic LAPACK column-major storage (`CM` in the figures).
    ColumnMajor,
    /// Block cyclic layout (`BCL`, §4.1): each thread's submatrix is
    /// contiguous and column-major, enabling grouped BLAS-3 calls.
    BlockCyclic,
    /// Two-level block layout (`2l-BL`, §4.2): block-cyclic at the first
    /// level, each `b × b` tile contiguous at the second level.
    TwoLevelBlock,
}

impl Layout {
    /// All layouts, in the order Table 1 lists them.
    pub const ALL: [Layout; 3] = [
        Layout::BlockCyclic,
        Layout::TwoLevelBlock,
        Layout::ColumnMajor,
    ];

    /// Short name as used in the paper's figures.
    pub fn short_name(&self) -> &'static str {
        match self {
            Layout::ColumnMajor => "CM",
            Layout::BlockCyclic => "BCL",
            Layout::TwoLevelBlock => "2l-BL",
        }
    }

    /// Whether the layout stores each thread's data contiguously, which is
    /// what enables grouping several tiles into one BLAS-3 call (§3, §4.1).
    pub fn supports_grouping(&self) -> bool {
        matches!(self, Layout::BlockCyclic)
    }

    /// Whether each tile is contiguous in memory (cache-resident tiles,
    /// §4.2).
    pub fn tile_contiguous(&self) -> bool {
        matches!(self, Layout::TwoLevelBlock)
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl FromStr for Layout {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "cm" | "column-major" | "columnmajor" => Ok(Layout::ColumnMajor),
            "bcl" | "block-cyclic" | "blockcyclic" => Ok(Layout::BlockCyclic),
            "2l-bl" | "2lbl" | "two-level" | "twolevelblock" => Ok(Layout::TwoLevelBlock),
            other => Err(format!(
                "unknown layout '{other}' (expected CM, BCL or 2l-BL)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Layout::ColumnMajor.to_string(), "CM");
        assert_eq!(Layout::BlockCyclic.to_string(), "BCL");
        assert_eq!(Layout::TwoLevelBlock.to_string(), "2l-BL");
    }

    #[test]
    fn parse_roundtrip() {
        for l in Layout::ALL {
            assert_eq!(l.short_name().parse::<Layout>().unwrap(), l);
        }
        assert!("nope".parse::<Layout>().is_err());
    }

    #[test]
    fn capability_flags() {
        assert!(Layout::BlockCyclic.supports_grouping());
        assert!(!Layout::TwoLevelBlock.supports_grouping());
        assert!(Layout::TwoLevelBlock.tile_contiguous());
        assert!(!Layout::ColumnMajor.tile_contiguous());
    }
}
