//! Error type shared by the matrix substrate.

use std::fmt;

/// Errors raised by matrix construction and layout conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Dimensions do not match the operation (e.g. data length vs. shape).
    DimensionMismatch {
        /// Human-readable description of what mismatched.
        what: &'static str,
        /// Expected value.
        expected: usize,
        /// Value that was supplied.
        got: usize,
    },
    /// A block size of zero (or larger than allowed) was supplied.
    InvalidBlockSize(usize),
    /// The process grid is empty or inconsistent with the thread count.
    InvalidGrid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// An index was out of range.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Exclusive bound.
        bound: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch in {what}: expected {expected}, got {got}"
            ),
            MatrixError::InvalidBlockSize(b) => write!(f, "invalid block size {b}"),
            MatrixError::InvalidGrid { rows, cols } => {
                write!(f, "invalid process grid {rows}x{cols}")
            }
            MatrixError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds (< {bound})")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MatrixError::DimensionMismatch {
            what: "data length",
            expected: 12,
            got: 10,
        };
        assert!(e.to_string().contains("data length"));
        assert!(e.to_string().contains("12"));
        let e = MatrixError::InvalidBlockSize(0);
        assert!(e.to_string().contains('0'));
        let e = MatrixError::InvalidGrid { rows: 0, cols: 3 };
        assert!(e.to_string().contains("0x3"));
        let e = MatrixError::IndexOutOfBounds { index: 5, bound: 5 };
        assert!(e.to_string().contains('5'));
    }
}
