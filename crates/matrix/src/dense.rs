//! Column-major dense matrix, the LAPACK-compatible baseline storage.

use crate::error::MatrixError;

/// A dense `rows × cols` matrix of `f64` stored in column-major order,
/// exactly like LAPACK's `CM` layout in the paper (§4).
///
/// Element `(i, j)` lives at `data[i + j * rows]`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_r = self.rows.min(8);
        let show_c = self.cols.min(8);
        for i in 0..show_r {
            write!(f, "  ")?;
            for j in 0..show_c {
                write!(f, "{:>10.4} ", self.get(i, j))?;
            }
            if show_c < self.cols {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if show_r < self.rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl DenseMatrix {
    /// Create a zero-filled matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create an identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for j in 0..cols {
            for i in 0..rows {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap an existing column-major buffer.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                what: "column-major data length",
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Build from row-major data (convenience for tests and examples).
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Result<Self, MatrixError> {
        if data.len() != rows * cols {
            return Err(MatrixError::DimensionMismatch {
                what: "row-major data length",
                expected: rows * cols,
                got: data.len(),
            });
        }
        Ok(Self::from_fn(rows, cols, |i, j| data[i * cols + j]))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Leading dimension of the storage (= number of rows).
    #[inline]
    pub fn ld(&self) -> usize {
        self.rows
    }

    /// Read element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows]
    }

    /// Write element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.rows] = v;
    }

    /// Borrow the raw column-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw column-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume the matrix and return its buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrow column `j` as a contiguous slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Copy the submatrix with top-left corner `(r0, c0)` and shape
    /// `(nr, nc)` into a new matrix.
    pub fn submatrix(&self, r0: usize, c0: usize, nr: usize, nc: usize) -> DenseMatrix {
        assert!(
            r0 + nr <= self.rows && c0 + nc <= self.cols,
            "submatrix out of range"
        );
        DenseMatrix::from_fn(nr, nc, |i, j| self.get(r0 + i, c0 + j))
    }

    /// Overwrite the submatrix at `(r0, c0)` with the contents of `src`.
    pub fn set_submatrix(&mut self, r0: usize, c0: usize, src: &DenseMatrix) {
        assert!(
            r0 + src.rows <= self.rows && c0 + src.cols <= self.cols,
            "set_submatrix out of range"
        );
        for j in 0..src.cols {
            for i in 0..src.rows {
                self.set(r0 + i, c0 + j, src.get(i, j));
            }
        }
    }

    /// Return the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Swap rows `r1` and `r2` across all columns.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        assert!(r1 < self.rows && r2 < self.rows);
        for j in 0..self.cols {
            let base = j * self.rows;
            self.data.swap(base + r1, base + r2);
        }
    }

    /// Swap rows `r1` and `r2` but only within columns `[c0, c1)`.
    pub fn swap_rows_in_cols(&mut self, r1: usize, r2: usize, c0: usize, c1: usize) {
        if r1 == r2 {
            return;
        }
        assert!(r1 < self.rows && r2 < self.rows && c1 <= self.cols && c0 <= c1);
        for j in c0..c1 {
            let base = j * self.rows;
            self.data.swap(base + r1, base + r2);
        }
    }

    /// Extract the unit-lower-triangular factor from a factorized matrix
    /// (strictly lower part of `self` with ones on the diagonal), shaped
    /// `rows × min(rows, cols)`.
    pub fn lower_unit(&self) -> DenseMatrix {
        let k = self.rows.min(self.cols);
        DenseMatrix::from_fn(self.rows, k, |i, j| {
            if i > j {
                self.get(i, j)
            } else if i == j {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Extract the upper-triangular factor from a factorized matrix,
    /// shaped `min(rows, cols) × cols`.
    pub fn upper(&self) -> DenseMatrix {
        let k = self.rows.min(self.cols);
        DenseMatrix::from_fn(
            k,
            self.cols,
            |i, j| if i <= j { self.get(i, j) } else { 0.0 },
        )
    }

    /// Maximum absolute element, 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// True if every corresponding element differs by at most `tol`.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(3, 4);
        assert_eq!(z.rows(), 3);
        assert_eq!(z.cols(), 4);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 0), 0.0);
        assert_eq!(i.get(2, 2), 1.0);
    }

    #[test]
    fn column_major_indexing() {
        let m = DenseMatrix::from_col_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn from_rows_matches_row_major_reading() {
        let m = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.get(1, 2), 6.0);
    }

    #[test]
    fn bad_length_rejected() {
        assert!(DenseMatrix::from_col_major(2, 3, vec![0.0; 5]).is_err());
        assert!(DenseMatrix::from_rows(2, 3, &[0.0; 7]).is_err());
    }

    #[test]
    fn submatrix_roundtrip() {
        let m = DenseMatrix::from_fn(5, 5, |i, j| (i * 10 + j) as f64);
        let s = m.submatrix(1, 2, 3, 2);
        assert_eq!(s.get(0, 0), 12.0);
        assert_eq!(s.get(2, 1), 33.0);
        let mut t = DenseMatrix::zeros(5, 5);
        t.set_submatrix(1, 2, &s);
        assert_eq!(t.get(1, 2), 12.0);
        assert_eq!(t.get(3, 3), 33.0);
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    fn transpose_is_involutive() {
        let m = DenseMatrix::from_fn(3, 5, |i, j| (i + 7 * j) as f64);
        assert!(m.transpose().transpose().approx_eq(&m, 0.0));
        assert_eq!(m.transpose().get(4, 2), m.get(2, 4));
    }

    #[test]
    fn swap_rows_full_and_partial() {
        let mut m = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        m.swap_rows(0, 2);
        assert_eq!(m.get(0, 0), 6.0);
        assert_eq!(m.get(2, 1), 1.0);
        let mut m2 = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        m2.swap_rows_in_cols(0, 2, 1, 3);
        // column 0 untouched
        assert_eq!(m2.get(0, 0), 0.0);
        assert_eq!(m2.get(2, 0), 6.0);
        // columns 1..3 swapped
        assert_eq!(m2.get(0, 1), 7.0);
        assert_eq!(m2.get(2, 2), 2.0);
    }

    #[test]
    fn lu_factor_extraction() {
        let m =
            DenseMatrix::from_rows(3, 3, &[2.0, 1.0, 1.0, 4.0, 3.0, 3.0, 8.0, 7.0, 9.0]).unwrap();
        let l = m.lower_unit();
        assert_eq!(l.get(0, 0), 1.0);
        assert_eq!(l.get(1, 0), 4.0);
        assert_eq!(l.get(0, 1), 0.0);
        let u = m.upper();
        assert_eq!(u.get(0, 0), 2.0);
        assert_eq!(u.get(1, 0), 0.0);
        assert_eq!(u.get(1, 2), 3.0);
    }

    #[test]
    fn rectangular_factor_shapes() {
        let tall = DenseMatrix::zeros(5, 3);
        assert_eq!(tall.lower_unit().rows(), 5);
        assert_eq!(tall.lower_unit().cols(), 3);
        assert_eq!(tall.upper().rows(), 3);
        assert_eq!(tall.upper().cols(), 3);
        let wide = DenseMatrix::zeros(3, 5);
        assert_eq!(wide.lower_unit().cols(), 3);
        assert_eq!(wide.upper().rows(), 3);
        assert_eq!(wide.upper().cols(), 5);
    }

    #[test]
    fn max_abs_and_approx_eq() {
        let m = DenseMatrix::from_rows(2, 2, &[1.0, -5.0, 0.25, 3.0]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
        let mut m2 = m.clone();
        m2.set(0, 0, 1.0 + 1e-12);
        assert!(m.approx_eq(&m2, 1e-10));
        assert!(!m.approx_eq(&m2, 1e-14));
    }
}
