//! Tile-addressable storages: the common [`TileStorage`] interface and its
//! three implementations (CM, BCL, 2l-BL).
//!
//! Every storage keeps its elements in **one contiguous buffer**; a tile is
//! identified by `(offset, ld)` into that buffer. This uniformity is what
//! lets the parallel executor hand out raw per-tile pointers while the DAG
//! guarantees disjoint access.

use crate::dense::DenseMatrix;
use crate::grid::ProcessGrid;
use crate::layout::Layout;
use crate::tile::Tiling;

/// Immutable view of one tile: `rows × cols` stored column-major with
/// leading dimension `ld` inside `data` (element `(i,j)` at `data[i + j*ld]`).
#[derive(Debug)]
pub struct TileRef<'a> {
    /// Backing slice, starting at the tile's first element.
    pub data: &'a [f64],
    /// Leading dimension.
    pub ld: usize,
    /// Tile rows.
    pub rows: usize,
    /// Tile columns.
    pub cols: usize,
}

impl TileRef<'_> {
    /// Read element `(i, j)` of the tile.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    /// Copy the tile into a fresh dense matrix.
    pub fn to_dense(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.rows, self.cols, |i, j| self.get(i, j))
    }
}

/// Mutable view of one tile (same addressing as [`TileRef`]).
#[derive(Debug)]
pub struct TileRefMut<'a> {
    /// Backing slice, starting at the tile's first element.
    pub data: &'a mut [f64],
    /// Leading dimension.
    pub ld: usize,
    /// Tile rows.
    pub rows: usize,
    /// Tile columns.
    pub cols: usize,
}

impl TileRefMut<'_> {
    /// Read element `(i, j)` of the tile.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld]
    }

    /// Write element `(i, j)` of the tile.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i + j * self.ld] = v;
    }
}

/// Location of a tile inside a storage's contiguous buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileLoc {
    /// Index of the tile's `(0,0)` element in the buffer.
    pub offset: usize,
    /// Leading dimension of the tile's column stride.
    pub ld: usize,
    /// Tile rows.
    pub rows: usize,
    /// Tile cols.
    pub cols: usize,
}

/// A matrix cut into `b × b` tiles, each addressable as a column-major
/// sub-block of one contiguous buffer.
pub trait TileStorage {
    /// The tiling geometry (m, n, b).
    fn tiling(&self) -> Tiling;

    /// Which of the paper's layouts this storage implements.
    fn layout(&self) -> Layout;

    /// The ownership grid used to place tiles (CM reports a 1×1 grid).
    fn grid(&self) -> ProcessGrid;

    /// Buffer location of tile `(ti, tj)`.
    fn tile_loc(&self, ti: usize, tj: usize) -> TileLoc;

    /// The single backing buffer.
    fn buffer(&self) -> &[f64];

    /// Mutable access to the backing buffer.
    fn buffer_mut(&mut self) -> &mut [f64];

    /// Immutable tile view.
    fn tile(&self, ti: usize, tj: usize) -> TileRef<'_> {
        let loc = self.tile_loc(ti, tj);
        let end = loc.offset + tile_span(loc);
        TileRef {
            data: &self.buffer()[loc.offset..end],
            ld: loc.ld,
            rows: loc.rows,
            cols: loc.cols,
        }
    }

    /// Mutable tile view.
    fn tile_mut(&mut self, ti: usize, tj: usize) -> TileRefMut<'_> {
        let loc = self.tile_loc(ti, tj);
        let end = loc.offset + tile_span(loc);
        TileRefMut {
            data: &mut self.buffer_mut()[loc.offset..end],
            ld: loc.ld,
            rows: loc.rows,
            cols: loc.cols,
        }
    }

    /// Read one element through the tile map (slow path, for tests/IO).
    fn get(&self, i: usize, j: usize) -> f64 {
        let t = self.tiling();
        let tile = self.tile(t.tile_of_row(i), t.tile_of_col(j));
        tile.get(t.row_in_tile(i), j % t.b)
    }

    /// Write one element through the tile map (slow path, for tests/IO).
    fn set(&mut self, i: usize, j: usize, v: f64) {
        let t = self.tiling();
        let (ti, tj) = (t.tile_of_row(i), t.tile_of_col(j));
        let (ri, rj) = (t.row_in_tile(i), j % t.b);
        let mut tile = self.tile_mut(ti, tj);
        tile.set(ri, rj, v);
    }

    /// Gather the whole matrix into a fresh column-major dense matrix.
    fn to_dense(&self) -> DenseMatrix {
        let t = self.tiling();
        let mut out = DenseMatrix::zeros(t.m, t.n);
        for (ti, tj) in t.tiles() {
            let tile = self.tile(ti, tj);
            let (r0, c0) = (t.row_start(ti), t.col_start(tj));
            for j in 0..tile.cols {
                for i in 0..tile.rows {
                    out.set(r0 + i, c0 + j, tile.get(i, j));
                }
            }
        }
        out
    }

    /// Scatter a dense matrix into this storage (shapes must match).
    fn load_dense(&mut self, a: &DenseMatrix) {
        let t = self.tiling();
        assert_eq!(
            (a.rows(), a.cols()),
            (t.m, t.n),
            "load_dense shape mismatch"
        );
        for (ti, tj) in t.tiles() {
            let (r0, c0) = (t.row_start(ti), t.col_start(tj));
            let mut tile = self.tile_mut(ti, tj);
            for j in 0..tile.cols {
                for i in 0..tile.rows {
                    tile.set(i, j, a.get(r0 + i, c0 + j));
                }
            }
        }
    }
}

/// Number of buffer elements spanned by a tile (from its offset to one past
/// its last element).
#[inline]
fn tile_span(loc: TileLoc) -> usize {
    if loc.rows == 0 || loc.cols == 0 {
        0
    } else {
        (loc.cols - 1) * loc.ld + loc.rows
    }
}

// ---------------------------------------------------------------------------
// Column-major storage
// ---------------------------------------------------------------------------

/// Column-major dense storage with tile addressing: the `CM` layout.
#[derive(Debug, Clone)]
pub struct CmTiles {
    tiling: Tiling,
    data: Vec<f64>,
}

impl CmTiles {
    /// Zero-initialized CM storage.
    pub fn zeros(m: usize, n: usize, b: usize) -> Self {
        Self {
            tiling: Tiling::new(m, n, b),
            data: vec![0.0; m * n],
        }
    }

    /// Build from a dense matrix.
    pub fn from_dense(a: &DenseMatrix, b: usize) -> Self {
        Self {
            tiling: Tiling::new(a.rows(), a.cols(), b),
            data: a.as_slice().to_vec(),
        }
    }
}

impl TileStorage for CmTiles {
    fn tiling(&self) -> Tiling {
        self.tiling
    }

    fn layout(&self) -> Layout {
        Layout::ColumnMajor
    }

    fn grid(&self) -> ProcessGrid {
        ProcessGrid::new(1, 1).expect("1x1 grid")
    }

    fn tile_loc(&self, ti: usize, tj: usize) -> TileLoc {
        let t = self.tiling;
        let d = t.tile_dims(ti, tj);
        TileLoc {
            offset: t.col_start(tj) * t.m + t.row_start(ti),
            ld: t.m,
            rows: d.rows,
            cols: d.cols,
        }
    }

    fn buffer(&self) -> &[f64] {
        &self.data
    }

    fn buffer_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

// ---------------------------------------------------------------------------
// Block cyclic layout
// ---------------------------------------------------------------------------

/// The block cyclic layout of §4.1.
///
/// Tiles are distributed block-cyclically over a `pr × pc` thread grid and
/// each thread's submatrix is stored contiguously in column-major order
/// (one region of the shared buffer per thread). Within a thread's region,
/// tiles that are vertically adjacent in the *local* submatrix share
/// columns, so a thread can run one BLAS-3 call on several of its tiles at
/// once — the grouping optimization of §3.
#[derive(Debug, Clone)]
pub struct BclMatrix {
    tiling: Tiling,
    grid: ProcessGrid,
    /// Region start of each thread's local submatrix in `data`.
    region_start: Vec<usize>,
    /// Local leading dimension (local row count) per thread.
    local_ld: Vec<usize>,
    data: Vec<f64>,
}

impl BclMatrix {
    /// Zero-initialized BCL storage over `grid`.
    pub fn zeros(m: usize, n: usize, b: usize, grid: ProcessGrid) -> Self {
        let tiling = Tiling::new(m, n, b);
        let tr = tiling.tile_rows();
        let tc = tiling.tile_cols();
        let p = grid.size();
        let mut region_start = vec![0usize; p + 1];
        let mut local_ld = vec![0usize; p];
        for t in 0..p {
            let (r, c) = grid.coords_of(t);
            let rows: usize = grid
                .owned_tile_rows(tr, r)
                .map(|ti| tiling.tile_row_count(ti))
                .sum();
            let cols: usize = grid
                .owned_tile_cols(tc, c)
                .map(|tj| tiling.tile_col_count(tj))
                .sum();
            local_ld[t] = rows;
            region_start[t + 1] = region_start[t] + rows * cols;
        }
        let total = region_start[p];
        Self {
            tiling,
            grid,
            region_start,
            local_ld,
            data: vec![0.0; total],
        }
    }

    /// Build from a dense matrix.
    pub fn from_dense(a: &DenseMatrix, b: usize, grid: ProcessGrid) -> Self {
        let mut s = Self::zeros(a.rows(), a.cols(), b, grid);
        s.load_dense(a);
        s
    }

    /// The contiguous local region of thread `t` (for locality inspection
    /// and the grouped-update fast path).
    pub fn region(&self, t: usize) -> &[f64] {
        &self.data[self.region_start[t]..self.region_start[t + 1]]
    }

    /// Local leading dimension of thread `t`'s submatrix.
    pub fn region_ld(&self, t: usize) -> usize {
        self.local_ld[t]
    }
}

impl TileStorage for BclMatrix {
    fn tiling(&self) -> Tiling {
        self.tiling
    }

    fn layout(&self) -> Layout {
        Layout::BlockCyclic
    }

    fn grid(&self) -> ProcessGrid {
        self.grid
    }

    fn tile_loc(&self, ti: usize, tj: usize) -> TileLoc {
        let t = self.tiling;
        let d = t.tile_dims(ti, tj);
        let owner = self.grid.owner(ti, tj);
        let li = self.grid.local_tile_row(ti);
        let lj = self.grid.local_tile_col(tj);
        // Owned tile rows/cols before the ragged last one are always full
        // `b`, so local offsets are simply li*b, lj*b.
        let ld = self.local_ld[owner];
        TileLoc {
            offset: self.region_start[owner] + lj * t.b * ld + li * t.b,
            ld,
            rows: d.rows,
            cols: d.cols,
        }
    }

    fn buffer(&self) -> &[f64] {
        &self.data
    }

    fn buffer_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

// ---------------------------------------------------------------------------
// Two-level block layout
// ---------------------------------------------------------------------------

/// The two-level block layout of §4.2.
///
/// First level: tiles are distributed block-cyclically over the thread
/// grid, like [`BclMatrix`]. Second level: each `b × b` tile is stored
/// contiguously (ld = tile rows), so a tile fits in cache and any kernel on
/// it runs without extra memory transfers. The price (noted in the paper)
/// is that tiles can no longer be grouped into larger BLAS-3 calls.
#[derive(Debug, Clone)]
pub struct TlbMatrix {
    tiling: Tiling,
    grid: ProcessGrid,
    /// offset of each tile (row-major over (ti,tj)) in `data`.
    tile_offset: Vec<usize>,
    data: Vec<f64>,
}

impl TlbMatrix {
    /// Zero-initialized 2l-BL storage over `grid`.
    pub fn zeros(m: usize, n: usize, b: usize, grid: ProcessGrid) -> Self {
        let tiling = Tiling::new(m, n, b);
        let tr = tiling.tile_rows();
        let tc = tiling.tile_cols();
        // Lay the tiles out thread by thread (so each thread's tiles are
        // clustered in memory, mirroring the first-level distribution),
        // then in local column-major order.
        let mut tile_offset = vec![0usize; tr * tc];
        let mut cursor = 0usize;
        for t in 0..grid.size() {
            let (r, c) = grid.coords_of(t);
            for tj in grid.owned_tile_cols(tc, c) {
                for ti in grid.owned_tile_rows(tr, r) {
                    let d = tiling.tile_dims(ti, tj);
                    tile_offset[ti * tc + tj] = cursor;
                    cursor += d.rows * d.cols;
                }
            }
        }
        Self {
            tiling,
            grid,
            tile_offset,
            data: vec![0.0; cursor],
        }
    }

    /// Build from a dense matrix.
    pub fn from_dense(a: &DenseMatrix, b: usize, grid: ProcessGrid) -> Self {
        let mut s = Self::zeros(a.rows(), a.cols(), b, grid);
        s.load_dense(a);
        s
    }
}

impl TileStorage for TlbMatrix {
    fn tiling(&self) -> Tiling {
        self.tiling
    }

    fn layout(&self) -> Layout {
        Layout::TwoLevelBlock
    }

    fn grid(&self) -> ProcessGrid {
        self.grid
    }

    fn tile_loc(&self, ti: usize, tj: usize) -> TileLoc {
        let t = self.tiling;
        let d = t.tile_dims(ti, tj);
        TileLoc {
            offset: self.tile_offset[ti * t.tile_cols() + tj],
            ld: d.rows,
            rows: d.rows,
            cols: d.cols,
        }
    }

    fn buffer(&self) -> &[f64] {
        &self.data
    }

    fn buffer_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn sample(m: usize, n: usize) -> DenseMatrix {
        gen::uniform(m, n, 42)
    }

    #[test]
    fn cm_roundtrip() {
        let a = sample(17, 13);
        let s = CmTiles::from_dense(&a, 5);
        assert!(s.to_dense().approx_eq(&a, 0.0));
        assert_eq!(s.layout(), Layout::ColumnMajor);
    }

    #[test]
    fn bcl_roundtrip_exact_and_ragged() {
        for (m, n, b) in [(12, 12, 3), (17, 13, 5), (8, 20, 4), (5, 5, 8)] {
            let a = sample(m, n);
            let g = ProcessGrid::new(2, 2).unwrap();
            let s = BclMatrix::from_dense(&a, b, g);
            assert!(s.to_dense().approx_eq(&a, 0.0), "m={m} n={n} b={b}");
        }
    }

    #[test]
    fn tlb_roundtrip_exact_and_ragged() {
        for (m, n, b) in [(12, 12, 3), (17, 13, 5), (8, 20, 4), (5, 5, 8)] {
            let a = sample(m, n);
            let g = ProcessGrid::new(2, 3).unwrap();
            let s = TlbMatrix::from_dense(&a, b, g);
            assert!(s.to_dense().approx_eq(&a, 0.0), "m={m} n={n} b={b}");
        }
    }

    #[test]
    fn tile_views_match_dense_blocks() {
        let a = sample(20, 15);
        let g = ProcessGrid::new(2, 2).unwrap();
        let cm = CmTiles::from_dense(&a, 4);
        let bcl = BclMatrix::from_dense(&a, 4, g);
        let tlb = TlbMatrix::from_dense(&a, 4, g);
        let t = cm.tiling();
        for (ti, tj) in t.tiles() {
            let want = a.submatrix(
                t.row_start(ti),
                t.col_start(tj),
                t.tile_row_count(ti),
                t.tile_col_count(tj),
            );
            for s in [&cm as &dyn TileStorage, &bcl, &tlb] {
                let got = s.tile(ti, tj).to_dense();
                assert!(
                    got.approx_eq(&want, 0.0),
                    "layout {:?} tile ({ti},{tj})",
                    s.layout()
                );
            }
        }
    }

    #[test]
    fn element_accessors_roundtrip() {
        let g = ProcessGrid::new(2, 2).unwrap();
        let mut s = TlbMatrix::zeros(10, 10, 3, g);
        s.set(7, 4, 3.5);
        assert_eq!(s.get(7, 4), 3.5);
        let mut s = BclMatrix::zeros(10, 10, 3, g);
        s.set(9, 9, -1.25);
        assert_eq!(s.get(9, 9), -1.25);
    }

    #[test]
    fn tlb_tiles_are_contiguous() {
        let g = ProcessGrid::new(2, 2).unwrap();
        let s = TlbMatrix::zeros(12, 12, 3, g);
        let t = s.tiling();
        for (ti, tj) in t.tiles() {
            let loc = s.tile_loc(ti, tj);
            assert_eq!(loc.ld, loc.rows, "tile ({ti},{tj}) must be contiguous");
        }
    }

    #[test]
    fn bcl_vertical_neighbors_share_columns() {
        // Tiles (0,0) and (2,0) belong to the same thread on a 2x2 grid and
        // must be vertically adjacent in its local submatrix.
        let g = ProcessGrid::new(2, 2).unwrap();
        let s = BclMatrix::zeros(16, 16, 4, g);
        let a = s.tile_loc(0, 0);
        let c = s.tile_loc(2, 0);
        assert_eq!(a.ld, c.ld);
        assert_eq!(c.offset, a.offset + 4, "local rows must be stacked");
    }

    #[test]
    fn bcl_regions_partition_buffer() {
        let g = ProcessGrid::new(2, 3).unwrap();
        let s = BclMatrix::zeros(20, 18, 4, g);
        let total: usize = (0..g.size()).map(|t| s.region(t).len()).sum();
        assert_eq!(total, s.buffer().len());
        assert_eq!(s.buffer().len(), 20 * 18);
    }

    #[test]
    fn grids_reported() {
        let g = ProcessGrid::new(2, 3).unwrap();
        assert_eq!(BclMatrix::zeros(8, 8, 2, g).grid(), g);
        assert_eq!(TlbMatrix::zeros(8, 8, 2, g).grid(), g);
        assert_eq!(CmTiles::zeros(8, 8, 2).grid().size(), 1);
    }
}
