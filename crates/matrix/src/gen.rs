//! Deterministic matrix generators used by tests, examples and benchmarks.
//!
//! All generators are seeded so every experiment in the repository is
//! exactly reproducible.

use crate::dense::DenseMatrix;
use calu_rand::Rng;

/// Uniform random entries in `[-1, 1]` — the standard well-conditioned
/// test matrix for LU benchmarks (used for every performance figure).
pub fn uniform(m: usize, n: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    DenseMatrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..=1.0))
}

/// Standard-normal random entries.
pub fn normal(m: usize, n: usize, seed: u64) -> DenseMatrix {
    let mut rng = Rng::seed_from_u64(seed);
    // Box-Muller transform; avoids a dedicated normal sampler.
    let mut next = move || {
        let u1: f64 = rng.gen_range(0.0..1.0).max(1e-300);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    DenseMatrix::from_fn(m, n, |_, _| next())
}

/// Row-diagonally-dominant matrix: uniform noise plus `2n` on the diagonal.
/// LU without pivoting succeeds on it, making it useful to isolate
/// pivoting behaviour from numerical failure.
pub fn diag_dominant(n: usize, seed: u64) -> DenseMatrix {
    let mut a = uniform(n, n, seed);
    for i in 0..n {
        let v = a.get(i, i);
        a.set(i, i, v + 2.0 * n as f64);
    }
    a
}

/// The Wilkinson growth matrix: `a_ii = 1`, `a_ij = -1` for `i > j`,
/// last column all ones. Partial pivoting exhibits `2^(n-1)` element
/// growth on it — the classic stress test for pivoting strategies.
pub fn wilkinson(n: usize) -> DenseMatrix {
    DenseMatrix::from_fn(n, n, |i, j| {
        if j == n - 1 || i == j {
            1.0
        } else if i > j {
            -1.0
        } else {
            0.0
        }
    })
}

/// A matrix with exactly `rank` nonzero singular values: product of random
/// `m × rank` and `rank × n` factors. LU with any pivoting hits a zero
/// pivot after `rank` steps; used for failure-injection tests.
pub fn rank_deficient(m: usize, n: usize, rank: usize, seed: u64) -> DenseMatrix {
    assert!(rank <= m.min(n), "rank larger than min dimension");
    let left = uniform(m, rank, seed);
    let right = uniform(rank, n, seed.wrapping_add(1));
    DenseMatrix::from_fn(m, n, |i, j| {
        (0..rank).map(|k| left.get(i, k) * right.get(k, j)).sum()
    })
}

/// Tall-and-skinny uniform matrix (`m >> n`) — the panel-shaped workload
/// that motivates TSLU.
pub fn tall_skinny(m: usize, n: usize, seed: u64) -> DenseMatrix {
    assert!(m >= n, "tall_skinny requires m >= n");
    uniform(m, n, seed)
}

/// Symmetric positive-definite test matrix: symmetrized uniform noise in
/// `[-1, 1]` off the diagonal, `n` on the diagonal. Strict diagonal
/// dominance of a symmetric matrix with a positive diagonal guarantees
/// positive-definiteness, so Cholesky succeeds on it deterministically —
/// the standard input for the tiled-Cholesky tests and benches.
pub fn spd_uniform(n: usize, seed: u64) -> DenseMatrix {
    let noise = uniform(n, n, seed);
    DenseMatrix::from_fn(n, n, |i, j| {
        if i == j {
            n as f64
        } else {
            0.5 * (noise.get(i, j) + noise.get(j, i))
        }
    })
}

/// Identity plus tiny uniform noise: well conditioned, near-trivial
/// pivoting; handy for debugging schedulers without numerical effects.
pub fn near_identity(n: usize, eps: f64, seed: u64) -> DenseMatrix {
    let noise = uniform(n, n, seed);
    DenseMatrix::from_fn(n, n, |i, j| {
        let base = if i == j { 1.0 } else { 0.0 };
        base + eps * noise.get(i, j)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_deterministic_and_bounded() {
        let a = uniform(30, 20, 7);
        let b = uniform(30, 20, 7);
        assert!(a.approx_eq(&b, 0.0));
        assert!(a.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
        let c = uniform(30, 20, 8);
        assert!(!a.approx_eq(&c, 0.0));
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let a = normal(200, 200, 3);
        let n = (200 * 200) as f64;
        let mean: f64 = a.as_slice().iter().sum::<f64>() / n;
        let var: f64 = a
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn diag_dominant_dominates() {
        let a = diag_dominant(25, 1);
        for i in 0..25 {
            let off: f64 = (0..25).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i).abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn wilkinson_structure() {
        let w = wilkinson(5);
        assert_eq!(w.get(0, 4), 1.0);
        assert_eq!(w.get(3, 4), 1.0);
        assert_eq!(w.get(2, 2), 1.0);
        assert_eq!(w.get(3, 1), -1.0);
        assert_eq!(w.get(1, 3), 0.0);
    }

    #[test]
    fn rank_deficient_has_low_rank() {
        // With rank r, any (r+1)x(r+1) minor is singular; cheap proxy:
        // Gaussian elimination on the full matrix hits ~0 pivots after r.
        let r = 3;
        let mut a = rank_deficient(8, 8, r, 5);
        // unpivoted elimination with row swaps by max pivot
        let mut rank_seen = 0;
        for k in 0..8 {
            let (mut piv, mut pv) = (k, 0.0f64);
            for i in k..8 {
                if a.get(i, k).abs() > pv {
                    pv = a.get(i, k).abs();
                    piv = i;
                }
            }
            if pv < 1e-10 {
                continue;
            }
            rank_seen += 1;
            a.swap_rows(k, piv);
            for i in (k + 1)..8 {
                let f = a.get(i, k) / a.get(k, k);
                for j in k..8 {
                    let v = a.get(i, j) - f * a.get(k, j);
                    a.set(i, j, v);
                }
            }
        }
        assert_eq!(rank_seen, r);
    }

    #[test]
    fn spd_uniform_is_symmetric_and_dominant() {
        let n = 20;
        let a = spd_uniform(n, 4);
        let b = spd_uniform(n, 4);
        assert!(a.approx_eq(&b, 0.0), "must be deterministic");
        for i in 0..n {
            let off: f64 = (0..n).filter(|&j| j != i).map(|j| a.get(i, j).abs()).sum();
            assert!(a.get(i, i) > off, "row {i} not dominant");
            for j in 0..n {
                assert_eq!(a.get(i, j), a.get(j, i), "({i},{j}) asymmetric");
            }
        }
    }

    #[test]
    fn near_identity_is_near_identity() {
        let a = near_identity(10, 1e-8, 2);
        for i in 0..10 {
            assert!((a.get(i, i) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn rank_deficient_validates_rank() {
        rank_deficient(4, 4, 5, 0);
    }
}
