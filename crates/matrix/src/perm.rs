//! Row permutations in LAPACK `ipiv` style.
//!
//! A factorization produces a *sequence of row swaps*: at elimination step
//! `k` (global row index), row `k` was swapped with row `piv[k] >= k`.
//! Applying the swaps in order yields the permutation `P` with `P·A = L·U`.

use crate::dense::DenseMatrix;

/// A row permutation recorded as a sequence of swaps (LAPACK `ipiv`,
/// 0-based): step `k` swaps rows `start + k` and `piv[k]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RowPerm {
    /// `piv[k]` is the global row swapped with row `offset + k` at step `k`.
    piv: Vec<usize>,
    /// Global row index of the first swap step.
    offset: usize,
}

impl RowPerm {
    /// Identity permutation (no swaps recorded).
    pub fn identity() -> Self {
        Self::default()
    }

    /// Create from raw 0-based pivot indices; swap `k` exchanges rows
    /// `offset + k` and `piv[k]`.
    pub fn from_pivots(offset: usize, piv: Vec<usize>) -> Self {
        for (k, &p) in piv.iter().enumerate() {
            assert!(
                p >= offset + k,
                "pivot {p} must be >= its step row {}",
                offset + k
            );
        }
        Self { piv, offset }
    }

    /// Number of recorded swap steps.
    pub fn len(&self) -> usize {
        self.piv.len()
    }

    /// True if no swaps are recorded.
    pub fn is_empty(&self) -> bool {
        self.piv.is_empty()
    }

    /// Row index of the first swap step.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The raw pivot indices.
    pub fn pivots(&self) -> &[usize] {
        &self.piv
    }

    /// Append another permutation recorded *after* this one (its offset
    /// must follow ours contiguously or beyond).
    pub fn extend(&mut self, other: &RowPerm) {
        if self.piv.is_empty() {
            self.offset = other.offset;
            self.piv = other.piv.clone();
            return;
        }
        assert_eq!(
            other.offset,
            self.offset + self.piv.len(),
            "extend requires contiguous swap steps"
        );
        self.piv.extend_from_slice(&other.piv);
    }

    /// Apply the swaps (in recorded order) to the rows of `a`.
    pub fn apply(&self, a: &mut DenseMatrix) {
        for (k, &p) in self.piv.iter().enumerate() {
            a.swap_rows(self.offset + k, p);
        }
    }

    /// Apply the swaps restricted to columns `[c0, c1)` — the "right swap"
    /// of Algorithm 1 applies a panel's permutation only to trailing
    /// columns.
    pub fn apply_to_cols(&self, a: &mut DenseMatrix, c0: usize, c1: usize) {
        for (k, &p) in self.piv.iter().enumerate() {
            a.swap_rows_in_cols(self.offset + k, p, c0, c1);
        }
    }

    /// Apply the inverse permutation (swaps in reverse order).
    pub fn apply_inverse(&self, a: &mut DenseMatrix) {
        for (k, &p) in self.piv.iter().enumerate().rev() {
            a.swap_rows(self.offset + k, p);
        }
    }

    /// Explicit permutation vector `perm` of length `n` such that
    /// `(P·A)[i] = A[perm[i]]`.
    pub fn explicit(&self, n: usize) -> Vec<usize> {
        let mut perm: Vec<usize> = (0..n).collect();
        for (k, &p) in self.piv.iter().enumerate() {
            perm.swap(self.offset + k, p);
        }
        perm
    }

    /// Permute a dense matrix into a new one (`P·A`).
    pub fn permuted(&self, a: &DenseMatrix) -> DenseMatrix {
        let p = self.explicit(a.rows());
        crate::ops::permute_rows(a, &p)
    }

    /// Parity of the permutation: `+1.0` for even, `-1.0` for odd — the
    /// determinant sign contribution.
    pub fn sign(&self) -> f64 {
        let swaps = self
            .piv
            .iter()
            .enumerate()
            .filter(|(k, &p)| p != self.offset + *k)
            .count();
        if swaps % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn identity_changes_nothing() {
        let a = gen::uniform(5, 5, 1);
        let mut b = a.clone();
        RowPerm::identity().apply(&mut b);
        assert!(a.approx_eq(&b, 0.0));
        assert_eq!(RowPerm::identity().explicit(4), vec![0, 1, 2, 3]);
        assert_eq!(RowPerm::identity().sign(), 1.0);
    }

    #[test]
    fn single_swap() {
        let p = RowPerm::from_pivots(0, vec![2]);
        let a = DenseMatrix::from_rows(3, 1, &[10.0, 20.0, 30.0]).unwrap();
        let b = p.permuted(&a);
        assert_eq!(b.get(0, 0), 30.0);
        assert_eq!(b.get(2, 0), 10.0);
        assert_eq!(p.sign(), -1.0);
    }

    #[test]
    fn apply_then_inverse_is_identity() {
        let p = RowPerm::from_pivots(0, vec![3, 2, 4, 4]);
        let a = gen::uniform(6, 4, 2);
        let mut b = a.clone();
        p.apply(&mut b);
        p.apply_inverse(&mut b);
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn explicit_matches_apply() {
        let p = RowPerm::from_pivots(1, vec![4, 2, 3]);
        let a = gen::uniform(5, 3, 3);
        let via_apply = {
            let mut b = a.clone();
            p.apply(&mut b);
            b
        };
        let via_explicit = p.permuted(&a);
        assert!(via_apply.approx_eq(&via_explicit, 0.0));
    }

    #[test]
    fn column_restricted_swaps() {
        let p = RowPerm::from_pivots(0, vec![1]);
        let mut a = DenseMatrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        p.apply_to_cols(&mut a, 1, 3);
        assert_eq!(a.get(0, 0), 1.0); // untouched
        assert_eq!(a.get(0, 1), 5.0); // swapped
        assert_eq!(a.get(1, 2), 3.0); // swapped
    }

    #[test]
    fn extend_concatenates_steps() {
        let mut p = RowPerm::from_pivots(0, vec![1, 1]);
        let q = RowPerm::from_pivots(2, vec![3]);
        p.extend(&q);
        assert_eq!(p.len(), 3);
        assert_eq!(p.pivots(), &[1, 1, 3]);
        let mut empty = RowPerm::identity();
        empty.extend(&q);
        assert_eq!(empty.offset(), 2);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn extend_rejects_gaps() {
        let mut p = RowPerm::from_pivots(0, vec![0]);
        let q = RowPerm::from_pivots(5, vec![5]);
        p.extend(&q);
    }

    #[test]
    #[should_panic(expected = "must be >=")]
    fn from_pivots_validates() {
        RowPerm::from_pivots(2, vec![0]);
    }

    #[test]
    fn sign_counts_real_swaps_only() {
        // pivots equal to their own row are no-ops
        let p = RowPerm::from_pivots(0, vec![0, 1, 2]);
        assert_eq!(p.sign(), 1.0);
        let p = RowPerm::from_pivots(0, vec![1, 1, 2]);
        assert_eq!(p.sign(), -1.0);
    }
}
