//! Tiling arithmetic: how an `m × n` matrix is cut into `b × b` tiles.
//!
//! The paper assumes `M = m/b` and `N = n/b` exactly; we additionally
//! support ragged edges (the last tile row/column may be smaller), which
//! the tests exercise heavily.

/// Dimensions of one tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileDims {
    /// Rows in this tile (`<= b`).
    pub rows: usize,
    /// Columns in this tile (`<= b`).
    pub cols: usize,
}

/// Describes the partition of an `m × n` matrix into `b × b` tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    /// Matrix rows.
    pub m: usize,
    /// Matrix columns.
    pub n: usize,
    /// Block (tile) size `b`.
    pub b: usize,
}

impl Tiling {
    /// Create a tiling; panics if `b == 0`.
    pub fn new(m: usize, n: usize, b: usize) -> Self {
        assert!(b > 0, "block size must be positive");
        Self { m, n, b }
    }

    /// Number of tile rows `M = ceil(m / b)`.
    #[inline]
    pub fn tile_rows(&self) -> usize {
        self.m.div_ceil(self.b)
    }

    /// Number of tile columns `N = ceil(n / b)`.
    #[inline]
    pub fn tile_cols(&self) -> usize {
        self.n.div_ceil(self.b)
    }

    /// Dimensions of tile `(ti, tj)` (handles ragged edges).
    #[inline]
    pub fn tile_dims(&self, ti: usize, tj: usize) -> TileDims {
        TileDims {
            rows: self.tile_row_count(ti),
            cols: self.tile_col_count(tj),
        }
    }

    /// Rows in tile row `ti`.
    #[inline]
    pub fn tile_row_count(&self, ti: usize) -> usize {
        debug_assert!(ti < self.tile_rows());
        (self.m - ti * self.b).min(self.b)
    }

    /// Columns in tile column `tj`.
    #[inline]
    pub fn tile_col_count(&self, tj: usize) -> usize {
        debug_assert!(tj < self.tile_cols());
        (self.n - tj * self.b).min(self.b)
    }

    /// Global row index of the first row of tile row `ti`.
    #[inline]
    pub fn row_start(&self, ti: usize) -> usize {
        ti * self.b
    }

    /// Global column index of the first column of tile column `tj`.
    #[inline]
    pub fn col_start(&self, tj: usize) -> usize {
        tj * self.b
    }

    /// Tile row containing global row `i`.
    #[inline]
    pub fn tile_of_row(&self, i: usize) -> usize {
        i / self.b
    }

    /// Tile column containing global column `j`.
    #[inline]
    pub fn tile_of_col(&self, j: usize) -> usize {
        j / self.b
    }

    /// Offset of global row `i` inside its tile.
    #[inline]
    pub fn row_in_tile(&self, i: usize) -> usize {
        i % self.b
    }

    /// Number of tiles on the main tile diagonal, `min(M, N)`.
    #[inline]
    pub fn tile_diag(&self) -> usize {
        self.tile_rows().min(self.tile_cols())
    }

    /// Iterate over all `(ti, tj)` tile coordinates in column-major order.
    pub fn tiles(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let tr = self.tile_rows();
        (0..self.tile_cols()).flat_map(move |tj| (0..tr).map(move |ti| (ti, tj)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_tiling() {
        let t = Tiling::new(400, 600, 100);
        assert_eq!(t.tile_rows(), 4);
        assert_eq!(t.tile_cols(), 6);
        assert_eq!(
            t.tile_dims(3, 5),
            TileDims {
                rows: 100,
                cols: 100
            }
        );
        assert_eq!(t.tile_diag(), 4);
    }

    #[test]
    fn ragged_tiling() {
        let t = Tiling::new(450, 330, 100);
        assert_eq!(t.tile_rows(), 5);
        assert_eq!(t.tile_cols(), 4);
        assert_eq!(t.tile_dims(4, 0).rows, 50);
        assert_eq!(t.tile_dims(0, 3).cols, 30);
        assert_eq!(t.tile_dims(4, 3), TileDims { rows: 50, cols: 30 });
    }

    #[test]
    fn start_offsets_and_lookup() {
        let t = Tiling::new(450, 330, 100);
        assert_eq!(t.row_start(4), 400);
        assert_eq!(t.col_start(2), 200);
        assert_eq!(t.tile_of_row(399), 3);
        assert_eq!(t.tile_of_row(400), 4);
        assert_eq!(t.row_in_tile(437), 37);
        assert_eq!(t.tile_of_col(299), 2);
    }

    #[test]
    fn tile_iteration_covers_everything_once() {
        let t = Tiling::new(250, 150, 100);
        let v: Vec<_> = t.tiles().collect();
        assert_eq!(v.len(), 3 * 2);
        assert_eq!(v[0], (0, 0));
        assert_eq!(v[1], (1, 0)); // column-major
        let mut sorted = v.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), v.len());
    }

    #[test]
    fn single_tile_when_b_dominates() {
        let t = Tiling::new(10, 10, 64);
        assert_eq!(t.tile_rows(), 1);
        assert_eq!(t.tile_cols(), 1);
        assert_eq!(t.tile_dims(0, 0), TileDims { rows: 10, cols: 10 });
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_panics() {
        Tiling::new(4, 4, 0);
    }
}
