//! Matrix norms used for residual and stability measurements.

use crate::dense::DenseMatrix;

/// Frobenius norm: `sqrt(sum a_ij^2)`.
pub fn frobenius(a: &DenseMatrix) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// 1-norm: maximum absolute column sum.
pub fn one_norm(a: &DenseMatrix) -> f64 {
    (0..a.cols())
        .map(|j| a.col(j).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

/// Infinity norm: maximum absolute row sum.
pub fn inf_norm(a: &DenseMatrix) -> f64 {
    let mut sums = vec![0.0f64; a.rows()];
    for j in 0..a.cols() {
        for (i, v) in a.col(j).iter().enumerate() {
            sums[i] += v.abs();
        }
    }
    sums.into_iter().fold(0.0, f64::max)
}

/// Max norm: largest absolute entry.
pub fn max_norm(a: &DenseMatrix) -> f64 {
    a.max_abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(2, 3, &[1.0, -2.0, 3.0, -4.0, 5.0, -6.0]).unwrap()
    }

    #[test]
    fn frobenius_known_value() {
        let a = sample();
        let want = (1.0f64 + 4.0 + 9.0 + 16.0 + 25.0 + 36.0).sqrt();
        assert!((frobenius(&a) - want).abs() < 1e-14);
    }

    #[test]
    fn one_norm_is_max_col_sum() {
        // columns: |1|+|−4|=5, |−2|+|5|=7, |3|+|−6|=9
        assert_eq!(one_norm(&sample()), 9.0);
    }

    #[test]
    fn inf_norm_is_max_row_sum() {
        // rows: 1+2+3=6, 4+5+6=15
        assert_eq!(inf_norm(&sample()), 15.0);
    }

    #[test]
    fn max_norm_is_largest_entry() {
        assert_eq!(max_norm(&sample()), 6.0);
    }

    #[test]
    fn norms_of_zero_matrix() {
        let z = DenseMatrix::zeros(3, 3);
        assert_eq!(frobenius(&z), 0.0);
        assert_eq!(one_norm(&z), 0.0);
        assert_eq!(inf_norm(&z), 0.0);
    }

    #[test]
    fn norm_inequalities_hold() {
        let a = crate::gen::uniform(20, 20, 9);
        let f = frobenius(&a);
        let o = one_norm(&a);
        let i = inf_norm(&a);
        let m = max_norm(&a);
        let n = 20.0f64;
        assert!(m <= f && f <= n * m + 1e-12);
        assert!(o <= n.sqrt() * f + 1e-12);
        assert!(i <= n.sqrt() * f + 1e-12);
    }
}
