//! Simple reference operations on dense matrices.
//!
//! These are the *oracles* for the optimized kernels in `calu-kernels`:
//! textbook triple loops, obviously correct, never used on hot paths.

use crate::dense::DenseMatrix;

/// Reference matrix product `A · B`.
pub fn matmul(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(a.cols(), b.rows(), "matmul inner dimension mismatch");
    let mut c = DenseMatrix::zeros(a.rows(), b.cols());
    for j in 0..b.cols() {
        for k in 0..a.cols() {
            let bkj = b.get(k, j);
            if bkj == 0.0 {
                continue;
            }
            for i in 0..a.rows() {
                let v = c.get(i, j) + a.get(i, k) * bkj;
                c.set(i, j, v);
            }
        }
    }
    c
}

/// Elementwise `A - B`.
pub fn sub(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "sub shape mismatch"
    );
    DenseMatrix::from_fn(a.rows(), a.cols(), |i, j| a.get(i, j) - b.get(i, j))
}

/// Elementwise `A + B`.
pub fn add(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "add shape mismatch"
    );
    DenseMatrix::from_fn(a.rows(), a.cols(), |i, j| a.get(i, j) + b.get(i, j))
}

/// Scalar multiple `alpha · A`.
pub fn scale(alpha: f64, a: &DenseMatrix) -> DenseMatrix {
    DenseMatrix::from_fn(a.rows(), a.cols(), |i, j| alpha * a.get(i, j))
}

/// Apply a row permutation given as an explicit vector `p` (row `i` of the
/// result is row `p[i]` of `a`).
pub fn permute_rows(a: &DenseMatrix, p: &[usize]) -> DenseMatrix {
    assert_eq!(p.len(), a.rows(), "permutation length mismatch");
    DenseMatrix::from_fn(a.rows(), a.cols(), |i, j| a.get(p[i], j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn matmul_identity() {
        let a = gen::uniform(4, 6, 1);
        let i4 = DenseMatrix::identity(4);
        let i6 = DenseMatrix::identity(6);
        assert!(matmul(&i4, &a).approx_eq(&a, 1e-15));
        assert!(matmul(&a, &i6).approx_eq(&a, 1e-15));
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseMatrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = matmul(&a, &b);
        let want = DenseMatrix::from_rows(2, 2, &[19.0, 22.0, 43.0, 50.0]).unwrap();
        assert!(c.approx_eq(&want, 1e-14));
    }

    #[test]
    fn matmul_is_associative_on_small_random() {
        let a = gen::uniform(3, 4, 2);
        let b = gen::uniform(4, 5, 3);
        let c = gen::uniform(5, 2, 4);
        let left = matmul(&matmul(&a, &b), &c);
        let right = matmul(&a, &matmul(&b, &c));
        assert!(left.approx_eq(&right, 1e-12));
    }

    #[test]
    fn add_sub_scale() {
        let a = gen::uniform(3, 3, 5);
        let b = gen::uniform(3, 3, 6);
        assert!(sub(&add(&a, &b), &b).approx_eq(&a, 1e-14));
        assert!(scale(2.0, &a).approx_eq(&add(&a, &a), 1e-14));
        assert!(scale(0.0, &a).approx_eq(&DenseMatrix::zeros(3, 3), 0.0));
    }

    #[test]
    fn permute_rows_reverses() {
        let a = DenseMatrix::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let p = permute_rows(&a, &[2, 1, 0]);
        assert_eq!(p.get(0, 0), 5.0);
        assert_eq!(p.get(2, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn matmul_shape_checked() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        matmul(&a, &b);
    }
}
