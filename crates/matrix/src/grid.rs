//! 2D block-cyclic process (thread) grid — the ownership map used by the
//! static section of the scheduler (§3) and by the BCL / 2l-BL layouts (§4).

use crate::error::MatrixError;

/// A `pr × pc` grid of threads over which tiles are distributed
/// block-cyclically: tile `(i, j)` belongs to thread
/// `(i mod pr, j mod pc)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcessGrid {
    pr: usize,
    pc: usize,
}

impl ProcessGrid {
    /// Create a grid; errors if either dimension is zero.
    pub fn new(pr: usize, pc: usize) -> Result<Self, MatrixError> {
        if pr == 0 || pc == 0 {
            return Err(MatrixError::InvalidGrid { rows: pr, cols: pc });
        }
        Ok(Self { pr, pc })
    }

    /// Choose a near-square grid for `p` threads: the factorization
    /// `pr × pc = p` with `pr <= pc` and `pr` as large as possible.
    /// This mirrors how ScaLAPACK-style codes pick default grids.
    pub fn square_for(p: usize) -> Result<Self, MatrixError> {
        if p == 0 {
            return Err(MatrixError::InvalidGrid { rows: 0, cols: 0 });
        }
        let mut pr = (p as f64).sqrt() as usize;
        while pr > 1 && !p.is_multiple_of(pr) {
            pr -= 1;
        }
        let pr = pr.max(1);
        Self::new(pr, p / pr)
    }

    /// Grid rows.
    #[inline]
    pub fn pr(&self) -> usize {
        self.pr
    }

    /// Grid columns.
    #[inline]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Total number of threads in the grid.
    #[inline]
    pub fn size(&self) -> usize {
        self.pr * self.pc
    }

    /// Grid coordinates of the thread owning tile `(ti, tj)`.
    #[inline]
    pub fn owner_coords(&self, ti: usize, tj: usize) -> (usize, usize) {
        (ti % self.pr, tj % self.pc)
    }

    /// Linear thread id (row-major over the grid) owning tile `(ti, tj)`.
    #[inline]
    pub fn owner(&self, ti: usize, tj: usize) -> usize {
        let (r, c) = self.owner_coords(ti, tj);
        r * self.pc + c
    }

    /// Grid coordinates of linear thread id `t`.
    #[inline]
    pub fn coords_of(&self, t: usize) -> (usize, usize) {
        debug_assert!(t < self.size());
        (t / self.pc, t % self.pc)
    }

    /// Number of tile rows from a total of `tiles_r` owned by grid row `r`.
    #[inline]
    pub fn local_tile_rows(&self, tiles_r: usize, r: usize) -> usize {
        count_cyclic(tiles_r, self.pr, r)
    }

    /// Number of tile columns from a total of `tiles_c` owned by grid column `c`.
    #[inline]
    pub fn local_tile_cols(&self, tiles_c: usize, c: usize) -> usize {
        count_cyclic(tiles_c, self.pc, c)
    }

    /// Local index of global tile row `ti` within its owner's storage.
    #[inline]
    pub fn local_tile_row(&self, ti: usize) -> usize {
        ti / self.pr
    }

    /// Local index of global tile column `tj` within its owner's storage.
    #[inline]
    pub fn local_tile_col(&self, tj: usize) -> usize {
        tj / self.pc
    }

    /// All global tile rows (< `tiles_r`) owned by grid row `r`, ascending.
    pub fn owned_tile_rows(&self, tiles_r: usize, r: usize) -> impl Iterator<Item = usize> + '_ {
        (r..tiles_r).step_by(self.pr)
    }

    /// All global tile columns (< `tiles_c`) owned by grid column `c`, ascending.
    pub fn owned_tile_cols(&self, tiles_c: usize, c: usize) -> impl Iterator<Item = usize> + '_ {
        (c..tiles_c).step_by(self.pc)
    }
}

/// How many of `0..total` hit residue `r` modulo `p`.
#[inline]
fn count_cyclic(total: usize, p: usize, r: usize) -> usize {
    if r >= p {
        return 0;
    }
    if total <= r {
        0
    } else {
        (total - r).div_ceil(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_grids() {
        assert!(ProcessGrid::new(0, 4).is_err());
        assert!(ProcessGrid::new(4, 0).is_err());
        assert!(ProcessGrid::square_for(0).is_err());
    }

    #[test]
    fn square_for_prefers_balanced_factorizations() {
        assert_eq!(
            ProcessGrid::square_for(16).unwrap(),
            ProcessGrid::new(4, 4).unwrap()
        );
        assert_eq!(
            ProcessGrid::square_for(48).unwrap(),
            ProcessGrid::new(6, 8).unwrap()
        );
        assert_eq!(
            ProcessGrid::square_for(24).unwrap(),
            ProcessGrid::new(4, 6).unwrap()
        );
        assert_eq!(
            ProcessGrid::square_for(7).unwrap(),
            ProcessGrid::new(1, 7).unwrap()
        );
        assert_eq!(
            ProcessGrid::square_for(1).unwrap(),
            ProcessGrid::new(1, 1).unwrap()
        );
    }

    #[test]
    fn ownership_is_block_cyclic() {
        let g = ProcessGrid::new(2, 3).unwrap();
        assert_eq!(g.owner(0, 0), 0);
        assert_eq!(g.owner(1, 0), 3);
        assert_eq!(g.owner(0, 1), 1);
        assert_eq!(g.owner(2, 3), g.owner(0, 0));
        assert_eq!(g.owner(5, 7), g.owner(1, 1));
    }

    #[test]
    fn coords_roundtrip() {
        let g = ProcessGrid::new(3, 4).unwrap();
        for t in 0..g.size() {
            let (r, c) = g.coords_of(t);
            assert_eq!(r * g.pc() + c, t);
        }
    }

    #[test]
    fn local_counts_sum_to_total() {
        let g = ProcessGrid::new(3, 2).unwrap();
        for total in 0..20 {
            let sum: usize = (0..3).map(|r| g.local_tile_rows(total, r)).sum();
            assert_eq!(sum, total, "row counts for total={total}");
            let sum: usize = (0..2).map(|c| g.local_tile_cols(total, c)).sum();
            assert_eq!(sum, total, "col counts for total={total}");
        }
    }

    #[test]
    fn owned_rows_match_ownership() {
        let g = ProcessGrid::new(3, 2).unwrap();
        for r in 0..3 {
            for ti in g.owned_tile_rows(11, r) {
                assert_eq!(ti % 3, r);
                assert!(ti < 11);
            }
            assert_eq!(g.owned_tile_rows(11, r).count(), g.local_tile_rows(11, r));
        }
    }

    #[test]
    fn local_indices_are_dense() {
        let g = ProcessGrid::new(2, 3).unwrap();
        // tiles 0,2,4,... map to local 0,1,2,... on grid row 0
        assert_eq!(g.local_tile_row(0), 0);
        assert_eq!(g.local_tile_row(2), 1);
        assert_eq!(g.local_tile_row(4), 2);
        assert_eq!(g.local_tile_col(1), 0);
        assert_eq!(g.local_tile_col(4), 1);
    }
}
