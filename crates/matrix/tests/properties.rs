//! Randomized-sweep tests of the storage substrate.
//!
//! Formerly proptest-based; the workspace builds hermetically, so the
//! same invariants are now exercised over seeded pseudo-random
//! parameter sweeps (deterministic across runs).

use calu_matrix::{
    gen, norms, ops, BclMatrix, CmTiles, DenseMatrix, ProcessGrid, RowPerm, TileStorage, TlbMatrix,
};
use calu_rand::Rng;

#[test]
fn storage_roundtrips() {
    let mut rng = Rng::seed_from_u64(1);
    for _ in 0..64 {
        let m = rng.gen_range(1..50);
        let n = rng.gen_range(1..50);
        let b = rng.gen_range(1..16);
        let pr = rng.gen_range(1..4);
        let pc = rng.gen_range(1..4);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, n, seed);
        let grid = ProcessGrid::new(pr, pc).unwrap();
        assert!(CmTiles::from_dense(&a, b).to_dense().approx_eq(&a, 0.0));
        assert!(BclMatrix::from_dense(&a, b, grid)
            .to_dense()
            .approx_eq(&a, 0.0));
        assert!(TlbMatrix::from_dense(&a, b, grid)
            .to_dense()
            .approx_eq(&a, 0.0));
    }
}

#[test]
fn tile_views_agree_across_layouts() {
    let mut rng = Rng::seed_from_u64(2);
    for _ in 0..48 {
        let m = rng.gen_range(1..40);
        let n = rng.gen_range(1..40);
        let b = rng.gen_range(1..12);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, n, seed);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let cm = CmTiles::from_dense(&a, b);
        let bcl = BclMatrix::from_dense(&a, b, grid);
        let tlb = TlbMatrix::from_dense(&a, b, grid);
        let t = cm.tiling();
        for (ti, tj) in t.tiles() {
            let want = cm.tile(ti, tj).to_dense();
            assert!(bcl.tile(ti, tj).to_dense().approx_eq(&want, 0.0));
            assert!(tlb.tile(ti, tj).to_dense().approx_eq(&want, 0.0));
        }
    }
}

#[test]
fn block_cyclic_owner_counts_are_balanced() {
    for tiles in 1..40 {
        for pr in 1..5 {
            let grid = ProcessGrid::new(pr, 1).unwrap();
            let counts: Vec<usize> = (0..pr).map(|r| grid.local_tile_rows(tiles, r)).collect();
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(max - min <= 1, "cyclic distribution is balanced");
            assert_eq!(counts.iter().sum::<usize>(), tiles);
        }
    }
}

#[test]
fn permutations_are_bijections() {
    let mut rng = Rng::seed_from_u64(3);
    for _ in 0..64 {
        let n = rng.gen_range(1..40);
        let seed = rng.next_u64() % 1000;
        // random valid pivot sequence
        let mut piv = Vec::with_capacity(n);
        let mut state = seed;
        for k in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            piv.push(k + (state as usize % (n - k)));
        }
        let perm = RowPerm::from_pivots(0, piv);
        let p = perm.explicit(n);
        let mut sorted = p.clone();
        sorted.sort();
        assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // apply + inverse = identity
        let a = gen::uniform(n, 3, seed);
        let mut b = a.clone();
        perm.apply(&mut b);
        perm.apply_inverse(&mut b);
        assert!(b.approx_eq(&a, 0.0));
    }
}

#[test]
fn norm_relations() {
    let mut rng = Rng::seed_from_u64(4);
    for _ in 0..64 {
        let m = rng.gen_range(1..30);
        let n = rng.gen_range(1..30);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, n, seed);
        let f = norms::frobenius(&a);
        let mx = norms::max_norm(&a);
        assert!(mx <= f + 1e-12);
        assert!(f <= ((m * n) as f64).sqrt() * mx + 1e-12);
        // triangle inequality on a random pair
        let b = gen::uniform(m, n, seed + 1);
        assert!(norms::frobenius(&ops::add(&a, &b)) <= f + norms::frobenius(&b) + 1e-9);
    }
}

#[test]
fn transpose_preserves_norms() {
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..48 {
        let m = rng.gen_range(1..25);
        let n = rng.gen_range(1..25);
        let seed = rng.next_u64() % 1000;
        let a = gen::uniform(m, n, seed);
        let at = a.transpose();
        assert!((norms::frobenius(&a) - norms::frobenius(&at)).abs() < 1e-12);
        assert!((norms::one_norm(&a) - norms::inf_norm(&at)).abs() < 1e-12);
        let _ = DenseMatrix::zeros(1, 1);
    }
}
