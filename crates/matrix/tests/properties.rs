//! Property-based tests of the storage substrate.

use calu_matrix::{gen, norms, ops, BclMatrix, CmTiles, DenseMatrix, ProcessGrid, RowPerm, TileStorage, TlbMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn storage_roundtrips(
        m in 1usize..50,
        n in 1usize..50,
        b in 1usize..16,
        pr in 1usize..4,
        pc in 1usize..4,
        seed in 0u64..1000,
    ) {
        let a = gen::uniform(m, n, seed);
        let grid = ProcessGrid::new(pr, pc).unwrap();
        prop_assert!(CmTiles::from_dense(&a, b).to_dense().approx_eq(&a, 0.0));
        prop_assert!(BclMatrix::from_dense(&a, b, grid).to_dense().approx_eq(&a, 0.0));
        prop_assert!(TlbMatrix::from_dense(&a, b, grid).to_dense().approx_eq(&a, 0.0));
    }

    #[test]
    fn tile_views_agree_across_layouts(
        m in 1usize..40,
        n in 1usize..40,
        b in 1usize..12,
        seed in 0u64..1000,
    ) {
        let a = gen::uniform(m, n, seed);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let cm = CmTiles::from_dense(&a, b);
        let bcl = BclMatrix::from_dense(&a, b, grid);
        let tlb = TlbMatrix::from_dense(&a, b, grid);
        let t = cm.tiling();
        for (ti, tj) in t.tiles() {
            let want = cm.tile(ti, tj).to_dense();
            prop_assert!(bcl.tile(ti, tj).to_dense().approx_eq(&want, 0.0));
            prop_assert!(tlb.tile(ti, tj).to_dense().approx_eq(&want, 0.0));
        }
    }

    #[test]
    fn block_cyclic_owner_counts_are_balanced(
        tiles in 1usize..40,
        pr in 1usize..5,
    ) {
        let grid = ProcessGrid::new(pr, 1).unwrap();
        let counts: Vec<usize> = (0..pr).map(|r| grid.local_tile_rows(tiles, r)).collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "cyclic distribution is balanced");
        prop_assert_eq!(counts.iter().sum::<usize>(), tiles);
    }

    #[test]
    fn permutations_are_bijections(
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        // random valid pivot sequence
        let mut piv = Vec::with_capacity(n);
        let mut state = seed;
        for k in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            piv.push(k + (state as usize % (n - k)));
        }
        let perm = RowPerm::from_pivots(0, piv);
        let p = perm.explicit(n);
        let mut sorted = p.clone();
        sorted.sort();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        // apply + inverse = identity
        let a = gen::uniform(n, 3, seed);
        let mut b = a.clone();
        perm.apply(&mut b);
        perm.apply_inverse(&mut b);
        prop_assert!(b.approx_eq(&a, 0.0));
    }

    #[test]
    fn norm_relations(
        m in 1usize..30,
        n in 1usize..30,
        seed in 0u64..1000,
    ) {
        let a = gen::uniform(m, n, seed);
        let f = norms::frobenius(&a);
        let mx = norms::max_norm(&a);
        prop_assert!(mx <= f + 1e-12);
        prop_assert!(f <= ((m * n) as f64).sqrt() * mx + 1e-12);
        // triangle inequality on a random pair
        let b = gen::uniform(m, n, seed + 1);
        prop_assert!(norms::frobenius(&ops::add(&a, &b)) <= f + norms::frobenius(&b) + 1e-9);
    }

    #[test]
    fn transpose_preserves_norms(
        m in 1usize..25,
        n in 1usize..25,
        seed in 0u64..1000,
    ) {
        let a = gen::uniform(m, n, seed);
        let at = a.transpose();
        prop_assert!((norms::frobenius(&a) - norms::frobenius(&at)).abs() < 1e-12);
        prop_assert!((norms::one_norm(&a) - norms::inf_norm(&at)).abs() < 1e-12);
        let _ = DenseMatrix::zeros(1, 1);
    }
}
