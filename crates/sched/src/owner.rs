//! Task → thread ownership under the 2D block-cyclic distribution.

use calu_dag::{TaskGraph, TaskId};
use calu_matrix::ProcessGrid;

/// Precomputed owner (thread id) of every task: the owner of the tile the
/// task writes, under the block-cyclic map of the static section (§3:
/// "the matrix is distributed to threads using a classic two-dimensional
/// block-cyclic distribution").
#[derive(Debug, Clone)]
pub struct OwnerMap {
    owners: Vec<u16>,
    grid: ProcessGrid,
}

impl OwnerMap {
    /// Build the map for graph `g` over `grid`.
    pub fn new(g: &TaskGraph, grid: ProcessGrid) -> Self {
        assert!(grid.size() <= u16::MAX as usize, "too many threads");
        let owners = g
            .ids()
            .map(|t| {
                let (ti, tj) = g.kind(t).writes_tile();
                grid.owner(ti, tj) as u16
            })
            .collect();
        Self { owners, grid }
    }

    /// Owner thread of task `t`.
    #[inline]
    pub fn owner(&self, t: TaskId) -> usize {
        self.owners[t.idx()] as usize
    }

    /// The grid this map distributes over.
    pub fn grid(&self) -> ProcessGrid {
        self.grid
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.grid.size()
    }

    /// Tasks per thread (for load inspection).
    pub fn histogram(&self) -> Vec<usize> {
        let mut h = vec![0usize; self.threads()];
        for &o in &self.owners {
            h[o as usize] += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_dag::TaskKind;

    #[test]
    fn owners_follow_block_cyclic_map() {
        let g = TaskGraph::build(600, 600, 100);
        let grid = ProcessGrid::new(2, 3).unwrap();
        let map = OwnerMap::new(&g, grid);
        for t in g.ids() {
            let (ti, tj) = g.kind(t).writes_tile();
            assert_eq!(map.owner(t), grid.owner(ti, tj));
        }
    }

    #[test]
    fn update_tasks_are_owned_by_their_tile() {
        let g = TaskGraph::build(400, 400, 100);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let map = OwnerMap::new(&g, grid);
        for t in g.ids() {
            if let TaskKind::Update { i, j, .. } = g.kind(t) {
                assert_eq!(map.owner(t), grid.owner(i as usize, j as usize));
            }
        }
    }

    #[test]
    fn histogram_sums_to_task_count() {
        let g = TaskGraph::build(500, 500, 100);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let map = OwnerMap::new(&g, grid);
        let h = map.histogram();
        assert_eq!(h.iter().sum::<usize>(), g.len());
        // a 2x2 cyclic distribution of a 5x5-tile problem keeps all
        // threads busy: nobody owns zero tasks
        assert!(h.iter().all(|&c| c > 0));
    }

    #[test]
    fn single_thread_owns_everything() {
        let g = TaskGraph::build(300, 300, 100);
        let grid = ProcessGrid::new(1, 1).unwrap();
        let map = OwnerMap::new(&g, grid);
        assert!(g.ids().all(|t| map.owner(t) == 0));
    }
}
