//! A hermetic Chase–Lev work-stealing deque over `std` atomics.
//!
//! This is the lock-free backing store of
//! [`QueueDiscipline::LockFree`](crate::QueueDiscipline): one deque per
//! worker, the owner pushes and pops at the *bottom* (LIFO, so the most
//! recently enabled — cache-hottest — panel work runs next), thieves
//! steal from the *top* (FIFO, the coldest entries, whose tiles have
//! likely left the victim's cache anyway). Priority is not encoded in
//! the deque itself: the executor pushes each completion's newly ready
//! successors in descending DAG-priority order (least critical first),
//! so the owner's LIFO pop serves them most-critical-first, while a
//! thief's FIFO steal takes the *least* critical survivor of the
//! oldest batch — the victim keeps its critical-path work, the classic
//! Cilk trade-off (contrast the mutex shards, where a steal takes the
//! victim's best task).
//!
//! The implementation is the fixed-capacity variant of Chase & Lev's
//! algorithm with the memory orderings of Lê, Pop, Cohen & Zappa
//! Nardelli, *Correct and Efficient Work-Stealing for Weak Memory
//! Models* (PPoPP'13). The buffer cells are themselves `AtomicU64`s, so
//! the whole structure is safe Rust with **zero `unsafe`**: the racy
//! buffer reads the paper performs on plain memory become relaxed
//! atomic loads here, which Miri and the C11 model accept verbatim.
//!
//! ## Memory-ordering invariants
//!
//! The algorithm is correct iff these five invariants hold; each maps to
//! one ordering annotation below:
//!
//! 1. **Publish on push.** The owner's cell store (`Relaxed`) is made
//!    visible to thieves by the `Release` store of `bottom`; a thief's
//!    `Acquire` load of `bottom` therefore observes the cell contents
//!    of every entry below it.
//! 2. **Owner/thief race on the last entry.** `pop` decrements `bottom`
//!    *before* reading `top`, with a `SeqCst` fence between; `steal`
//!    reads `top` *before* `bottom`, also fenced. The two fences order
//!    the four accesses into a total order in which at most one side
//!    can believe it owns the final entry.
//! 3. **Steal linearization.** A thief claims its entry with a `SeqCst`
//!    compare-exchange on `top`; a failed exchange means another thief
//!    (or the owner, via invariant 2) already took it, and the thief
//!    must *not* use the value it read.
//! 4. **Read before claim.** The thief loads the cell *before* the
//!    compare-exchange: after a successful claim the owner is free to
//!    overwrite the slot with a new push, so reading afterwards could
//!    observe the new value. The pre-claim read may observe a stale
//!    value, but then the compare-exchange fails and the value is
//!    discarded (invariant 3).
//! 5. **No recycling in flight.** A slot is reused only after `top`
//!    has passed it, which the owner observes via the `Acquire` load in
//!    `push`; the capacity check (`bottom − top < capacity`) guarantees
//!    a push never overwrites an unclaimed entry.
//!
//! Capacity is fixed at construction: the CALU executor sizes every
//! deque to the task-graph length, so `push` can never observe a full
//! buffer there. `push` still reports fullness (returning the rejected
//! value) rather than silently dropping work, and the caller decides.
//!
//! Single-owner discipline is a *correctness* contract, not a safety
//! one: if two threads push/pop concurrently no undefined behaviour
//! occurs (everything is atomic), but entries may be duplicated or
//! lost. The executor upholds the contract structurally — worker `w`
//! only ever pushes/pops `deques[w]` and steals from the rest.

use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};

/// Result of a [`Deque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// Stole this value.
    Taken(u64),
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; the deque may still
    /// be non-empty — retry if the victim matters, move on otherwise.
    Retry,
}

/// A fixed-capacity Chase–Lev work-stealing deque of `u64` values.
///
/// One thread (the owner) calls [`push`](Deque::push) and
/// [`pop`](Deque::pop); any number of threads call
/// [`steal`](Deque::steal) concurrently. See the module docs for the
/// ordering invariants.
#[derive(Debug)]
pub struct Deque {
    /// Next slot the owner will push into (owner-written).
    bottom: AtomicI64,
    /// Oldest unclaimed slot (thief-advanced).
    top: AtomicI64,
    /// Power-of-two ring of value cells.
    buf: Box<[AtomicU64]>,
    mask: i64,
}

impl Deque {
    /// A deque that can hold at least `capacity` entries at once.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        assert!(cap <= (i64::MAX / 4) as usize, "deque capacity overflow");
        Self {
            bottom: AtomicI64::new(0),
            top: AtomicI64::new(0),
            buf: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as i64 - 1,
        }
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Entries currently in the deque (racy snapshot — exact only when
    /// quiescent).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether the deque appears empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot(&self, i: i64) -> &AtomicU64 {
        &self.buf[(i & self.mask) as usize]
    }

    /// Owner-only: push `v` at the bottom. Returns `Err(v)` when the
    /// deque is full (invariant 5's capacity check).
    #[inline]
    pub fn push(&self, v: u64) -> Result<(), u64> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire); // inv. 5
        if b - t > self.mask {
            return Err(v); // full: every slot holds an unclaimed entry
        }
        self.slot(b).store(v, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release); // inv. 1: publish
        Ok(())
    }

    /// Owner-only: pop the most recently pushed entry (LIFO).
    #[inline]
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed); // reserve before reading top
        fence(Ordering::SeqCst); // inv. 2
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // already empty: undo the reservation
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let v = self.slot(b).load(Ordering::Relaxed);
        if t == b {
            // last entry: race thieves for it through top (inv. 2/3)
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(v);
        }
        Some(v)
    }

    /// Thief-safe: steal the oldest entry (FIFO). Callable from any
    /// thread, concurrently.
    #[inline]
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst); // inv. 2
        let b = self.bottom.load(Ordering::Acquire); // inv. 1
        if t >= b {
            return Steal::Empty;
        }
        let v = self.slot(t).load(Ordering::Relaxed); // inv. 4: read first
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            return Steal::Retry; // inv. 3: claim failed, discard v
        }
        Steal::Taken(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn lifo_for_the_owner() {
        let d = Deque::with_capacity(8);
        for v in 1..=5u64 {
            d.push(v).unwrap();
        }
        assert_eq!(d.len(), 5);
        for v in (1..=5u64).rev() {
            assert_eq!(d.pop(), Some(v));
        }
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn fifo_for_thieves() {
        let d = Deque::with_capacity(8);
        for v in 1..=5u64 {
            d.push(v).unwrap();
        }
        assert_eq!(d.steal(), Steal::Taken(1));
        assert_eq!(d.steal(), Steal::Taken(2));
        // the owner still pops the newest end
        assert_eq!(d.pop(), Some(5));
        assert_eq!(d.steal(), Steal::Taken(3));
        assert_eq!(d.pop(), Some(4));
        assert_eq!(d.steal(), Steal::Empty);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn full_push_returns_the_value() {
        let d = Deque::with_capacity(4);
        for v in 0..4u64 {
            d.push(v).unwrap();
        }
        assert_eq!(d.push(99), Err(99));
        assert_eq!(d.pop(), Some(3));
        d.push(99).unwrap();
        assert_eq!(d.pop(), Some(99));
    }

    #[test]
    fn ring_reuse_across_many_wraps() {
        let d = Deque::with_capacity(4);
        for round in 0..100u64 {
            d.push(round * 2).unwrap();
            d.push(round * 2 + 1).unwrap();
            assert_eq!(d.pop(), Some(round * 2 + 1));
            assert_eq!(d.steal(), Steal::Taken(round * 2));
        }
        assert!(d.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(Deque::with_capacity(0).capacity(), 2);
        assert_eq!(Deque::with_capacity(5).capacity(), 8);
        assert_eq!(Deque::with_capacity(8).capacity(), 8);
    }

    /// The satellite stress test: many thieves hammer one deque while
    /// the owner interleaves pushes and pops; every pushed value must be
    /// taken exactly once, none lost, none duplicated. Sized down under
    /// Miri, which interprets every instruction.
    #[test]
    fn stress_no_task_lost_or_duplicated() {
        const THIEVES: usize = if cfg!(miri) { 3 } else { 7 };
        const VALUES: u64 = if cfg!(miri) { 200 } else { 100_000 };

        let d = Deque::with_capacity(VALUES as usize);
        let done = AtomicBool::new(false);
        // one claim slot per value: flipping it twice means a duplicate
        let claimed: Vec<AtomicBool> = (0..VALUES).map(|_| AtomicBool::new(false)).collect();

        std::thread::scope(|scope| {
            for _ in 0..THIEVES {
                scope.spawn(|| {
                    let mut taken = 0u64;
                    while !done.load(Ordering::Acquire) || !d.is_empty() {
                        match d.steal() {
                            Steal::Taken(v) => {
                                assert!(
                                    !claimed[v as usize].swap(true, Ordering::AcqRel),
                                    "value {v} stolen twice"
                                );
                                taken += 1;
                            }
                            Steal::Empty | Steal::Retry => std::hint::spin_loop(),
                        }
                    }
                    taken
                });
            }
            // the owner pushes everything, popping a burst every few
            // pushes so the bottom end stays contended too
            let mut next = 0u64;
            while next < VALUES {
                for _ in 0..13 {
                    if next == VALUES {
                        break;
                    }
                    d.push(next).expect("sized for all values");
                    next += 1;
                }
                for _ in 0..5 {
                    if let Some(v) = d.pop() {
                        assert!(
                            !claimed[v as usize].swap(true, Ordering::AcqRel),
                            "value {v} popped twice"
                        );
                    }
                }
            }
            done.store(true, Ordering::Release);
            // drain whatever the thieves leave behind
            while let Some(v) = d.pop() {
                assert!(
                    !claimed[v as usize].swap(true, Ordering::AcqRel),
                    "value {v} double-claimed in drain"
                );
            }
        });

        let total = claimed.iter().filter(|c| c.load(Ordering::Acquire)).count() as u64;
        assert_eq!(total, VALUES, "every value claimed exactly once");
    }

    /// Two-thread owner/thief duel over single entries: the invariant-2
    /// race (pop vs. steal on the last element) must never hand the same
    /// value to both sides, and never lose it.
    #[test]
    fn last_entry_race_is_exclusive() {
        const ROUNDS: u64 = if cfg!(miri) { 100 } else { 20_000 };
        let d = Deque::with_capacity(2);
        let owner_got: AtomicU64 = AtomicU64::new(0);
        let thief_got: AtomicU64 = AtomicU64::new(0);
        let round = AtomicI64::new(-1);
        let done = AtomicBool::new(false);

        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut seen = -1;
                while !done.load(Ordering::Acquire) {
                    let r = round.load(Ordering::Acquire);
                    if r == seen {
                        std::hint::spin_loop();
                        continue;
                    }
                    seen = r;
                    if let Steal::Taken(_) = d.steal() {
                        thief_got.fetch_add(1, Ordering::AcqRel);
                    }
                }
            });
            for r in 0..ROUNDS {
                d.push(r).unwrap();
                round.store(r as i64, Ordering::Release);
                if d.pop().is_some() {
                    owner_got.fetch_add(1, Ordering::AcqRel);
                }
                // whoever won, the deque must now drain to empty
                while let Some(_v) = d.pop() {
                    owner_got.fetch_add(1, Ordering::AcqRel);
                }
            }
            done.store(true, Ordering::Release);
        });

        assert_eq!(
            owner_got.load(Ordering::Acquire) + thief_got.load(Ordering::Acquire),
            ROUNDS,
            "each entry claimed exactly once across both ends"
        );
    }
}
