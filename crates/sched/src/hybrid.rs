//! The paper's hybrid static/dynamic policy (Algorithms 1 and 2).
//!
//! Tasks writing tile columns `< Nstatic` are distributed statically to
//! their block-cyclic owners; the rest feed one shared queue in DFS
//! column order. A core always prefers its own static queue ("each
//! thread executes in priority tasks from the static part, to ensure
//! progress in the critical path"); only when that is empty does it pull
//! from the dynamic queue — so the dynamic section is exactly the
//! load-balancing reservoir that fills the static section's idle pockets.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use calu_dag::{TaskGraph, TaskId, TaskKind};
use calu_matrix::ProcessGrid;

use crate::config::nstatic_for;
use crate::owner::OwnerMap;
use crate::policy::{Policy, Popped, QueueSource};
use crate::priority::{dynamic_key, static_key};

/// See module docs.
pub struct HybridPolicy {
    owners: OwnerMap,
    kinds: Vec<TaskKind>,
    static_keys: Vec<u64>,
    dynamic_keys: Vec<u64>,
    is_static: Vec<bool>,
    local: Vec<BinaryHeap<Reverse<(u64, u32)>>>,
    global: BinaryHeap<Reverse<(u64, u32)>>,
    nstatic: usize,
    queued: usize,
}

impl HybridPolicy {
    /// Build for graph `g` over `grid`, scheduling a `dratio` fraction of
    /// the panels dynamically.
    pub fn new(g: &TaskGraph, grid: ProcessGrid, dratio: f64) -> Self {
        let nstatic = nstatic_for(dratio, g.num_panels());
        Self::with_nstatic(g, grid, nstatic)
    }

    /// Build with an explicit static panel count.
    pub fn with_nstatic(g: &TaskGraph, grid: ProcessGrid, nstatic: usize) -> Self {
        let owners = OwnerMap::new(g, grid);
        let kinds: Vec<TaskKind> = g.ids().map(|t| g.kind(t)).collect();
        let is_static = kinds.iter().map(|k| k.writes_col() < nstatic).collect();
        Self {
            static_keys: kinds.iter().map(static_key).collect(),
            dynamic_keys: kinds.iter().map(dynamic_key).collect(),
            local: (0..grid.size()).map(|_| BinaryHeap::new()).collect(),
            global: BinaryHeap::new(),
            owners,
            kinds,
            is_static,
            nstatic,
            queued: 0,
        }
    }

    /// The number of statically scheduled panels.
    pub fn nstatic(&self) -> usize {
        self.nstatic
    }

    fn pop_local(&mut self, core: usize) -> Option<TaskId> {
        self.local[core].pop().map(|Reverse((_, t))| {
            self.queued -= 1;
            TaskId(t)
        })
    }

    fn pop_global(&mut self) -> Option<TaskId> {
        self.global.pop().map(|Reverse((_, t))| {
            self.queued -= 1;
            TaskId(t)
        })
    }
}

impl Policy for HybridPolicy {
    fn on_ready(&mut self, t: TaskId, _completer: Option<usize>) {
        self.queued += 1;
        if self.is_static[t.idx()] {
            let owner = self.owners.owner(t);
            self.local[owner].push(Reverse((self.static_keys[t.idx()], t.0)));
        } else {
            self.global.push(Reverse((self.dynamic_keys[t.idx()], t.0)));
        }
    }

    fn pop(&mut self, core: usize) -> Option<Popped> {
        if let Some(task) = self.pop_local(core) {
            return Some(Popped {
                task,
                source: QueueSource::Local,
            });
        }
        self.pop_global().map(|task| Popped {
            task,
            source: QueueSource::Global,
        })
    }

    fn pop_batch(&mut self, core: usize, max: usize) -> Vec<Popped> {
        let Some(first) = self.pop(core) else {
            return vec![];
        };
        let mut batch = vec![first];
        match first.source {
            // local queue: group the thread's own updates of one column
            // step, like the paper's grouped BLAS-3 calls on owned blocks
            QueueSource::Local => {
                if let TaskKind::Update { k, j, .. } = self.kinds[first.task.idx()] {
                    while batch.len() < max {
                        let same_step = self.local[core]
                            .peek()
                            .map(|Reverse((_, t))| {
                                matches!(self.kinds[*t as usize],
                                    TaskKind::Update { k: hk, j: hj, .. } if hk == k && hj == j)
                            })
                            .unwrap_or(false);
                        if !same_step {
                            break;
                        }
                        let t = self.pop_local(core).expect("peeked");
                        batch.push(Popped {
                            task: t,
                            source: QueueSource::Local,
                        });
                    }
                }
            }
            // global queue: group the head run of updates of one column
            // step (k, j) — adjacent under the DFS order
            _ => {
                if let TaskKind::Update { k, j, .. } = self.kinds[first.task.idx()] {
                    while batch.len() < max {
                        let same = self
                            .global
                            .peek()
                            .map(|Reverse((_, t))| {
                                matches!(self.kinds[*t as usize],
                                    TaskKind::Update { k: hk, j: hj, .. } if hk == k && hj == j)
                            })
                            .unwrap_or(false);
                        if !same {
                            break;
                        }
                        let t = self.pop_global().expect("peeked");
                        batch.push(Popped {
                            task: t,
                            source: QueueSource::Global,
                        });
                    }
                }
            }
        }
        batch
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn queued(&self) -> usize {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> TaskGraph {
        TaskGraph::build(800, 800, 100) // 8x8 tiles
    }

    #[test]
    fn split_follows_writes_col() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let p = HybridPolicy::new(&g, grid, 0.25); // nstatic = 6
        assert_eq!(p.nstatic(), 6);
        for t in g.ids() {
            assert_eq!(p.is_static[t.idx()], g.kind(t).writes_col() < 6);
        }
    }

    #[test]
    fn local_preferred_over_global() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5); // nstatic = 4
        let owners = OwnerMap::new(&g, grid);
        // a static task owned by core 0 and any dynamic task
        let stat = g
            .ids()
            .find(|&t| g.kind(t).writes_col() < 4 && owners.owner(t) == 0)
            .unwrap();
        let dynam = g.ids().find(|&t| g.kind(t).writes_col() >= 4).unwrap();
        p.on_ready(dynam, None);
        p.on_ready(stat, None);
        let first = p.pop(0).unwrap();
        assert_eq!(first.task, stat);
        assert_eq!(first.source, QueueSource::Local);
        let second = p.pop(0).unwrap();
        assert_eq!(second.task, dynam);
        assert_eq!(second.source, QueueSource::Global);
    }

    #[test]
    fn idle_threads_fall_through_to_dynamic_queue() {
        // core 3 owns none of the queued static tasks: it must get dynamic work
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5);
        let owners = OwnerMap::new(&g, grid);
        let stat = g
            .ids()
            .find(|&t| g.kind(t).writes_col() < 4 && owners.owner(t) == 0)
            .unwrap();
        let dynam = g.ids().find(|&t| g.kind(t).writes_col() >= 4).unwrap();
        p.on_ready(stat, None);
        p.on_ready(dynam, None);
        let popped = p.pop(3).unwrap();
        assert_eq!(popped.task, dynam, "non-owner must take dynamic work");
        assert_eq!(popped.source, QueueSource::Global);
    }

    #[test]
    fn dratio_zero_is_all_static_dratio_one_all_dynamic() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let all_static = HybridPolicy::new(&g, grid, 0.0);
        assert!(all_static.is_static.iter().all(|&s| s));
        let all_dynamic = HybridPolicy::new(&g, grid, 1.0);
        assert!(all_dynamic.is_static.iter().all(|&s| !s));
    }

    #[test]
    fn drains_completely() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.2);
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.initial_ready() {
            p.on_ready(t, None);
        }
        let mut done = 0;
        while done < g.len() {
            let mut progressed = false;
            for core in 0..4 {
                if let Some(popped) = p.pop(core) {
                    progressed = true;
                    done += 1;
                    for &s in g.successors(popped.task) {
                        deps[s.idx()] -= 1;
                        if deps[s.idx()] == 0 {
                            p.on_ready(s, Some(core));
                        }
                    }
                }
            }
            assert!(progressed);
        }
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn global_batch_groups_same_column_step_only() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5);
        // two dynamic S tasks in column 5 and one in column 6, all panel 0
        let pick = |i: u32, j: u32| {
            g.ids()
                .find(|&t| g.kind(t) == TaskKind::Update { k: 0, i, j })
                .unwrap()
        };
        for t in [pick(1, 5), pick(2, 5), pick(1, 6)] {
            assert!(!p.is_static[t.idx()]);
            p.on_ready(t, None);
        }
        let batch = p.pop_batch(0, 4);
        assert_eq!(batch.len(), 2, "column-5 updates group, column 6 does not");
        assert!(batch
            .iter()
            .all(|pp| matches!(g.kind(pp.task), TaskKind::Update { j: 5, .. })));
        let rest = p.pop_batch(0, 4);
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn batch_never_mixes_local_and_global() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5);
        let owners = OwnerMap::new(&g, grid);
        // one static update owned by core 0 and one dynamic update
        let stat = g
            .ids()
            .find(|&t| {
                matches!(g.kind(t), TaskKind::Update { .. })
                    && p.is_static[t.idx()]
                    && owners.owner(t) == 0
            })
            .unwrap();
        let dynam = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { .. }) && !p.is_static[t.idx()])
            .unwrap();
        p.on_ready(stat, None);
        p.on_ready(dynam, None);
        let batch = p.pop_batch(0, 4);
        assert_eq!(batch.len(), 1, "local batch must not absorb global tasks");
        assert_eq!(batch[0].source, QueueSource::Local);
    }
}
