//! The paper's hybrid static/dynamic policy (Algorithms 1 and 2).
//!
//! Tasks writing tile columns `< Nstatic` are distributed statically to
//! their block-cyclic owners; the rest form the dynamic section in DFS
//! column order. A core always prefers its own static queue ("each
//! thread executes in priority tasks from the static part, to ensure
//! progress in the critical path"); only when that is empty does it turn
//! to the dynamic section — so the dynamic section is exactly the
//! load-balancing reservoir that fills the static section's idle pockets.
//!
//! The dynamic section itself is organized by a [`QueueDiscipline`]:
//!
//! * [`QueueDiscipline::Global`] — one shared queue, the paper's
//!   Algorithm 2 verbatim;
//! * [`QueueDiscipline::Sharded`] — per-core priority shards with
//!   randomized stealing; each shard keeps the DFS order, so even a
//!   steal takes the victim's most critical task.
//! * [`QueueDiscipline::LockFree`] — per-core Chase-Lev-style deques
//!   (owner LIFO, thieves FIFO) with the locality-tiered victim sweep
//!   of [`StealTiers`]; this is the decision-procedure model of the
//!   real executor's lock-free deques, priced by the simulator with
//!   locality-dependent steal costs.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use calu_dag::{TaskGraph, TaskId, TaskKind};
use calu_matrix::ProcessGrid;
use calu_rand::Rng;

use crate::config::nstatic_for;
use crate::discipline::{steal_order, QueueDiscipline};
use crate::owner::OwnerMap;
use crate::policy::{Policy, Popped, QueueSource};
use crate::priority::{dynamic_key, static_key};
use crate::topology::{CpuTopology, StealOrder, StealTier, StealTiers};

type Heap = BinaryHeap<Reverse<(u64, u32)>>;

/// The dynamic section's queue organization (see module docs).
enum DynSection {
    /// One shared DFS-ordered queue.
    Global(Heap),
    /// Per-core DFS-ordered shards; `rr` scatters initially ready tasks,
    /// `rng` drives victim selection for steals.
    Sharded {
        shards: Vec<Heap>,
        rng: Rng,
        rr: usize,
        seed: u64,
    },
    /// Per-core deques modelling the executor's Chase-Lev deques: the
    /// owner pops the back, thieves take the front in the
    /// locality-tiered sweep order. A push sinks toward the front past
    /// any more critical (smaller-key) back entries, so each deque
    /// stays priority-sorted with its most critical entry at the
    /// owner's end and its least critical at the thieves' end — the
    /// decision-procedure idealization of the executor's rule (the real
    /// deque sorts only within one completion's successor batch and is
    /// LIFO across batches).
    LockFree {
        deques: Vec<VecDeque<(u64, u32)>>,
        tiers: Vec<StealTiers>,
        order: StealOrder,
        rng: Rng,
        rr: usize,
        seed: u64,
    },
}

/// See module docs.
pub struct HybridPolicy {
    owners: OwnerMap,
    kinds: Vec<TaskKind>,
    static_keys: Vec<u64>,
    dynamic_keys: Vec<u64>,
    is_static: Vec<bool>,
    local: Vec<Heap>,
    dynamic: DynSection,
    nstatic: usize,
    queued: usize,
    /// Cores whose static queues were rescued ([`Policy::rescue`]):
    /// their future static publishes reroute to the dynamic section.
    lost: Vec<bool>,
}

impl HybridPolicy {
    /// Build for graph `g` over `grid`, scheduling a `dratio` fraction of
    /// the panels dynamically through one shared global queue.
    pub fn new(g: &TaskGraph, grid: ProcessGrid, dratio: f64) -> Self {
        Self::with_discipline(g, grid, dratio, QueueDiscipline::Global)
    }

    /// Build with an explicit dynamic-section queue discipline.
    pub fn with_discipline(
        g: &TaskGraph,
        grid: ProcessGrid,
        dratio: f64,
        queue: QueueDiscipline,
    ) -> Self {
        let nstatic = nstatic_for(dratio, g.num_panels());
        Self::with_nstatic_discipline(g, grid, nstatic, queue)
    }

    /// Build with an explicit static panel count.
    pub fn with_nstatic(g: &TaskGraph, grid: ProcessGrid, nstatic: usize) -> Self {
        Self::with_nstatic_discipline(g, grid, nstatic, QueueDiscipline::Global)
    }

    /// Build with an explicit static panel count and queue discipline,
    /// with a flat (single-socket) topology for the lock-free tiers.
    pub fn with_nstatic_discipline(
        g: &TaskGraph,
        grid: ProcessGrid,
        nstatic: usize,
        queue: QueueDiscipline,
    ) -> Self {
        Self::with_nstatic_discipline_on(g, grid, nstatic, queue, &CpuTopology::flat(grid.size()))
    }

    /// Build with an explicit static panel count, queue discipline, and
    /// CPU topology (the topology shapes the lock-free discipline's
    /// tiered victim sweeps; the other disciplines ignore it).
    pub fn with_nstatic_discipline_on(
        g: &TaskGraph,
        grid: ProcessGrid,
        nstatic: usize,
        queue: QueueDiscipline,
        topo: &CpuTopology,
    ) -> Self {
        Self::with_nstatic_discipline_ordered(g, grid, nstatic, queue, topo, StealOrder::default())
    }

    /// [`with_nstatic_discipline_on`](Self::with_nstatic_discipline_on)
    /// with an explicit steal-sweep direction for the lock-free
    /// discipline's tiered sweeps (the adaptive controller's knob; the
    /// other disciplines ignore it).
    pub fn with_nstatic_discipline_ordered(
        g: &TaskGraph,
        grid: ProcessGrid,
        nstatic: usize,
        queue: QueueDiscipline,
        topo: &CpuTopology,
        order: StealOrder,
    ) -> Self {
        let owners = OwnerMap::new(g, grid);
        let kinds: Vec<TaskKind> = g.ids().map(|t| g.kind(t)).collect();
        let is_static = kinds.iter().map(|k| k.writes_col() < nstatic).collect();
        let cores = grid.size();
        let dynamic = match queue {
            QueueDiscipline::Global => DynSection::Global(BinaryHeap::new()),
            QueueDiscipline::Sharded { seed } => DynSection::Sharded {
                shards: (0..cores).map(|_| BinaryHeap::new()).collect(),
                rng: Rng::seed_from_u64(seed),
                rr: 0,
                seed,
            },
            QueueDiscipline::LockFree { seed } => DynSection::LockFree {
                deques: (0..cores).map(|_| VecDeque::new()).collect(),
                tiers: (0..cores)
                    .map(|me| StealTiers::for_worker(topo, me, cores))
                    .collect(),
                order,
                rng: Rng::seed_from_u64(seed),
                rr: 0,
                seed,
            },
        };
        Self {
            static_keys: kinds.iter().map(static_key).collect(),
            dynamic_keys: kinds.iter().map(dynamic_key).collect(),
            local: (0..grid.size()).map(|_| BinaryHeap::new()).collect(),
            dynamic,
            owners,
            kinds,
            is_static,
            nstatic,
            queued: 0,
            lost: vec![false; cores],
        }
    }

    /// The number of statically scheduled panels.
    pub fn nstatic(&self) -> usize {
        self.nstatic
    }

    /// The dynamic-section queue discipline this policy runs.
    pub fn discipline(&self) -> QueueDiscipline {
        match &self.dynamic {
            DynSection::Global(_) => QueueDiscipline::Global,
            DynSection::Sharded { seed, .. } => QueueDiscipline::Sharded { seed: *seed },
            DynSection::LockFree { seed, .. } => QueueDiscipline::LockFree { seed: *seed },
        }
    }

    /// Publish a task into the dynamic section under `key` (the shared
    /// path of `on_ready`'s dynamic arm and `rescue`'s republishing).
    fn push_dynamic(&mut self, key: u64, t: TaskId, completer: Option<usize>) {
        match &mut self.dynamic {
            DynSection::Global(q) => q.push(Reverse((key, t.0))),
            DynSection::Sharded { shards, rr, .. } => {
                // push to the enabling core's shard (locality);
                // scatter initially ready tasks round-robin
                let home = completer.unwrap_or_else(|| {
                    let c = *rr;
                    *rr = (*rr + 1) % shards.len();
                    c
                });
                shards[home].push(Reverse((key, t.0)));
            }
            DynSection::LockFree { deques, rr, .. } => {
                let home = completer.unwrap_or_else(|| {
                    let c = *rr;
                    *rr = (*rr + 1) % deques.len();
                    c
                });
                // sink toward the front past more critical
                // (smaller-key) back entries so the owner's end
                // stays the most critical (DynSection::LockFree docs)
                let dq = &mut deques[home];
                let mut at = dq.len();
                while at > 0 && dq[at - 1].0 < key {
                    at -= 1;
                }
                dq.insert(at, (key, t.0));
            }
        }
    }

    fn pop_local(&mut self, core: usize) -> Option<TaskId> {
        self.local[core].pop().map(|Reverse((_, t))| {
            self.queued -= 1;
            TaskId(t)
        })
    }

    /// Serve the dynamic section: the global queue, or (sharded) the
    /// core's own shard first and a seeded-random victim sweep after.
    fn pop_dynamic(&mut self, core: usize) -> Option<Popped> {
        let popped = match &mut self.dynamic {
            DynSection::Global(q) => q.pop().map(|Reverse((_, t))| Popped {
                task: TaskId(t),
                source: QueueSource::Global,
            }),
            DynSection::Sharded { shards, rng, .. } => {
                if let Some(Reverse((_, t))) = shards[core].pop() {
                    Some(Popped {
                        task: TaskId(t),
                        source: QueueSource::Shard,
                    })
                } else if shards.len() > 1 {
                    let mut found = None;
                    for victim in steal_order(rng, core, shards.len()) {
                        if let Some(Reverse((_, t))) = shards[victim].pop() {
                            found = Some(Popped {
                                task: TaskId(t),
                                source: QueueSource::Stolen,
                            });
                            break;
                        }
                    }
                    found
                } else {
                    None
                }
            }
            DynSection::LockFree {
                deques,
                tiers,
                order,
                rng,
                ..
            } => {
                if let Some((_, t)) = deques[core].pop_back() {
                    Some(Popped {
                        task: TaskId(t),
                        source: QueueSource::Shard,
                    })
                } else {
                    let mut found = None;
                    for (victim, tier) in tiers[core].sweep_ordered(*order, rng) {
                        if let Some((_, t)) = deques[victim].pop_front() {
                            found = Some(Popped {
                                task: TaskId(t),
                                source: match tier {
                                    StealTier::Remote => QueueSource::StolenRemote,
                                    _ => QueueSource::Stolen,
                                },
                            });
                            break;
                        }
                    }
                    found
                }
            }
        };
        if popped.is_some() {
            self.queued -= 1;
        }
        popped
    }
}

impl Policy for HybridPolicy {
    fn on_ready(&mut self, t: TaskId, completer: Option<usize>) {
        self.queued += 1;
        if self.is_static[t.idx()] {
            let owner = self.owners.owner(t);
            if !self.lost[owner] {
                self.local[owner].push(Reverse((self.static_keys[t.idx()], t.0)));
                return;
            }
            // the owner was rescued: its static share rides the dynamic
            // section under the DFS order, like every dynamic task
        }
        self.push_dynamic(self.dynamic_keys[t.idx()], t, completer);
    }

    fn rescue(&mut self, core: usize) -> usize {
        self.lost[core] = true;
        let drained: Vec<TaskId> = std::mem::take(&mut self.local[core])
            .into_sorted_vec()
            .into_iter()
            .map(|Reverse((_, t))| TaskId(t))
            .collect();
        for &t in &drained {
            self.push_dynamic(self.dynamic_keys[t.idx()], t, None);
        }
        drained.len()
    }

    fn pop(&mut self, core: usize) -> Option<Popped> {
        if let Some(task) = self.pop_local(core) {
            return Some(Popped {
                task,
                source: QueueSource::Local,
            });
        }
        self.pop_dynamic(core)
    }

    fn pop_batch(&mut self, core: usize, max: usize) -> Vec<Popped> {
        let Some(first) = self.pop(core) else {
            return vec![];
        };
        let mut batch = vec![first];
        // a thief takes exactly one task — the rest of the victim's
        // shard keeps its locality
        if first.source.is_stolen() {
            return batch;
        }
        // group the head run of updates of one (k, j) column step, like
        // the paper's grouped BLAS-3 calls — always from the same queue
        // the first task came from
        let TaskKind::Update { k, j, .. } = self.kinds[first.task.idx()] else {
            return batch;
        };
        let same_step = |kinds: &[TaskKind], t: u32| {
            matches!(kinds[t as usize],
                TaskKind::Update { k: hk, j: hj, .. } if hk == k && hj == j)
        };
        while batch.len() < max {
            let kinds = &self.kinds;
            // the lock-free deque continues from the owner's (back) end;
            // every heap-backed queue continues from its head
            if let (QueueSource::Shard, DynSection::LockFree { deques, .. }) =
                (first.source, &mut self.dynamic)
            {
                let same = deques[core]
                    .back()
                    .is_some_and(|&(_, t)| same_step(kinds, t));
                if !same {
                    break;
                }
                let (_, t) = deques[core].pop_back().expect("peeked");
                self.queued -= 1;
                batch.push(Popped {
                    task: TaskId(t),
                    source: first.source,
                });
                continue;
            }
            let heap = match first.source {
                QueueSource::Local => &mut self.local[core],
                _ => match &mut self.dynamic {
                    DynSection::Global(q) => q,
                    DynSection::Sharded { shards, .. } => &mut shards[core],
                    DynSection::LockFree { .. } => unreachable!("handled above"),
                },
            };
            let same = heap
                .peek()
                .map(|Reverse((_, t))| same_step(kinds, *t))
                .unwrap_or(false);
            if !same {
                break;
            }
            let Reverse((_, t)) = heap.pop().expect("peeked");
            self.queued -= 1;
            batch.push(Popped {
                task: TaskId(t),
                source: first.source,
            });
        }
        batch
    }

    fn name(&self) -> &'static str {
        match self.dynamic {
            DynSection::Global(_) => "hybrid",
            DynSection::Sharded { .. } => "hybrid (sharded)",
            DynSection::LockFree { .. } => "hybrid (lockfree)",
        }
    }

    fn queued(&self) -> usize {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> TaskGraph {
        TaskGraph::build(800, 800, 100) // 8x8 tiles
    }

    #[test]
    fn split_follows_writes_col() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let p = HybridPolicy::new(&g, grid, 0.25); // nstatic = 6
        assert_eq!(p.nstatic(), 6);
        for t in g.ids() {
            assert_eq!(p.is_static[t.idx()], g.kind(t).writes_col() < 6);
        }
    }

    #[test]
    fn local_preferred_over_global() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5); // nstatic = 4
        let owners = OwnerMap::new(&g, grid);
        // a static task owned by core 0 and any dynamic task
        let stat = g
            .ids()
            .find(|&t| g.kind(t).writes_col() < 4 && owners.owner(t) == 0)
            .unwrap();
        let dynam = g.ids().find(|&t| g.kind(t).writes_col() >= 4).unwrap();
        p.on_ready(dynam, None);
        p.on_ready(stat, None);
        let first = p.pop(0).unwrap();
        assert_eq!(first.task, stat);
        assert_eq!(first.source, QueueSource::Local);
        let second = p.pop(0).unwrap();
        assert_eq!(second.task, dynam);
        assert_eq!(second.source, QueueSource::Global);
    }

    #[test]
    fn idle_threads_fall_through_to_dynamic_queue() {
        // core 3 owns none of the queued static tasks: it must get dynamic work
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5);
        let owners = OwnerMap::new(&g, grid);
        let stat = g
            .ids()
            .find(|&t| g.kind(t).writes_col() < 4 && owners.owner(t) == 0)
            .unwrap();
        let dynam = g.ids().find(|&t| g.kind(t).writes_col() >= 4).unwrap();
        p.on_ready(stat, None);
        p.on_ready(dynam, None);
        let popped = p.pop(3).unwrap();
        assert_eq!(popped.task, dynam, "non-owner must take dynamic work");
        assert_eq!(popped.source, QueueSource::Global);
    }

    #[test]
    fn dratio_zero_is_all_static_dratio_one_all_dynamic() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let all_static = HybridPolicy::new(&g, grid, 0.0);
        assert!(all_static.is_static.iter().all(|&s| s));
        let all_dynamic = HybridPolicy::new(&g, grid, 1.0);
        assert!(all_dynamic.is_static.iter().all(|&s| !s));
    }

    #[test]
    fn drains_completely() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.2);
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.initial_ready() {
            p.on_ready(t, None);
        }
        let mut done = 0;
        while done < g.len() {
            let mut progressed = false;
            for core in 0..4 {
                if let Some(popped) = p.pop(core) {
                    progressed = true;
                    done += 1;
                    for &s in g.successors(popped.task) {
                        deps[s.idx()] -= 1;
                        if deps[s.idx()] == 0 {
                            p.on_ready(s, Some(core));
                        }
                    }
                }
            }
            assert!(progressed);
        }
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn global_batch_groups_same_column_step_only() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5);
        // two dynamic S tasks in column 5 and one in column 6, all panel 0
        let pick = |i: u32, j: u32| {
            g.ids()
                .find(|&t| g.kind(t) == TaskKind::Update { k: 0, i, j })
                .unwrap()
        };
        for t in [pick(1, 5), pick(2, 5), pick(1, 6)] {
            assert!(!p.is_static[t.idx()]);
            p.on_ready(t, None);
        }
        let batch = p.pop_batch(0, 4);
        assert_eq!(batch.len(), 2, "column-5 updates group, column 6 does not");
        assert!(batch
            .iter()
            .all(|pp| matches!(g.kind(pp.task), TaskKind::Update { j: 5, .. })));
        let rest = p.pop_batch(0, 4);
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn batch_never_mixes_local_and_global() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5);
        let owners = OwnerMap::new(&g, grid);
        // one static update owned by core 0 and one dynamic update
        let stat = g
            .ids()
            .find(|&t| {
                matches!(g.kind(t), TaskKind::Update { .. })
                    && p.is_static[t.idx()]
                    && owners.owner(t) == 0
            })
            .unwrap();
        let dynam = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { .. }) && !p.is_static[t.idx()])
            .unwrap();
        p.on_ready(stat, None);
        p.on_ready(dynam, None);
        let batch = p.pop_batch(0, 4);
        assert_eq!(batch.len(), 1, "local batch must not absorb global tasks");
        assert_eq!(batch[0].source, QueueSource::Local);
    }

    #[test]
    fn rescue_moves_a_lost_cores_static_queue_into_the_dynamic_section() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5); // nstatic = 4
        let owners = OwnerMap::new(&g, grid);
        let mine: Vec<TaskId> = g
            .ids()
            .filter(|&t| g.kind(t).writes_col() < 4 && owners.owner(t) == 0)
            .take(3)
            .collect();
        assert_eq!(mine.len(), 3);
        for &t in &mine {
            p.on_ready(t, None);
        }
        assert_eq!(p.rescue(0), 3, "every queued static task moves");
        assert_eq!(p.queued(), 3, "rescue relocates, it does not drop");
        // another core can now serve them from the dynamic section
        for _ in 0..3 {
            let popped = p.pop(3).unwrap();
            assert!(mine.contains(&popped.task));
            assert_eq!(popped.source, QueueSource::Global);
        }
        // future static publishes for the lost owner reroute too
        let later = g
            .ids()
            .find(|&t| g.kind(t).writes_col() < 4 && owners.owner(t) == 0 && !mine.contains(&t))
            .unwrap();
        p.on_ready(later, None);
        let popped = p.pop(1).unwrap();
        assert_eq!(popped.task, later);
        assert_eq!(popped.source, QueueSource::Global, "rerouted, not local");
    }

    #[test]
    fn rescue_is_a_noop_on_an_empty_queue_and_default_policies() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = HybridPolicy::new(&g, grid, 0.5);
        assert_eq!(p.rescue(2), 0);
        // the trait default rescues nothing
        struct Nothing;
        impl Policy for Nothing {
            fn on_ready(&mut self, _t: TaskId, _c: Option<usize>) {}
            fn pop(&mut self, _core: usize) -> Option<Popped> {
                None
            }
            fn name(&self) -> &'static str {
                "nothing"
            }
            fn queued(&self) -> usize {
                0
            }
        }
        assert_eq!(Nothing.rescue(0), 0);
    }

    // ----- sharded discipline -----------------------------------------

    fn sharded(g: &TaskGraph, grid: ProcessGrid, dratio: f64) -> HybridPolicy {
        HybridPolicy::with_discipline(g, grid, dratio, QueueDiscipline::Sharded { seed: 42 })
    }

    #[test]
    fn sharded_pushes_to_the_enabling_core() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = sharded(&g, grid, 1.0); // everything dynamic
        let t = g.initial_ready()[0];
        p.on_ready(t, Some(2));
        // core 2 gets it from its own shard, tagged as a dynamic pop
        let popped = p.pop(2).unwrap();
        assert_eq!(popped.task, t);
        assert_eq!(popped.source, QueueSource::Shard, "own shard, no steal");
    }

    #[test]
    fn empty_shards_steal_and_tag() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = sharded(&g, grid, 1.0);
        let t = g.initial_ready()[0];
        p.on_ready(t, Some(0));
        let stolen = p.pop(3).unwrap();
        assert_eq!(stolen.task, t);
        assert_eq!(stolen.source, QueueSource::Stolen);
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn steals_take_the_victims_most_critical_task() {
        // unlike Cilk FIFO deques, the shard is a priority heap: a thief
        // gets the victim's *best* (DFS-first) task
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = sharded(&g, grid, 1.0);
        let late = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, i: 1, j: 7 }))
            .unwrap();
        let early = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, i: 1, j: 1 }))
            .unwrap();
        p.on_ready(late, Some(0));
        p.on_ready(early, Some(0));
        let stolen = p.pop(1).unwrap();
        assert_eq!(stolen.task, early, "steal follows the DFS column order");
    }

    #[test]
    fn sharded_drains_completely_and_deterministically() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let run = |seed: u64| {
            let mut p =
                HybridPolicy::with_discipline(&g, grid, 0.3, QueueDiscipline::Sharded { seed });
            let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
            for t in g.initial_ready() {
                p.on_ready(t, None);
            }
            let mut order = Vec::new();
            let mut done = 0;
            while done < g.len() {
                let mut progressed = false;
                for core in 0..4 {
                    if let Some(popped) = p.pop(core) {
                        progressed = true;
                        done += 1;
                        order.push(popped.task);
                        for &s in g.successors(popped.task) {
                            deps[s.idx()] -= 1;
                            if deps[s.idx()] == 0 {
                                p.on_ready(s, Some(core));
                            }
                        }
                    }
                }
                assert!(progressed, "sharded hybrid starved");
            }
            assert_eq!(p.queued(), 0);
            order
        };
        assert_eq!(run(7), run(7), "fixed seed, fixed schedule");
    }

    #[test]
    fn stolen_tasks_never_batch() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = sharded(&g, grid, 1.0);
        let pick = |i: u32| {
            g.ids()
                .find(|&t| g.kind(t) == TaskKind::Update { k: 0, i, j: 5 })
                .unwrap()
        };
        // two batchable updates on core 0's shard
        p.on_ready(pick(1), Some(0));
        p.on_ready(pick(2), Some(0));
        let batch = p.pop_batch(3, 4);
        assert_eq!(batch.len(), 1, "a thief takes exactly one task");
        assert_eq!(batch[0].source, QueueSource::Stolen);
        // the owner still batches its own shard
        let own = p.pop_batch(0, 4);
        assert_eq!(own.len(), 1);
        assert_eq!(own[0].source, QueueSource::Shard);
    }

    #[test]
    fn names_distinguish_disciplines() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        assert_eq!(HybridPolicy::new(&g, grid, 0.1).name(), "hybrid");
        assert_eq!(sharded(&g, grid, 0.1).name(), "hybrid (sharded)");
        assert!(sharded(&g, grid, 0.1).discipline().is_sharded());
        assert_eq!(lockfree(&g, grid, 0.1).name(), "hybrid (lockfree)");
        assert!(lockfree(&g, grid, 0.1).discipline().is_lock_free());
    }

    // ----- lock-free discipline ---------------------------------------

    fn lockfree(g: &TaskGraph, grid: ProcessGrid, dratio: f64) -> HybridPolicy {
        HybridPolicy::with_discipline(g, grid, dratio, QueueDiscipline::LockFree { seed: 42 })
    }

    #[test]
    fn lockfree_owner_pops_its_own_deque_in_priority_order() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = lockfree(&g, grid, 1.0);
        let late = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, i: 1, j: 7 }))
            .unwrap();
        let early = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, i: 1, j: 1 }))
            .unwrap();
        // pushed least critical first: the sink keeps the owner's end
        // most critical either way
        p.on_ready(late, Some(2));
        p.on_ready(early, Some(2));
        let first = p.pop(2).unwrap();
        assert_eq!(first.task, early, "own pop serves the DFS order");
        assert_eq!(first.source, QueueSource::Shard);
        assert_eq!(p.pop(2).unwrap().task, late);
    }

    #[test]
    fn lockfree_steals_take_the_cold_end_and_tag_locality() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        // 2 sockets × 2 cores: cores {0,1} on socket 0, {2,3} on socket 1
        let topo = CpuTopology::uniform(2, 2);
        let nstatic = 0;
        let mut p = HybridPolicy::with_nstatic_discipline_on(
            &g,
            grid,
            nstatic,
            QueueDiscipline::LockFree { seed: 7 },
            &topo,
        );
        let late = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, i: 1, j: 7 }))
            .unwrap();
        let early = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, i: 1, j: 1 }))
            .unwrap();
        p.on_ready(early, Some(0));
        p.on_ready(late, Some(0));
        // same-socket thief: core 1 steals core 0's cold (least
        // critical) end, tagged as a near steal
        let near = p.pop(1).unwrap();
        assert_eq!(near.task, late, "steal takes the cold end");
        assert_eq!(near.source, QueueSource::Stolen);
        // remote thief: core 3 sits on the other socket
        let far = p.pop(3).unwrap();
        assert_eq!(far.task, early);
        assert_eq!(far.source, QueueSource::StolenRemote);
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn lockfree_drains_completely_and_deterministically() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let run = |seed: u64| {
            let mut p =
                HybridPolicy::with_discipline(&g, grid, 0.3, QueueDiscipline::LockFree { seed });
            let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
            for t in g.initial_ready() {
                p.on_ready(t, None);
            }
            let mut order = Vec::new();
            let mut done = 0;
            while done < g.len() {
                let mut progressed = false;
                for core in 0..4 {
                    if let Some(popped) = p.pop(core) {
                        progressed = true;
                        done += 1;
                        order.push(popped.task);
                        for &s in g.successors(popped.task) {
                            deps[s.idx()] -= 1;
                            if deps[s.idx()] == 0 {
                                p.on_ready(s, Some(core));
                            }
                        }
                    }
                }
                assert!(progressed, "lock-free hybrid starved");
            }
            assert_eq!(p.queued(), 0);
            order
        };
        assert_eq!(run(7), run(7), "fixed seed, fixed schedule");
    }

    #[test]
    fn lockfree_stolen_tasks_never_batch() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = lockfree(&g, grid, 1.0);
        let pick = |i: u32| {
            g.ids()
                .find(|&t| g.kind(t) == TaskKind::Update { k: 0, i, j: 5 })
                .unwrap()
        };
        p.on_ready(pick(1), Some(0));
        p.on_ready(pick(2), Some(0));
        let batch = p.pop_batch(3, 4);
        assert_eq!(batch.len(), 1, "a thief takes exactly one task");
        assert!(batch[0].source.is_stolen());
        // the owner still batches the same-column run from its own end
        let own = p.pop_batch(0, 4);
        assert_eq!(own.len(), 1);
        assert_eq!(own[0].source, QueueSource::Shard);
    }

    #[test]
    fn lockfree_owner_batches_same_column_updates() {
        let g = graph();
        let grid = ProcessGrid::new(2, 2).unwrap();
        let mut p = lockfree(&g, grid, 1.0);
        let pick = |i: u32, j: u32| {
            g.ids()
                .find(|&t| g.kind(t) == TaskKind::Update { k: 0, i, j })
                .unwrap()
        };
        for t in [pick(1, 5), pick(2, 5), pick(1, 6)] {
            p.on_ready(t, Some(0));
        }
        let batch = p.pop_batch(0, 4);
        assert_eq!(batch.len(), 2, "column-5 updates group, column 6 does not");
        assert!(batch
            .iter()
            .all(|pp| matches!(g.kind(pp.task), TaskKind::Update { j: 5, .. })));
        assert_eq!(p.pop_batch(0, 4).len(), 1);
    }
}
