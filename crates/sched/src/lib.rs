//! Scheduling policies for the CALU task graph (§3 of the paper).
//!
//! Four policies cover the paper's design space plus the related-work
//! baseline:
//!
//! * [`StaticPolicy`] — fully static: every task runs on the thread that
//!   owns its output tile under the 2D block-cyclic distribution; threads
//!   with empty queues idle (perfect locality, zero dequeue overhead, no
//!   load balancing).
//! * [`DynamicPolicy`] — fully dynamic: one shared global queue ordered
//!   left-to-right / top-to-bottom (the DFS order of Algorithm 2); any
//!   free thread takes the head (perfect load balance, pays dequeue
//!   contention and data migration).
//! * [`HybridPolicy`] — the paper's contribution: tasks writing the first
//!   `Nstatic` tile columns are scheduled statically, the rest feed the
//!   global queue, and a thread only turns to the global queue when its
//!   own queue is empty (Algorithm 1 + 2).
//! * [`WorkStealingPolicy`] — Cilk-style randomized work stealing, the
//!   §8 comparison point.
//!
//! Policies are *decision procedures*, not executors: both the
//! discrete-event simulator (`calu-sim`) and the real threaded executor
//! (`calu-core`) consult the same ownership map ([`OwnerMap`]) and
//! priority orders ([`priority`]).

pub mod config;
pub mod owner;
pub mod policy;
pub mod priority;

mod dynamic_policy;
mod hybrid;
mod static_policy;
mod work_stealing;

pub use config::{nstatic_for, SchedulerKind};
pub use dynamic_policy::DynamicPolicy;
pub use hybrid::HybridPolicy;
pub use owner::OwnerMap;
pub use policy::{Policy, Popped, QueueSource};
pub use static_policy::StaticPolicy;
pub use work_stealing::WorkStealingPolicy;

use calu_dag::TaskGraph;
use calu_matrix::ProcessGrid;

/// Build the policy described by `kind` for graph `g` over `p` cores.
pub fn make_policy(kind: SchedulerKind, g: &TaskGraph, grid: ProcessGrid) -> Box<dyn Policy> {
    match kind {
        SchedulerKind::Static => Box::new(StaticPolicy::new(g, grid)),
        SchedulerKind::Dynamic => Box::new(DynamicPolicy::new(g, grid.size())),
        SchedulerKind::Hybrid { dratio } => Box::new(HybridPolicy::new(g, grid, dratio)),
        SchedulerKind::WorkStealing { seed } => {
            Box::new(WorkStealingPolicy::new(g, grid.size(), seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_dag::TaskGraph;

    /// Drive any policy single-threaded through the whole DAG and return
    /// the execution order; panics if the policy loses tasks.
    pub(crate) fn drain(
        g: &TaskGraph,
        policy: &mut dyn Policy,
        cores: usize,
    ) -> Vec<calu_dag::TaskId> {
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.initial_ready() {
            policy.on_ready(t, None);
        }
        let mut order = Vec::with_capacity(g.len());
        let mut done = 0usize;
        while done < g.len() {
            let mut progressed = false;
            for core in 0..cores {
                if let Some(p) = policy.pop(core) {
                    order.push(p.task);
                    done += 1;
                    progressed = true;
                    for &s in g.successors(p.task) {
                        deps[s.idx()] -= 1;
                        if deps[s.idx()] == 0 {
                            policy.on_ready(s, Some(core));
                        }
                    }
                }
            }
            assert!(
                progressed,
                "policy starved with {done}/{} tasks done",
                g.len()
            );
        }
        order
    }

    #[test]
    fn all_policies_execute_every_task_exactly_once() {
        let g = TaskGraph::build(500, 500, 100);
        let grid = ProcessGrid::new(2, 2).unwrap();
        for kind in [
            SchedulerKind::Static,
            SchedulerKind::Dynamic,
            SchedulerKind::Hybrid { dratio: 0.3 },
            SchedulerKind::WorkStealing { seed: 7 },
        ] {
            let mut p = make_policy(kind, &g, grid);
            let order = drain(&g, p.as_mut(), grid.size());
            assert_eq!(order.len(), g.len(), "{kind:?}");
            let mut seen = vec![false; g.len()];
            for t in &order {
                assert!(!seen[t.idx()], "{kind:?} ran {t:?} twice");
                seen[t.idx()] = true;
            }
        }
    }
}
