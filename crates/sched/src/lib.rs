//! Scheduling policies for the CALU task graph (§3 of the paper).
//!
//! Four policies cover the paper's design space plus the related-work
//! baseline:
//!
//! * [`StaticPolicy`] — fully static: every task runs on the thread that
//!   owns its output tile under the 2D block-cyclic distribution; threads
//!   with empty queues idle (perfect locality, zero dequeue overhead, no
//!   load balancing).
//! * [`DynamicPolicy`] — fully dynamic: one shared global queue ordered
//!   left-to-right / top-to-bottom (the DFS order of Algorithm 2); any
//!   free thread takes the head (perfect load balance, pays dequeue
//!   contention and data migration).
//! * [`HybridPolicy`] — the paper's contribution: tasks writing the first
//!   `Nstatic` tile columns are scheduled statically, the rest feed the
//!   global queue, and a thread only turns to the global queue when its
//!   own queue is empty (Algorithm 1 + 2).
//! * [`WorkStealingPolicy`] — Cilk-style randomized work stealing, the
//!   §8 comparison point.
//!
//! Policies are *decision procedures*, not executors: both the
//! discrete-event simulator (`calu-sim`) and the real threaded executor
//! (`calu-core`) consult the same ownership map ([`OwnerMap`]) and
//! priority orders ([`priority`]).
//!
//! ## The `QueueDiscipline` matrix
//!
//! Orthogonal to the policy: the scheduler decides *which* tasks are
//! dynamic (the `dratio` split), the [`QueueDiscipline`] decides *how*
//! the dynamic ones are queued, dequeued and stolen. Three disciplines
//! ship; all three factor **bitwise-identically** (the DAG's
//! exclusive-writer rule totally orders every tile's writes, so queue
//! order changes only *when* tasks run, never what they compute — the
//! facade's backend-parity suite asserts it):
//!
//! | Discipline | Structure | Default for | Steal counters | Pick it when |
//! |---|---|---|---|---|
//! | [`QueueDiscipline::Global`] | one shared mutex'd priority heap in Algorithm 2's DFS order | the **simulator** (paper-verbatim, keeps the reproduced figures faithful) and any plan without a dynamic section | none (never steals) | reproducing the paper's numbers; low thread counts where one lock never contends |
//! | [`QueueDiscipline::Sharded`] | per-worker mutex'd priority shards; seeded randomized victim sweep ([`steal_order`]) | opt-in | `stolen_pops`, `failed_steals` | the **parity oracle**: simple invariants (each shard keeps DFS priority, steals take the victim's most critical task) for debugging the lock-free path against |
//! | [`QueueDiscipline::LockFree`] | per-worker Chase-Lev deques ([`Deque`], owner-LIFO / thief-FIFO) swept in the locality-tiered order of [`StealTiers`] (SMT sibling → same socket → remote) | the **threaded backend** whenever a dynamic section exists (it won the perf-smoke gate) | `stolen_pops`, `failed_steals`, plus `remote_steal_pops` — the only discipline that classifies steal locality | production throughput, NUMA machines, high thread counts |
//!
//! Guarantees shared by the stealing disciplines: a steal sweep visits
//! every victim once, so work is found whenever any shard is non-empty;
//! a *wholly empty* sweep counts once into the contention statistics
//! regardless of victim count, so flat and tiered orders read on one
//! scale; and an explicit stealing discipline on a plan without a
//! dynamic section (`dratio = 0`) is a configuration error — there is
//! nothing to shard or steal.

pub mod adaptive;
pub mod config;
pub mod deque;
pub mod discipline;
pub mod lanes;
pub mod owner;
pub mod policy;
pub mod priority;
pub mod topology;

mod dynamic_policy;
mod hybrid;
mod static_policy;
mod work_stealing;

pub use adaptive::{
    AdaptationStep, AdaptiveController, AdaptiveMode, AdaptivePolicy, Observation, SplitChoice,
};
pub use config::{nstatic_for, SchedulerKind};
pub use deque::{Deque, Steal};
pub use discipline::{steal_order, QueueDiscipline, DEFAULT_STEAL_SEED};
pub use dynamic_policy::DynamicPolicy;
pub use hybrid::HybridPolicy;
pub use lanes::{ClassLanes, JobClass};
pub use owner::OwnerMap;
pub use policy::{Policy, Popped, QueueSource};
pub use static_policy::StaticPolicy;
pub use topology::{CpuTopology, StealOrder, StealTier, StealTiers};
pub use work_stealing::WorkStealingPolicy;

use calu_dag::TaskGraph;
use calu_matrix::ProcessGrid;

/// Build the policy described by `kind` for graph `g` over `p` cores,
/// with the default [`QueueDiscipline::Global`] dynamic section.
pub fn make_policy(kind: SchedulerKind, g: &TaskGraph, grid: ProcessGrid) -> Box<dyn Policy> {
    make_policy_with(kind, QueueDiscipline::Global, g, grid)
}

/// Build the policy described by `kind` with an explicit dynamic-section
/// [`QueueDiscipline`]. The discipline applies wherever a dynamic
/// section exists: the hybrid policy's reservoir, or the whole queue
/// under fully dynamic scheduling (`Dynamic` + `Sharded` is the hybrid
/// machinery with `Nstatic = 0`). `Static` has no dynamic section and
/// `WorkStealing` is already sharded by construction, so the discipline
/// is a no-op there.
pub fn make_policy_with(
    kind: SchedulerKind,
    queue: QueueDiscipline,
    g: &TaskGraph,
    grid: ProcessGrid,
) -> Box<dyn Policy> {
    make_policy_on(kind, queue, &CpuTopology::flat(grid.size()), g, grid)
}

/// [`make_policy_with`] with an explicit CPU topology: the lock-free
/// discipline's tiered victim sweeps (SMT sibling → same socket →
/// remote) are computed from `topo`, so the simulator can pass its
/// machine model's socket layout and the real executor the detected
/// host topology — both then sweep victims in the same order.
pub fn make_policy_on(
    kind: SchedulerKind,
    queue: QueueDiscipline,
    topo: &CpuTopology,
    g: &TaskGraph,
    grid: ProcessGrid,
) -> Box<dyn Policy> {
    make_policy_ordered(kind, queue, StealOrder::default(), topo, g, grid)
}

/// [`make_policy_on`] with an explicit steal-sweep direction — the
/// adaptive controller's steal-tier knob. Only the lock-free
/// discipline's tiered sweep reads it; every other combination behaves
/// exactly as [`make_policy_on`].
pub fn make_policy_ordered(
    kind: SchedulerKind,
    queue: QueueDiscipline,
    order: StealOrder,
    topo: &CpuTopology,
    g: &TaskGraph,
    grid: ProcessGrid,
) -> Box<dyn Policy> {
    let nstatic = |dratio| nstatic_for(dratio, g.num_panels());
    match (kind, queue) {
        (SchedulerKind::Static, _) => Box::new(StaticPolicy::new(g, grid)),
        (SchedulerKind::Dynamic, QueueDiscipline::Global) => {
            Box::new(DynamicPolicy::new(g, grid.size()))
        }
        (SchedulerKind::Dynamic, q) => Box::new(HybridPolicy::with_nstatic_discipline_ordered(
            g, grid, 0, q, topo, order,
        )),
        (SchedulerKind::Hybrid { dratio }, q) => Box::new(
            HybridPolicy::with_nstatic_discipline_ordered(g, grid, nstatic(dratio), q, topo, order),
        ),
        (SchedulerKind::WorkStealing { seed }, _) => {
            Box::new(WorkStealingPolicy::new(g, grid.size(), seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_dag::TaskGraph;

    /// Drive any policy single-threaded through the whole DAG and return
    /// the execution order; panics if the policy loses tasks.
    pub(crate) fn drain(
        g: &TaskGraph,
        policy: &mut dyn Policy,
        cores: usize,
    ) -> Vec<calu_dag::TaskId> {
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.initial_ready() {
            policy.on_ready(t, None);
        }
        let mut order = Vec::with_capacity(g.len());
        let mut done = 0usize;
        while done < g.len() {
            let mut progressed = false;
            for core in 0..cores {
                if let Some(p) = policy.pop(core) {
                    order.push(p.task);
                    done += 1;
                    progressed = true;
                    for &s in g.successors(p.task) {
                        deps[s.idx()] -= 1;
                        if deps[s.idx()] == 0 {
                            policy.on_ready(s, Some(core));
                        }
                    }
                }
            }
            assert!(
                progressed,
                "policy starved with {done}/{} tasks done",
                g.len()
            );
        }
        order
    }

    #[test]
    fn all_policies_execute_every_task_exactly_once() {
        let g = TaskGraph::build(500, 500, 100);
        let grid = ProcessGrid::new(2, 2).unwrap();
        for kind in [
            SchedulerKind::Static,
            SchedulerKind::Dynamic,
            SchedulerKind::Hybrid { dratio: 0.3 },
            SchedulerKind::WorkStealing { seed: 7 },
        ] {
            for queue in [
                QueueDiscipline::Global,
                QueueDiscipline::sharded(),
                QueueDiscipline::lock_free(),
            ] {
                let mut p = make_policy_with(kind, queue, &g, grid);
                let order = drain(&g, p.as_mut(), grid.size());
                assert_eq!(order.len(), g.len(), "{kind:?} / {queue}");
                let mut seen = vec![false; g.len()];
                for t in &order {
                    assert!(!seen[t.idx()], "{kind:?} / {queue} ran {t:?} twice");
                    seen[t.idx()] = true;
                }
            }
        }
    }

    #[test]
    fn discipline_selects_the_sharded_dynamic_section() {
        let g = TaskGraph::build(500, 500, 100);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let kind = SchedulerKind::Hybrid { dratio: 0.5 };
        assert_eq!(make_policy(kind, &g, grid).name(), "hybrid");
        assert_eq!(
            make_policy_with(kind, QueueDiscipline::sharded(), &g, grid).name(),
            "hybrid (sharded)"
        );
        // fully dynamic + sharded is the hybrid machinery with Nstatic = 0
        assert_eq!(
            make_policy_with(SchedulerKind::Dynamic, QueueDiscipline::sharded(), &g, grid).name(),
            "hybrid (sharded)"
        );
        assert_eq!(
            make_policy_with(kind, QueueDiscipline::lock_free(), &g, grid).name(),
            "hybrid (lockfree)"
        );
        assert_eq!(
            make_policy_on(
                SchedulerKind::Dynamic,
                QueueDiscipline::lock_free(),
                &CpuTopology::uniform(2, 2),
                &g,
                grid
            )
            .name(),
            "hybrid (lockfree)"
        );
        // no dynamic section / already-sharded policies are unaffected
        assert_eq!(
            make_policy_with(SchedulerKind::Static, QueueDiscipline::sharded(), &g, grid).name(),
            "static"
        );
        assert_eq!(
            make_policy_with(
                SchedulerKind::WorkStealing { seed: 1 },
                QueueDiscipline::sharded(),
                &g,
                grid
            )
            .name(),
            "work-stealing"
        );
    }
}
