//! Fully static scheduling: each thread runs exactly the tasks whose
//! output tiles it owns, in the static priority order. No load balancing
//! — an idle thread with an empty queue stays idle (the white pockets of
//! Figure 1).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use calu_dag::{TaskGraph, TaskId, TaskKind};
use calu_matrix::ProcessGrid;

use crate::owner::OwnerMap;
use crate::policy::{Policy, Popped, QueueSource};
use crate::priority::static_key;

/// See module docs.
pub struct StaticPolicy {
    owners: OwnerMap,
    keys: Vec<u64>,
    kinds: Vec<TaskKind>,
    queues: Vec<BinaryHeap<Reverse<(u64, u32)>>>,
    queued: usize,
}

impl StaticPolicy {
    /// Build for graph `g` distributed over `grid`.
    pub fn new(g: &TaskGraph, grid: ProcessGrid) -> Self {
        let owners = OwnerMap::new(g, grid);
        let keys = g.ids().map(|t| static_key(&g.kind(t))).collect();
        let kinds = g.ids().map(|t| g.kind(t)).collect();
        let queues = (0..grid.size()).map(|_| BinaryHeap::new()).collect();
        Self {
            owners,
            keys,
            kinds,
            queues,
            queued: 0,
        }
    }

    /// Pop the head of `core`'s queue.
    fn pop_local(&mut self, core: usize) -> Option<TaskId> {
        self.queues[core].pop().map(|Reverse((_, t))| {
            self.queued -= 1;
            TaskId(t)
        })
    }

    /// `(panel, column)` of the queue head if it is an `Update` task.
    fn head_update_step(&self, core: usize) -> Option<(u32, u32)> {
        self.queues[core]
            .peek()
            .and_then(|Reverse((_, t))| match self.kinds[*t as usize] {
                TaskKind::Update { k, j, .. } => Some((k, j)),
                _ => None,
            })
    }
}

impl Policy for StaticPolicy {
    fn on_ready(&mut self, t: TaskId, _completer: Option<usize>) {
        let owner = self.owners.owner(t);
        self.queues[owner].push(Reverse((self.keys[t.idx()], t.0)));
        self.queued += 1;
    }

    fn pop(&mut self, core: usize) -> Option<Popped> {
        self.pop_local(core).map(|task| Popped {
            task,
            source: QueueSource::Local,
        })
    }

    fn pop_batch(&mut self, core: usize, max: usize) -> Vec<Popped> {
        let Some(first) = self.pop_local(core) else {
            return vec![];
        };
        let mut batch = vec![Popped {
            task: first,
            source: QueueSource::Local,
        }];
        // Group only updates of the same column step (k, j): the paper
        // groups blocks sharing the same columns "such that the algorithm
        // can make progress on its critical path" — grouping across
        // columns would delay the readiness of the next panel's U tasks.
        if let TaskKind::Update { k, j, .. } = self.kinds[first.idx()] {
            while batch.len() < max {
                match self.head_update_step(core) {
                    Some((hk, hj)) if hk == k && hj == j => {
                        let t = self.pop_local(core).expect("peeked head");
                        batch.push(Popped {
                            task: t,
                            source: QueueSource::Local,
                        });
                    }
                    _ => break,
                }
            }
        }
        batch
    }

    fn name(&self) -> &'static str {
        "static"
    }

    fn queued(&self) -> usize {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TaskGraph, StaticPolicy, ProcessGrid) {
        let g = TaskGraph::build(400, 400, 100);
        let grid = ProcessGrid::new(2, 2).unwrap();
        let p = StaticPolicy::new(&g, grid);
        (g, p, grid)
    }

    #[test]
    fn tasks_only_run_on_their_owner() {
        let (g, mut p, grid) = setup();
        let owners = OwnerMap::new(&g, grid);
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.initial_ready() {
            p.on_ready(t, None);
        }
        let mut done = 0;
        while done < g.len() {
            let mut progressed = false;
            for core in 0..grid.size() {
                while let Some(popped) = p.pop(core) {
                    assert_eq!(owners.owner(popped.task), core);
                    assert_eq!(popped.source, QueueSource::Local);
                    progressed = true;
                    done += 1;
                    for &s in g.successors(popped.task) {
                        deps[s.idx()] -= 1;
                        if deps[s.idx()] == 0 {
                            p.on_ready(s, Some(core));
                        }
                    }
                }
            }
            assert!(progressed, "static policy stuck at {done}/{}", g.len());
        }
    }

    #[test]
    fn panel_tasks_preempt_updates_in_queue_order() {
        let (g, mut p, grid) = setup();
        // core 3 owns (odd, odd) tiles on the 2x2 grid: it owns both
        // panel-0 updates like (1,1) and panel-1 leaves like (3,1)
        let owners = OwnerMap::new(&g, grid);
        let s_task = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, .. }) && owners.owner(t) == 3)
            .unwrap();
        let p_task = g
            .ids()
            .find(|&t| {
                matches!(g.kind(t), TaskKind::PanelLeaf { k: 1, .. }) && owners.owner(t) == 3
            })
            .unwrap();
        p.on_ready(s_task, None);
        p.on_ready(p_task, None);
        assert_eq!(p.pop(3).unwrap().task, p_task, "panel leaf must run first");
        assert_eq!(p.pop(3).unwrap().task, s_task);
    }

    #[test]
    fn batch_groups_same_panel_updates_only() {
        let (g, mut p, grid) = setup();
        let owners = OwnerMap::new(&g, grid);
        // queue several panel-0 updates owned by core 3 (owns 4 of them)
        let updates: Vec<TaskId> = g
            .ids()
            .filter(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, .. }) && owners.owner(t) == 3)
            .collect();
        assert!(updates.len() >= 2);
        for &t in &updates {
            p.on_ready(t, None);
        }
        let batch = p.pop_batch(3, 3);
        assert!(batch.len() >= 2, "updates of one panel must group");
        assert!(batch.len() <= 3);
        for popped in &batch {
            assert!(matches!(g.kind(popped.task), TaskKind::Update { k: 0, .. }));
        }
    }

    #[test]
    fn empty_queue_returns_none() {
        let (_, mut p, _) = setup();
        assert!(p.pop(0).is_none());
        assert!(p.pop_batch(1, 4).is_empty());
        assert_eq!(p.queued(), 0);
    }
}
