//! CPU topology discovery and the locality-tiered steal order.
//!
//! Work stealing moves a task's *inputs* to the thief, so the cost of a
//! steal depends on where the thief sits relative to the victim: an SMT
//! sibling shares every cache level, a same-socket core shares the L3,
//! and a remote-socket core pays the full NUMA interconnect (the cost
//! the paper's static distribution exists to avoid, §1). The flat
//! randomized [`steal_order`](crate::steal_order) sweep ignores all of
//! that; [`StealTiers`] replaces it for the lock-free discipline with a
//! three-tier sweep — SMT sibling → same socket → remote — randomized
//! *within* each tier so victims stay load-balanced, deterministic for
//! a fixed seed, and still visiting every other worker exactly once so
//! no steal opportunity is ever missed.
//!
//! [`CpuTopology`] feeds the tiers: on Linux it parses
//! `/sys/devices/system/cpu/cpu*/topology/{physical_package_id,core_id}`
//! ([`CpuTopology::detect`]); everywhere else — or when sysfs is absent,
//! as in sandboxes — it falls back to a flat single-socket layout, under
//! which the tiered sweep degenerates to exactly the flat randomized
//! sweep. The discrete-event simulator builds the same structure from
//! its machine model via [`CpuTopology::uniform`], so a simulated steal
//! sweeps victims in the same tier order a real one would.

use calu_rand::Rng;

/// Physical location of one logical CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CpuLoc {
    /// Socket / NUMA package id.
    package: u32,
    /// Physical core id within the package (SMT siblings share it).
    core: u32,
}

/// Locality class of a victim relative to the thief — determines both
/// the sweep tier and the simulator's steal price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StealTier {
    /// SMT sibling: same package, same physical core.
    Sibling,
    /// Same socket, different core: shares the L3 and local memory.
    Socket,
    /// Different socket: pays the NUMA interconnect.
    Remote,
}

/// Where each logical CPU lives: sockets and physical cores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuTopology {
    cpus: Vec<CpuLoc>,
}

impl CpuTopology {
    /// A flat topology: `n` CPUs, one socket, no SMT. Every victim is
    /// [`StealTier::Socket`], so tiered sweeps reduce to flat ones.
    pub fn flat(n: usize) -> Self {
        let n = n.max(1);
        Self {
            cpus: (0..n as u32)
                .map(|core| CpuLoc { package: 0, core })
                .collect(),
        }
    }

    /// A regular machine: `sockets × cores_per_socket` CPUs, no SMT,
    /// cores numbered socket-major — the layout of the simulator's
    /// [`MachineConfig`](../../calu_sim/struct.MachineConfig.html)
    /// (`socket_of(core) = core / cores_per_socket`).
    pub fn uniform(sockets: usize, cores_per_socket: usize) -> Self {
        let (s, c) = (sockets.max(1), cores_per_socket.max(1));
        Self {
            cpus: (0..s * c)
                .map(|cpu| CpuLoc {
                    package: (cpu / c) as u32,
                    core: (cpu % c) as u32,
                })
                .collect(),
        }
    }

    /// As [`uniform`](Self::uniform), with `smt`-way SMT: logical CPUs
    /// `smt*i .. smt*(i+1)` are siblings on physical core `i`.
    pub fn uniform_smt(sockets: usize, cores_per_socket: usize, smt: usize) -> Self {
        let (s, c, h) = (sockets.max(1), cores_per_socket.max(1), smt.max(1));
        Self {
            cpus: (0..s * c * h)
                .map(|cpu| {
                    let phys = cpu / h;
                    CpuLoc {
                        package: (phys / c) as u32,
                        core: (phys % c) as u32,
                    }
                })
                .collect(),
        }
    }

    /// Detect the host topology. Linux: parse sysfs, falling back to
    /// [`flat`](Self::flat) over the available parallelism when any part
    /// of the tree is missing or malformed. Other targets: always flat.
    pub fn detect() -> Self {
        Self::from_sysfs("/sys/devices/system/cpu").unwrap_or_else(|| {
            Self::flat(
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1),
            )
        })
    }

    /// Parse `<root>/cpu<N>/topology/{physical_package_id, core_id}`
    /// for N = 0, 1, … until the first missing CPU directory. `None`
    /// when nothing parses (no sysfs, non-Linux, sandboxed).
    fn from_sysfs(root: &str) -> Option<Self> {
        // hotplug holes are rare and a truncated-but-consistent prefix
        // is still a valid topology; cap the scan defensively
        const MAX_CPUS: usize = 4096;
        let read_id = |path: String| -> Option<u32> {
            std::fs::read_to_string(path).ok()?.trim().parse().ok()
        };
        let mut cpus = Vec::new();
        for n in 0..MAX_CPUS {
            let dir = format!("{root}/cpu{n}/topology");
            let (Some(package), Some(core)) = (
                read_id(format!("{dir}/physical_package_id")),
                read_id(format!("{dir}/core_id")),
            ) else {
                break;
            };
            cpus.push(CpuLoc { package, core });
        }
        (!cpus.is_empty()).then_some(Self { cpus })
    }

    /// Number of logical CPUs.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Never true — every topology has at least one CPU.
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// Number of distinct sockets.
    pub fn sockets(&self) -> usize {
        let mut pkgs: Vec<u32> = self.cpus.iter().map(|c| c.package).collect();
        pkgs.sort_unstable();
        pkgs.dedup();
        pkgs.len()
    }

    /// The logical CPU worker `w` is mapped (and, when pinning is on,
    /// pinned) to: identity while workers fit, wrapping beyond.
    pub fn cpu_for_worker(&self, w: usize) -> usize {
        w % self.cpus.len()
    }

    /// Locality of worker `victim` relative to worker `me`.
    pub fn tier_between(&self, me: usize, victim: usize) -> StealTier {
        let a = self.cpus[self.cpu_for_worker(me)];
        let b = self.cpus[self.cpu_for_worker(victim)];
        if a.package != b.package {
            StealTier::Remote
        } else if a.core == b.core && self.cpu_for_worker(me) != self.cpu_for_worker(victim) {
            StealTier::Sibling
        } else {
            StealTier::Socket
        }
    }
}

/// Direction of the tiered victim sweep. Nearest-first is the locality
/// default (an SMT sibling's cache is the cheapest to raid); the
/// adaptive controller flips to farthest-first when the observed
/// [`remote_fraction`](../../calu/struct.StealLocality.html) says
/// nearby victims are usually drained — probing them first then only
/// wastes sweep steps before the inevitable remote steal.
///
/// Either order visits every victim exactly once and draws exactly
/// three RNG values per sweep, so flipping it never perturbs the
/// contention statistics' scale or the deque RNG streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StealOrder {
    /// SMT sibling → same socket → remote (the PR-4 default).
    #[default]
    NearestFirst,
    /// Remote → same socket → SMT sibling.
    FarthestFirst,
}

impl std::fmt::Display for StealOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StealOrder::NearestFirst => "nearest-first",
            StealOrder::FarthestFirst => "farthest-first",
        })
    }
}

/// One worker's precomputed victim tiers: the static part of the
/// locality-tiered sweep. Build once per worker, then call
/// [`sweep`](StealTiers::sweep) per steal attempt; only the in-tier
/// rotation is drawn from the RNG, so a sweep costs three RNG draws and
/// no allocation.
#[derive(Debug, Clone)]
pub struct StealTiers {
    tiers: [Vec<usize>; 3],
}

impl StealTiers {
    /// Victim tiers for worker `me` among `workers` workers on `topo`.
    pub fn for_worker(topo: &CpuTopology, me: usize, workers: usize) -> Self {
        let mut tiers: [Vec<usize>; 3] = Default::default();
        for v in (0..workers).filter(|&v| v != me) {
            tiers[match topo.tier_between(me, v) {
                StealTier::Sibling => 0,
                StealTier::Socket => 1,
                StealTier::Remote => 2,
            }]
            .push(v);
        }
        Self { tiers }
    }

    /// One randomized sweep: every other worker exactly once, nearest
    /// tier first, random rotation within each tier. Deterministic for
    /// a fixed RNG state.
    pub fn sweep<'a>(&'a self, rng: &mut Rng) -> impl Iterator<Item = (usize, StealTier)> + 'a {
        self.sweep_ordered(StealOrder::NearestFirst, rng)
    }

    /// [`sweep`](Self::sweep) with an explicit tier direction. The
    /// in-tier rotations are drawn in the fixed Sibling/Socket/Remote
    /// order *before* the direction applies, so both orders consume the
    /// identical three RNG draws per sweep — flipping the order mid-fleet
    /// never desynchronizes a worker's RNG stream.
    pub fn sweep_ordered<'a>(
        &'a self,
        order: StealOrder,
        rng: &mut Rng,
    ) -> impl Iterator<Item = (usize, StealTier)> + 'a {
        let kinds = [StealTier::Sibling, StealTier::Socket, StealTier::Remote];
        let rots: [usize; 3] = std::array::from_fn(|i| {
            let len = self.tiers[i].len();
            if len > 1 {
                rng.gen_range(0..len)
            } else {
                0
            }
        });
        let idx: [usize; 3] = match order {
            StealOrder::NearestFirst => [0, 1, 2],
            StealOrder::FarthestFirst => [2, 1, 0],
        };
        idx.into_iter().flat_map(move |i| {
            let tier = &self.tiers[i];
            (0..tier.len()).map(move |j| (tier[(rots[i] + j) % tier.len()], kinds[i]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_one_socket_no_siblings() {
        let t = CpuTopology::flat(4);
        assert_eq!(t.len(), 4);
        assert_eq!(t.sockets(), 1);
        for v in 1..4 {
            assert_eq!(t.tier_between(0, v), StealTier::Socket);
        }
    }

    #[test]
    fn uniform_socket_boundaries() {
        // the simulator's AMD model: 8 sockets × 6 cores
        let t = CpuTopology::uniform(8, 6);
        assert_eq!(t.len(), 48);
        assert_eq!(t.sockets(), 8);
        assert_eq!(t.tier_between(0, 5), StealTier::Socket);
        assert_eq!(t.tier_between(0, 6), StealTier::Remote);
        assert_eq!(t.tier_between(47, 42), StealTier::Socket);
        assert_eq!(t.tier_between(47, 41), StealTier::Remote);
    }

    #[test]
    fn smt_siblings_rank_first() {
        // 1 socket × 2 cores × 2-way SMT: cpus {0,1} and {2,3} pair up
        let t = CpuTopology::uniform_smt(1, 2, 2);
        assert_eq!(t.tier_between(0, 1), StealTier::Sibling);
        assert_eq!(t.tier_between(0, 2), StealTier::Socket);
        assert_eq!(t.tier_between(2, 3), StealTier::Sibling);
        assert!(StealTier::Sibling < StealTier::Socket);
        assert!(StealTier::Socket < StealTier::Remote);
    }

    #[test]
    fn workers_beyond_cpus_wrap() {
        let t = CpuTopology::flat(2);
        assert_eq!(t.cpu_for_worker(0), 0);
        assert_eq!(t.cpu_for_worker(3), 1);
        // worker 2 wraps onto cpu 0 = worker 0's cpu: same socket tier
        assert_eq!(t.tier_between(0, 2), StealTier::Socket);
    }

    #[test]
    fn sweep_visits_every_other_worker_once_nearest_first() {
        let topo = CpuTopology::uniform_smt(2, 2, 2); // 8 cpus
        let tiers = StealTiers::for_worker(&topo, 0, 8);
        let mut rng = Rng::seed_from_u64(1);
        let order: Vec<(usize, StealTier)> = tiers.sweep(&mut rng).collect();
        assert_eq!(order.len(), 7, "all other workers probed");
        let mut victims: Vec<usize> = order.iter().map(|&(v, _)| v).collect();
        victims.sort_unstable();
        assert_eq!(victims, vec![1, 2, 3, 4, 5, 6, 7]);
        // tiers are in order: sibling (1), same socket (2,3), remote (4..8)
        assert_eq!(order[0], (1, StealTier::Sibling));
        let socket: Vec<usize> = order[1..3].iter().map(|&(v, _)| v).collect();
        assert!(socket.contains(&2) && socket.contains(&3), "{socket:?}");
        assert!(order[3..].iter().all(|&(_, k)| k == StealTier::Remote));
    }

    #[test]
    fn sweep_is_seed_deterministic_and_rotates() {
        let topo = CpuTopology::uniform(2, 4);
        let tiers = StealTiers::for_worker(&topo, 1, 8);
        let runs = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..8)
                .flat_map(|_| tiers.sweep(&mut rng).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(runs(3), runs(3));
        assert_ne!(runs(3), runs(4), "different seeds, different rotations");
        // across many sweeps every same-socket victim appears first in
        // its tier at least once (the rotation really randomizes)
        let mut rng = Rng::seed_from_u64(9);
        let mut firsts = std::collections::HashSet::new();
        for _ in 0..64 {
            firsts.insert(tiers.sweep(&mut rng).next().unwrap().0);
        }
        assert!(firsts.len() > 1, "rotation must vary the first victim");
    }

    #[test]
    fn flat_topology_sweep_matches_flat_order_semantics() {
        // one tier only: the sweep is a rotation of all other workers,
        // exactly the flat steal_order contract
        let topo = CpuTopology::flat(4);
        let tiers = StealTiers::for_worker(&topo, 2, 4);
        let mut rng = Rng::seed_from_u64(5);
        let order: Vec<usize> = tiers.sweep(&mut rng).map(|(v, _)| v).collect();
        assert_eq!(order.len(), 3);
        assert!(order.iter().all(|&v| v != 2));
        assert!(order
            .iter()
            .all(|&v| topo.tier_between(2, v) == StealTier::Socket));
    }

    #[test]
    fn farthest_first_reverses_tiers_with_identical_rng_cost() {
        let topo = CpuTopology::uniform_smt(2, 2, 2); // 8 cpus
        let tiers = StealTiers::for_worker(&topo, 0, 8);
        let (mut a, mut b) = (Rng::seed_from_u64(11), Rng::seed_from_u64(11));
        let near: Vec<_> = tiers
            .sweep_ordered(StealOrder::NearestFirst, &mut a)
            .collect();
        let far: Vec<_> = tiers
            .sweep_ordered(StealOrder::FarthestFirst, &mut b)
            .collect();
        assert_eq!(near.len(), 7);
        assert_eq!(far.len(), 7);
        // same victims, remote tier now leads
        assert_eq!(near[0].1, StealTier::Sibling);
        assert_eq!(far[0].1, StealTier::Remote);
        assert_eq!(far[6].1, StealTier::Sibling);
        let mut nv: Vec<usize> = near.iter().map(|&(v, _)| v).collect();
        let mut fv: Vec<usize> = far.iter().map(|&(v, _)| v).collect();
        nv.sort_unstable();
        fv.sort_unstable();
        assert_eq!(nv, fv);
        // identical RNG consumption: streams stay in lockstep after a sweep
        assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
    }

    #[test]
    fn sysfs_parse_smoke() {
        // on Linux CI this exercises the real parser; elsewhere (or in
        // sandboxes hiding /sys) detect() must still produce something
        let t = CpuTopology::detect();
        assert!(!t.is_empty());
        assert!(t.sockets() >= 1);
        let tiers = StealTiers::for_worker(&t, 0, t.len().clamp(2, 8));
        let mut rng = Rng::seed_from_u64(1);
        assert!(tiers.sweep(&mut rng).count() >= 1);
    }
}
