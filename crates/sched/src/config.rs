//! Scheduler configuration: the paper's design-space axis (Table 1).

use std::fmt;

/// Which scheduling strategy to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Fully static 2D block-cyclic scheduling.
    Static,
    /// Fully dynamic shared-queue scheduling.
    Dynamic,
    /// The paper's hybrid: `dratio` is the *fraction of panels scheduled
    /// dynamically* (`CALU static(number% dynamic)` with
    /// `number = 100·dratio`).
    Hybrid {
        /// Fraction of the computation scheduled dynamically, in `[0,1]`.
        dratio: f64,
    },
    /// Randomized work stealing (related-work baseline, §8).
    WorkStealing {
        /// Seed for the victim-selection RNG.
        seed: u64,
    },
}

impl SchedulerKind {
    /// The hybrid schedulers the paper sweeps in Figures 6–11.
    pub fn paper_sweep() -> Vec<SchedulerKind> {
        let mut v = vec![SchedulerKind::Static];
        for pct in [10, 20, 30, 50, 75] {
            v.push(SchedulerKind::Hybrid {
                dratio: pct as f64 / 100.0,
            });
        }
        v.push(SchedulerKind::Dynamic);
        v
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerKind::Static => write!(f, "static"),
            SchedulerKind::Dynamic => write!(f, "dynamic"),
            SchedulerKind::Hybrid { dratio } => {
                write!(f, "static({:.0}% dynamic)", dratio * 100.0)
            }
            SchedulerKind::WorkStealing { .. } => write!(f, "work-stealing"),
        }
    }
}

/// Number of statically scheduled panels: `Nstatic = N·(1 − dratio)`
/// (Algorithm 1, line 2), rounded to nearest and clamped to `[0, N]`.
pub fn nstatic_for(dratio: f64, npanels: usize) -> usize {
    assert!((0.0..=1.0).contains(&dratio), "dratio must be in [0,1]");
    ((npanels as f64) * (1.0 - dratio))
        .round()
        .clamp(0.0, npanels as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nstatic_extremes() {
        assert_eq!(nstatic_for(0.0, 10), 10);
        assert_eq!(nstatic_for(1.0, 10), 0);
        assert_eq!(nstatic_for(0.2, 10), 8);
        assert_eq!(nstatic_for(0.25, 10), 8); // rounds 7.5 -> 8
        assert_eq!(nstatic_for(0.5, 0), 0);
    }

    #[test]
    #[should_panic(expected = "dratio")]
    fn nstatic_validates() {
        nstatic_for(1.5, 10);
    }

    #[test]
    fn display_matches_paper_nomenclature() {
        assert_eq!(SchedulerKind::Static.to_string(), "static");
        assert_eq!(
            SchedulerKind::Hybrid { dratio: 0.1 }.to_string(),
            "static(10% dynamic)"
        );
        assert_eq!(SchedulerKind::Dynamic.to_string(), "dynamic");
    }

    #[test]
    fn sweep_covers_paper_range() {
        let sweep = SchedulerKind::paper_sweep();
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0], SchedulerKind::Static);
        assert_eq!(*sweep.last().unwrap(), SchedulerKind::Dynamic);
    }
}
