//! Adaptive hybrid scheduling: the feedback controller that closes the
//! loop from a run's measured schedule back to the split knobs.
//!
//! The paper's thesis is that the static section buys locality and the
//! dynamic section buys load balance — but a *fixed* `dratio` loses
//! somewhere on every heterogeneous or degraded host (Beaumont &
//! Marchal, arXiv 1404.3913, analyze exactly this tradeoff and predict
//! an adaptive split dominates any fixed one). The executors already
//! measure everything the tradeoff turns on: per-thread idle (static
//! section too big for the slow core), steal-sweep failure rate
//! (dynamic section churning), steal locality (work migrating across
//! sockets), rescued/lost workers (the fault layer's verdict). This
//! module turns those readings into the next run's knobs:
//!
//! | signal | reading | response |
//! |---|---|---|
//! | idle fraction | idle core-seconds / (threads × makespan) | above the target → grow `dratio`; below → shrink it back toward locality |
//! | contention | failed steal sweeps / total sweeps | high → shrink `dratio` (the dynamic section is churning, not balancing) |
//! | remote fraction | remote steals / total steals | above ½ → sweep victims farthest-first (nearby victims are drained) |
//! | lost / rescued workers | fault-layer counters | strong push toward dynamic — static ownership is what strands work |
//! | item-size histogram | recent batch item max-dimensions | 75th percentile → `batch_small_cutoff`; median vs cutoff → `batch_threads_per_item` |
//!
//! **Determinism invariant.** The controller is a pure function of its
//! seed and the observation sequence: no wall clock, no host entropy
//! (the topology and cache file are explicit inputs). Same seed + same
//! trace → same split sequence, on every backend — that is what makes
//! the adaptation test harness possible, and it is asserted in
//! `tests/adaptive.rs`.
//!
//! **Safety invariant.** Adaptation happens *between* runs (or batch
//! items), never mid-DAG: a run executes entirely under the split
//! chosen at plan time, and its report feeds the next choice. Combined
//! with the exclusive-writer rule this keeps every adaptive run
//! bitwise-identical to a fixed-`dratio` run of the same matrix — the
//! chaos suite's parity rows depend on it.

use std::collections::VecDeque;
use std::path::PathBuf;

use calu_rand::Rng;

use crate::topology::{CpuTopology, StealOrder};

/// Upper bound on the remembered item-size window; old sizes age out so
/// the cutoffs track the *recent* workload mix, not all history.
const SIZE_WINDOW: usize = 64;

/// When the split is re-seeded (or loaded from cache), how the two
/// adaptation modes differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptiveMode {
    /// Seed the split from the host topology plus the persisted
    /// per-host observation cache at every plan; in-process feedback
    /// only reaches the next plan *through* the cache file. The mode
    /// for one-shot runs that should start from the host's history.
    PerRun,
    /// Accumulate observations in memory across runs / batch items /
    /// service jobs, so a long-lived process converges even without a
    /// cache file. The default.
    #[default]
    CrossRun,
}

/// Validated policy for [`AdaptiveController`]: the seed, mode, bounds
/// and gains. Constructed with [`AdaptivePolicy::new`], validated by
/// `CaluConfig::validate` via [`validate`](AdaptivePolicy::validate).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivePolicy {
    /// Seed for the controller's deterministic exploration dither.
    pub seed: u64,
    /// Per-run (cache-seeded) or cross-run (in-memory) adaptation.
    pub mode: AdaptiveMode,
    /// Lower bound on the chosen `dratio`. Must be positive: stealing
    /// disciplines need a dynamic section to exist.
    pub dratio_min: f64,
    /// Upper bound on the chosen `dratio`, at most 1.
    pub dratio_max: f64,
    /// Idle fraction the controller tolerates before growing the
    /// dynamic share; below it the split drifts back toward locality.
    pub idle_target: f64,
    /// Step size: `dratio` moves by `gain × (pressure − relief)` per
    /// observation. In `(0, 1]`.
    pub gain: f64,
    /// Lower bound on the chosen `batch_small_cutoff`.
    pub cutoff_min: usize,
    /// Upper bound on the chosen `batch_small_cutoff`.
    pub cutoff_max: usize,
    /// Optional per-host observation cache: the chosen split is
    /// persisted here after every observation and re-read when the
    /// split is seeded, so separate processes on one host share what
    /// they learned. Unreadable/corrupt files are ignored (the seed
    /// split applies).
    pub cache: Option<PathBuf>,
}

impl AdaptivePolicy {
    /// Defaults: cross-run mode, `dratio ∈ [0.05, 0.95]`, 5% idle
    /// target, gain ½, cutoff ∈ [64, 768], no cache.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            mode: AdaptiveMode::CrossRun,
            dratio_min: 0.05,
            dratio_max: 0.95,
            idle_target: 0.05,
            gain: 0.5,
            cutoff_min: 64,
            cutoff_max: 768,
            cache: None,
        }
    }

    /// Switch to per-run (topology + cache seeded) adaptation.
    pub fn per_run(mut self) -> Self {
        self.mode = AdaptiveMode::PerRun;
        self
    }

    /// Switch to cross-run (in-memory) adaptation — the default.
    pub fn cross_run(mut self) -> Self {
        self.mode = AdaptiveMode::CrossRun;
        self
    }

    /// Bound the chosen `dratio` to `[min, max]`.
    pub fn with_dratio_bounds(mut self, min: f64, max: f64) -> Self {
        self.dratio_min = min;
        self.dratio_max = max;
        self
    }

    /// Bound the chosen `batch_small_cutoff` to `[min, max]`.
    pub fn with_cutoff_bounds(mut self, min: usize, max: usize) -> Self {
        self.cutoff_min = min;
        self.cutoff_max = max;
        self
    }

    /// Set the controller gain (step size per observation).
    pub fn with_gain(mut self, gain: f64) -> Self {
        self.gain = gain;
        self
    }

    /// Set the tolerated idle fraction.
    pub fn with_idle_target(mut self, target: f64) -> Self {
        self.idle_target = target;
        self
    }

    /// Persist/read the per-host observation cache at `path`.
    pub fn with_cache(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache = Some(path.into());
        self
    }

    /// Check the bounds are coherent; the error string is wrapped into
    /// `CaluError::InvalidConfig` by `CaluConfig::validate`.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.dratio_min > 0.0 && self.dratio_min <= self.dratio_max && self.dratio_max <= 1.0)
        {
            return Err(format!(
                "adaptive dratio bounds [{}, {}] must satisfy 0 < min <= max <= 1 \
                 (a zero minimum would let the controller strand the stealing \
                 disciplines without a dynamic section)",
                self.dratio_min, self.dratio_max
            ));
        }
        if !(self.gain > 0.0 && self.gain <= 1.0) {
            return Err(format!("adaptive gain {} out of (0, 1]", self.gain));
        }
        if !(0.0..=0.5).contains(&self.idle_target) {
            return Err(format!(
                "adaptive idle target {} out of [0, 0.5]",
                self.idle_target
            ));
        }
        if self.cutoff_min > self.cutoff_max {
            return Err(format!(
                "adaptive cutoff bounds [{}, {}] inverted",
                self.cutoff_min, self.cutoff_max
            ));
        }
        Ok(())
    }
}

/// The split the controller currently recommends — everything the
/// executors read: the dynamic fraction, the batch co-scheduling
/// cutoffs, and the steal-sweep direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitChoice {
    /// Fraction of panels scheduled dynamically.
    pub dratio: f64,
    /// Items at most this large (max dimension) co-schedule whole.
    pub batch_small_cutoff: usize,
    /// Modelled workers per co-scheduled item.
    pub batch_threads_per_item: usize,
    /// Direction of the lock-free victim sweep.
    pub steal_order: StealOrder,
}

/// One completed run's scheduling readings — the controller's input,
/// distilled from `Report::schedule` / a pool item's stats.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Worker threads the run used.
    pub threads: usize,
    /// Wall-clock (or simulated) makespan in seconds.
    pub makespan: f64,
    /// Summed idle core-seconds across workers.
    pub total_idle: f64,
    /// Failed steal sweeps / total sweeps, in `[0, 1]`.
    pub contention: f64,
    /// Remote-socket steals / total steals, in `[0, 1]`.
    pub remote_fraction: f64,
    /// Workers lost (fault layer) during the run.
    pub lost_workers: usize,
    /// Static tasks rescued from slow/lost owners.
    pub rescued: u64,
    /// Item shape `(m, n)`; feeds the batch size histogram. `(0, 0)`
    /// when unknown.
    pub dims: (usize, usize),
}

impl Observation {
    /// A bare observation; chain the `with_*` setters for the rest.
    pub fn new(threads: usize, makespan: f64, total_idle: f64) -> Self {
        Self {
            threads,
            makespan,
            total_idle,
            contention: 0.0,
            remote_fraction: 0.0,
            lost_workers: 0,
            rescued: 0,
            dims: (0, 0),
        }
    }

    /// Set the steal-sweep failure rate.
    pub fn with_contention(mut self, contention: f64) -> Self {
        self.contention = contention;
        self
    }

    /// Set the remote-steal fraction.
    pub fn with_remote_fraction(mut self, fraction: f64) -> Self {
        self.remote_fraction = fraction;
        self
    }

    /// Set the lost-worker count.
    pub fn with_lost(mut self, lost: usize) -> Self {
        self.lost_workers = lost;
        self
    }

    /// Set the rescued-task count.
    pub fn with_rescued(mut self, rescued: u64) -> Self {
        self.rescued = rescued;
        self
    }

    /// Set the item shape.
    pub fn with_dims(mut self, m: usize, n: usize) -> Self {
        self.dims = (m, n);
        self
    }

    /// Idle core-seconds as a fraction of the run's total core-seconds.
    pub fn idle_fraction(&self) -> f64 {
        let span = self.makespan.max(1e-12) * self.threads.max(1) as f64;
        (self.total_idle / span).clamp(0.0, 1.0)
    }
}

/// One entry of the adaptation trace: what was read and what was chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptationStep {
    /// The observation's idle fraction.
    pub idle_fraction: f64,
    /// The observation's steal-sweep failure rate.
    pub contention: f64,
    /// The observation's remote-steal fraction.
    pub remote_fraction: f64,
    /// Workers lost during the observed run.
    pub lost_workers: usize,
    /// The split chosen after ingesting the observation.
    pub chosen: SplitChoice,
}

/// The feedback controller. Deterministic given the policy seed and the
/// observation sequence; see the module docs for the update rules.
#[derive(Debug, Clone)]
pub struct AdaptiveController {
    policy: AdaptivePolicy,
    threads: usize,
    seed_split: SplitChoice,
    dratio: f64,
    cutoff: usize,
    threads_per_item: usize,
    steal_order: StealOrder,
    sizes: VecDeque<usize>,
    rng: Rng,
    trace: Vec<AdaptationStep>,
}

impl AdaptiveController {
    /// Build a controller for `threads` workers on `topo`. The seed
    /// split comes from the topology ([`seed_dratio`]) — overridden by
    /// the policy's cache file when one is present and parses.
    pub fn new(policy: AdaptivePolicy, topo: &CpuTopology, threads: usize) -> Self {
        let dratio0 = seed_dratio(topo, threads).clamp(policy.dratio_min, policy.dratio_max);
        let cutoff0 = 384usize.clamp(policy.cutoff_min, policy.cutoff_max);
        let mut c = Self {
            rng: Rng::seed_from_u64(policy.seed),
            seed_split: SplitChoice {
                dratio: dratio0,
                batch_small_cutoff: cutoff0,
                batch_threads_per_item: 1,
                steal_order: StealOrder::NearestFirst,
            },
            dratio: dratio0,
            cutoff: cutoff0,
            threads_per_item: 1,
            steal_order: StealOrder::NearestFirst,
            sizes: VecDeque::new(),
            trace: Vec::new(),
            threads: threads.max(1),
            policy,
        };
        c.load_cache();
        c
    }

    /// The policy this controller runs under.
    pub fn policy(&self) -> &AdaptivePolicy {
        &self.policy
    }

    /// The topology-seeded starting split (before any cache/feedback).
    pub fn seed_choice(&self) -> SplitChoice {
        self.seed_split
    }

    /// The split the controller currently recommends.
    pub fn choice(&self) -> SplitChoice {
        SplitChoice {
            dratio: self.dratio,
            batch_small_cutoff: self.cutoff,
            batch_threads_per_item: self.threads_per_item,
            steal_order: self.steal_order,
        }
    }

    /// The split a new plan should run under. Cross-run mode returns
    /// the accumulated in-memory choice; per-run mode re-seeds from the
    /// topology split plus the cache file first, so every plan starts
    /// from the host's persisted history rather than process memory.
    pub fn plan_choice(&mut self) -> SplitChoice {
        if self.policy.mode == AdaptiveMode::PerRun {
            self.dratio = self.seed_split.dratio;
            self.cutoff = self.seed_split.batch_small_cutoff;
            self.threads_per_item = self.seed_split.batch_threads_per_item;
            self.steal_order = self.seed_split.steal_order;
            self.load_cache();
        }
        self.choice()
    }

    /// Ingest one completed run's readings and move the split. Pure in
    /// (seed, observation sequence); appends to the trace and persists
    /// the cache file when the policy names one.
    pub fn observe(&mut self, obs: &Observation) {
        let idle = obs.idle_fraction();
        let contention = obs.contention.clamp(0.0, 1.0);
        let remote = obs.remote_fraction.clamp(0.0, 1.0);
        let lost = obs.lost_workers as f64 / obs.threads.max(1) as f64;
        // Idle and degradation push toward dynamic; tolerated idle and
        // steal churn pull back toward the static section's locality.
        let pressure = idle + lost + if obs.rescued > 0 { 0.05 } else { 0.0 };
        let relief = self.policy.idle_target + 0.5 * contention;
        // Deterministic exploration dither: one draw per observation,
        // small enough (±0.1% of a full step) to never mask a signal.
        let dither = (self.rng.next_f64() - 0.5) * 0.002 * self.policy.gain;
        self.dratio = (self.dratio + self.policy.gain * (pressure - relief) + dither)
            .clamp(self.policy.dratio_min, self.policy.dratio_max);
        // When most successful steals already cross sockets, nearby
        // victims are drained — probe the remote tier first.
        self.steal_order = if remote > 0.5 {
            StealOrder::FarthestFirst
        } else {
            StealOrder::NearestFirst
        };
        let dim = obs.dims.0.max(obs.dims.1);
        if dim > 0 {
            if self.sizes.len() == SIZE_WINDOW {
                self.sizes.pop_front();
            }
            self.sizes.push_back(dim);
            let mut sorted: Vec<usize> = self.sizes.iter().copied().collect();
            sorted.sort_unstable();
            // 75th percentile: co-schedule the small majority whole,
            // leave genuinely large items on the full hybrid schedule.
            let p75 = sorted[(3 * sorted.len() / 4).min(sorted.len() - 1)];
            self.cutoff = p75.clamp(self.policy.cutoff_min, self.policy.cutoff_max);
            let median = sorted[sorted.len() / 2];
            self.threads_per_item = if median <= self.cutoff {
                1
            } else {
                (self.threads / 4).max(1)
            };
        }
        self.trace.push(AdaptationStep {
            idle_fraction: idle,
            contention,
            remote_fraction: remote,
            lost_workers: obs.lost_workers,
            chosen: self.choice(),
        });
        self.store_cache();
    }

    /// Every step taken so far, oldest first.
    pub fn trace(&self) -> &[AdaptationStep] {
        &self.trace
    }

    /// Number of observations ingested.
    pub fn observations(&self) -> usize {
        self.trace.len()
    }

    fn load_cache(&mut self) {
        let Some(path) = &self.policy.cache else {
            return;
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return;
        };
        if let Some((dratio, cutoff, tpi, order)) = parse_cache(&text) {
            self.dratio = dratio.clamp(self.policy.dratio_min, self.policy.dratio_max);
            self.cutoff = cutoff.clamp(self.policy.cutoff_min, self.policy.cutoff_max);
            self.threads_per_item = tpi.clamp(1, self.threads);
            self.steal_order = order;
        }
    }

    fn store_cache(&self) {
        let Some(path) = &self.policy.cache else {
            return;
        };
        let order = match self.steal_order {
            StealOrder::NearestFirst => "near",
            StealOrder::FarthestFirst => "far",
        };
        // best effort: a read-only host loses persistence, not correctness
        let _ = std::fs::write(
            path,
            format!(
                "calu-adaptive v1\n{} {} {} {}\n",
                self.dratio, self.cutoff, self.threads_per_item, order
            ),
        );
    }
}

fn parse_cache(text: &str) -> Option<(f64, usize, usize, StealOrder)> {
    let mut lines = text.lines();
    if lines.next()?.trim() != "calu-adaptive v1" {
        return None;
    }
    let mut fields = lines.next()?.split_whitespace();
    let dratio: f64 = fields.next()?.parse().ok()?;
    let cutoff: usize = fields.next()?.parse().ok()?;
    let tpi: usize = fields.next()?.parse().ok()?;
    let order = match fields.next()? {
        "near" => StealOrder::NearestFirst,
        "far" => StealOrder::FarthestFirst,
        _ => return None,
    };
    dratio.is_finite().then_some((dratio, cutoff, tpi, order))
}

/// The topology-seeded starting `dratio`: the paper's 0.1 on a flat
/// single-socket host, widened by 0.05 per extra socket (more NUMA
/// domains → more imbalance risk for the static distribution) and by
/// 0.2 when workers oversubscribe the logical CPUs (timeslicing defeats
/// static ownership). Deterministic in `(topo, threads)`.
pub fn seed_dratio(topo: &CpuTopology, threads: usize) -> f64 {
    let sockets = topo.sockets() as f64;
    let oversub = if threads > topo.len() { 0.2 } else { 0.0 };
    (0.1 + 0.05 * (sockets - 1.0) + oversub).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(seed: u64) -> AdaptiveController {
        AdaptiveController::new(AdaptivePolicy::new(seed), &CpuTopology::flat(4), 4)
    }

    #[test]
    fn seed_split_tracks_topology() {
        let flat = seed_dratio(&CpuTopology::flat(8), 8);
        let numa = seed_dratio(&CpuTopology::uniform(4, 2), 8);
        let over = seed_dratio(&CpuTopology::flat(2), 8);
        assert!((flat - 0.1).abs() < 1e-12);
        assert!(numa > flat, "more sockets seed a larger dynamic share");
        assert!(over > flat, "oversubscription seeds a larger dynamic share");
    }

    #[test]
    fn same_seed_same_trace_same_splits() {
        let (mut a, mut b) = (controller(7), controller(7));
        let obs: Vec<Observation> = (0..10)
            .map(|i| {
                Observation::new(4, 1.0, 0.8 * (i % 2) as f64)
                    .with_contention(0.05 * i as f64 / 10.0)
                    .with_dims(200 + 40 * i, 200 + 40 * i)
            })
            .collect();
        for o in &obs {
            a.observe(o);
            b.observe(o);
        }
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.choice(), b.choice());
        // a different seed dithers differently (exploration is seeded)
        let mut c = controller(8);
        for o in &obs {
            c.observe(o);
        }
        assert_ne!(a.choice().dratio, c.choice().dratio);
    }

    #[test]
    fn idle_grows_the_dynamic_share_and_contention_shrinks_it() {
        let mut idle = controller(1);
        for _ in 0..5 {
            idle.observe(&Observation::new(4, 1.0, 1.2)); // 30% idle
        }
        // one step each so neither hits the lower clamp
        let mut busy = controller(1);
        busy.observe(&Observation::new(4, 1.0, 0.0));
        let mut churn = controller(1);
        churn.observe(&Observation::new(4, 1.0, 0.0).with_contention(0.8));
        assert!(idle.choice().dratio > busy.choice().dratio);
        assert!(churn.choice().dratio < busy.choice().dratio);
    }

    #[test]
    fn bounds_hold_under_extreme_traces() {
        let policy = AdaptivePolicy::new(3).with_dratio_bounds(0.2, 0.7);
        let mut c = AdaptiveController::new(policy, &CpuTopology::flat(4), 4);
        for _ in 0..50 {
            c.observe(&Observation::new(4, 1.0, 4.0).with_lost(3).with_rescued(9));
        }
        assert!((c.choice().dratio - 0.7).abs() < 1e-12);
        for _ in 0..50 {
            c.observe(&Observation::new(4, 1.0, 0.0).with_contention(1.0));
        }
        assert!((c.choice().dratio - 0.2).abs() < 1e-12);
    }

    #[test]
    fn remote_steals_flip_the_sweep_direction() {
        let mut c = controller(2);
        c.observe(&Observation::new(4, 1.0, 0.2).with_remote_fraction(0.9));
        assert_eq!(c.choice().steal_order, StealOrder::FarthestFirst);
        c.observe(&Observation::new(4, 1.0, 0.2).with_remote_fraction(0.1));
        assert_eq!(c.choice().steal_order, StealOrder::NearestFirst);
    }

    #[test]
    fn size_histogram_drives_the_batch_cutoffs() {
        let mut small = controller(4);
        for _ in 0..8 {
            small.observe(&Observation::new(4, 0.01, 0.0).with_dims(128, 128));
        }
        let s = small.choice();
        assert_eq!(s.batch_small_cutoff, 128);
        assert_eq!(s.batch_threads_per_item, 1);
        let mut large = controller(4);
        for _ in 0..8 {
            large.observe(&Observation::new(4, 0.5, 0.0).with_dims(2048, 2048));
        }
        let l = large.choice();
        assert_eq!(l.batch_small_cutoff, 768, "clamped to the policy maximum");
        assert!(l.batch_threads_per_item >= 1);
        assert!(
            l.batch_small_cutoff < 2048,
            "large items stay on the hybrid schedule"
        );
    }

    #[test]
    fn cache_round_trips_and_survives_corruption() {
        let path =
            std::env::temp_dir().join(format!("calu-adaptive-test-{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let policy = AdaptivePolicy::new(5).with_cache(&path);
        let mut c = AdaptiveController::new(policy.clone(), &CpuTopology::flat(4), 4);
        for _ in 0..6 {
            c.observe(&Observation::new(4, 1.0, 2.0).with_dims(256, 256));
        }
        let learned = c.choice();
        let fresh = AdaptiveController::new(policy.clone(), &CpuTopology::flat(4), 4);
        assert_eq!(
            fresh.choice(),
            learned,
            "a new process resumes from the cache"
        );
        std::fs::write(&path, "not a cache").unwrap();
        let reseeded = AdaptiveController::new(policy, &CpuTopology::flat(4), 4);
        assert_eq!(
            reseeded.choice(),
            reseeded.seed_choice(),
            "corrupt cache falls back to seed"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn per_run_mode_reseeds_each_plan() {
        let mut c =
            AdaptiveController::new(AdaptivePolicy::new(6).per_run(), &CpuTopology::flat(4), 4);
        let seed = c.seed_choice();
        for _ in 0..5 {
            c.observe(&Observation::new(4, 1.0, 3.0));
        }
        assert_ne!(
            c.choice().dratio,
            seed.dratio,
            "feedback moved the in-memory split"
        );
        assert_eq!(
            c.plan_choice(),
            seed,
            "per-run plans restart from the seed split"
        );
        let mut x = AdaptiveController::new(AdaptivePolicy::new(6), &CpuTopology::flat(4), 4);
        for _ in 0..5 {
            x.observe(&Observation::new(4, 1.0, 3.0));
        }
        assert_ne!(
            x.plan_choice(),
            seed,
            "cross-run plans keep the learned split"
        );
    }

    #[test]
    fn policy_validation_rejects_bad_bounds() {
        assert!(AdaptivePolicy::new(0).validate().is_ok());
        assert!(AdaptivePolicy::new(0)
            .with_dratio_bounds(0.0, 0.5)
            .validate()
            .is_err());
        assert!(AdaptivePolicy::new(0)
            .with_dratio_bounds(0.8, 0.2)
            .validate()
            .is_err());
        assert!(AdaptivePolicy::new(0)
            .with_dratio_bounds(0.1, 1.5)
            .validate()
            .is_err());
        assert!(AdaptivePolicy::new(0).with_gain(0.0).validate().is_err());
        assert!(AdaptivePolicy::new(0).with_gain(2.0).validate().is_err());
        assert!(AdaptivePolicy::new(0)
            .with_idle_target(0.9)
            .validate()
            .is_err());
        assert!(AdaptivePolicy::new(0)
            .with_cutoff_bounds(500, 100)
            .validate()
            .is_err());
    }
}
