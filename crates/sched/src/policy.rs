//! The policy interface shared by the simulator and the real executor.

use calu_dag::TaskId;

/// Where a popped task came from — the cost model charges different
/// dequeue overheads per source (§1: "the dequeue overhead to pull a task
/// from a work queue can become non-negligible").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueSource {
    /// The core's own (static) queue: cheapest, no contention.
    Local,
    /// The shared global queue: pays contention with every other core.
    Global,
    /// The core's own dynamic shard (sharded discipline): a per-worker
    /// lock touched only by this core and the occasional thief, so it
    /// pays the dequeue cost without the global queue's all-core
    /// contention — the point of sharding.
    Shard,
    /// Stolen from another core's deque on the *same socket* (or an SMT
    /// sibling): the migrated inputs cross at most the shared L3.
    Stolen,
    /// Stolen from a core on a *different socket*: the inputs cross the
    /// NUMA interconnect, the expensive migration of §1. Only the
    /// locality-tiered lock-free discipline distinguishes this; flat
    /// stealing reports every steal as [`QueueSource::Stolen`].
    StolenRemote,
}

impl QueueSource {
    /// Whether the task was obtained by stealing (either locality).
    pub fn is_stolen(&self) -> bool {
        matches!(self, QueueSource::Stolen | QueueSource::StolenRemote)
    }
}

/// A task handed to a core, tagged with its queue of origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Popped {
    /// The task to execute.
    pub task: TaskId,
    /// Queue it was dequeued from.
    pub source: QueueSource,
}

/// A scheduling policy: a deterministic decision procedure mapping
/// "task became ready" / "core wants work" events to task assignments.
///
/// The executor (simulated or real) owns dependence counting; policies
/// only manage ready queues.
pub trait Policy: Send {
    /// A task's dependencies are all satisfied. `completer` is the core
    /// that finished its last dependency (`None` for initially ready
    /// tasks); work stealing uses it for locality-preserving placement.
    fn on_ready(&mut self, t: TaskId, completer: Option<usize>);

    /// Core `core` is free and requests a task.
    fn pop(&mut self, core: usize) -> Option<Popped>;

    /// Pop up to `max` tasks that can be *batched* into one grouped
    /// BLAS-3 call: the first popped task plus further trailing-update
    /// tasks of the same panel from the same local queue (the BCL
    /// grouping optimization of §3/§4.1). The default takes just one.
    fn pop_batch(&mut self, core: usize, max: usize) -> Vec<Popped> {
        let _ = max;
        self.pop(core).into_iter().collect()
    }

    /// Core `core` was lost (or flagged persistently degraded): rescue
    /// its unexecuted *static* tasks by republishing them into the
    /// dynamic section, and reroute every future static publish for
    /// that owner the same way. Returns how many queued tasks moved
    /// right now. Because the task DAG has exclusive writers, moving a
    /// task between queues changes only *when* it runs, never what it
    /// computes — rescue degrades the schedule, not the factors.
    /// Policies without per-core static queues have nothing to move and
    /// return 0 (the default).
    fn rescue(&mut self, core: usize) -> usize {
        let _ = core;
        0
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;

    /// Tasks currently sitting in ready queues (for diagnostics).
    fn queued(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(Vec<TaskId>);
    impl Policy for Dummy {
        fn on_ready(&mut self, t: TaskId, _c: Option<usize>) {
            self.0.push(t);
        }
        fn pop(&mut self, _core: usize) -> Option<Popped> {
            self.0.pop().map(|task| Popped {
                task,
                source: QueueSource::Local,
            })
        }
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn queued(&self) -> usize {
            self.0.len()
        }
    }

    #[test]
    fn default_batch_pops_one() {
        let mut d = Dummy(vec![TaskId(1), TaskId(2)]);
        let batch = d.pop_batch(0, 8);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].task, TaskId(2));
        assert_eq!(d.queued(), 1);
    }
}
