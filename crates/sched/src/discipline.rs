//! Queue discipline for the dynamic section — the strategy enum shared
//! by the discrete-event simulator and the real threaded executor.
//!
//! The paper's Algorithm 2 serves the dynamic section from **one shared
//! queue** in DFS column order; §1 warns that "the dequeue overhead to
//! pull a task from a work queue can become non-negligible", and at high
//! thread counts / small tiles the single queue's lock is exactly where
//! that overhead concentrates. [`QueueDiscipline::Sharded`] is the
//! standard cure from the work-stealing literature (Cilk, StarPU):
//! per-worker priority shards, pushed by the worker that enabled the
//! task, popped locally, stolen from a seeded-random victim only when a
//! worker's static and local dynamic queues are both empty.
//!
//! Both executors draw their victim order from [`steal_order`], so a
//! steal behaves identically whether the machine is modelled or real.

use std::fmt;

use calu_rand::Rng;

/// Default victim-selection seed, used by [`QueueDiscipline::sharded`].
pub const DEFAULT_STEAL_SEED: u64 = 0x5eed_ca1e;

/// How the dynamic-section ready queue is organized.
///
/// This is orthogonal to [`SchedulerKind`](crate::SchedulerKind): the
/// scheduler decides *which* tasks are dynamic (the `dratio` split of
/// Algorithm 1), the discipline decides *how* the dynamic ones are
/// queued and dequeued.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum QueueDiscipline {
    /// One shared priority queue in Algorithm 2's DFS order — the
    /// paper's implementation. Every dequeue contends on one lock.
    #[default]
    Global,
    /// Per-worker priority shards with randomized work stealing: newly
    /// ready dynamic tasks go to the shard of the worker that enabled
    /// them, workers pop their own shard first and steal from a seeded
    /// random victim only when it is empty. Each shard keeps the DFS
    /// priority order, so steals still take the victim's most critical
    /// task — unlike plain Cilk deques, which §8 shows lose to the
    /// critical-path order.
    Sharded {
        /// Seed for the victim-selection RNG (per-worker streams are
        /// derived from it, so runs stay reproducible).
        seed: u64,
    },
    /// Per-worker lock-free Chase-Lev deques
    /// ([`crate::deque::Deque`]) with locality-tiered stealing: the
    /// owner pushes newly enabled successors in DAG-priority order and
    /// pops LIFO (cache-hot), thieves steal FIFO from the cold end,
    /// sweeping victims SMT sibling → same socket → remote sockets
    /// ([`crate::topology::StealTiers`]) instead of the flat randomized
    /// order. Removes even the per-shard mutex of
    /// [`QueueDiscipline::Sharded`], which stays as the parity oracle.
    LockFree {
        /// Seed for the victim-selection RNG (per-worker streams are
        /// derived from it, so runs stay reproducible).
        seed: u64,
    },
}

impl QueueDiscipline {
    /// Sharded with the default seed.
    pub fn sharded() -> Self {
        QueueDiscipline::Sharded {
            seed: DEFAULT_STEAL_SEED,
        }
    }

    /// Lock-free with the default seed.
    pub fn lock_free() -> Self {
        QueueDiscipline::LockFree {
            seed: DEFAULT_STEAL_SEED,
        }
    }

    /// Whether this discipline uses the mutex-sharded dynamic queue.
    pub fn is_sharded(&self) -> bool {
        matches!(self, QueueDiscipline::Sharded { .. })
    }

    /// Whether this discipline uses the lock-free Chase-Lev deques.
    pub fn is_lock_free(&self) -> bool {
        matches!(self, QueueDiscipline::LockFree { .. })
    }

    /// Whether the dynamic section is split into per-worker shards that
    /// workers steal from (true for both [`Sharded`] and [`LockFree`];
    /// both need a non-empty dynamic section to shard).
    ///
    /// [`Sharded`]: QueueDiscipline::Sharded
    /// [`LockFree`]: QueueDiscipline::LockFree
    pub fn steals(&self) -> bool {
        !matches!(self, QueueDiscipline::Global)
    }

    /// The steal seed, if this discipline steals.
    pub fn seed(&self) -> Option<u64> {
        match self {
            QueueDiscipline::Global => None,
            QueueDiscipline::Sharded { seed } | QueueDiscipline::LockFree { seed } => Some(*seed),
        }
    }
}

impl fmt::Display for QueueDiscipline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueueDiscipline::Global => write!(f, "global"),
            QueueDiscipline::Sharded { .. } => write!(f, "sharded"),
            QueueDiscipline::LockFree { .. } => write!(f, "lockfree"),
        }
    }
}

/// The randomized victim order every stealing executor uses: one RNG
/// draw picks a starting victim, then the sweep proceeds round-robin
/// over all workers, skipping the thief itself. Visiting *every* other
/// worker (rather than probing a bounded sample) guarantees a steal
/// succeeds whenever any shard is non-empty, so no worker parks while
/// work exists.
pub fn steal_order(rng: &mut Rng, me: usize, workers: usize) -> impl Iterator<Item = usize> {
    assert!(workers > 0, "steal_order needs at least one worker");
    let start = rng.gen_range(0..workers);
    (0..workers)
        .map(move |off| (start + off) % workers)
        .filter(move |&v| v != me)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_global() {
        assert_eq!(QueueDiscipline::default(), QueueDiscipline::Global);
        assert!(!QueueDiscipline::Global.is_sharded());
        assert!(QueueDiscipline::sharded().is_sharded());
        assert_eq!(
            QueueDiscipline::sharded().seed(),
            Some(DEFAULT_STEAL_SEED),
            "default-seeded shard"
        );
        assert_eq!(QueueDiscipline::Global.seed(), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(QueueDiscipline::Global.to_string(), "global");
        assert_eq!(QueueDiscipline::sharded().to_string(), "sharded");
        assert_eq!(QueueDiscipline::lock_free().to_string(), "lockfree");
    }

    #[test]
    fn lock_free_is_a_stealing_non_sharded_discipline() {
        let lf = QueueDiscipline::lock_free();
        assert!(lf.is_lock_free() && !lf.is_sharded());
        assert!(lf.steals() && QueueDiscipline::sharded().steals());
        assert!(!QueueDiscipline::Global.steals());
        assert_eq!(lf.seed(), Some(DEFAULT_STEAL_SEED));
    }

    #[test]
    fn steal_order_visits_every_other_worker_once() {
        let mut rng = Rng::seed_from_u64(1);
        for me in 0..4 {
            let mut victims: Vec<usize> = steal_order(&mut rng, me, 4).collect();
            assert_eq!(victims.len(), 3, "all other workers probed");
            assert!(!victims.contains(&me), "never steal from yourself");
            victims.sort_unstable();
            victims.dedup();
            assert_eq!(victims.len(), 3, "each victim probed exactly once");
        }
    }

    #[test]
    fn steal_order_single_worker_is_empty() {
        let mut rng = Rng::seed_from_u64(2);
        assert_eq!(steal_order(&mut rng, 0, 1).count(), 0);
    }

    #[test]
    fn steal_order_is_seed_deterministic() {
        let order = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..10)
                .flat_map(|_| steal_order(&mut rng, 0, 8).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(order(7), order(7));
        assert_ne!(order(7), order(8), "different seeds, different sweeps");
    }
}
