//! Priority-class lanes for the factorization job service.
//!
//! The service layer (`calu-serve`) classifies incoming jobs into three
//! [`JobClass`]es; the pool's workers pull from a [`ClassLanes`] queue
//! that prefers higher classes *without starving lower ones*. The
//! anti-starvation rule is a bounded-debt scheme: every time a
//! non-empty lane is passed over in favour of a higher class it accrues
//! one unit of debt, and once a lane's debt reaches the configured
//! limit it is served next regardless of what sits above it. With a
//! limit of `k`, a queued `Background` job waits behind at most `k`
//! higher-class pops — Beaumont & Marchal's observation that bursty
//! heterogeneous load needs an up-front classification layer, reduced
//! to its simplest deterministic form.
//!
//! Within one lane the order is plain FIFO: jobs of equal class
//! complete in submission order, which is what `JobHandle::wait`
//! callers expect.

use std::collections::VecDeque;

/// Priority class of a service job. Lower `lane()` index = served first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobClass {
    /// Latency-sensitive: served before everything else.
    Interactive,
    /// The default class for bulk sweeps.
    Batch,
    /// Best-effort: only runs when nothing above it is waiting (up to
    /// the starvation bound).
    Background,
}

impl JobClass {
    /// All classes in priority order (highest first).
    pub const ALL: [JobClass; 3] = [JobClass::Interactive, JobClass::Batch, JobClass::Background];

    /// Lane index: 0 = `Interactive`, 1 = `Batch`, 2 = `Background`.
    pub fn lane(self) -> usize {
        match self {
            JobClass::Interactive => 0,
            JobClass::Batch => 1,
            JobClass::Background => 2,
        }
    }
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobClass::Interactive => "interactive",
            JobClass::Batch => "batch",
            JobClass::Background => "background",
        })
    }
}

/// Three FIFO lanes with debt-based anti-starvation, one per
/// [`JobClass`]. Not synchronized — callers wrap it in their own lock
/// (the service pool holds it inside its state mutex).
#[derive(Debug)]
pub struct ClassLanes<T> {
    lanes: [VecDeque<T>; 3],
    /// Times each non-empty lane has been passed over since it was last
    /// served.
    debt: [usize; 3],
    /// Debt at which a lane preempts everything above it. A limit of 0
    /// is treated as 1 (serve-after-one-pass); `usize::MAX` disables
    /// the bound entirely.
    limit: usize,
}

impl<T> ClassLanes<T> {
    /// New lane set serving any passed-over lane after `limit`
    /// higher-class pops.
    pub fn new(limit: usize) -> Self {
        ClassLanes {
            lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            debt: [0; 3],
            limit: limit.max(1),
        }
    }

    /// Enqueue at the tail of `class`'s lane.
    pub fn push(&mut self, class: JobClass, item: T) {
        self.lanes[class.lane()].push_back(item);
    }

    /// Dequeue the next item under the class-priority + bounded-debt
    /// rule; `None` when all lanes are empty.
    pub fn pop(&mut self) -> Option<(JobClass, T)> {
        // A lane whose debt hit the limit is served first (highest
        // priority among the starving, so the bound composes: Batch
        // starving beats Background starving).
        let starving = (0..3).find(|&l| self.debt[l] >= self.limit && !self.lanes[l].is_empty());
        let lane = starving.or_else(|| (0..3).find(|&l| !self.lanes[l].is_empty()))?;
        let item = self.lanes[lane]
            .pop_front()
            .expect("lane checked non-empty");
        self.debt[lane] = 0;
        for l in 0..3 {
            if l != lane && !self.lanes[l].is_empty() {
                self.debt[l] = self.debt[l].saturating_add(1);
            }
        }
        Some((JobClass::ALL[lane], item))
    }

    /// Remove and return the first item (any lane, highest class first)
    /// matching `pred` — the cancellation path for queued jobs.
    pub fn remove_where(&mut self, mut pred: impl FnMut(&T) -> bool) -> Option<(JobClass, T)> {
        for lane in 0..3 {
            if let Some(pos) = self.lanes[lane].iter().position(&mut pred) {
                let item = self.lanes[lane].remove(pos).expect("position just found");
                return Some((JobClass::ALL[lane], item));
            }
        }
        None
    }

    /// Total queued items across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Queued items in `class`'s lane.
    pub fn len_in(&self, class: JobClass) -> usize {
        self.lanes[class.lane()].len()
    }

    /// True when every lane is empty.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_classes_pop_first() {
        let mut q = ClassLanes::new(100);
        q.push(JobClass::Background, "bg");
        q.push(JobClass::Batch, "batch");
        q.push(JobClass::Interactive, "int");
        assert_eq!(q.pop(), Some((JobClass::Interactive, "int")));
        assert_eq!(q.pop(), Some((JobClass::Batch, "batch")));
        assert_eq!(q.pop(), Some((JobClass::Background, "bg")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn lanes_are_fifo_within_a_class() {
        let mut q = ClassLanes::new(4);
        for i in 0..5 {
            q.push(JobClass::Batch, i);
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some((JobClass::Batch, i)));
        }
    }

    #[test]
    fn starvation_is_bounded_by_the_debt_limit() {
        // A steady interactive stream must not starve one queued
        // background job past the limit.
        let limit = 3;
        let mut q = ClassLanes::new(limit);
        q.push(JobClass::Background, usize::MAX);
        for i in 0..limit {
            q.push(JobClass::Interactive, i);
        }
        // The first `limit` pops serve interactive while background
        // accrues debt…
        for i in 0..limit {
            q.push(JobClass::Interactive, 100 + i); // keep the stream coming
            let (class, _) = q.pop().unwrap();
            assert_eq!(class, JobClass::Interactive, "pop {i}");
        }
        // …then background preempts even though interactive is non-empty.
        assert_eq!(q.pop(), Some((JobClass::Background, usize::MAX)));
    }

    #[test]
    fn starving_higher_class_beats_starving_lower_class() {
        let limit = 2;
        let mut q = ClassLanes::new(limit);
        q.push(JobClass::Batch, "batch");
        q.push(JobClass::Background, "bg");
        // Two interactive pops put both lower lanes at the limit.
        for _ in 0..limit {
            q.push(JobClass::Interactive, "int");
            assert_eq!(q.pop().unwrap().0, JobClass::Interactive);
        }
        q.push(JobClass::Interactive, "int");
        // Batch (higher of the two starving lanes) goes first.
        assert_eq!(q.pop(), Some((JobClass::Batch, "batch")));
        // Background's debt kept accruing, so it still preempts.
        assert_eq!(q.pop(), Some((JobClass::Background, "bg")));
        assert_eq!(q.pop(), Some((JobClass::Interactive, "int")));
    }

    #[test]
    fn interactive_never_accrues_wait_when_no_debt_exists() {
        let mut q = ClassLanes::new(4);
        for i in 0..10 {
            q.push(JobClass::Background, i);
        }
        // Fresh backlog, no debt: an interactive arrival is served
        // immediately.
        q.push(JobClass::Interactive, 999);
        assert_eq!(q.pop(), Some((JobClass::Interactive, 999)));
    }

    #[test]
    fn remove_where_cancels_a_queued_item() {
        let mut q = ClassLanes::new(4);
        q.push(JobClass::Batch, 1);
        q.push(JobClass::Batch, 2);
        q.push(JobClass::Background, 3);
        assert_eq!(q.remove_where(|&x| x == 2), Some((JobClass::Batch, 2)));
        assert_eq!(q.remove_where(|&x| x == 2), None);
        assert_eq!(q.len(), 2);
        assert_eq!(q.len_in(JobClass::Batch), 1);
        assert_eq!(q.pop(), Some((JobClass::Batch, 1)));
        assert_eq!(q.pop(), Some((JobClass::Background, 3)));
    }
}
