//! Randomized work stealing, the §8 related-work baseline.
//!
//! Ready tasks go to the bottom of the deque of the core that enabled
//! them (Cilk-style locality heuristic); a core pops its own deque LIFO
//! and, when empty, steals FIFO from the top of a uniformly random
//! victim. The paper argues this is suboptimal for LU because steals
//! ignore the left-to-right critical-path order — the simulator's
//! ablation bench quantifies exactly that.

use std::collections::VecDeque;

use calu_dag::{TaskGraph, TaskId};
use calu_rand::Rng;

use crate::discipline::steal_order;
use crate::policy::{Policy, Popped, QueueSource};

/// See module docs.
pub struct WorkStealingPolicy {
    deques: Vec<VecDeque<TaskId>>,
    rng: Rng,
    rr: usize,
    queued: usize,
}

impl WorkStealingPolicy {
    /// Build for graph `g` on `cores` cores with the given RNG seed.
    pub fn new(g: &TaskGraph, cores: usize, seed: u64) -> Self {
        let _ = g; // topology-independent policy
        assert!(cores > 0);
        Self {
            deques: (0..cores).map(|_| VecDeque::new()).collect(),
            rng: Rng::seed_from_u64(seed),
            rr: 0,
            queued: 0,
        }
    }
}

impl Policy for WorkStealingPolicy {
    fn on_ready(&mut self, t: TaskId, completer: Option<usize>) {
        let core = match completer {
            Some(c) => c,
            None => {
                // scatter initially ready tasks round-robin
                let c = self.rr;
                self.rr = (self.rr + 1) % self.deques.len();
                c
            }
        };
        self.deques[core].push_back(t);
        self.queued += 1;
    }

    fn pop(&mut self, core: usize) -> Option<Popped> {
        // own deque: LIFO for locality
        if let Some(task) = self.deques[core].pop_back() {
            self.queued -= 1;
            return Some(Popped {
                task,
                source: QueueSource::Local,
            });
        }
        // steal: random victim order, FIFO from the top
        let p = self.deques.len();
        if p == 1 {
            return None;
        }
        for victim in steal_order(&mut self.rng, core, p) {
            if let Some(task) = self.deques[victim].pop_front() {
                self.queued -= 1;
                return Some(Popped {
                    task,
                    source: QueueSource::Stolen,
                });
            }
        }
        None
    }

    fn name(&self) -> &'static str {
        "work-stealing"
    }

    fn queued(&self) -> usize {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> TaskGraph {
        TaskGraph::build(400, 400, 100)
    }

    #[test]
    fn own_pops_are_lifo() {
        let g = graph();
        let mut p = WorkStealingPolicy::new(&g, 2, 1);
        let ready = g.initial_ready();
        p.on_ready(ready[0], Some(0));
        p.on_ready(ready[1], Some(0));
        let first = p.pop(0).unwrap();
        assert_eq!(first.task, ready[1], "LIFO on own deque");
        assert_eq!(first.source, QueueSource::Local);
    }

    #[test]
    fn steals_are_fifo_and_tagged() {
        let g = graph();
        let mut p = WorkStealingPolicy::new(&g, 2, 2);
        let ready = g.initial_ready();
        p.on_ready(ready[0], Some(0));
        p.on_ready(ready[1], Some(0));
        let stolen = p.pop(1).unwrap();
        assert_eq!(stolen.task, ready[0], "steal takes the oldest task");
        assert_eq!(stolen.source, QueueSource::Stolen);
    }

    #[test]
    fn initial_tasks_scattered() {
        let g = graph();
        let mut p = WorkStealingPolicy::new(&g, 4, 3);
        for t in g.initial_ready() {
            p.on_ready(t, None);
        }
        let nonempty = p.deques.iter().filter(|d| !d.is_empty()).count();
        assert!(nonempty > 1, "round-robin must spread initial tasks");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = graph();
        let run = |seed: u64| {
            let mut p = WorkStealingPolicy::new(&g, 3, seed);
            let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
            for t in g.initial_ready() {
                p.on_ready(t, None);
            }
            let mut order = vec![];
            let mut done = 0;
            while done < g.len() {
                for core in 0..3 {
                    if let Some(popped) = p.pop(core) {
                        order.push(popped.task);
                        done += 1;
                        for &s in g.successors(popped.task) {
                            deps[s.idx()] -= 1;
                            if deps[s.idx()] == 0 {
                                p.on_ready(s, Some(core));
                            }
                        }
                    }
                }
            }
            order
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn single_core_never_steals() {
        let g = graph();
        let mut p = WorkStealingPolicy::new(&g, 1, 0);
        p.on_ready(g.initial_ready()[0], None);
        assert_eq!(p.pop(0).unwrap().source, QueueSource::Local);
        assert!(p.pop(0).is_none());
    }
}
