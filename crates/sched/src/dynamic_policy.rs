//! Fully dynamic scheduling: one shared global queue in the left-to-right
//! DFS order of Algorithm 2; any free core takes the head. Perfect load
//! balance, but every dequeue pays contention and tasks land on cores
//! with no data affinity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use calu_dag::{TaskGraph, TaskId};

use crate::policy::{Policy, Popped, QueueSource};
use crate::priority::dynamic_key;

/// See module docs.
pub struct DynamicPolicy {
    keys: Vec<u64>,
    kinds: Vec<calu_dag::TaskKind>,
    queue: BinaryHeap<Reverse<(u64, u32)>>,
    cores: usize,
}

impl DynamicPolicy {
    /// Build for graph `g` on `cores` cores.
    pub fn new(g: &TaskGraph, cores: usize) -> Self {
        Self {
            keys: g.ids().map(|t| dynamic_key(&g.kind(t))).collect(),
            kinds: g.ids().map(|t| g.kind(t)).collect(),
            queue: BinaryHeap::new(),
            cores,
        }
    }

    /// Number of cores this policy serves.
    pub fn cores(&self) -> usize {
        self.cores
    }
}

impl Policy for DynamicPolicy {
    fn on_ready(&mut self, t: TaskId, _completer: Option<usize>) {
        self.queue.push(Reverse((self.keys[t.idx()], t.0)));
    }

    fn pop(&mut self, _core: usize) -> Option<Popped> {
        self.queue.pop().map(|Reverse((_, t))| Popped {
            task: TaskId(t),
            source: QueueSource::Global,
        })
    }

    fn pop_batch(&mut self, core: usize, max: usize) -> Vec<Popped> {
        // With the BCL layout a thread can still group update tiles that
        // sit in one owner region; the DFS order makes same-column S
        // tasks adjacent in the queue, so grouping the head run of
        // updates of one (k, j) column-step models the paper's k=3
        // grouped dgemm under dynamic scheduling too.
        let Some(first) = self.pop(core) else {
            return vec![];
        };
        let mut batch = vec![first];
        if let calu_dag::TaskKind::Update { k, j, .. } = self.kinds[first.task.idx()] {
            while batch.len() < max {
                let same = self
                    .queue
                    .peek()
                    .map(|Reverse((_, t))| {
                        matches!(self.kinds[*t as usize],
                            calu_dag::TaskKind::Update { k: hk, j: hj, .. } if hk == k && hj == j)
                    })
                    .unwrap_or(false);
                if !same {
                    break;
                }
                let Reverse((_, t)) = self.queue.pop().expect("peeked");
                batch.push(Popped {
                    task: TaskId(t),
                    source: QueueSource::Global,
                });
            }
        }
        batch
    }

    fn name(&self) -> &'static str {
        "dynamic"
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calu_dag::TaskKind;

    #[test]
    fn any_core_can_pop() {
        let g = TaskGraph::build(300, 300, 100);
        let mut p = DynamicPolicy::new(&g, 4);
        for t in g.initial_ready() {
            p.on_ready(t, None);
        }
        let a = p.pop(3).unwrap();
        let b = p.pop(0).unwrap();
        assert_ne!(a.task, b.task);
        assert_eq!(a.source, QueueSource::Global);
    }

    #[test]
    fn pops_in_dfs_column_order() {
        let g = TaskGraph::build(400, 400, 100);
        let mut p = DynamicPolicy::new(&g, 2);
        // insert one U of column 3 and one S of column 2 (both panel 0)
        let u3 = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::ComputeU { k: 0, j: 3 }))
            .unwrap();
        let s2 = g
            .ids()
            .find(|&t| matches!(g.kind(t), TaskKind::Update { k: 0, i: 1, j: 2 }))
            .unwrap();
        p.on_ready(u3, None);
        p.on_ready(s2, None);
        assert_eq!(p.pop(0).unwrap().task, s2, "leftmost column first");
        assert_eq!(p.pop(0).unwrap().task, u3);
    }

    #[test]
    fn queue_size_tracks() {
        let g = TaskGraph::build(300, 300, 100);
        let mut p = DynamicPolicy::new(&g, 1);
        assert_eq!(p.queued(), 0);
        for t in g.initial_ready() {
            p.on_ready(t, None);
        }
        assert_eq!(p.queued(), g.initial_ready().len());
        p.pop(0);
        assert_eq!(p.queued(), g.initial_ready().len() - 1);
    }
}
