//! Priority orders for ready queues.
//!
//! * The **static** order drives each thread's own queue: panel (P) tasks
//!   outrank everything (they sit on the critical path and enable
//!   look-ahead), then L, then U, then S; ties break toward earlier
//!   panels and leftmost columns.
//! * The **dynamic** order implements Algorithm 2's depth-first traversal
//!   of the dynamic section: columns are served left to right (`J`
//!   ascending), then by elimination step (`K` ascending), so execution
//!   "follows in priority the critical path when the algorithm reaches
//!   the dynamic section" (§3).
//!
//! Keys are `u64`; **smaller key = runs first**.

use calu_dag::TaskKind;

/// Rank of the paper kind in the static order (P < L < U < S).
fn kind_rank(k: &TaskKind) -> u64 {
    match k {
        TaskKind::PanelLeaf { .. } => 0,
        TaskKind::PanelCombine { .. } => 1,
        TaskKind::PanelFinish { .. } => 2,
        TaskKind::ComputeL { .. } => 3,
        TaskKind::ComputeU { .. } => 4,
        TaskKind::Update { .. } => 5,
    }
}

fn indices(k: &TaskKind) -> (u64, u64, u64) {
    match *k {
        TaskKind::PanelLeaf { k, i } => (k as u64, k as u64, i as u64),
        TaskKind::PanelCombine { k, level, idx } => {
            (k as u64, k as u64, ((level as u64) << 32) | idx as u64)
        }
        TaskKind::PanelFinish { k } => (k as u64, k as u64, 0),
        TaskKind::ComputeL { k, i } => (k as u64, k as u64, i as u64),
        TaskKind::ComputeU { k, j } => (k as u64, j as u64, 0),
        TaskKind::Update { k, i, j } => (k as u64, j as u64, i as u64),
    }
}

/// Static-section priority: `(kind, panel, column, row)` — any ready P
/// task beats any L, which beats U, which beats S.
pub fn static_key(kind: &TaskKind) -> u64 {
    let (k, j, i) = indices(kind);
    // bits: kind(3) | panel(20) | col(20) | row(20)
    (kind_rank(kind) << 60) | (k.min(0xFFFFF) << 40) | (j.min(0xFFFFF) << 20) | i.min(0xFFFFF)
}

/// Dynamic-section priority: `(column, panel, kind, row)` — the DFS
/// left-to-right column order of Algorithm 2.
pub fn dynamic_key(kind: &TaskKind) -> u64 {
    let (k, j, i) = indices(kind);
    (j.min(0xFFFFF) << 43) | (k.min(0xFFFFF) << 23) | (kind_rank(kind) << 20) | i.min(0xFFFFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_order_puts_panels_first() {
        let p = TaskKind::PanelLeaf { k: 5, i: 6 };
        let s = TaskKind::Update { k: 0, i: 1, j: 1 };
        assert!(
            static_key(&p) < static_key(&s),
            "P beats S even for later panels"
        );
        let l = TaskKind::ComputeL { k: 2, i: 3 };
        let u = TaskKind::ComputeU { k: 2, j: 3 };
        assert!(static_key(&l) < static_key(&u));
        assert!(static_key(&u) < static_key(&s));
    }

    #[test]
    fn static_order_prefers_early_panels_within_kind() {
        let s1 = TaskKind::Update { k: 1, i: 2, j: 2 };
        let s2 = TaskKind::Update { k: 2, i: 3, j: 3 };
        assert!(static_key(&s1) < static_key(&s2));
        let s3 = TaskKind::Update { k: 1, i: 2, j: 5 };
        assert!(static_key(&s1) < static_key(&s3), "leftmost column first");
    }

    #[test]
    fn dynamic_order_is_column_major() {
        // Algorithm 2: for J ascending, for K ascending, U before S
        let u_col4 = TaskKind::ComputeU { k: 0, j: 4 };
        let s_col4 = TaskKind::Update { k: 0, i: 1, j: 4 };
        let u_col5 = TaskKind::ComputeU { k: 0, j: 5 };
        assert!(
            dynamic_key(&u_col4) < dynamic_key(&s_col4),
            "U before S in a column-step"
        );
        assert!(
            dynamic_key(&s_col4) < dynamic_key(&u_col5),
            "finish column 4 before column 5"
        );
        // within a column, earlier elimination steps first
        let s_k0 = TaskKind::Update { k: 0, i: 2, j: 6 };
        let u_k1 = TaskKind::ComputeU { k: 1, j: 6 };
        assert!(dynamic_key(&s_k0) < dynamic_key(&u_k1));
    }

    #[test]
    fn dynamic_order_runs_panel_tasks_of_their_column() {
        // P/L of panel k act on column k: they come before U/S of column k
        let p = TaskKind::PanelFinish { k: 4 };
        let u = TaskKind::ComputeU { k: 4, j: 5 };
        assert!(dynamic_key(&p) < dynamic_key(&u));
        let s_before = TaskKind::Update { k: 3, i: 5, j: 4 };
        assert!(
            dynamic_key(&s_before) < dynamic_key(&p),
            "column 4 updates precede its panel"
        );
    }

    #[test]
    fn keys_are_distinct_for_distinct_tasks() {
        let kinds = [
            TaskKind::PanelLeaf { k: 1, i: 1 },
            TaskKind::PanelLeaf { k: 1, i: 2 },
            TaskKind::PanelCombine {
                k: 1,
                level: 1,
                idx: 0,
            },
            TaskKind::PanelFinish { k: 1 },
            TaskKind::ComputeL { k: 1, i: 2 },
            TaskKind::ComputeU { k: 1, j: 2 },
            TaskKind::Update { k: 1, i: 2, j: 2 },
            TaskKind::Update { k: 1, i: 3, j: 2 },
        ];
        for keyf in [static_key as fn(&TaskKind) -> u64, dynamic_key] {
            let mut keys: Vec<u64> = kinds.iter().map(keyf).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), kinds.len());
        }
    }
}
