//! Minimal deterministic PRNG for the calu workspace.
//!
//! The repository runs in hermetic environments with no access to
//! crates.io, so the tiny slice of the `rand` ecosystem the experiments
//! need is implemented here: a seedable, portable, fast generator with
//! uniform sampling over integer and float ranges. Every generator in
//! the workspace is seeded explicitly, so all experiments stay exactly
//! reproducible across runs and machines.
//!
//! The algorithm is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 — the same construction the `rand` crate's `SmallRng` has
//! used; statistical quality is far beyond what seeded test matrices and
//! Poisson noise processes require.

use std::ops::{Range, RangeInclusive};

/// A seedable xoshiro256++ generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a 64-bit seed (SplitMix64 expansion, so
    /// nearby seeds yield unrelated streams).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range; supported for `Range<usize>`,
    /// `Range<f64>` and `RangeInclusive<f64>`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges the generator can sample uniformly.
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        // multiply-shift bounded sampling (Lemire); the slight modulo
        // bias of the plain approach is irrelevant here but this is just
        // as cheap and exact for spans far below 2^64
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        self.start + hi as usize
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        let (a, b) = (*self.start(), *self.end());
        assert!(a <= b, "empty range");
        // scale a [0,1) draw across the closed span; hitting b exactly
        // is measure-zero and callers treat the bound as inclusive
        a + (b - a) * rng.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn usize_range_covers_and_respects_bounds() {
        let mut r = Rng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let x = r.gen_range(3..10);
            assert!((3..10).contains(&x));
            seen[x - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn f64_range_mean_is_centered() {
        let mut r = Rng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(-1.0..=1.0)).sum();
        assert!((sum / n as f64).abs() < 0.01, "mean {}", sum / n as f64);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(5..5);
    }
}
