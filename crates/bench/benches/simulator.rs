//! Simulator throughput: simulated tasks per second of the discrete-event
//! engine, the cost that bounds how large the figure sweeps can go.

use calu_bench::default_noise;
use calu_dag::TaskGraph;
use calu_matrix::{Layout, ProcessGrid};
use calu_sched::SchedulerKind;
use calu_sim::{run, MachineConfig, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_engine(c: &mut Criterion) {
    let mach = MachineConfig::intel_xeon_16(default_noise());
    let grid = ProcessGrid::square_for(16).unwrap();
    let g = TaskGraph::build_calu(4000, 4000, 100, grid.pr());
    let mut group = c.benchmark_group("sim_engine");
    group.throughput(Throughput::Elements(g.len() as u64));
    for sched in [
        SchedulerKind::Static,
        SchedulerKind::Hybrid { dratio: 0.1 },
        SchedulerKind::Dynamic,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sched}")),
            &sched,
            |b, &s| {
                let cfg = SimConfig::new(mach.clone(), Layout::BlockCyclic, s);
                b.iter(|| run(&g, &cfg))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine
}
criterion_main!(benches);
