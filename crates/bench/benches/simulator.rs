//! Simulator throughput: simulated tasks per second of one end-to-end
//! facade `run()` — plan validation, DAG construction, and the
//! discrete-event engine together. That is the per-experiment cost the
//! figure sweeps actually pay, since each experiment goes through the
//! same Solver path.

use calu::dag::TaskGraph;
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu_bench::timing::bench_throughput;
use calu_bench::{default_noise, sim_solver};

fn main() {
    let mach = MachineConfig::intel_xeon_16(default_noise());
    let tasks = TaskGraph::build_calu(4000, 4000, 100, 4).len();
    println!("sim_engine (n=4000, {tasks} tasks):");
    for sched in [
        SchedulerKind::Static,
        SchedulerKind::Hybrid { dratio: 0.1 },
        SchedulerKind::Dynamic,
    ] {
        let solver = sim_solver(4000, &mach).scheduler(sched);
        bench_throughput(&format!("{sched}"), 10, tasks as u64, "task", || {
            solver.run().unwrap();
        });
    }
}
