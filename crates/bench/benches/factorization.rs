//! End-to-end factorization benches: CALU (sequential reference and
//! threaded hybrid executor) against the GEPP and incremental-pivoting
//! baselines, all at equal problem size, through the Solver facade.

use calu::core::{calu_simple, gepp_factor, incpiv_factor};
use calu::matrix::gen;
use calu::{QueueDiscipline, Solver};
use calu_bench::timing::bench;

fn main() {
    let n = 256usize;
    let b = 32usize;
    let a = gen::uniform(n, n, 7);
    println!("factor_{n}:");
    bench("calu_simple", 10, || {
        calu_simple(&a, b, 4);
    });
    bench("gepp", 10, || {
        gepp_factor(&a, b);
    });
    bench("incpiv", 10, || {
        incpiv_factor(&a, b);
    });
    // solvers are built (and the matrix moved in) outside the timed
    // region, and verification is off, so these rows time exactly the
    // factorization — comparable with the raw gepp/incpiv rows above
    let s1 = Solver::new(a.clone()).tile(b).threads(1).verify(false);
    bench("calu_threaded_1", 10, || {
        s1.run().unwrap();
    });
    let s4 = Solver::new(a.clone())
        .tile(b)
        .threads(4)
        .dratio(0.1)
        .verify(false);
    bench("calu_threaded_4_h10", 10, || {
        s4.run().unwrap();
    });
    // queue-discipline axis: same hybrid run with the dynamic section
    // sharded per worker (randomized stealing) instead of one lock
    let s4s = Solver::new(a)
        .tile(b)
        .threads(4)
        .dratio(0.1)
        .queue_discipline(QueueDiscipline::sharded())
        .verify(false);
    bench("calu_threaded_4_h10_sharded", 10, || {
        s4s.run().unwrap();
    });
}
