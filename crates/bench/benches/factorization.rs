//! End-to-end factorization benches: CALU (sequential reference and
//! threaded hybrid executor) against the GEPP and incremental-pivoting
//! baselines, all at equal problem size.

use calu_core::{calu_factor, calu_simple, gepp_factor, incpiv_factor, CaluConfig};
use calu_matrix::gen;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_factorizations(c: &mut Criterion) {
    let n = 256usize;
    let b = 32usize;
    let a = gen::uniform(n, n, 7);
    let mut group = c.benchmark_group("factor_256");
    group.bench_function("calu_simple", |bch| bch.iter(|| calu_simple(&a, b, 4)));
    group.bench_function("gepp", |bch| bch.iter(|| gepp_factor(&a, b)));
    group.bench_function("incpiv", |bch| bch.iter(|| incpiv_factor(&a, b)));
    group.bench_function("calu_threaded_1", |bch| {
        let cfg = CaluConfig::new(b).with_threads(1);
        bch.iter(|| calu_factor(&a, &cfg).unwrap())
    });
    group.bench_function("calu_threaded_4_h10", |bch| {
        let cfg = CaluConfig::new(b).with_threads(4).with_dratio(0.1);
        bch.iter(|| calu_factor(&a, &cfg).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_factorizations
}
criterion_main!(benches);
