//! Microbenches for the pure-Rust kernels: how many Gflop/s the
//! gemm/trsm/getrf building blocks sustain on this host. These rates
//! justify the efficiency table of the simulator's cost model.
//!
//! Per-iteration input copies are pre-built *outside* the timed
//! closures (criterion's `iter_batched` equivalent): a fresh clone
//! inside the measurement would bias the smaller kernels, whose
//! O(n²) setup is a visible fraction of the O(n³) work.

use calu::kernels::{dgemm, dgetf2, dgetrf_recursive, dtrsm_left_lower_unit};
use calu::matrix::{gen, DenseMatrix};
use calu_bench::timing::{bench, bench_throughput};

const ITERS: usize = 20;

/// Pre-cloned inputs, one per timed iteration plus the warm-up call.
fn pool(proto: &DenseMatrix) -> (Vec<DenseMatrix>, std::ops::RangeFrom<usize>) {
    ((0..=ITERS).map(|_| proto.clone()).collect(), 0..)
}

fn main() {
    println!("dgemm:");
    for &n in &[64usize, 128, 256] {
        let a = gen::uniform(n, n, 1);
        let b = gen::uniform(n, n, 2);
        // dgemm accumulates (beta = 1); reusing one buffer across
        // iterations leaves the flop count and timing unchanged
        let mut cm = gen::uniform(n, n, 3);
        bench_throughput(
            &format!("dgemm_{n}"),
            ITERS,
            (2 * n * n * n) as u64,
            "flop",
            || {
                dgemm(
                    n,
                    n,
                    n,
                    -1.0,
                    a.as_slice(),
                    n,
                    b.as_slice(),
                    n,
                    1.0,
                    cm.as_mut_slice(),
                    n,
                );
            },
        );
    }

    println!("panel_getrf (512x64):");
    let (m, n) = (512usize, 64usize);
    let a = gen::uniform(m, n, 4);
    let (mut panels, mut next) = pool(&a);
    bench("dgetf2_unblocked", ITERS, || {
        let p = &mut panels[next.next().unwrap()];
        let ld = p.ld();
        dgetf2(m, n, p.as_mut_slice(), ld);
    });
    let (mut panels, mut next) = pool(&a);
    bench("dgetrf_recursive", ITERS, || {
        let p = &mut panels[next.next().unwrap()];
        let ld = p.ld();
        dgetrf_recursive(m, n, p.as_mut_slice(), ld);
    });

    println!("trsm:");
    let n = 128usize;
    let l = {
        let r = gen::uniform(n, n, 5);
        DenseMatrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else if i > j {
                0.3 * r.get(i, j)
            } else {
                0.0
            }
        })
    };
    let b = gen::uniform(n, n, 6);
    let (mut rhs, mut next) = pool(&b);
    bench("dtrsm_left_lower_unit_128", ITERS, || {
        let x = &mut rhs[next.next().unwrap()];
        let ld = x.ld();
        dtrsm_left_lower_unit(n, n, l.as_slice(), n, x.as_mut_slice(), ld);
    });
}
