//! Criterion microbenches for the pure-Rust kernels: how many Gflop/s
//! the gemm/trsm/getrf building blocks sustain on this host. These rates
//! justify the efficiency table of the simulator's cost model.

use calu_kernels::{dgemm, dgetf2, dgetrf_recursive, dtrsm_left_lower_unit};
use calu_matrix::gen;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dgemm");
    for &n in &[64usize, 128, 256] {
        let a = gen::uniform(n, n, 1);
        let b = gen::uniform(n, n, 2);
        let c0 = gen::uniform(n, n, 3);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, _| {
            bch.iter_batched(
                || c0.clone(),
                |mut cm| {
                    dgemm(
                        n, n, n, -1.0,
                        a.as_slice(), n,
                        b.as_slice(), n,
                        1.0,
                        cm.as_mut_slice(), n,
                    );
                    cm
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_getrf(c: &mut Criterion) {
    let mut group = c.benchmark_group("panel_getrf");
    let (m, n) = (512usize, 64usize);
    let a = gen::uniform(m, n, 4);
    group.bench_function("dgetf2_unblocked", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut p| {
                let ld = p.ld();
                dgetf2(m, n, p.as_mut_slice(), ld)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("dgetrf_recursive", |bch| {
        bch.iter_batched(
            || a.clone(),
            |mut p| {
                let ld = p.ld();
                dgetrf_recursive(m, n, p.as_mut_slice(), ld)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let n = 128usize;
    let l = {
        let r = gen::uniform(n, n, 5);
        calu_matrix::DenseMatrix::from_fn(n, n, |i, j| {
            if i == j { 1.0 } else if i > j { 0.3 * r.get(i, j) } else { 0.0 }
        })
    };
    let b = gen::uniform(n, n, 6);
    c.bench_function("dtrsm_left_lower_unit_128", |bch| {
        bch.iter_batched(
            || b.clone(),
            |mut x| {
                let ld = x.ld();
                dtrsm_left_lower_unit(n, n, l.as_slice(), n, x.as_mut_slice(), ld);
                x
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gemm, bench_getrf, bench_trsm
}
criterion_main!(benches);
