//! Scheduling-policy overhead: tasks scheduled per second through each
//! policy (single-threaded decision procedure, as the simulator uses it).

use calu::dag::TaskGraph;
use calu::matrix::ProcessGrid;
use calu::sched::{make_policy_with, QueueDiscipline, SchedulerKind};
use calu_bench::timing::bench_throughput;

fn drive(g: &TaskGraph, kind: SchedulerKind, queue: QueueDiscipline, cores: usize) -> usize {
    let grid = ProcessGrid::square_for(cores).unwrap();
    let mut p = make_policy_with(kind, queue, g, grid);
    let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
    for t in g.initial_ready() {
        p.on_ready(t, None);
    }
    let mut done = 0;
    while done < g.len() {
        for core in 0..cores {
            if let Some(popped) = p.pop(core) {
                done += 1;
                for &s in g.successors(popped.task) {
                    deps[s.idx()] -= 1;
                    if deps[s.idx()] == 0 {
                        p.on_ready(s, Some(core));
                    }
                }
            }
        }
    }
    done
}

fn main() {
    let g = TaskGraph::build_calu(3000, 3000, 100, 4);
    println!("policy_drain ({} tasks):", g.len());
    for kind in [
        SchedulerKind::Static,
        SchedulerKind::Dynamic,
        SchedulerKind::Hybrid { dratio: 0.1 },
        SchedulerKind::WorkStealing { seed: 1 },
    ] {
        bench_throughput(&format!("{kind}"), 10, g.len() as u64, "task", || {
            drive(&g, kind, QueueDiscipline::Global, 16);
        });
    }
    // the queue-discipline axis: same hybrid split, global queue vs
    // per-core shards with stealing (and fully dynamic for contrast)
    println!("policy_drain, queue-discipline axis:");
    for (kind, label) in [
        (SchedulerKind::Hybrid { dratio: 0.1 }, "hybrid h10"),
        (SchedulerKind::Hybrid { dratio: 0.5 }, "hybrid h50"),
        (SchedulerKind::Dynamic, "dynamic"),
    ] {
        for queue in [
            QueueDiscipline::Global,
            QueueDiscipline::sharded(),
            QueueDiscipline::lock_free(),
        ] {
            bench_throughput(
                &format!("{label} / {queue}"),
                10,
                g.len() as u64,
                "task",
                || {
                    drive(&g, kind, queue, 16);
                },
            );
        }
    }
}
