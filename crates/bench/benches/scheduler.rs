//! Scheduling-policy overhead: tasks scheduled per second through each
//! policy (single-threaded decision procedure, as the simulator uses it).

use calu_dag::TaskGraph;
use calu_matrix::ProcessGrid;
use calu_sched::{make_policy, SchedulerKind};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn drive(g: &TaskGraph, kind: SchedulerKind, cores: usize) -> usize {
    let grid = ProcessGrid::square_for(cores).unwrap();
    let mut p = make_policy(kind, g, grid);
    let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
    for t in g.initial_ready() {
        p.on_ready(t, None);
    }
    let mut done = 0;
    while done < g.len() {
        for core in 0..cores {
            if let Some(popped) = p.pop(core) {
                done += 1;
                for &s in g.successors(popped.task) {
                    deps[s.idx()] -= 1;
                    if deps[s.idx()] == 0 {
                        p.on_ready(s, Some(core));
                    }
                }
            }
        }
    }
    done
}

fn bench_policies(c: &mut Criterion) {
    let g = TaskGraph::build_calu(3000, 3000, 100, 4);
    let mut group = c.benchmark_group("policy_drain");
    group.throughput(Throughput::Elements(g.len() as u64));
    for kind in [
        SchedulerKind::Static,
        SchedulerKind::Dynamic,
        SchedulerKind::Hybrid { dratio: 0.1 },
        SchedulerKind::WorkStealing { seed: 1 },
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("{kind}")), &kind, |b, &k| {
            b.iter(|| drive(&g, k, 16))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_policies
}
criterion_main!(benches);
