//! Shared harness for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the index). They all go through the
//! unified [`Solver`] facade with a
//! [`SimulatedBackend`], so the experimental
//! setup is identical across figures: same seeds, same block-size rule,
//! same machine presets — and the exact same entry point a user of the
//! library would call.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{Algorithm, MatrixSource, Report, SimulatedBackend, Solver};

pub mod perf;
pub mod timing;

/// The seed every figure uses for OS noise (determinism across runs).
pub const NOISE_SEED: u64 = 42;

/// Default OS-noise model used in all performance figures (the paper's
/// machines ran a standard Linux with daemons).
pub fn default_noise() -> NoiseConfig {
    NoiseConfig::os_daemons(NOISE_SEED)
}

/// Block size rule used across the experiments: the paper tunes `b` per
/// size; we grow it with `n` to keep tile counts (and simulation time)
/// manageable while preserving the tasks-per-core ratios.
pub fn block_for(n: usize) -> usize {
    if n <= 8000 {
        100
    } else if n <= 12000 {
        125
    } else {
        150
    }
}

/// The two machine models of §5.
pub fn machines() -> [(&'static str, MachineConfig); 2] {
    [
        (
            "Intel Xeon 16-core",
            MachineConfig::intel_xeon_16(default_noise()),
        ),
        (
            "AMD Opteron 48-core",
            MachineConfig::amd_opteron_48(default_noise()),
        ),
    ]
}

/// A solver pre-configured for one simulated experiment on `machine`:
/// shape-only `n × n` source, the block-size rule, and the machine's
/// core count. Figures chain further knobs before `.run()`.
pub fn sim_solver(n: usize, machine: &MachineConfig) -> Solver {
    Solver::new(MatrixSource::shape(n, n))
        .tile(block_for(n))
        .backend(SimulatedBackend::new(machine.clone()))
}

/// Run one simulated CALU experiment.
pub fn run_calu(
    n: usize,
    machine: &MachineConfig,
    layout: Layout,
    sched: SchedulerKind,
    trace: bool,
) -> Report {
    sim_solver(n, machine)
        .layout(layout)
        .scheduler(sched)
        .trace(trace)
        .run()
        .expect("simulated CALU run")
}

/// Run the MKL stand-in (GEPP, sequential panel, column-major, fully
/// dynamic updates — numactl-interleaved pages as in §5.3).
pub fn run_mkl(n: usize, machine: &MachineConfig) -> Report {
    sim_solver(n, machine)
        .algorithm(Algorithm::Gepp)
        .layout(Layout::ColumnMajor)
        .scheduler(SchedulerKind::Dynamic)
        .run()
        .expect("simulated MKL run")
}

/// Run the PLASMA stand-in (tiled incremental pivoting, tile layout,
/// static pipeline scheduling as in PLASMA 2.3.1).
pub fn run_plasma(n: usize, machine: &MachineConfig) -> Report {
    sim_solver(n, machine)
        .algorithm(Algorithm::IncPiv)
        .layout(Layout::TwoLevelBlock)
        .scheduler(SchedulerKind::Static)
        .run()
        .expect("simulated PLASMA run")
}

/// Run the §9 Cholesky extension under any scheduler.
pub fn run_cholesky(n: usize, machine: &MachineConfig, sched: SchedulerKind) -> Report {
    sim_solver(n, machine)
        .algorithm(Algorithm::Cholesky)
        .scheduler(sched)
        .run()
        .expect("simulated Cholesky run")
}

/// The scheduler sweep of Figures 6–11: static, 10–75% dynamic, dynamic.
pub fn sched_sweep() -> Vec<(String, SchedulerKind)> {
    SchedulerKind::paper_sweep()
        .into_iter()
        .map(|s| (s.to_string(), s))
        .collect()
}

/// Print an aligned table: header row + data rows.
pub fn print_table(title: &str, headers: &[String], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(headers);
    for row in rows {
        line(row);
    }
}

/// Format Gflop/s.
pub fn gf(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage improvement of `a` over `b`.
pub fn pct_over(a: f64, b: f64) -> String {
    format!("{:+.1}%", (a / b - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rule() {
        assert_eq!(block_for(2500), 100);
        assert_eq!(block_for(8000), 100);
        assert_eq!(block_for(10000), 125);
        assert_eq!(block_for(15000), 150);
    }

    #[test]
    fn harness_smoke() {
        let (_, intel) = &machines()[0];
        let r = run_calu(
            2000,
            intel,
            Layout::BlockCyclic,
            SchedulerKind::Hybrid { dratio: 0.1 },
            false,
        );
        assert!(r.gflops() > 10.0 && r.gflops() < 85.3);
        let mkl = run_mkl(2000, intel);
        assert!(mkl.gflops() < r.gflops(), "CALU must beat the MKL model");
        let plasma = run_plasma(2000, intel);
        assert!(plasma.gflops() > 0.0);
        let chol = run_cholesky(2000, intel, SchedulerKind::Hybrid { dratio: 0.1 });
        assert!(chol.gflops() > 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(gf(12.34), "12.3");
        assert_eq!(pct_over(110.0, 100.0), "+10.0%");
        assert_eq!(pct_over(90.0, 100.0), "-10.0%");
    }
}
