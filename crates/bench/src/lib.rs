//! Shared harness for the figure/table binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §5 for the index). They all go through the same
//! entry points here so the experimental setup is identical across
//! figures: same seeds, same block-size rule, same machine presets.

use calu_dag::TaskGraph;
use calu_matrix::{Layout, ProcessGrid};
use calu_sched::SchedulerKind;
use calu_sim::{run, MachineConfig, NoiseConfig, SimConfig, SimResult};

/// The seed every figure uses for OS noise (determinism across runs).
pub const NOISE_SEED: u64 = 42;

/// Default OS-noise model used in all performance figures (the paper's
/// machines ran a standard Linux with daemons).
pub fn default_noise() -> NoiseConfig {
    NoiseConfig::os_daemons(NOISE_SEED)
}

/// Block size rule used across the experiments: the paper tunes `b` per
/// size; we grow it with `n` to keep tile counts (and simulation time)
/// manageable while preserving the tasks-per-core ratios.
pub fn block_for(n: usize) -> usize {
    if n <= 8000 {
        100
    } else if n <= 12000 {
        125
    } else {
        150
    }
}

/// The two machine models of §5.
pub fn machines() -> [(&'static str, MachineConfig); 2] {
    [
        ("Intel Xeon 16-core", MachineConfig::intel_xeon_16(default_noise())),
        ("AMD Opteron 48-core", MachineConfig::amd_opteron_48(default_noise())),
    ]
}

/// Build the CALU task graph for an `n × n` matrix on `machine`'s grid
/// (TSLU leaves = one per grid row, as in the paper).
pub fn calu_graph(n: usize, machine: &MachineConfig) -> TaskGraph {
    let grid = ProcessGrid::square_for(machine.cores()).expect("cores > 0");
    TaskGraph::build_calu(n, n, block_for(n), grid.pr())
}

/// Run one simulated CALU experiment.
pub fn run_calu(
    n: usize,
    machine: &MachineConfig,
    layout: Layout,
    sched: SchedulerKind,
    trace: bool,
) -> SimResult {
    let g = calu_graph(n, machine);
    let mut cfg = SimConfig::new(machine.clone(), layout, sched);
    cfg.record_trace = trace;
    run(&g, &cfg)
}

/// Run the MKL stand-in (GEPP, sequential panel, column-major, fully
/// dynamic updates — numactl-interleaved pages as in §5.3).
pub fn run_mkl(n: usize, machine: &MachineConfig) -> SimResult {
    let g = TaskGraph::build_gepp(n, n, block_for(n));
    let cfg = SimConfig::new(machine.clone(), Layout::ColumnMajor, SchedulerKind::Dynamic);
    run(&g, &cfg)
}

/// Run the PLASMA stand-in (tiled incremental pivoting, tile layout,
/// static pipeline scheduling as in PLASMA 2.3.1).
pub fn run_plasma(n: usize, machine: &MachineConfig) -> SimResult {
    let g = TaskGraph::build_incpiv(n, n, block_for(n));
    let cfg = SimConfig::new(machine.clone(), Layout::TwoLevelBlock, SchedulerKind::Static);
    run(&g, &cfg)
}

/// The scheduler sweep of Figures 6–11: static, 10–75% dynamic, dynamic.
pub fn sched_sweep() -> Vec<(String, SchedulerKind)> {
    SchedulerKind::paper_sweep()
        .into_iter()
        .map(|s| (s.to_string(), s))
        .collect()
}

/// Print an aligned table: header row + data rows.
pub fn print_table(title: &str, headers: &[String], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("  {}", parts.join("  "));
    };
    line(headers);
    for row in rows {
        line(row);
    }
}

/// Format Gflop/s.
pub fn gf(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage improvement of `a` over `b`.
pub fn pct_over(a: f64, b: f64) -> String {
    format!("{:+.1}%", (a / b - 1.0) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_rule() {
        assert_eq!(block_for(2500), 100);
        assert_eq!(block_for(8000), 100);
        assert_eq!(block_for(10000), 125);
        assert_eq!(block_for(15000), 150);
    }

    #[test]
    fn harness_smoke() {
        let (_, intel) = &machines()[0];
        let r = run_calu(
            2000,
            intel,
            Layout::BlockCyclic,
            SchedulerKind::Hybrid { dratio: 0.1 },
            false,
        );
        assert!(r.gflops() > 10.0 && r.gflops() < 85.3);
        let mkl = run_mkl(2000, intel);
        assert!(mkl.gflops() < r.gflops(), "CALU must beat the MKL model");
        let plasma = run_plasma(2000, intel);
        assert!(plasma.gflops() > 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(gf(12.34), "12.3");
        assert_eq!(pct_over(110.0, 100.0), "+10.0%");
        assert_eq!(pct_over(90.0, 100.0), "-10.0%");
    }
}
