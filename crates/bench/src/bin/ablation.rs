//! Ablation study of the design choices DESIGN.md calls out:
//!
//! 1. grouped BLAS-3 updates (k = 3) vs single-tile calls on BCL,
//! 2. per-thread TSLU leaves vs per-tile leaves (reduction-tree depth),
//! 3. OS noise on/off — what the dynamic section actually absorbs,
//! 4. work stealing vs the paper's DFS-ordered dynamic queue,
//! 5. one slow core (persistent δ_i) under each scheduler,
//! 6. queue discipline — one shared dynamic queue vs per-worker shards
//!    with randomized stealing, on the model *and* on real threads.
//!
//! Every variant is one knob on the same `Solver`, which is the point
//! of the facade: the ablation is a loop over configurations, not five
//! hand-wired experiments.

use calu::matrix::{gen, ProcessGrid};
use calu::sched::SchedulerKind;
use calu::sim::{MachineConfig, NoiseConfig};
use calu::{QueueDiscipline, Solver};
use calu_bench::{default_noise, gf, print_table, run_calu, sim_solver};

fn main() {
    let n = 5000;
    let amd = MachineConfig::amd_opteron_48(default_noise());
    let h10 = SchedulerKind::Hybrid { dratio: 0.1 };

    // 1. grouping
    let mut rows = Vec::new();
    for (label, group) in [("k = 3 (paper)", 3usize), ("k = 1 (no grouping)", 1)] {
        let r = sim_solver(n, &amd)
            .scheduler(h10)
            .grouping(group)
            .run()
            .expect("grouping ablation");
        rows.push(vec![label.to_string(), gf(r.gflops())]);
    }
    print_table(
        "Ablation 1 — grouped BLAS-3 updates, AMD 48c, BCL, h10, n=5000",
        &["variant".to_string(), "Gflop/s".into()],
        &rows,
    );

    // 2. TSLU leaf granularity
    let b = calu_bench::block_for(n);
    let grid_rows = ProcessGrid::square_for(48).unwrap().pr();
    let mut rows = Vec::new();
    for (label, stride) in [
        ("per-thread leaves (paper)", grid_rows),
        ("per-tile leaves (deep tree)", n / b),
        ("single leaf (sequential panel)", 1),
    ] {
        let r = sim_solver(n, &amd)
            .scheduler(h10)
            .tslu_leaves(stride)
            .run()
            .expect("leaf ablation");
        rows.push(vec![label.to_string(), gf(r.gflops())]);
    }
    print_table(
        "Ablation 2 — TSLU reduction granularity, AMD 48c, BCL, h10",
        &["variant".to_string(), "Gflop/s".into()],
        &rows,
    );

    // 3. noise on/off per scheduler
    let quiet = MachineConfig::amd_opteron_48(NoiseConfig::off());
    let mut rows = Vec::new();
    for sched in [SchedulerKind::Static, h10, SchedulerKind::Dynamic] {
        let gq = sim_solver(n, &quiet)
            .scheduler(sched)
            .run()
            .unwrap()
            .gflops();
        let gn = sim_solver(n, &amd).scheduler(sched).run().unwrap().gflops();
        rows.push(vec![
            sched.to_string(),
            gf(gq),
            gf(gn),
            format!("{:+.1}%", (gn / gq - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Ablation 3 — OS noise impact per scheduler, AMD 48c, BCL",
        &[
            "scheduler".to_string(),
            "quiet".into(),
            "noisy".into(),
            "delta".into(),
        ],
        &rows,
    );

    // 4. work stealing vs DFS dynamic queue
    let mut rows = Vec::new();
    for (label, sched) in [
        ("DFS dynamic queue (Algorithm 2)", SchedulerKind::Dynamic),
        (
            "randomized work stealing",
            SchedulerKind::WorkStealing { seed: 7 },
        ),
    ] {
        let r = run_calu(n, &amd, calu::matrix::Layout::BlockCyclic, sched, false);
        rows.push(vec![label.to_string(), gf(r.gflops())]);
    }
    print_table(
        "Ablation 4 — §8: steal order vs critical-path order, AMD 48c",
        &["variant".to_string(), "Gflop/s".into()],
        &rows,
    );

    // 5. one slow core
    let mut slow = MachineConfig::amd_opteron_48(NoiseConfig::off());
    slow.slow_core = Some((7, 0.4));
    let mut rows = Vec::new();
    for sched in [SchedulerKind::Static, h10, SchedulerKind::Dynamic] {
        let gh = sim_solver(n, &quiet)
            .scheduler(sched)
            .run()
            .unwrap()
            .gflops();
        let gs = sim_solver(n, &slow)
            .scheduler(sched)
            .run()
            .unwrap()
            .gflops();
        rows.push(vec![
            sched.to_string(),
            gf(gh),
            gf(gs),
            format!("{:+.1}%", (gs / gh - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Ablation 5 — one core at 40% speed (persistent δ), AMD 48c, BCL",
        &[
            "scheduler".to_string(),
            "healthy".into(),
            "one slow core".into(),
            "delta".into(),
        ],
        &rows,
    );

    // 6a. queue discipline on the modelled 48-core machine
    let mut rows = Vec::new();
    for sched in [
        h10,
        SchedulerKind::Hybrid { dratio: 0.5 },
        SchedulerKind::Dynamic,
    ] {
        for queue in [
            QueueDiscipline::Global,
            QueueDiscipline::sharded(),
            QueueDiscipline::lock_free(),
        ] {
            let r = sim_solver(n, &amd)
                .scheduler(sched)
                .queue_discipline(queue)
                .run()
                .expect("discipline ablation");
            let c = r.schedule.queue_sources();
            rows.push(vec![
                format!("{sched} / {queue}"),
                gf(r.gflops()),
                c.stolen.to_string(),
            ]);
        }
    }
    print_table(
        "Ablation 6a — dynamic-queue discipline (model), AMD 48c, BCL, n=5000",
        &["variant".to_string(), "Gflop/s".into(), "steals".into()],
        &rows,
    );

    // 6b. same axis on the real threaded executor (small problem: this
    // one actually computes)
    let a = gen::uniform(768, 768, 7);
    let mut rows = Vec::new();
    for queue in [
        QueueDiscipline::Global,
        QueueDiscipline::sharded(),
        QueueDiscipline::lock_free(),
    ] {
        let r = Solver::new(a.clone())
            .tile(64)
            .threads(4)
            .dratio(0.5)
            .queue_discipline(queue)
            .verify(false)
            .run()
            .expect("threaded discipline ablation");
        let c = r.schedule.contention();
        rows.push(vec![
            queue.to_string(),
            gf(r.gflops()),
            c.steals.to_string(),
            format!("{:.2}", c.failure_rate()),
        ]);
    }
    print_table(
        "Ablation 6b — dynamic-queue discipline (real threads), n=768, b=64, 4t, h50",
        &[
            "discipline".to_string(),
            "Gflop/s".into(),
            "steals".into(),
            "steal-failure rate".into(),
        ],
        &rows,
    );
}
