//! Figure 9: scheduling sweep on the Intel model with the two-level
//! block layout. Paper shape: same as BCL — static worst, percentage
//! barely matters, hybrid(10%) best by ~10.6% over static.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu_bench::{gf, machines, pct_over, print_table, run_calu, sched_sweep};

fn main() {
    let (_, intel) = machines()[0].clone();
    let headers: Vec<String> = std::iter::once("n".into())
        .chain(sched_sweep().into_iter().map(|(s, _)| s))
        .collect();
    let mut rows = Vec::new();
    let mut at4000 = Vec::new();
    for n in [4000usize, 5000, 8000] {
        let mut row = vec![n.to_string()];
        for (_, sched) in sched_sweep() {
            let r = run_calu(n, &intel, Layout::TwoLevelBlock, sched, false);
            if n == 4000 {
                at4000.push((sched, r.gflops()));
            }
            row.push(gf(r.gflops()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 9 — Intel 16-core, 2l-BL, Gflop/s vs dynamic %",
        &headers,
        &rows,
    );
    let get = |k: SchedulerKind| at4000.iter().find(|(s, _)| *s == k).unwrap().1;
    let h10 = get(SchedulerKind::Hybrid { dratio: 0.1 });
    println!(
        "\nn=4000: hybrid(10%) vs static {}, vs dynamic {}   (paper: +10.6%, +1.7%)",
        pct_over(h10, get(SchedulerKind::Static)),
        pct_over(h10, get(SchedulerKind::Dynamic)),
    );
}
