//! Figure 17: CALU vs MKL vs PLASMA on the AMD model.
//! Paper: CALU ~100% (up to 110%) faster than MKL at n=10000; 20–30%
//! over PLASMA for larger matrices.

use calu_bench::machines;

#[path = "fig16_intel_vs_libs.rs"]
#[allow(dead_code)] // the included file's main() is unused here
mod libs;

fn main() {
    let (_, amd) = machines()[1].clone();
    libs::run_libs("Fig 17 — AMD 48-core: CALU vs MKL vs PLASMA", &amd);
}
