//! Figure 11: % improvement of hybrid over static/dynamic on the AMD
//! model with the 2l-BL layout. Paper: up to +5.9% vs static and +64.9%
//! vs dynamic on 48 cores.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu_bench::{default_noise, pct_over, print_table, run_calu};

fn main() {
    for cores in [24usize, 48] {
        let mach = MachineConfig::amd_opteron_with_cores(cores, default_noise());
        let headers = vec![
            "n".to_string(),
            "h10 vs static".into(),
            "h20 vs static".into(),
            "h10 vs dynamic".into(),
            "h20 vs dynamic".into(),
        ];
        let mut rows = Vec::new();
        for n in [4000usize, 6000, 8000, 10000] {
            let gfl = |sched| run_calu(n, &mach, Layout::TwoLevelBlock, sched, false).gflops();
            let stat = gfl(SchedulerKind::Static);
            let dynamic = gfl(SchedulerKind::Dynamic);
            let h10 = gfl(SchedulerKind::Hybrid { dratio: 0.1 });
            let h20 = gfl(SchedulerKind::Hybrid { dratio: 0.2 });
            rows.push(vec![
                n.to_string(),
                pct_over(h10, stat),
                pct_over(h20, stat),
                pct_over(h10, dynamic),
                pct_over(h20, dynamic),
            ]);
        }
        print_table(
            &format!(
                "Fig 11{} — improvement of hybrid, AMD {cores} cores, 2l-BL",
                if cores == 24 { "a" } else { "b" }
            ),
            &headers,
            &rows,
        );
    }
    println!("\nPaper reference points (48 cores): up to +5.9% vs static, +64.9% vs dynamic.");
}
