//! Table 1: the design space — data layout × scheduling strategy,
//! annotated with measured Gflop/s on both machine models at n = 5000.

use calu::matrix::Layout;
use calu_bench::{gf, machines, print_table, run_calu, sched_sweep};

fn main() {
    let n = 5000;
    for (name, mach) in machines() {
        let headers: Vec<String> = std::iter::once("layout".to_string())
            .chain(sched_sweep().into_iter().map(|(s, _)| s))
            .collect();
        let mut rows = Vec::new();
        for layout in [
            Layout::BlockCyclic,
            Layout::TwoLevelBlock,
            Layout::ColumnMajor,
        ] {
            let mut row = vec![layout.to_string()];
            for (_, sched) in sched_sweep() {
                // Table 1 marks CM as dynamic-only in the paper's design
                // space; we measure it everywhere but flag the paper cells
                let r = run_calu(n, &mach, layout, sched, false);
                row.push(gf(r.gflops()));
            }
            rows.push(row);
        }
        print_table(
            &format!("Table 1 — design space, measured Gflop/s, n={n}, {name}"),
            &headers,
            &rows,
        );
    }
    println!("\nPaper's design space: BCL and 2l-BL cover static/dynamic/hybrid;");
    println!("CM is evaluated with dynamic scheduling only ('dynamic rectangular').");
}
