//! Figure 8: % improvement of CALU static(10%/20% dynamic) over fully
//! static and fully dynamic CALU on the AMD model, BCL layout, 24 and 48
//! cores.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu_bench::{default_noise, pct_over, print_table, run_calu};

fn main() {
    for cores in [24usize, 48] {
        let mach = MachineConfig::amd_opteron_with_cores(cores, default_noise());
        let headers = vec![
            "n".to_string(),
            "h10 vs static".into(),
            "h20 vs static".into(),
            "h10 vs dynamic".into(),
            "h20 vs dynamic".into(),
        ];
        let mut rows = Vec::new();
        for n in [4000usize, 6000, 8000, 10000] {
            let gfl = |sched| run_calu(n, &mach, Layout::BlockCyclic, sched, false).gflops();
            let stat = gfl(SchedulerKind::Static);
            let dynamic = gfl(SchedulerKind::Dynamic);
            let h10 = gfl(SchedulerKind::Hybrid { dratio: 0.1 });
            let h20 = gfl(SchedulerKind::Hybrid { dratio: 0.2 });
            rows.push(vec![
                n.to_string(),
                pct_over(h10, stat),
                pct_over(h20, stat),
                pct_over(h10, dynamic),
                pct_over(h20, dynamic),
            ]);
        }
        print_table(
            &format!(
                "Fig 8{} — improvement of hybrid over static/dynamic, AMD {cores} cores, BCL",
                if cores == 24 { "a" } else { "b" }
            ),
            &headers,
            &rows,
        );
    }
    println!("\nPaper reference points: on 48 cores, n=4000: +30.3% vs static, +10.2% vs dynamic;");
    println!("n=10000: +6.9% vs static, +8.4% vs dynamic.");
}
