//! Figure 7: CALU scheduling sweep on the 48-core AMD model, BCL layout.
//!
//! Paper shape: static is competitive (NUMA locality), fully dynamic is
//! the worst, and static + a small dynamic % (10–20%) wins.

use calu::matrix::Layout;
use calu_bench::{gf, machines, print_table, run_calu, sched_sweep};

fn main() {
    let (_, amd) = machines()[1].clone();
    let headers: Vec<String> = std::iter::once("n".into())
        .chain(sched_sweep().into_iter().map(|(s, _)| s))
        .collect();
    let mut rows = Vec::new();
    for n in [4000usize, 6000, 8000, 10000] {
        let mut row = vec![n.to_string()];
        for (_, sched) in sched_sweep() {
            let r = run_calu(n, &amd, Layout::BlockCyclic, sched, false);
            row.push(gf(r.gflops()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 7 — AMD 48-core, BCL, Gflop/s vs dynamic %",
        &headers,
        &rows,
    );
    println!("\nExpected shape: hybrid(10-20%) on top; fully dynamic last (NUMA).");
}
