//! Figure 2: execution of CALU static(20% dynamic) on a 4×4-tile matrix
//! with P=4 threads — which thread runs which task, step by step.

use calu_dag::TaskGraph;
use calu_matrix::{Layout, ProcessGrid};
use calu_sched::SchedulerKind;
use calu_sim::{run, MachineConfig, NoiseConfig, SimConfig};

fn main() {
    // a 4-core machine model (one socket of the Intel box)
    let mut mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
    mach.sockets = 1;
    let grid = ProcessGrid::square_for(4).unwrap();
    let g = TaskGraph::build_calu(400, 400, 100, grid.pr());
    let cfg = SimConfig::new(mach, Layout::BlockCyclic, SchedulerKind::Hybrid { dratio: 0.2 })
        .with_trace();
    let r = run(&g, &cfg);
    let tl = r.timeline.unwrap();
    println!("=== Fig 2 — CALU static(20% dynamic), 4x4 tiles, P=4 threads ===");
    println!("(exponent in the paper's figure = executing thread)\n");
    let mut spans: Vec<_> = tl.spans().to_vec();
    spans.sort_by(|a, b| a.start.total_cmp(&b.start));
    // associate spans with task names through a second, ordered pass
    println!("  {:>5}  {:>10}  {:>6}  {}", "step", "t(us)", "thread", "kind");
    for (i, s) in spans.iter().enumerate() {
        println!(
            "  {:>5}  {:>10.1}  {:>6}  {:?}",
            i,
            s.start * 1e6,
            s.core,
            s.kind
        );
    }
    println!("\ntasks executed: {}  makespan {:.2} ms", r.tasks, r.makespan * 1e3);
}
