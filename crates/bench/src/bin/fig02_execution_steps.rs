//! Figure 2: execution of CALU static(20% dynamic) on a 4×4-tile matrix
//! with P=4 threads — which thread runs which task, step by step.

use calu::sched::SchedulerKind;
use calu::sim::{MachineConfig, NoiseConfig};
use calu_bench::sim_solver;

fn main() {
    // a 4-core machine model (one socket of the Intel box)
    let mut mach = MachineConfig::intel_xeon_16(NoiseConfig::off());
    mach.sockets = 1;
    let r = sim_solver(400, &mach)
        .scheduler(SchedulerKind::Hybrid { dratio: 0.2 })
        .trace(true)
        .run()
        .expect("simulated run");
    let tl = r.timeline.as_ref().unwrap();
    println!("=== Fig 2 — CALU static(20% dynamic), 4x4 tiles, P=4 threads ===");
    println!("(exponent in the paper's figure = executing thread)\n");
    let mut spans: Vec<_> = tl.spans().to_vec();
    spans.sort_by(|a, b| a.start.total_cmp(&b.start));
    // associate spans with task names through a second, ordered pass
    println!("  {:>5}  {:>10}  {:>6}  kind", "step", "t(us)", "thread");
    for (i, s) in spans.iter().enumerate() {
        println!(
            "  {:>5}  {:>10.1}  {:>6}  {:?}",
            i,
            s.start * 1e6,
            s.core,
            s.kind
        );
    }
    println!(
        "\ntasks executed: {}  makespan {:.2} ms",
        r.tasks,
        r.makespan * 1e3
    );
}
