//! Figure 16: CALU vs MKL vs PLASMA on the Intel model.
//! Paper: CALU up to 82% faster than MKL (n=4000, 2l-BL), ~60% at
//! n=10000; 20–30% faster than PLASMA for larger matrices.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu_bench::{gf, machines, pct_over, print_table, run_calu, run_mkl, run_plasma};

fn main() {
    let (_, mach) = machines()[0].clone();
    run_libs("Fig 16 — Intel 16-core: CALU vs MKL vs PLASMA", &mach);
}

pub fn run_libs(title: &str, mach: &calu::sim::MachineConfig) {
    let headers: Vec<String> = [
        "n",
        "CALU h10 BCL",
        "CALU h10 2l-BL",
        "MKL",
        "PLASMA",
        "best vs MKL",
        "best vs PLASMA",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for n in [2000usize, 4000, 6000, 8000, 10000] {
        let h10 = SchedulerKind::Hybrid { dratio: 0.1 };
        let bcl = run_calu(n, mach, Layout::BlockCyclic, h10, false).gflops();
        let tlb = run_calu(n, mach, Layout::TwoLevelBlock, h10, false).gflops();
        let mkl = run_mkl(n, mach).gflops();
        let plasma = run_plasma(n, mach).gflops();
        let best = bcl.max(tlb);
        rows.push(vec![
            n.to_string(),
            gf(bcl),
            gf(tlb),
            gf(mkl),
            gf(plasma),
            pct_over(best, mkl),
            pct_over(best, plasma),
        ]);
    }
    print_table(title, &headers, &rows);
}
