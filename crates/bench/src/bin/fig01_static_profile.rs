//! Figure 1: profile of fully static CALU — pockets of idle time appear
//! even in an optimized static schedule once OS noise exists.
//!
//! Paper setup: 16 cores of the AMD Opteron machine, static scheduling.
//! Our AMD model scales by whole sockets, so we use 18 cores (3 sockets);
//! the idle-pocket phenomenon is identical.

use calu_bench::default_noise;
use calu_dag::TaskGraph;
use calu_matrix::{Layout, ProcessGrid};
use calu_sched::SchedulerKind;
use calu_sim::{run, MachineConfig, SimConfig};
use calu_trace::{render, svg, TimelineMetrics};

fn main() {
    let mach = MachineConfig::amd_opteron_with_cores(18, default_noise());
    let grid = ProcessGrid::square_for(mach.cores()).unwrap();
    let g = TaskGraph::build_calu(2500, 2500, 100, grid.pr());
    let cfg = SimConfig::new(mach, Layout::BlockCyclic, SchedulerKind::Static).with_trace();
    let r = run(&g, &cfg);
    let tl = r.timeline.as_ref().unwrap();
    println!("=== Fig 1 — static CALU profile, n=2500, b=100, 18 cores (AMD model) ===");
    print!("{}", render::ascii(tl, 110));
    let svg_path = "results/fig01_timeline.svg";
    if std::fs::write(svg_path, svg::svg(tl, svg::SvgOptions::default())).is_ok() {
        println!("(SVG timeline written to {svg_path})");
    }
    let m = TimelineMetrics::of(tl);
    println!(
        "utilization {:.1}%  idle {:.1}%  noise {:.3} core-s — note the idle pockets ('.') inside the run",
        m.utilization * 100.0,
        m.idle_fraction() * 100.0,
        m.total_noise
    );
}
