//! Figure 1: profile of fully static CALU — pockets of idle time appear
//! even in an optimized static schedule once OS noise exists.
//!
//! Paper setup: 16 cores of the AMD Opteron machine, static scheduling.
//! Our AMD model scales by whole sockets, so we use 18 cores (3 sockets);
//! the idle-pocket phenomenon is identical.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu::trace::{render, svg, TimelineMetrics};
use calu_bench::{default_noise, run_calu};

fn main() {
    let mach = MachineConfig::amd_opteron_with_cores(18, default_noise());
    let r = run_calu(
        2500,
        &mach,
        Layout::BlockCyclic,
        SchedulerKind::Static,
        true,
    );
    let tl = r.timeline.as_ref().unwrap();
    println!("=== Fig 1 — static CALU profile, n=2500, b=100, 18 cores (AMD model) ===");
    print!("{}", render::ascii(tl, 110));
    let svg_path = "results/fig01_timeline.svg";
    if std::fs::write(svg_path, svg::svg(tl, svg::SvgOptions::default())).is_ok() {
        println!("(SVG timeline written to {svg_path})");
    }
    let m = TimelineMetrics::of(tl);
    println!(
        "utilization {:.1}%  idle {:.1}%  noise {:.3} core-s — note the idle pockets ('.') inside the run",
        m.utilization * 100.0,
        m.idle_fraction() * 100.0,
        m.total_noise
    );
}
