//! Figure 4: first steps of factoring a 5000×5000 matrix with
//! static(20% dynamic) — threads that would idle during the panel
//! factorization (red) execute dynamic updates (green) instead.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu::trace::{render, Timeline, TimelineMetrics};
use calu_bench::{default_noise, run_calu};

fn main() {
    let mach = MachineConfig::intel_xeon_16(default_noise());
    let r = run_calu(
        5000,
        &mach,
        Layout::BlockCyclic,
        SchedulerKind::Hybrid { dratio: 0.2 },
        true,
    );
    let tl = r.timeline.unwrap();
    // keep only the first 10% of the run, like the paper's zoomed view
    let cut = 0.10 * tl.makespan();
    let mut zoom = Timeline::new(tl.cores());
    for s in tl.spans().iter().filter(|s| s.start < cut) {
        let mut s = *s;
        s.end = s.end.min(cut);
        zoom.push(s);
    }
    println!("=== Fig 4 — first steps, n=5000, static(20% dynamic), 16 cores ===");
    println!("P = panel factorization (red in the paper), S = update (green)\n");
    print!("{}", render::ascii(&zoom, 110));
    let m = TimelineMetrics::of(&zoom);
    println!(
        "utilization over the zoomed window: {:.1}% (almost no idle time)",
        m.utilization * 100.0
    );
}
