//! Figure 6: CALU with static/dynamic scheduling on the 16-core Intel
//! model, block cyclic layout, dynamic percentage 0–100%.
//!
//! Paper shape: static worst; hybrid ≈ dynamic with hybrid(10%) on top
//! (8.2% over static, 1.4% over dynamic at n = 5000).

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu_bench::{gf, machines, pct_over, print_table, run_calu, sched_sweep};

fn main() {
    let (_, intel) = machines()[0].clone();
    let headers: Vec<String> = std::iter::once("n".into())
        .chain(sched_sweep().into_iter().map(|(s, _)| s))
        .collect();
    let mut rows = Vec::new();
    let mut at5000 = Vec::new();
    for n in [4000usize, 5000, 8000] {
        let mut row = vec![n.to_string()];
        for (_, sched) in sched_sweep() {
            let r = run_calu(n, &intel, Layout::BlockCyclic, sched, false);
            if n == 5000 {
                at5000.push((sched, r.gflops()));
            }
            row.push(gf(r.gflops()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 6 — Intel 16-core, BCL, Gflop/s vs dynamic %",
        &headers,
        &rows,
    );
    let get = |k: SchedulerKind| at5000.iter().find(|(s, _)| *s == k).unwrap().1;
    let h10 = get(SchedulerKind::Hybrid { dratio: 0.1 });
    println!(
        "\nn=5000: hybrid(10%) vs static {}, vs dynamic {}   (paper: +8.2%, +1.4%)",
        pct_over(h10, get(SchedulerKind::Static)),
        pct_over(h10, get(SchedulerKind::Dynamic)),
    );
}
