//! Figure 13: impact of data layout and scheduling on the AMD model.
//! Paper's peak reference: CALU static(10% dynamic) BCL reaches
//! 264 Gflop/s (49% of peak) at n = 15000.

use calu_bench::machines;

#[path = "fig12_intel_summary.rs"]
#[allow(dead_code)] // the included file's main() is unused here
mod intel;

fn main() {
    let (_, amd) = machines()[1].clone();
    intel::run_summary("Fig 13 — AMD 48-core: layout × scheduling", &amd);
    println!("\nExpected shape: dynamic far behind on every layout (NUMA);");
    println!("BCL h10 best; paper peak reference 264 GF = 49% of 539.5 GF at n=15000.");
}
