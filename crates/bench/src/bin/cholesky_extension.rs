//! §9 future-work extension: the hybrid static/dynamic scheduler applied
//! to tiled Cholesky factorization. "While in this paper we focus on
//! CALU, the same techniques can be applied to other dense
//! factorizations as Cholesky, QR, …" — here is Cholesky, same
//! scheduler, same machine models, same Solver facade.
//!
//! Two sections: the machine-model sweep (large n on the simulated
//! Intel/AMD boxes), and the **real** algorithm axis — CALU and tiled
//! Cholesky executed side by side on the threaded backend via the
//! kernel-set dispatch, Gflop/s on each algorithm's own nominal flops.

use calu::matrix::gen;
use calu::sim::MachineConfig;
use calu::{Algorithm, MatrixSource, Solver};
use calu_bench::{default_noise, gf, print_table, run_cholesky, sched_sweep};

/// One real threaded run; Gflop/s on the algorithm's own nominal
/// count, best of a few draws to smooth warm-up noise.
fn real_gflops(algorithm: Algorithm, n: usize, threads: usize) -> f64 {
    let run = || {
        let source = match algorithm {
            Algorithm::Cholesky => MatrixSource::Dense(gen::spd_uniform(n, 7)),
            _ => MatrixSource::Dense(gen::uniform(n, n, 7)),
        };
        Solver::new(source)
            .algorithm(algorithm)
            .tile(calu_bench::block_for(n).min(64))
            .threads(threads)
            .dratio(0.1)
            .verify(false)
            .run()
            .expect("real algorithm-axis run")
            .gflops()
    };
    (0..3).map(|_| run()).fold(0.0, f64::max)
}

fn main() {
    for (name, mach) in [
        (
            "Intel Xeon 16-core",
            MachineConfig::intel_xeon_16(default_noise()),
        ),
        (
            "AMD Opteron 48-core",
            MachineConfig::amd_opteron_48(default_noise()),
        ),
    ] {
        let headers: Vec<String> = std::iter::once("n".into())
            .chain(sched_sweep().into_iter().map(|(s, _)| s))
            .collect();
        let mut rows = Vec::new();
        for n in [4000usize, 6000, 8000] {
            let mut row = vec![n.to_string()];
            for (_, sched) in sched_sweep() {
                row.push(gf(run_cholesky(n, &mach, sched).gflops()));
            }
            rows.push(row);
        }
        print_table(
            &format!("§9 extension — tiled Cholesky, BCL, {name} (Gflop/s on n³/3)"),
            &headers,
            &rows,
        );
    }
    // the real algorithm axis: both factorizations through the same
    // threaded executor, kernel-set dispatch picking the tile bodies
    let threads = 4;
    let mut rows = Vec::new();
    for n in [512usize, 1024, 1536] {
        let lu = real_gflops(Algorithm::Calu, n, threads);
        let ch = real_gflops(Algorithm::Cholesky, n, threads);
        rows.push(vec![
            n.to_string(),
            gf(lu),
            gf(ch),
            format!("{:.2}", ch / lu),
        ]);
    }
    print_table(
        &format!("Real threaded execution, {threads} threads (Gflop/s on own nominal flops)"),
        &[
            "n".to_string(),
            "CALU".into(),
            "Cholesky".into(),
            "Chol/CALU".into(),
        ],
        &rows,
    );

    println!("\nThe same hybrid shape transfers: small dynamic share best, fully");
    println!("dynamic pays NUMA/dequeue costs — no pivoting barrier, so the gaps");
    println!("are smaller than CALU's, exactly as the theory predicts.");
}
