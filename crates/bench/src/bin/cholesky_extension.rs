//! §9 future-work extension: the hybrid static/dynamic scheduler applied
//! to tiled Cholesky factorization. "While in this paper we focus on
//! CALU, the same techniques can be applied to other dense
//! factorizations as Cholesky, QR, …" — here is Cholesky, same
//! scheduler, same machine models.

use calu_bench::{default_noise, gf, print_table, sched_sweep};
use calu_dag::TaskGraph;
use calu_matrix::Layout;
use calu_sim::{run, MachineConfig, SimConfig};

fn main() {
    for (name, mach) in [
        ("Intel Xeon 16-core", MachineConfig::intel_xeon_16(default_noise())),
        ("AMD Opteron 48-core", MachineConfig::amd_opteron_48(default_noise())),
    ] {
        let headers: Vec<String> = std::iter::once("n".into())
            .chain(sched_sweep().into_iter().map(|(s, _)| s))
            .collect();
        let mut rows = Vec::new();
        for n in [4000usize, 6000, 8000] {
            let g = TaskGraph::build_cholesky(n, calu_bench::block_for(n));
            let mut row = vec![n.to_string()];
            for (_, sched) in sched_sweep() {
                let cfg = SimConfig::new(mach.clone(), Layout::BlockCyclic, sched);
                row.push(gf(run(&g, &cfg).gflops()));
            }
            rows.push(row);
        }
        print_table(
            &format!("§9 extension — tiled Cholesky, BCL, {name} (Gflop/s on n³/3)"),
            &headers,
            &rows,
        );
    }
    println!("\nThe same hybrid shape transfers: small dynamic share best, fully");
    println!("dynamic pays NUMA/dequeue costs — no pivoting barrier, so the gaps");
    println!("are smaller than CALU's, exactly as the theory predicts.");
}
