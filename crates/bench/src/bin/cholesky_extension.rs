//! §9 future-work extension: the hybrid static/dynamic scheduler applied
//! to tiled Cholesky factorization. "While in this paper we focus on
//! CALU, the same techniques can be applied to other dense
//! factorizations as Cholesky, QR, …" — here is Cholesky, same
//! scheduler, same machine models, same Solver facade.

use calu::sim::MachineConfig;
use calu_bench::{default_noise, gf, print_table, run_cholesky, sched_sweep};

fn main() {
    for (name, mach) in [
        (
            "Intel Xeon 16-core",
            MachineConfig::intel_xeon_16(default_noise()),
        ),
        (
            "AMD Opteron 48-core",
            MachineConfig::amd_opteron_48(default_noise()),
        ),
    ] {
        let headers: Vec<String> = std::iter::once("n".into())
            .chain(sched_sweep().into_iter().map(|(s, _)| s))
            .collect();
        let mut rows = Vec::new();
        for n in [4000usize, 6000, 8000] {
            let mut row = vec![n.to_string()];
            for (_, sched) in sched_sweep() {
                row.push(gf(run_cholesky(n, &mach, sched).gflops()));
            }
            rows.push(row);
        }
        print_table(
            &format!("§9 extension — tiled Cholesky, BCL, {name} (Gflop/s on n³/3)"),
            &headers,
            &rows,
        );
    }
    println!("\nThe same hybrid shape transfers: small dynamic share best, fully");
    println!("dynamic pays NUMA/dequeue costs — no pivoting barrier, so the gaps");
    println!("are smaller than CALU's, exactly as the theory predicts.");
}
