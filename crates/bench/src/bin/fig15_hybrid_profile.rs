//! Figure 15: CALU static(10% dynamic) with the 2l-BL layout on 16-ish
//! cores — the small dynamic share keeps the cores busy and removes the
//! idle pockets of Figure 1.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu::trace::{render, svg, TimelineMetrics};
use calu_bench::{default_noise, run_calu};

fn main() {
    let mach = MachineConfig::amd_opteron_with_cores(18, default_noise());
    let r = run_calu(
        2500,
        &mach,
        Layout::TwoLevelBlock,
        SchedulerKind::Hybrid { dratio: 0.1 },
        true,
    );
    let tl = r.timeline.as_ref().unwrap();
    println!("=== Fig 15 — CALU static(10% dynamic), 2l-BL, n=2500, 18 cores (AMD model) ===");
    print!("{}", render::ascii(tl, 110));
    let svg_path = "results/fig15_timeline.svg";
    if std::fs::write(svg_path, svg::svg(tl, svg::SvgOptions::default())).is_ok() {
        println!("(SVG timeline written to {svg_path})");
    }
    let m = TimelineMetrics::of(tl);
    // compare with the fully static profile of Fig 1
    let stat = run_calu(
        2500,
        &mach,
        Layout::TwoLevelBlock,
        SchedulerKind::Static,
        true,
    );
    let ms = TimelineMetrics::of(stat.timeline.as_ref().unwrap());
    println!(
        "\nidle fraction: static {:.1}%  ->  static(10% dynamic) {:.1}%",
        ms.idle_fraction() * 100.0,
        m.idle_fraction() * 100.0
    );
}
