//! Kernel microbenchmark: Gflop/s sweep over the `calu-kernels`
//! building blocks — square and rectangular GEMM, blocked TRSM, and
//! recursive panel GETRF — emitting the same flat-JSON metric format as
//! `perf_smoke` (timings as `*_secs`, rates and ratios as plain counts).
//!
//! ```text
//! kernels [--out PATH]   # metrics file (default KERNELS_pr.json)
//!         [--quick]      # skip the n = 1024 sizes (fast smoke)
//! ```
//!
//! Every GEMM size also runs the seed `j-k-i` AXPY kernel
//! ([`calu::kernels::dgemm_jki`]) and reports the packed kernel's
//! speedup over it — the before/after evidence for the BLIS-style
//! rewrite. Timings are minima over several draws; the `calibration_secs`
//! metric (the same fixed naive-matmul workload `perf_smoke` uses) makes
//! the `_secs` values comparable across hosts.

use calu::kernels::{
    dgemm_jki, dgemm_packed, dgetrf_recursive_packed, dtrsm_left_lower_unit_packed,
    dtrsm_right_upper_packed, flops, GemmScratch,
};
use calu::matrix::{gen, DenseMatrix};
use calu_bench::perf::{calibration_secs, min_of, write_flat_json, CALIBRATION_KEY};
use calu_bench::timing::fmt_secs;

/// Time one `C ← C − A·B` with the packed kernel and the seed jki
/// kernel; returns `(packed_secs, jki_secs)`.
fn time_gemm(m: usize, n: usize, k: usize, iters: usize, scratch: &mut GemmScratch) -> (f64, f64) {
    let a = gen::uniform(m, k, 7);
    let b = gen::uniform(k, n, 8);
    // accumulating (β = 1) into one reused buffer keeps flops identical
    // across iterations without a per-iteration O(mn) re-clone
    let mut c = gen::uniform(m, n, 9);
    let ldc = c.ld();
    let packed = min_of(iters, || {
        let t0 = std::time::Instant::now();
        dgemm_packed(
            m,
            n,
            k,
            -1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            1.0,
            c.as_mut_slice(),
            ldc,
            scratch,
        );
        std::hint::black_box(&c);
        t0.elapsed().as_secs_f64()
    });
    let mut c = gen::uniform(m, n, 9);
    let jki = min_of(iters, || {
        let t0 = std::time::Instant::now();
        dgemm_jki(
            m,
            n,
            k,
            -1.0,
            a.as_slice(),
            a.ld(),
            b.as_slice(),
            b.ld(),
            1.0,
            c.as_mut_slice(),
            ldc,
        );
        std::hint::black_box(&c);
        t0.elapsed().as_secs_f64()
    });
    (packed, jki)
}

fn unit_lower(n: usize, seed: u64) -> DenseMatrix {
    let r = gen::uniform(n, n, seed);
    DenseMatrix::from_fn(n, n, |i, j| {
        if i == j {
            1.0
        } else if i > j {
            0.3 * r.get(i, j)
        } else {
            0.0
        }
    })
}

fn upper(n: usize, seed: u64) -> DenseMatrix {
    let r = gen::uniform(n, n, seed);
    DenseMatrix::from_fn(n, n, |i, j| {
        if i == j {
            2.0 + r.get(i, j).abs()
        } else if i < j {
            r.get(i, j)
        } else {
            0.0
        }
    })
}

fn main() {
    let mut out = "KERNELS_pr.json".to_string();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next().expect("--out needs a value"),
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(1);
            }
        }
    }

    let mut metrics: Vec<(String, f64)> = vec![(CALIBRATION_KEY.to_string(), calibration_secs())];
    let mut scratch = GemmScratch::new();

    println!("gemm (packed vs seed jki), square:");
    let squares: &[usize] = if quick {
        &[256, 512]
    } else {
        &[256, 512, 1024]
    };
    for &n in squares {
        let iters = if n >= 1024 { 3 } else { 5 };
        let (packed, jki) = time_gemm(n, n, n, iters, &mut scratch);
        let fl = flops::gemm(n, n, n);
        println!(
            "  n={n:<5} packed {} ({:.2} Gflop/s)   jki {} ({:.2} Gflop/s)",
            fmt_secs(packed),
            fl / packed / 1e9,
            fmt_secs(jki),
            fl / jki / 1e9,
        );
        metrics.push((format!("gemm_sq{n}_secs"), packed));
        metrics.push((format!("gemm_sq{n}_gflops"), fl / packed / 1e9));
        metrics.push((format!("gemm_sq{n}_speedup_vs_jki"), jki / packed));
    }

    println!("gemm, rectangular (trailing-update shapes):");
    for (m, n, k) in [(1024, 256, 128), (256, 1024, 128), (512, 512, 64)] {
        let (packed, jki) = time_gemm(m, n, k, 5, &mut scratch);
        let fl = flops::gemm(m, n, k);
        println!(
            "  {m}x{n}x{k}: packed {} ({:.2} Gflop/s), {:.2}x vs jki",
            fmt_secs(packed),
            fl / packed / 1e9,
            jki / packed
        );
        metrics.push((format!("gemm_{m}x{n}x{k}_secs"), packed));
        metrics.push((format!("gemm_{m}x{n}x{k}_gflops"), fl / packed / 1e9));
        metrics.push((format!("gemm_{m}x{n}x{k}_speedup_vs_jki"), jki / packed));
    }

    println!("trsm (blocked, n rhs = size):");
    {
        let n = 512;
        let l = unit_lower(n, 20);
        let u = upper(n, 21);
        let b0 = gen::uniform(n, n, 22);
        let mut b = b0.clone();
        let ld = b.ld();
        let left = min_of(5, || {
            b.as_mut_slice().copy_from_slice(b0.as_slice());
            let t0 = std::time::Instant::now();
            dtrsm_left_lower_unit_packed(
                n,
                n,
                l.as_slice(),
                l.ld(),
                b.as_mut_slice(),
                ld,
                &mut scratch,
            );
            std::hint::black_box(&b);
            t0.elapsed().as_secs_f64()
        });
        let right = min_of(5, || {
            b.as_mut_slice().copy_from_slice(b0.as_slice());
            let t0 = std::time::Instant::now();
            dtrsm_right_upper_packed(
                n,
                n,
                u.as_slice(),
                u.ld(),
                b.as_mut_slice(),
                ld,
                &mut scratch,
            );
            std::hint::black_box(&b);
            t0.elapsed().as_secs_f64()
        });
        let fl = flops::trsm(n, n);
        println!(
            "  left {} ({:.2} Gflop/s)   right {} ({:.2} Gflop/s)",
            fmt_secs(left),
            fl / left / 1e9,
            fmt_secs(right),
            fl / right / 1e9
        );
        metrics.push(("trsm_left_512_secs".into(), left));
        metrics.push(("trsm_left_512_gflops".into(), fl / left / 1e9));
        metrics.push(("trsm_right_512_secs".into(), right));
        metrics.push(("trsm_right_512_gflops".into(), fl / right / 1e9));
    }

    println!("panel getrf (recursive LU, tall panels):");
    for (m, n) in [(1024, 128), (2048, 64)] {
        let a = gen::uniform(m, n, 30);
        let mut p = a.clone();
        let ld = p.ld();
        let secs = min_of(5, || {
            p.as_mut_slice().copy_from_slice(a.as_slice());
            let t0 = std::time::Instant::now();
            std::hint::black_box(dgetrf_recursive_packed(
                m,
                n,
                p.as_mut_slice(),
                ld,
                &mut scratch,
            ));
            t0.elapsed().as_secs_f64()
        });
        let fl = flops::getrf(m, n);
        println!(
            "  {m}x{n}: {} ({:.2} Gflop/s)",
            fmt_secs(secs),
            fl / secs / 1e9
        );
        metrics.push((format!("getrf_{m}x{n}_secs"), secs));
        metrics.push((format!("getrf_{m}x{n}_gflops"), fl / secs / 1e9));
    }

    let json = write_flat_json(&metrics);
    std::fs::write(&out, &json).expect("write metrics file");
    println!("wrote {out}");
}
