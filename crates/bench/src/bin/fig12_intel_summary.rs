//! Figure 12: impact of data layout and scheduling on the Intel model —
//! the full cross product over matrix sizes. "dynamic rectangular" is
//! the paper's name for dynamic scheduling on the column-major layout.

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu_bench::{gf, machines, print_table, run_calu};

fn main() {
    let (_, intel) = machines()[0].clone();
    run_summary("Fig 12 — Intel 16-core: layout × scheduling", &intel);
    println!("\nExpected shape: BCL hybrid(10%) best overall; 2l-BL competitive at small n;");
    println!("BCL pulls ahead for large n (grouped BLAS-3); CM always behind.");
}

pub fn run_summary(title: &str, mach: &calu::sim::MachineConfig) {
    let configs: Vec<(String, Layout, SchedulerKind)> = vec![
        (
            "BCL static".into(),
            Layout::BlockCyclic,
            SchedulerKind::Static,
        ),
        (
            "BCL h10".into(),
            Layout::BlockCyclic,
            SchedulerKind::Hybrid { dratio: 0.1 },
        ),
        (
            "BCL dynamic".into(),
            Layout::BlockCyclic,
            SchedulerKind::Dynamic,
        ),
        (
            "2l-BL static".into(),
            Layout::TwoLevelBlock,
            SchedulerKind::Static,
        ),
        (
            "2l-BL h10".into(),
            Layout::TwoLevelBlock,
            SchedulerKind::Hybrid { dratio: 0.1 },
        ),
        (
            "2l-BL dynamic".into(),
            Layout::TwoLevelBlock,
            SchedulerKind::Dynamic,
        ),
        (
            "CM dynamic".into(),
            Layout::ColumnMajor,
            SchedulerKind::Dynamic,
        ),
    ];
    let headers: Vec<String> = std::iter::once("n".into())
        .chain(configs.iter().map(|(s, _, _)| s.clone()))
        .collect();
    let mut rows = Vec::new();
    for n in [2000usize, 4000, 6000, 8000, 10000, 15000] {
        let mut row = vec![n.to_string()];
        for (_, layout, sched) in &configs {
            let r = run_calu(n, mach, *layout, *sched, false);
            row.push(gf(r.gflops()));
        }
        rows.push(row);
    }
    print_table(title, &headers, &rows);
}
