//! §7: projected minimum dynamic percentage for future many-core nodes
//! under noise amplification (weak scaling, work per core constant).

use calu::model::dynamic_fraction_projection;
use calu_bench::print_table;

fn main() {
    let cores = [16usize, 48, 192, 768, 3072, 12288, 49152];
    let rows = dynamic_fraction_projection(&cores, 1.0, 5e-3, 0.5);
    let headers: Vec<String> = [
        "cores/node",
        "noise skew (ms)",
        "max static",
        "min dynamic %",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cores.to_string(),
                format!("{:.2}", r.noise_skew * 1e3),
                format!("{:.3}", r.max_static),
                format!("{:.1}", r.min_dynamic_pct),
            ]
        })
        .collect();
    print_table(
        "§7 — exascale projection (weak scaling, sqrt noise amplification)",
        &headers,
        &table,
    );
    println!("\nThe lower bound on the dynamic percentage grows with the core count —");
    println!("the paper's argument for hybrid (not purely static) schedules at exascale.");
}
