//! Figure 3: the task dependency graph of a 4×4-tile CALU with its two
//! critical paths (red = static section, green = dynamic section).
//!
//! Prints Graphviz DOT; pipe through `dot -Tsvg` to draw.

use calu::dag::{dot, TaskGraph};
use calu::sched::nstatic_for;

fn main() {
    let g = TaskGraph::build_calu(400, 400, 100, 2);
    let nstatic = nstatic_for(0.25, g.num_panels()); // static(25% dynamic): 3 of 4 panels
    println!("{}", dot::to_dot(&g, nstatic));
    eprintln!(
        "// {} tasks, {} edges, Nstatic = {nstatic} of {} panels",
        g.len(),
        g.num_edges(),
        g.num_panels()
    );
}
