//! CI perf-smoke gate: a fixed small workload through the scheduler
//! decision procedures and the real threaded executor, emitted as a
//! flat-JSON metric file (`BENCH_pr.json`) and optionally gated against
//! a checked-in baseline.
//!
//! ```text
//! perf_smoke [--out PATH]            # metrics file (default BENCH_pr.json)
//!            [--baseline PATH]       # compare + non-zero exit on regression
//!            [--write-baseline PATH] # refresh the checked-in baseline
//!            [--tolerance F]           # allowed slowdown (default 0.20 = 20%)
//!            [--threaded-tolerance F]  # for threaded_* metrics (default 0.60)
//! ```
//!
//! The threaded section times all three queue disciplines on the same
//! 4-thread workload (`threaded_{global,sharded,lockfree}_makespan_secs`)
//! and records the lock-free run's steal-locality split
//! (`threaded_lockfree_steal_locality` = fraction of steals that stayed
//! on the thief's socket under the tiered sweep; counts beside it).
//!
//! Timing metrics are normalized by a fixed single-threaded calibration
//! kernel before comparison (see `calu_bench::perf`), so a baseline
//! recorded on one machine still gates a run on a different one.
//! Calibration cancels single-core speed but *not* parallel efficiency
//! — a shared CI runner's oversubscribed cores inflate the 4-thread
//! `threaded_*_secs` makespans without touching the calibration — so
//! those metrics gate at the looser `--threaded-tolerance` while the
//! deterministic single-threaded `drain_*_secs` gate at `--tolerance`.
//! `gemm_256_secs` is the packed-kernel Gflop/s floor: normalized by the
//! naive-matmul calibration it gates the BLIS-style kernel's speedup
//! over naive code, so a kernel regression fails CI like a scheduler
//! regression would.

use std::process::ExitCode;

use calu::dag::TaskGraph;
use calu::kernels::{dgemm_packed, GemmScratch};
use calu::matrix::{gen, ProcessGrid};
use calu::sched::{make_policy_with, QueueDiscipline, SchedulerKind};
use calu::{Report, Solver};
use calu_bench::perf::{
    calibration_secs, compare_with, min_of, parse_flat_json, write_flat_json, CALIBRATION_KEY,
};

/// Fixed smoke problem: small enough for a CI runner, large enough that
/// the dynamic section actually exercises both queue disciplines.
const N: usize = 320;
const B: usize = 32;
const THREADS: usize = 4;
const DRATIO: f64 = 0.8;
const SEED: u64 = 1234;
const ITERS: usize = 7;

/// The packed-kernel GEMM floor: repeated 256³ `dgemm` calls, minimum
/// over several draws. Gated (like every `*_secs` metric) after
/// normalization by `calibration_secs` — a *naive* matmul — so the
/// ratio is exactly the packed kernel's speedup over naive code on the
/// same host, and a kernel regression (lost vectorization, broken
/// blocking) fails CI the way scheduler regressions already do, with
/// host speed cancelled.
fn gemm_secs() -> f64 {
    const N: usize = 256;
    let a = gen::uniform(N, N, 3);
    let b = gen::uniform(N, N, 4);
    let mut c = gen::uniform(N, N, 5);
    let (lda, ldb, ldc) = (a.ld(), b.ld(), c.ld());
    let mut scratch = GemmScratch::sized_for(N, N, N);
    min_of(5, || {
        let t0 = std::time::Instant::now();
        for _ in 0..4 {
            dgemm_packed(
                N,
                N,
                N,
                -1.0,
                a.as_slice(),
                lda,
                b.as_slice(),
                ldb,
                1.0,
                c.as_mut_slice(),
                ldc,
                &mut scratch,
            );
            std::hint::black_box(&c);
        }
        t0.elapsed().as_secs_f64()
    })
}

fn threaded(queue: QueueDiscipline) -> (f64, Report) {
    let a = gen::uniform(N, N, SEED);
    let solver = Solver::new(a)
        .tile(B)
        .threads(THREADS)
        .dratio(DRATIO)
        .queue_discipline(queue)
        .verify(false);
    // keep the whole report of the fastest iteration, so the published
    // steal/contention counters belong to the published makespan
    let mut best: Option<Report> = None;
    for _ in 0..ITERS {
        let r = solver.run().expect("smoke factorization");
        if best.as_ref().is_none_or(|b| r.makespan < b.makespan) {
            best = Some(r);
        }
    }
    let best = best.expect("at least one iteration");
    (best.makespan, best)
}

/// Branchy single-threaded calibration matched to the drain metrics'
/// workload profile (BinaryHeap churn, not FLOPs): a CPU generation
/// whose matmul-to-branchy speed ratio differs from the baseline
/// host's would otherwise shift the tightly-gated drain ratios with no
/// code change. Published as `drain_calibration_secs`, which
/// `calu_bench::perf` uses to normalize every `drain_*_secs` metric.
fn drain_calibration() -> f64 {
    // preallocated so the timing sees heap churn, not allocator noise
    let mut heap = std::collections::BinaryHeap::with_capacity(200_001);
    min_of(7, || {
        heap.clear();
        let t0 = std::time::Instant::now();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..200_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            heap.push(std::cmp::Reverse((x, i)));
            if i % 3 == 0 {
                heap.pop();
            }
        }
        while heap.pop().is_some() {}
        std::hint::black_box(&heap);
        t0.elapsed().as_secs_f64()
    })
}

/// Single-threaded policy drain (the scheduler bench's inner loop): how
/// fast the decision procedure itself hands out the whole DAG.
fn drain_secs(queue: QueueDiscipline) -> (f64, usize) {
    // big enough that one drain is ~1ms: sub-millisecond timings jitter
    // past any reasonable gate tolerance on a shared runner
    let g = TaskGraph::build_calu(4000, 4000, 100, 4);
    let grid = ProcessGrid::square_for(16).unwrap();
    let secs = min_of(7, || {
        let t0 = std::time::Instant::now();
        let mut p = make_policy_with(SchedulerKind::Hybrid { dratio: 0.1 }, queue, &g, grid);
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.initial_ready() {
            p.on_ready(t, None);
        }
        let mut done = 0;
        while done < g.len() {
            for core in 0..16 {
                if let Some(popped) = p.pop(core) {
                    done += 1;
                    for &s in g.successors(popped.task) {
                        deps[s.idx()] -= 1;
                        if deps[s.idx()] == 0 {
                            p.on_ready(s, Some(core));
                        }
                    }
                }
            }
        }
        t0.elapsed().as_secs_f64()
    });
    (secs, g.len())
}

fn main() -> ExitCode {
    let mut out = "BENCH_pr.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut threaded_tolerance = 0.60f64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--out" => out = val(),
            "--baseline" => baseline_path = Some(val()),
            "--write-baseline" => write_baseline = Some(val()),
            "--tolerance" => tolerance = val().parse().expect("tolerance must be a number"),
            "--threaded-tolerance" => {
                threaded_tolerance = val().parse().expect("threaded-tolerance must be a number")
            }
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("perf-smoke: n={N} b={B} threads={THREADS} dratio={DRATIO}, {ITERS} iters");
    let cal = calibration_secs();
    let (global_secs, _) = threaded(QueueDiscipline::Global);
    let (sharded_secs, sharded_report) = threaded(QueueDiscipline::Sharded { seed: SEED });
    let (lockfree_secs, lockfree_report) = threaded(QueueDiscipline::LockFree { seed: SEED });
    let contention = sharded_report.schedule.contention();
    let lf_contention = lockfree_report.schedule.contention();
    let locality = lockfree_report.schedule.steal_locality();
    let (drain_global, drain_tasks) = drain_secs(QueueDiscipline::Global);
    let (drain_sharded, _) = drain_secs(QueueDiscipline::sharded());
    let (drain_lockfree, _) = drain_secs(QueueDiscipline::lock_free());

    let metrics: Vec<(String, f64)> = [
        (CALIBRATION_KEY, cal),
        ("gemm_256_secs", gemm_secs()),
        ("threaded_global_makespan_secs", global_secs),
        ("threaded_sharded_makespan_secs", sharded_secs),
        ("threaded_lockfree_makespan_secs", lockfree_secs),
        ("threaded_sharded_steals", contention.steals as f64),
        (
            "threaded_sharded_failed_steals",
            contention.failed_steals as f64,
        ),
        ("threaded_lockfree_steals", lf_contention.steals as f64),
        (
            "threaded_lockfree_failed_steals",
            lf_contention.failed_steals as f64,
        ),
        // the steal-locality split of the tiered lock-free sweep: how
        // many steals stayed on the thief's socket vs. crossed it
        // (counts and a ratio — recorded for inspection, never gated)
        ("threaded_lockfree_local_steals", locality.local as f64),
        ("threaded_lockfree_remote_steals", locality.remote as f64),
        (
            "threaded_lockfree_steal_locality",
            1.0 - locality.remote_fraction(),
        ),
        (
            "threaded_tasks",
            sharded_report.schedule.total_tasks() as f64,
        ),
        ("drain_calibration_secs", drain_calibration()),
        ("drain_global_secs", drain_global),
        ("drain_sharded_secs", drain_sharded),
        ("drain_lockfree_secs", drain_lockfree),
        ("drain_tasks", drain_tasks as f64),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();

    for (k, v) in &metrics {
        println!("  {k:<36} {v}");
    }

    let json = write_flat_json(&metrics);
    std::fs::write(&out, &json).expect("write metrics file");
    println!("wrote {out}");
    if let Some(path) = write_baseline {
        std::fs::write(&path, &json).expect("write baseline file");
        println!("wrote baseline {path}");
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_flat_json(&text).expect("baseline must be flat JSON");
        let tol_for = |key: &str| {
            if key.starts_with("threaded_") {
                threaded_tolerance
            } else {
                tolerance
            }
        };
        match compare_with(&metrics, &baseline, tol_for) {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "perf-smoke gate PASSED vs {path} \
                     (tolerance {tolerance}, threaded {threaded_tolerance})"
                );
            }
            Ok(regressions) => {
                eprintln!("perf-smoke gate FAILED vs {path}:");
                for r in &regressions {
                    eprintln!("  {r}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf-smoke comparison error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
