//! CI perf-smoke gate: a fixed small workload through the scheduler
//! decision procedures and the real threaded executor, emitted as a
//! flat-JSON metric file (`BENCH_pr.json`) and optionally gated against
//! a checked-in baseline.
//!
//! ```text
//! perf_smoke [--out PATH]            # metrics file (default BENCH_pr.json)
//!            [--baseline PATH]       # compare + non-zero exit on regression
//!            [--write-baseline PATH] # refresh the checked-in baseline
//!            [--tolerance F]           # allowed slowdown (default 0.20 = 20%)
//!            [--threaded-tolerance F]  # for threaded_* metrics (default 0.60)
//! ```
//!
//! The threaded section times all three queue disciplines on the same
//! 4-thread workload (`threaded_{global,sharded,lockfree}_makespan_secs`)
//! and records the lock-free run's steal-locality split
//! (`threaded_lockfree_steal_locality` = fraction of steals that stayed
//! on the thief's socket under the tiered sweep; counts beside it).
//!
//! The batch section runs the `Solver::batch` acceptance workload —
//! 16 seeded n=256 matrices on the persistent pool vs. the
//! loop-over-`run` fallback. `batch_16x256_items_per_sec` gates as a
//! *rate* (regression = normalized throughput dropping past the
//! threaded tolerance), and the binary fails outright if the pool does
//! not beat the fallback on the current host, baseline or no baseline.
//! The same sources also run through a warm `FactorService`
//! (`service_batch`) interleaved with the batch draws:
//! `serve_jobs_per_sec` gates as a rate, and the binary fails outright
//! if the service path falls more than 10% below `Solver::batch` —
//! the admission/handle layer must stay thin. The same mix then goes
//! through the TCP front door as seeded generator specs
//! (`net_jobs_per_sec`, gated as a rate) and the binary fails outright
//! if the wire path falls more than 20% below the in-process service —
//! the protocol layer must stay thin too.
//!
//! The algorithm axis runs tiled Cholesky and CALU at equal n = 1024 on
//! the real executor (`cholesky_1024_secs` / `cholesky_lu_1024_secs`,
//! both gated at the threaded tolerance) and fails outright if Cholesky
//! — half LU's flops — takes more than 0.65× LU's makespan.
//!
//! The degradation axis reruns the n = 1024 LU with worker 0 slowed 2×
//! by deterministic fault injection (`degraded_makespan_secs`, gated at
//! the threaded tolerance) and fails outright if the degraded run is
//! over 1.6× the healthy one — the dynamic section must absorb a slow
//! core, which is the paper's case for hybrid scheduling.
//!
//! Timing metrics are normalized by a fixed single-threaded calibration
//! kernel before comparison (see `calu_bench::perf`), so a baseline
//! recorded on one machine still gates a run on a different one.
//! Calibration cancels single-core speed but *not* parallel efficiency
//! — a shared CI runner's oversubscribed cores inflate the 4-thread
//! `threaded_*_secs` makespans without touching the calibration — so
//! those metrics gate at the looser `--threaded-tolerance` while the
//! deterministic single-threaded `drain_*_secs` gate at `--tolerance`.
//! `gemm_256_secs` is the packed-kernel Gflop/s floor: normalized by the
//! naive-matmul calibration it gates the BLIS-style kernel's speedup
//! over naive code, so a kernel regression fails CI like a scheduler
//! regression would.

use std::process::ExitCode;

use calu::dag::TaskGraph;
use calu::kernels::{dgemm_packed, GemmScratch};
use calu::matrix::{gen, ProcessGrid};
use calu::sched::{make_policy_with, QueueDiscipline, SchedulerKind};
use calu::{service_batch, AdaptivePolicy, Algorithm, FaultPlan, MatrixSource, Report, Solver};
use calu_bench::perf::{
    calibration_secs, compare_with, min_of, parse_flat_json, write_flat_json, CALIBRATION_KEY,
};

/// Fixed smoke problem: small enough for a CI runner, large enough that
/// the dynamic section actually exercises both queue disciplines.
const N: usize = 320;
const B: usize = 32;
const THREADS: usize = 4;
const DRATIO: f64 = 0.8;
const SEED: u64 = 1234;
const ITERS: usize = 7;

/// The packed-kernel GEMM floor: repeated 256³ `dgemm` calls, minimum
/// over several draws. Gated (like every `*_secs` metric) after
/// normalization by `calibration_secs` — a *naive* matmul — so the
/// ratio is exactly the packed kernel's speedup over naive code on the
/// same host, and a kernel regression (lost vectorization, broken
/// blocking) fails CI the way scheduler regressions already do, with
/// host speed cancelled.
fn gemm_secs() -> f64 {
    const N: usize = 256;
    let a = gen::uniform(N, N, 3);
    let b = gen::uniform(N, N, 4);
    let mut c = gen::uniform(N, N, 5);
    let (lda, ldb, ldc) = (a.ld(), b.ld(), c.ld());
    let mut scratch = GemmScratch::sized_for(N, N, N);
    min_of(5, || {
        let t0 = std::time::Instant::now();
        for _ in 0..4 {
            dgemm_packed(
                N,
                N,
                N,
                -1.0,
                a.as_slice(),
                lda,
                b.as_slice(),
                ldb,
                1.0,
                c.as_mut_slice(),
                ldc,
                &mut scratch,
            );
            std::hint::black_box(&c);
        }
        t0.elapsed().as_secs_f64()
    })
}

/// The batched-sweep acceptance workload: 16 seeded n=256 matrices
/// through `Solver::batch` (persistent pool, co-scheduled items) versus
/// the loop-over-`run` fallback (fresh thread pool per item). Both
/// paths skip verification and share seeds, so they factor the exact
/// same matrices; the minimum over several draws filters runner noise.
/// The same sources additionally run on a warm [`calu::FactorService`]
/// (spawned once, outside every timed region) via `service_batch`, so
/// the third figure is steady-state job throughput through the
/// admission/handle layer. Returns
/// `(batch items/s, loop items/s, serve jobs/s)`.
const BATCH_ITEMS: usize = 16;
const BATCH_N: usize = 256;

fn batch_throughput() -> (f64, f64, f64) {
    // pre-materialized dense sources, shared by both paths: the gate
    // measures the scheduling/throughput difference (pool reuse vs
    // per-item spawn), not matrix generation or first-touch page faults
    let sources: Vec<MatrixSource> = (0..BATCH_ITEMS as u64)
        .map(|i| MatrixSource::Dense(gen::uniform(BATCH_N, BATCH_N, SEED + i)))
        .collect();
    let solver = Solver::new(MatrixSource::shape(BATCH_N, BATCH_N))
        .tile(B)
        .threads(THREADS)
        .verify(false);
    // the loop path's solvers are built once, outside the timed region:
    // Solver::new clones its source, and timing a 512 KB memcpy per
    // item would bias the gate toward the batch path (which borrows)
    let solo: Vec<Solver> = sources
        .iter()
        .map(|src| {
            Solver::new(src.clone())
                .tile(B)
                .threads(THREADS)
                .verify(false)
        })
        .collect();
    // the service spawns once here, outside every timed region: the
    // serve figure is steady-state throughput of a warm pool, which is
    // exactly what a long-running job server amortizes toward
    let service = solver.serve().expect("spawn service");
    // interleave the measurements so host drift (frequency ramps,
    // noisy neighbours on a shared runner) hits all paths equally;
    // the per-path minimum then compares like against like
    let mut batch_secs = f64::INFINITY;
    let mut loop_secs = f64::INFINITY;
    let mut serve_secs = f64::INFINITY;
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        let r = solver.batch(&sources).expect("batch sweep");
        assert_eq!(r.len(), BATCH_ITEMS);
        batch_secs = batch_secs.min(t0.elapsed().as_secs_f64());

        let t0 = std::time::Instant::now();
        for s in &solo {
            s.run().expect("solo run");
        }
        loop_secs = loop_secs.min(t0.elapsed().as_secs_f64());

        let t0 = std::time::Instant::now();
        let r = service_batch(&service, &sources).expect("service sweep");
        assert_eq!(r.len(), BATCH_ITEMS);
        assert!(r.pool_reused, "a warm service must report pool reuse");
        serve_secs = serve_secs.min(t0.elapsed().as_secs_f64());
    }
    service.drain();
    (
        BATCH_ITEMS as f64 / batch_secs,
        BATCH_ITEMS as f64 / loop_secs,
        BATCH_ITEMS as f64 / serve_secs,
    )
}

/// The front-door acceptance workload: the same 16×(n=256) job mix
/// submitted through the TCP line protocol — one warm listener, one
/// connection, submit-all then poll-to-done, minimum over draws. The
/// jobs are seeded generator specs (the wire carries specs, not data),
/// so the figure is the whole front-door stack: parse, admission,
/// factorization, status polling. Gated as a rate (`net_jobs_per_sec`)
/// at the threaded tolerance, and held in-binary to ≥ 0.8× the
/// in-process `serve_jobs_per_sec` — the protocol layer must stay thin.
fn net_throughput() -> f64 {
    use std::io::{BufRead, BufReader, Write};
    let listener = Solver::new(MatrixSource::shape(BATCH_N, BATCH_N))
        .tile(B)
        .threads(THREADS)
        .verify(false)
        .listen("127.0.0.1:0")
        .expect("bind front door");
    let stream = std::net::TcpStream::connect(listener.local_addr()).expect("connect front door");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut line = String::new();
    let mut roundtrip = |reader: &mut BufReader<std::net::TcpStream>,
                         writer: &mut std::net::TcpStream,
                         req: &str|
     -> String {
        writeln!(writer, "{req}").expect("write request");
        line.clear();
        reader.read_line(&mut line).expect("read reply");
        line.trim().to_string()
    };
    let secs = min_of(5, || {
        let t0 = std::time::Instant::now();
        let ids: Vec<u64> = (0..BATCH_ITEMS as u64)
            .map(|i| {
                let reply = roundtrip(
                    &mut reader,
                    &mut writer,
                    &format!("submit batch uniform {BATCH_N} {BATCH_N} {}", SEED + i),
                );
                reply
                    .strip_prefix("ok ")
                    .unwrap_or_else(|| panic!("expected ok <id>, got {reply:?}"))
                    .parse()
                    .expect("job id")
            })
            .collect();
        for id in ids {
            loop {
                let status = roundtrip(&mut reader, &mut writer, &format!("status {id}"));
                if status.ends_with(" done") {
                    break;
                }
                assert!(
                    status.ends_with(" queued") || status.ends_with(" running"),
                    "front-door job {id} went {status:?}"
                );
                // back off between polls: a busy-poll would steal a
                // core from the four workers and bill the theft to the
                // front door
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
        t0.elapsed().as_secs_f64()
    });
    listener.service().drain();
    listener.shutdown();
    BATCH_ITEMS as f64 / secs
}

/// The algorithm axis of the threaded gate: tiled Cholesky vs CALU at
/// equal n = 1024 on the same 4-thread executor. Cholesky bills `n³/3`
/// flops to LU's `2n³/3`, so its makespan must land well under LU's —
/// the in-binary check below holds it to ≤ 0.65× (half the flops, minus
/// some slack for the thinner DAG's lower parallelism). Returns
/// `(cholesky_secs, lu_secs)`, makespan minima over interleaved draws.
const ALGO_N: usize = 1024;
const ALGO_ITERS: usize = 3;

fn algorithm_axis() -> (f64, f64) {
    let cholesky = Solver::new(MatrixSource::spd_uniform(ALGO_N, SEED))
        .algorithm(Algorithm::Cholesky)
        .tile(B)
        .threads(THREADS)
        .dratio(DRATIO)
        .verify(false);
    let lu = Solver::new(MatrixSource::uniform(ALGO_N, SEED))
        .tile(B)
        .threads(THREADS)
        .dratio(DRATIO)
        .verify(false);
    let mut ch_secs = f64::INFINITY;
    let mut lu_secs = f64::INFINITY;
    for _ in 0..ALGO_ITERS {
        ch_secs = ch_secs.min(cholesky.run().expect("cholesky smoke").makespan);
        lu_secs = lu_secs.min(lu.run().expect("lu smoke").makespan);
    }
    (ch_secs, lu_secs)
}

/// The degradation axis: the same n = 1024 LU with worker 0 injected at
/// an effective 2× slowdown (`FaultPlan::slow_worker`), parameterized
/// by the dynamic share. The hybrid scheduler treats the slow worker as
/// degraded and routes its static share to the dynamic queues, so the
/// healthy workers absorb most of the lost capacity: a naive static
/// schedule would pay the full 2×, the in-binary check below holds the
/// real executor (at the default `DRATIO`) to ≤ 1.6× the healthy LU
/// makespan. Gated against the baseline at the threaded tolerance like
/// every 4-thread wall-clock figure.
const DEGRADED_DRATIOS: [f64; 3] = [0.2, 0.5, DRATIO];

fn degraded_fault() -> FaultPlan {
    FaultPlan::off().with_seed(SEED).slow_worker(0, 2.0)
}

fn degraded_secs(dratio: f64) -> f64 {
    let solver = Solver::new(MatrixSource::uniform(ALGO_N, SEED))
        .tile(B)
        .threads(THREADS)
        .dratio(dratio)
        .fault_plan(degraded_fault())
        .verify(false);
    let mut secs = f64::INFINITY;
    for _ in 0..ALGO_ITERS {
        secs = secs.min(solver.run().expect("degraded smoke").makespan);
    }
    secs
}

/// The adaptive leg of the degradation axis: the same slowed-worker
/// workload with the feedback controller picking the split instead of
/// a fixed `dratio`. One cross-run solver, twice the fixed sweep's
/// draws so the controller has observations to converge on; the
/// minimum is what a steady-state adaptive deployment pays. The
/// in-binary checks below hold it to ≤ 1.05× the best fixed sweep
/// point and strictly under the worst one — the controller must find
/// the good end of the sweep on its own, not just avoid disaster.
fn adaptive_degraded_secs() -> f64 {
    let solver = Solver::new(MatrixSource::uniform(ALGO_N, SEED))
        .tile(B)
        .threads(THREADS)
        .adaptive(AdaptivePolicy::new(SEED))
        .fault_plan(degraded_fault())
        .verify(false);
    let mut secs = f64::INFINITY;
    for _ in 0..2 * ALGO_ITERS {
        secs = secs.min(solver.run().expect("adaptive degraded smoke").makespan);
    }
    secs
}

fn threaded(queue: QueueDiscipline) -> (f64, Report) {
    let a = gen::uniform(N, N, SEED);
    let solver = Solver::new(a)
        .tile(B)
        .threads(THREADS)
        .dratio(DRATIO)
        .queue_discipline(queue)
        .verify(false);
    // keep the whole report of the fastest iteration, so the published
    // steal/contention counters belong to the published makespan
    let mut best: Option<Report> = None;
    for _ in 0..ITERS {
        let r = solver.run().expect("smoke factorization");
        if best.as_ref().is_none_or(|b| r.makespan < b.makespan) {
            best = Some(r);
        }
    }
    let best = best.expect("at least one iteration");
    (best.makespan, best)
}

/// Branchy single-threaded calibration matched to the drain metrics'
/// workload profile (BinaryHeap churn, not FLOPs): a CPU generation
/// whose matmul-to-branchy speed ratio differs from the baseline
/// host's would otherwise shift the tightly-gated drain ratios with no
/// code change. Published as `drain_calibration_secs`, which
/// `calu_bench::perf` uses to normalize every `drain_*_secs` metric.
fn drain_calibration() -> f64 {
    // preallocated so the timing sees heap churn, not allocator noise
    let mut heap = std::collections::BinaryHeap::with_capacity(200_001);
    min_of(7, || {
        heap.clear();
        let t0 = std::time::Instant::now();
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..200_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            heap.push(std::cmp::Reverse((x, i)));
            if i % 3 == 0 {
                heap.pop();
            }
        }
        while heap.pop().is_some() {}
        std::hint::black_box(&heap);
        t0.elapsed().as_secs_f64()
    })
}

/// Single-threaded policy drain (the scheduler bench's inner loop): how
/// fast the decision procedure itself hands out the whole DAG.
fn drain_secs(queue: QueueDiscipline) -> (f64, usize) {
    // big enough that one drain is ~1ms: sub-millisecond timings jitter
    // past any reasonable gate tolerance on a shared runner
    let g = TaskGraph::build_calu(4000, 4000, 100, 4);
    let grid = ProcessGrid::square_for(16).unwrap();
    let secs = min_of(7, || {
        let t0 = std::time::Instant::now();
        let mut p = make_policy_with(SchedulerKind::Hybrid { dratio: 0.1 }, queue, &g, grid);
        let mut deps: Vec<u32> = g.ids().map(|t| g.dep_count(t)).collect();
        for t in g.initial_ready() {
            p.on_ready(t, None);
        }
        let mut done = 0;
        while done < g.len() {
            for core in 0..16 {
                if let Some(popped) = p.pop(core) {
                    done += 1;
                    for &s in g.successors(popped.task) {
                        deps[s.idx()] -= 1;
                        if deps[s.idx()] == 0 {
                            p.on_ready(s, Some(core));
                        }
                    }
                }
            }
        }
        t0.elapsed().as_secs_f64()
    });
    (secs, g.len())
}

fn main() -> ExitCode {
    let mut out = "BENCH_pr.json".to_string();
    let mut baseline_path: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut threaded_tolerance = 0.60f64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || {
            args.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--out" => out = val(),
            "--baseline" => baseline_path = Some(val()),
            "--write-baseline" => write_baseline = Some(val()),
            "--tolerance" => tolerance = val().parse().expect("tolerance must be a number"),
            "--threaded-tolerance" => {
                threaded_tolerance = val().parse().expect("threaded-tolerance must be a number")
            }
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                return ExitCode::FAILURE;
            }
        }
    }

    println!("perf-smoke: n={N} b={B} threads={THREADS} dratio={DRATIO}, {ITERS} iters");
    let cal = calibration_secs();
    // measure the batch acceptance pair before the drain benches churn
    // the allocator with their 22k-task graphs and 200k-entry heaps —
    // the pooled path allocates its whole working set up front and is
    // more sensitive to a fragmented arena than the one-at-a-time loop
    let (batch_ips, loop_ips, serve_jps) = batch_throughput();
    let net_jps = net_throughput();
    let (cholesky_secs, cholesky_lu_secs) = algorithm_axis();
    let degraded_sweep: Vec<(f64, f64)> = DEGRADED_DRATIOS
        .iter()
        .map(|&d| (d, degraded_secs(d)))
        .collect();
    let degraded = degraded_sweep.last().expect("non-empty sweep").1;
    let best_fixed = degraded_sweep
        .iter()
        .map(|&(_, s)| s)
        .fold(f64::INFINITY, f64::min);
    let worst_fixed = degraded_sweep.iter().map(|&(_, s)| s).fold(0.0, f64::max);
    let adaptive_degraded = adaptive_degraded_secs();
    let (global_secs, _) = threaded(QueueDiscipline::Global);
    let (sharded_secs, sharded_report) = threaded(QueueDiscipline::Sharded { seed: SEED });
    let (lockfree_secs, lockfree_report) = threaded(QueueDiscipline::LockFree { seed: SEED });
    let contention = sharded_report.schedule.contention();
    let lf_contention = lockfree_report.schedule.contention();
    let locality = lockfree_report.schedule.steal_locality();
    let (drain_global, drain_tasks) = drain_secs(QueueDiscipline::Global);
    let (drain_sharded, _) = drain_secs(QueueDiscipline::sharded());
    let (drain_lockfree, _) = drain_secs(QueueDiscipline::lock_free());

    let metrics: Vec<(String, f64)> = [
        (CALIBRATION_KEY, cal),
        ("gemm_256_secs", gemm_secs()),
        ("threaded_global_makespan_secs", global_secs),
        ("threaded_sharded_makespan_secs", sharded_secs),
        ("threaded_lockfree_makespan_secs", lockfree_secs),
        ("threaded_sharded_steals", contention.steals as f64),
        (
            "threaded_sharded_failed_steals",
            contention.failed_steals as f64,
        ),
        ("threaded_lockfree_steals", lf_contention.steals as f64),
        (
            "threaded_lockfree_failed_steals",
            lf_contention.failed_steals as f64,
        ),
        // the steal-locality split of the tiered lock-free sweep: how
        // many steals stayed on the thief's socket vs. crossed it
        // (counts and a ratio — recorded for inspection, never gated)
        ("threaded_lockfree_local_steals", locality.local as f64),
        ("threaded_lockfree_remote_steals", locality.remote as f64),
        (
            "threaded_lockfree_steal_locality",
            1.0 - locality.remote_fraction(),
        ),
        (
            "threaded_tasks",
            sharded_report.schedule.total_tasks() as f64,
        ),
        ("drain_calibration_secs", drain_calibration()),
        ("drain_global_secs", drain_global),
        ("drain_sharded_secs", drain_sharded),
        ("drain_lockfree_secs", drain_lockfree),
        ("drain_tasks", drain_tasks as f64),
        // the batched-sweep acceptance pair: the pooled Solver::batch
        // throughput (gated as a rate at the threaded tolerance) and
        // the loop-over-run fallback it must beat. The fallback and
        // the ratio deliberately avoid the `_per_sec` suffix so they
        // are recorded without gating — only the product path gates
        // against the baseline; the fallback feeds the in-binary
        // speedup check below
        ("batch_16x256_items_per_sec", batch_ips),
        ("batch_loop_16x256_rate", loop_ips),
        ("batch_16x256_speedup", batch_ips / loop_ips),
        // the warm-service acceptance pair: steady-state FactorService
        // throughput on the same 16×256 mix (gated as a rate at the
        // threaded tolerance) and its ratio to Solver::batch (recorded
        // ungated; the in-binary 0.9× floor below enforces it)
        ("serve_jobs_per_sec", serve_jps),
        ("serve_vs_batch_ratio", serve_jps / batch_ips),
        // the front-door acceptance pair: the same job mix as seeded
        // generator specs over the TCP line protocol (gated as a rate
        // at the threaded tolerance) and its ratio to the in-process
        // service path (recorded ungated; the in-binary 0.8× floor
        // below enforces it)
        ("net_jobs_per_sec", net_jps),
        ("net_vs_serve_ratio", net_jps / serve_jps),
        // the algorithm axis: tiled Cholesky and CALU at equal n=1024
        // on the real executor, both gated at the threaded tolerance
        // (4-thread wall clock); the ratio is recorded ungated — the
        // in-binary 0.65× ceiling below enforces it absolutely
        ("cholesky_1024_secs", cholesky_secs),
        ("cholesky_lu_1024_secs", cholesky_lu_secs),
        ("cholesky_vs_lu_ratio", cholesky_secs / cholesky_lu_secs),
        // the degradation axis: n=1024 LU with worker 0 slowed 2× by
        // fault injection, swept over fixed dynamic shares and gated at
        // the threaded tolerance (the historical key stays on the
        // default DRATIO point); the ratio to the healthy LU run is
        // recorded ungated — the in-binary 1.6× ceiling below enforces
        // the absorption absolutely
        ("degraded_dratio02_makespan_secs", degraded_sweep[0].1),
        ("degraded_dratio05_makespan_secs", degraded_sweep[1].1),
        ("degraded_makespan_secs", degraded),
        ("degraded_vs_healthy_ratio", degraded / cholesky_lu_secs),
        // the adaptive leg of the same axis: the feedback controller
        // picking the split on the identical slowed-worker workload,
        // gated at the threaded tolerance; the ratio to the best fixed
        // sweep point is recorded ungated — the in-binary 1.05× ceiling
        // below enforces the convergence absolutely
        ("adaptive_degraded_makespan_secs", adaptive_degraded),
        (
            "adaptive_vs_best_fixed_ratio",
            adaptive_degraded / best_fixed,
        ),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_string(), v))
    .collect();

    for (k, v) in &metrics {
        println!("  {k:<36} {v}");
    }

    // publish the metrics file before any gate can fail, so every
    // failure mode still ships the full artifact to CI
    let json = write_flat_json(&metrics);
    std::fs::write(&out, &json).expect("write metrics file");
    println!("wrote {out}");
    if let Some(path) = write_baseline {
        std::fs::write(&path, &json).expect("write baseline file");
        println!("wrote baseline {path}");
    }

    // the batch acceptance criterion is absolute, not baseline-relative:
    // the persistent pool must beat spawning a fresh pool per item on
    // this very host, whatever its speed
    if batch_ips <= loop_ips {
        eprintln!(
            "perf-smoke FAILED: Solver::batch ({batch_ips:.1} items/s) does not \
             beat the loop-over-run fallback ({loop_ips:.1} items/s) on \
             {BATCH_ITEMS}×(n={BATCH_N})"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "batch speedup vs loop-over-run: {:.2}x ({batch_ips:.1} vs {loop_ips:.1} items/s)",
        batch_ips / loop_ips
    );

    // the service acceptance criterion is also absolute: admission
    // control, job handles and the event plumbing must cost the warm
    // pool at most 10% of Solver::batch's throughput on the same mix
    if serve_jps < 0.9 * batch_ips {
        eprintln!(
            "perf-smoke FAILED: warm FactorService ({serve_jps:.1} jobs/s) is more \
             than 10% below Solver::batch ({batch_ips:.1} items/s) on \
             {BATCH_ITEMS}×(n={BATCH_N})"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "serve throughput vs batch: {:.2}x ({serve_jps:.1} vs {batch_ips:.1} per s)",
        serve_jps / batch_ips
    );

    // the front-door criterion is absolute too: parsing, per-request
    // TCP roundtrips and status polling must cost at most 20% of the
    // in-process service path's throughput on the same warm mix
    if net_jps < 0.8 * serve_jps {
        eprintln!(
            "perf-smoke FAILED: TCP front door ({net_jps:.1} jobs/s) is more than \
             20% below the in-process service ({serve_jps:.1} jobs/s) on \
             {BATCH_ITEMS}×(n={BATCH_N})"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "front-door throughput vs in-process serve: {:.2}x ({net_jps:.1} vs {serve_jps:.1} jobs/s)",
        net_jps / serve_jps
    );

    // the algorithm-axis criterion is absolute too: Cholesky runs half
    // LU's flops at equal n, so on this very host it must finish in at
    // most 0.65× LU's makespan — a Cholesky kernel or DAG regression
    // fails here even when both absolute timings still clear their
    // baseline gates
    if cholesky_secs > 0.65 * cholesky_lu_secs {
        eprintln!(
            "perf-smoke FAILED: tiled Cholesky ({cholesky_secs:.3}s) is over 0.65x \
             CALU ({cholesky_lu_secs:.3}s) at n={ALGO_N}"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "cholesky vs lu at n={ALGO_N}: {:.2}x ({cholesky_secs:.3}s vs {cholesky_lu_secs:.3}s)",
        cholesky_secs / cholesky_lu_secs
    );

    // the degradation criterion is absolute as well: with one of four
    // workers at half speed the dynamic section must absorb the loss —
    // perfect rebalancing lands near 8/7 ≈ 1.14×, a purely static
    // schedule pays the full 2×; 1.6× leaves room for runner noise
    // while still failing any rescue/degradation regression outright
    if degraded > 1.6 * cholesky_lu_secs {
        eprintln!(
            "perf-smoke FAILED: LU with a 2x-slowed worker ({degraded:.3}s) is over \
             1.6x the healthy run ({cholesky_lu_secs:.3}s) at n={ALGO_N} — the \
             dynamic section is not absorbing the degradation"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "degraded (1 worker at 2x) vs healthy lu at n={ALGO_N}: {:.2}x \
         ({degraded:.3}s vs {cholesky_lu_secs:.3}s)",
        degraded / cholesky_lu_secs
    );

    // the adaptive criterion is absolute as well, against this very
    // host's own fixed-dratio sweep: the controller must land within 5%
    // of the best fixed split it could have picked, and must strictly
    // beat the worst one — otherwise the feedback loop is not earning
    // its keep on exactly the degradation it was built for
    if adaptive_degraded > 1.05 * best_fixed {
        eprintln!(
            "perf-smoke FAILED: adaptive degraded run ({adaptive_degraded:.3}s) is \
             over 1.05x the best fixed-dratio sweep point ({best_fixed:.3}s) at \
             n={ALGO_N} — the controller did not converge to a good split"
        );
        return ExitCode::FAILURE;
    }
    if adaptive_degraded >= worst_fixed {
        eprintln!(
            "perf-smoke FAILED: adaptive degraded run ({adaptive_degraded:.3}s) does \
             not beat the worst fixed-dratio sweep point ({worst_fixed:.3}s) at \
             n={ALGO_N}"
        );
        return ExitCode::FAILURE;
    }
    println!(
        "adaptive degraded vs fixed sweep at n={ALGO_N}: {:.2}x best, {:.2}x worst \
         ({adaptive_degraded:.3}s vs [{best_fixed:.3}s .. {worst_fixed:.3}s])",
        adaptive_degraded / best_fixed,
        adaptive_degraded / worst_fixed
    );

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline = parse_flat_json(&text).expect("baseline must be flat JSON");
        // batch_* and serve_* rates are 4-thread wall-clock figures
        // like threaded_*, so they share the looser
        // parallel-efficiency tolerance
        // cholesky_* timings are 4-thread wall-clock figures too
        let tol_for = |key: &str| {
            if key.starts_with("threaded_")
                || key.starts_with("batch_")
                || key.starts_with("serve_")
                || key.starts_with("net_")
                || key.starts_with("cholesky_")
                || key.starts_with("degraded_")
                || key.starts_with("adaptive_")
            {
                threaded_tolerance
            } else {
                tolerance
            }
        };
        match compare_with(&metrics, &baseline, tol_for) {
            Ok(regressions) if regressions.is_empty() => {
                println!(
                    "perf-smoke gate PASSED vs {path} \
                     (tolerance {tolerance}, threaded {threaded_tolerance})"
                );
            }
            Ok(regressions) => {
                eprintln!("perf-smoke gate FAILED vs {path}:");
                for r in &regressions {
                    eprintln!("  {r}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf-smoke comparison error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
