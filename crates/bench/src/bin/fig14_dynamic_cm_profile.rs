//! Figure 14: fully dynamic CALU with the column-major layout — the
//! worst profile in the paper. The dynamic implementation works at
//! column granularity (Algorithm 2: "do task S … for all I"), so the
//! tail of the factorization has fewer ready units than cores and most
//! threads drain long before the end ("90% of threads become idle after
//! only 60% of the total factorization time").

use calu::matrix::Layout;
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu::trace::{render, svg};
use calu::SimulatedBackend;
use calu_bench::{default_noise, run_calu, sim_solver};

fn main() {
    let mach = MachineConfig::amd_opteron_with_cores(18, default_noise());
    let r = sim_solver(2500, &mach)
        .layout(Layout::ColumnMajor)
        .scheduler(SchedulerKind::Dynamic)
        .trace(true)
        .backend(SimulatedBackend::new(mach.clone()).column_granular())
        .run()
        .expect("simulated run");
    let tl = r.timeline.as_ref().unwrap();
    println!("=== Fig 14 — dynamic CALU, CM layout, n=2500, b=100, 18 cores (AMD model) ===");
    print!("{}", render::ascii(tl, 110));
    let svg_path = "results/fig14_timeline.svg";
    if std::fs::write(svg_path, svg::svg(tl, svg::SvgOptions::default())).is_ok() {
        println!("(SVG timeline written to {svg_path})");
    }
    println!(
        "\n{:.1} Gflop/s — the slowest configuration in the design space",
        r.gflops()
    );
    println!("mean busy-core fraction by window of the makespan:");
    for (a, b) in [(0.0, 0.2), (0.2, 0.4), (0.4, 0.6), (0.6, 0.8), (0.8, 1.0)] {
        println!(
            "  [{:>3.0}%, {:>3.0}%]: {:>5.1}% busy",
            a * 100.0,
            b * 100.0,
            tl.busy_fraction_in_window(a, b) * 100.0
        );
    }
    println!("(paper: most threads idle from ~60% of the factorization time onward;");
    println!(" other variants only drain at 80–90%)");

    let hybrid = run_calu(
        2500,
        &mach,
        Layout::BlockCyclic,
        SchedulerKind::Hybrid { dratio: 0.1 },
        false,
    );
    println!(
        "for comparison, BCL hybrid(10%) reaches {:.1} Gflop/s on the same machine",
        hybrid.gflops()
    );
}
