//! Figure 10: scheduling sweep on the AMD model with the two-level block
//! layout. Paper shape: fully dynamic collapses (no grouping + dequeue
//! overhead + no reuse); increasing the dynamic share only hurts.

use calu::matrix::Layout;
use calu_bench::{gf, machines, print_table, run_calu, sched_sweep};

fn main() {
    let (_, amd) = machines()[1].clone();
    let headers: Vec<String> = std::iter::once("n".into())
        .chain(sched_sweep().into_iter().map(|(s, _)| s))
        .collect();
    let mut rows = Vec::new();
    for n in [4000usize, 6000, 8000, 10000] {
        let mut row = vec![n.to_string()];
        for (_, sched) in sched_sweep() {
            let r = run_calu(n, &amd, Layout::TwoLevelBlock, sched, false);
            row.push(gf(r.gflops()));
        }
        rows.push(row);
    }
    print_table(
        "Fig 10 — AMD 48-core, 2l-BL, Gflop/s vs dynamic %",
        &headers,
        &rows,
    );
    println!("\nExpected shape: performance decreases monotonically with the dynamic %.");
}
