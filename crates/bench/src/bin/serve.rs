//! Service-layer throughput sweep: jobs/second through a warm
//! [`calu::FactorService`] by priority-class mix, plus the submit-latency win
//! of lazy generator sources, emitted as the same flat-JSON metric
//! format as `perf_smoke` (rates as `*_per_sec`, record-only figures
//! without a gated suffix). This file has no checked-in baseline — the
//! CI gate for the service path lives in `perf_smoke`
//! (`serve_jobs_per_sec`); this bin is the wider profile behind it.
//!
//! ```text
//! serve [--out PATH]   # metrics file (default SERVE_pr.json)
//!       [--quick]      # fewer draws and jobs (fast smoke)
//! ```
//!
//! Three class mixes run the same seeded n=192 uniform jobs through one
//! service: all-`Interactive`, all-`Batch`, and a rotating
//! interactive/batch/background mix. The pool and its class lanes are
//! shared state, so the three rates isolate what the lane discipline
//! itself costs (nothing, within noise, is the expectation — the lanes
//! only reorder, they never idle a worker).
//!
//! The submit-latency section measures what lazy materialization buys
//! the *submitting* thread: a generator [`calu::JobSpec::uniform`] submits in
//! the time it takes to move a 24-byte enum through admission, while an
//! eager design would generate the dense matrix on the submit path.
//! Both figures are per-job, record-only (`serve_submit_*_latency`),
//! with the ratio beside them.
//!
//! The backlog section records how long an [`calu::JobClass::Interactive`]
//! job waits when it arrives behind a full `Background` backlog — the
//! class-lane pass-over in one number (`serve_interactive_latency_under_backlog`,
//! seconds; compare it to a single n=64 factorization, not to the
//! backlog's total runtime).

use std::time::Instant;

use calu::matrix::gen;
use calu::{JobClass, JobSpec, MatrixSource, ReportService, Solver};
use calu_bench::perf::{calibration_secs, min_of, write_flat_json, CALIBRATION_KEY};
use calu_bench::timing::fmt_secs;

const THREADS: usize = 4;
const B: usize = 32;
const JOB_N: usize = 192;
const SEED: u64 = 7000;

/// One warm service shared by every measurement: spawned once, outside
/// all timed regions, exactly how a long-running server amortizes.
fn service() -> ReportService {
    Solver::new(MatrixSource::shape(JOB_N, JOB_N))
        .tile(B)
        .threads(THREADS)
        .verify(false)
        .serve()
        .expect("spawn service")
}

/// Submit `jobs` seeded n=192 jobs under `classes` (cycled), wait for
/// all of them; minimum wall time over `draws`, returned as jobs/s.
fn mix_jobs_per_sec(
    service: &ReportService,
    classes: &[JobClass],
    jobs: usize,
    draws: usize,
) -> f64 {
    let secs = min_of(draws, || {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                let spec = JobSpec::uniform(JOB_N, JOB_N, SEED + i as u64);
                service
                    .submit(spec, classes[i % classes.len()])
                    .expect("submit within quota")
            })
            .collect();
        for h in handles {
            h.wait().expect("served job");
        }
        t0.elapsed().as_secs_f64()
    });
    jobs as f64 / secs
}

/// Per-job submit latency, lazy vs eager: the lazy path times only the
/// `submit` calls for generator specs (workers materialize); the eager
/// path times generating each dense matrix *and* submitting it — what
/// a design without `PoolSource::Uniform` would pay on the caller.
/// Returns `(lazy_secs_per_job, eager_secs_per_job)`.
fn submit_latency(service: &ReportService, jobs: usize, draws: usize) -> (f64, f64) {
    let lazy = min_of(draws, || {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                service
                    .submit(
                        JobSpec::uniform(JOB_N, JOB_N, SEED + i as u64),
                        JobClass::Batch,
                    )
                    .expect("submit within quota")
            })
            .collect();
        let secs = t0.elapsed().as_secs_f64();
        for h in handles {
            h.wait().expect("served job");
        }
        secs
    });
    let eager = min_of(draws, || {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                let a = gen::uniform(JOB_N, JOB_N, SEED + i as u64);
                service
                    .submit(JobSpec::dense(a), JobClass::Batch)
                    .expect("submit within quota")
            })
            .collect();
        let secs = t0.elapsed().as_secs_f64();
        for h in handles {
            h.wait().expect("served job");
        }
        secs
    });
    (lazy / jobs as f64, eager / jobs as f64)
}

/// Wall time from submitting one `Interactive` n=64 job *behind* a full
/// `Background` backlog to its completion: the lanes' pass-over rule
/// should keep this near a single small factorization.
fn interactive_latency_under_backlog(service: &ReportService, backlog: usize, draws: usize) -> f64 {
    min_of(draws, || {
        let bg: Vec<_> = (0..backlog)
            .map(|i| {
                service
                    .submit(
                        JobSpec::uniform(JOB_N, JOB_N, SEED + 500 + i as u64),
                        JobClass::Background,
                    )
                    .expect("submit within quota")
            })
            .collect();
        let t0 = Instant::now();
        let h = service
            .submit(JobSpec::uniform(64, 64, SEED + 999), JobClass::Interactive)
            .expect("submit within quota");
        h.wait().expect("interactive job");
        let secs = t0.elapsed().as_secs_f64();
        for h in bg {
            h.wait().expect("background job");
        }
        secs
    })
}

fn main() {
    let mut out = "SERVE_pr.json".to_string();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next().expect("--out needs a value"),
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(1);
            }
        }
    }
    let (jobs, draws) = if quick { (8, 2) } else { (24, 5) };

    println!("serve: threads={THREADS} b={B} n={JOB_N}, {jobs} jobs x {draws} draws");
    let mut metrics: Vec<(String, f64)> = vec![(CALIBRATION_KEY.to_string(), calibration_secs())];
    let service = service();

    println!("class-mix throughput (one warm service, same seeded jobs):");
    let mixes: &[(&str, &[JobClass])] = &[
        ("interactive", &[JobClass::Interactive]),
        ("batch", &[JobClass::Batch]),
        (
            "mixed",
            &[JobClass::Interactive, JobClass::Batch, JobClass::Background],
        ),
    ];
    for (name, classes) in mixes {
        let jps = mix_jobs_per_sec(&service, classes, jobs, draws);
        println!("  {name:<12} {jps:.1} jobs/s");
        metrics.push((format!("serve_{name}_jobs_per_sec"), jps));
    }

    let (lazy, eager) = submit_latency(&service, jobs, draws);
    println!(
        "submit latency per job: lazy {} vs eager {} ({:.1}x win for generator specs)",
        fmt_secs(lazy),
        fmt_secs(eager),
        eager / lazy
    );
    metrics.push(("serve_submit_lazy_latency".into(), lazy));
    metrics.push(("serve_submit_eager_latency".into(), eager));
    metrics.push(("serve_submit_lazy_speedup".into(), eager / lazy));

    let backlog = if quick { 6 } else { 16 };
    let lat = interactive_latency_under_backlog(&service, backlog, draws.min(3));
    println!(
        "interactive latency behind {backlog}-job background backlog: {}",
        fmt_secs(lat)
    );
    metrics.push(("serve_interactive_latency_under_backlog".into(), lat));

    service.drain();

    let json = write_flat_json(&metrics);
    std::fs::write(&out, &json).expect("write metrics file");
    println!("wrote {out}");
}
