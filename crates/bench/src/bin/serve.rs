//! Service-layer throughput sweep: jobs/second through a warm
//! [`calu::FactorService`] by priority-class mix, plus the submit-latency win
//! of lazy generator sources, emitted as the same flat-JSON metric
//! format as `perf_smoke` (rates as `*_per_sec`, record-only figures
//! without a gated suffix). This file has no checked-in baseline — the
//! CI gate for the service path lives in `perf_smoke`
//! (`serve_jobs_per_sec`); this bin is the wider profile behind it.
//!
//! ```text
//! serve [--out PATH]   # metrics file (default SERVE_pr.json)
//!       [--quick]      # fewer draws and jobs (fast smoke)
//! ```
//!
//! Three class mixes run the same seeded n=192 uniform jobs through one
//! service: all-`Interactive`, all-`Batch`, and a rotating
//! interactive/batch/background mix. The pool and its class lanes are
//! shared state, so the three rates isolate what the lane discipline
//! itself costs (nothing, within noise, is the expectation — the lanes
//! only reorder, they never idle a worker).
//!
//! The submit-latency section measures what lazy materialization buys
//! the *submitting* thread: a generator [`calu::JobSpec::uniform`] submits in
//! the time it takes to move a 24-byte enum through admission, while an
//! eager design would generate the dense matrix on the submit path.
//! Both figures are per-job, record-only (`serve_submit_*_latency`),
//! with the ratio beside them.
//!
//! The backlog section records how long an [`calu::JobClass::Interactive`]
//! job waits when it arrives behind a full `Background` backlog — the
//! class-lane pass-over in one number (`serve_interactive_latency_under_backlog`,
//! seconds; compare it to a single n=64 factorization, not to the
//! backlog's total runtime).
//!
//! The front-door section drives the same seeded jobs through a local
//! TCP [`calu::ServeListener`] and records the per-job submit→done wall
//! time as percentiles (`net_submit_done_p50_latency` /
//! `net_submit_done_p99_latency`, seconds — parse, admission, the
//! factorization itself, and status polling at 1 ms granularity).
//!
//! The reconfigure section measures the live-handover stall: with a
//! backlog queued, `Solver::reconfigure` swaps in a successor pool and
//! carries the queue over, and `serve_reconfigure_stall_secs` is the
//! wall time of that call — the window during which new submits wait on
//! the admission lock. The backlog still completes on the new pool; the
//! bench asserts zero drops before publishing the number.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use calu::matrix::gen;
use calu::{JobClass, JobSpec, MatrixSource, ReportService, Solver};
use calu_bench::perf::{calibration_secs, min_of, write_flat_json, CALIBRATION_KEY};
use calu_bench::timing::fmt_secs;

const THREADS: usize = 4;
const B: usize = 32;
const JOB_N: usize = 192;
const SEED: u64 = 7000;

/// One warm service shared by every measurement: spawned once, outside
/// all timed regions, exactly how a long-running server amortizes.
fn service() -> ReportService {
    Solver::new(MatrixSource::shape(JOB_N, JOB_N))
        .tile(B)
        .threads(THREADS)
        .verify(false)
        .serve()
        .expect("spawn service")
}

/// Submit `jobs` seeded n=192 jobs under `classes` (cycled), wait for
/// all of them; minimum wall time over `draws`, returned as jobs/s.
fn mix_jobs_per_sec(
    service: &ReportService,
    classes: &[JobClass],
    jobs: usize,
    draws: usize,
) -> f64 {
    let secs = min_of(draws, || {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                let spec = JobSpec::uniform(JOB_N, JOB_N, SEED + i as u64);
                service
                    .submit(spec, classes[i % classes.len()])
                    .expect("submit within quota")
            })
            .collect();
        for h in handles {
            h.wait().expect("served job");
        }
        t0.elapsed().as_secs_f64()
    });
    jobs as f64 / secs
}

/// Per-job submit latency, lazy vs eager: the lazy path times only the
/// `submit` calls for generator specs (workers materialize); the eager
/// path times generating each dense matrix *and* submitting it — what
/// a design without `PoolSource::Uniform` would pay on the caller.
/// Returns `(lazy_secs_per_job, eager_secs_per_job)`.
fn submit_latency(service: &ReportService, jobs: usize, draws: usize) -> (f64, f64) {
    let lazy = min_of(draws, || {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                service
                    .submit(
                        JobSpec::uniform(JOB_N, JOB_N, SEED + i as u64),
                        JobClass::Batch,
                    )
                    .expect("submit within quota")
            })
            .collect();
        let secs = t0.elapsed().as_secs_f64();
        for h in handles {
            h.wait().expect("served job");
        }
        secs
    });
    let eager = min_of(draws, || {
        let t0 = Instant::now();
        let handles: Vec<_> = (0..jobs)
            .map(|i| {
                let a = gen::uniform(JOB_N, JOB_N, SEED + i as u64);
                service
                    .submit(JobSpec::dense(a), JobClass::Batch)
                    .expect("submit within quota")
            })
            .collect();
        let secs = t0.elapsed().as_secs_f64();
        for h in handles {
            h.wait().expect("served job");
        }
        secs
    });
    (lazy / jobs as f64, eager / jobs as f64)
}

/// Wall time from submitting one `Interactive` n=64 job *behind* a full
/// `Background` backlog to its completion: the lanes' pass-over rule
/// should keep this near a single small factorization.
fn interactive_latency_under_backlog(service: &ReportService, backlog: usize, draws: usize) -> f64 {
    min_of(draws, || {
        let bg: Vec<_> = (0..backlog)
            .map(|i| {
                service
                    .submit(
                        JobSpec::uniform(JOB_N, JOB_N, SEED + 500 + i as u64),
                        JobClass::Background,
                    )
                    .expect("submit within quota")
            })
            .collect();
        let t0 = Instant::now();
        let h = service
            .submit(JobSpec::uniform(64, 64, SEED + 999), JobClass::Interactive)
            .expect("submit within quota");
        h.wait().expect("interactive job");
        let secs = t0.elapsed().as_secs_f64();
        for h in bg {
            h.wait().expect("background job");
        }
        secs
    })
}

/// Submit→done wall time per job through the TCP front door, one job in
/// flight at a time: submit a seeded generator spec over the wire, poll
/// `status` at 1 ms granularity until `done`. Returns `(p50, p99)` over
/// `jobs × draws` samples — each sample pays the parse, admission, the
/// n=192 factorization, and half a polling tick on average.
fn net_latency_percentiles(jobs: usize, draws: usize) -> (f64, f64) {
    let listener = Solver::new(MatrixSource::shape(JOB_N, JOB_N))
        .tile(B)
        .threads(THREADS)
        .verify(false)
        .listen("127.0.0.1:0")
        .expect("bind front door");
    let stream = TcpStream::connect(listener.local_addr()).expect("connect front door");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut line = String::new();
    let mut roundtrip = |reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, req: &str| {
        writeln!(writer, "{req}").expect("write request");
        line.clear();
        reader.read_line(&mut line).expect("read reply");
        line.trim().to_string()
    };
    let mut samples = Vec::with_capacity(jobs * draws);
    for d in 0..draws {
        for i in 0..jobs {
            let seed = SEED + (d * jobs + i) as u64;
            let t0 = Instant::now();
            let reply = roundtrip(
                &mut reader,
                &mut writer,
                &format!("submit batch uniform {JOB_N} {JOB_N} {seed}"),
            );
            let id: u64 = reply
                .strip_prefix("ok ")
                .unwrap_or_else(|| panic!("expected ok <id>, got {reply:?}"))
                .parse()
                .expect("job id");
            loop {
                let status = roundtrip(&mut reader, &mut writer, &format!("status {id}"));
                if status.ends_with(" done") {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            samples.push(t0.elapsed().as_secs_f64());
        }
    }
    listener.service().drain();
    listener.shutdown();
    samples.sort_by(f64::total_cmp);
    let pick = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    (pick(0.50), pick(0.99))
}

/// Wall time of one live `Solver::reconfigure` with `backlog` jobs
/// queued: the handover holds admission while the successor pool spawns
/// nothing (it was spawned before the lock) but adopts the extracted
/// queue, so this is the worst-case stall a concurrent submitter can
/// see. Every queued job must still complete — zero drops — before the
/// number is published.
fn reconfigure_stall(service: &ReportService, backlog: usize) -> f64 {
    let handles: Vec<_> = (0..backlog)
        .map(|i| {
            service
                .submit(
                    JobSpec::uniform(JOB_N, JOB_N, SEED + 2000 + i as u64),
                    JobClass::Batch,
                )
                .expect("submit within quota")
        })
        .collect();
    let t0 = Instant::now();
    let generation = Solver::new(MatrixSource::shape(JOB_N, JOB_N))
        .tile(B)
        .threads(THREADS)
        .dratio(0.3)
        .verify(false)
        .reconfigure(service)
        .expect("live reconfigure");
    let stall = t0.elapsed().as_secs_f64();
    assert!(generation >= 1, "the handover advanced the generation");
    for h in handles {
        h.wait().expect("job carried across the handover");
    }
    stall
}

fn main() {
    let mut out = "SERVE_pr.json".to_string();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--out" => out = args.next().expect("--out needs a value"),
            "--quick" => quick = true,
            other => {
                eprintln!("unknown flag {other}; see the module docs");
                std::process::exit(1);
            }
        }
    }
    let (jobs, draws) = if quick { (8, 2) } else { (24, 5) };

    println!("serve: threads={THREADS} b={B} n={JOB_N}, {jobs} jobs x {draws} draws");
    let mut metrics: Vec<(String, f64)> = vec![(CALIBRATION_KEY.to_string(), calibration_secs())];
    let service = service();

    println!("class-mix throughput (one warm service, same seeded jobs):");
    let mixes: &[(&str, &[JobClass])] = &[
        ("interactive", &[JobClass::Interactive]),
        ("batch", &[JobClass::Batch]),
        (
            "mixed",
            &[JobClass::Interactive, JobClass::Batch, JobClass::Background],
        ),
    ];
    for (name, classes) in mixes {
        let jps = mix_jobs_per_sec(&service, classes, jobs, draws);
        println!("  {name:<12} {jps:.1} jobs/s");
        metrics.push((format!("serve_{name}_jobs_per_sec"), jps));
    }

    let (lazy, eager) = submit_latency(&service, jobs, draws);
    println!(
        "submit latency per job: lazy {} vs eager {} ({:.1}x win for generator specs)",
        fmt_secs(lazy),
        fmt_secs(eager),
        eager / lazy
    );
    metrics.push(("serve_submit_lazy_latency".into(), lazy));
    metrics.push(("serve_submit_eager_latency".into(), eager));
    metrics.push(("serve_submit_lazy_speedup".into(), eager / lazy));

    let backlog = if quick { 6 } else { 16 };
    let lat = interactive_latency_under_backlog(&service, backlog, draws.min(3));
    println!(
        "interactive latency behind {backlog}-job background backlog: {}",
        fmt_secs(lat)
    );
    metrics.push(("serve_interactive_latency_under_backlog".into(), lat));

    let (p50, p99) = net_latency_percentiles(jobs.min(12), draws.min(3));
    println!(
        "front-door submit->done latency: p50 {} p99 {}",
        fmt_secs(p50),
        fmt_secs(p99)
    );
    metrics.push(("net_submit_done_p50_latency".into(), p50));
    metrics.push(("net_submit_done_p99_latency".into(), p99));

    let stall = reconfigure_stall(&service, backlog);
    println!(
        "reconfigure handover stall under {backlog}-job backlog: {}",
        fmt_secs(stall)
    );
    metrics.push(("serve_reconfigure_stall_secs".into(), stall));

    service.drain();

    let json = write_flat_json(&metrics);
    std::fs::write(&out, &json).expect("write metrics file");
    println!("wrote {out}");
}
