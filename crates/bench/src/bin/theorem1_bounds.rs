//! §6 Theorem 1: maximum static fraction vs noise skew and core count,
//! cross-checked against the simulator's measured noise.

use calu::matrix::Layout;
use calu::model::{max_static_fraction, max_static_fraction_ext, NoiseStats, Overheads};
use calu::sched::SchedulerKind;
use calu::sim::MachineConfig;
use calu_bench::{default_noise, print_table, run_calu};

fn main() {
    // analytic table: fs vs p for a fixed noise skew
    let headers: Vec<String> = ["p", "skew=1ms", "skew=10ms", "skew=50ms"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let t1 = 20.0; // serial seconds
    let mut rows = Vec::new();
    for p in [8usize, 16, 48, 192, 1024] {
        let mut row = vec![p.to_string()];
        for skew in [1e-3, 10e-3, 50e-3] {
            let fs = max_static_fraction(
                t1,
                p,
                NoiseStats {
                    delta_max: skew,
                    delta_avg: 0.0,
                },
            );
            row.push(format!("{:.3}", fs));
        }
        rows.push(row);
    }
    print_table(
        "Theorem 1 — max static fraction fs (T1 = 20 s)",
        &headers,
        &rows,
    );

    // measured: run the simulator, extract per-core noise, apply Theorem 1
    let mach = MachineConfig::amd_opteron_48(default_noise());
    let r = run_calu(
        5000,
        &mach,
        Layout::BlockCyclic,
        SchedulerKind::Static,
        false,
    );
    let threads = &r.schedule.threads;
    let deltas: Vec<f64> = threads.iter().map(|c| c.noise).collect();
    let stats = NoiseStats::from_samples(&deltas);
    let work: f64 = threads.iter().map(|c| c.work).sum();
    let tp = work / 48.0;
    let fs = max_static_fraction(work, 48, stats);
    let fs_ext = max_static_fraction_ext(
        work,
        48,
        stats,
        Overheads {
            critical_path: 0.05 * tp,
            migration: threads.iter().map(|c| c.memory).sum::<f64>() / 48.0,
            other: threads.iter().map(|c| c.overhead).sum::<f64>() / 48.0,
        },
    );
    println!(
        "\nMeasured on the AMD model (n=5000, static): δmax−δavg = {:.2} ms",
        (stats.delta_max - stats.delta_avg) * 1e3
    );
    println!(
        "Theorem 1 bound: fs ≤ {fs:.4}  (min dynamic ≈ {:.1}%)",
        (1.0 - fs) * 100.0
    );
    println!("Extended bound:  fs ≤ {fs_ext:.4}");
}
