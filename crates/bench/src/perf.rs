//! Flat-JSON metric files for the CI perf-smoke gate.
//!
//! The workspace builds hermetically (no serde), so the perf-smoke
//! binary reads and writes the simplest JSON shape that round-trips a
//! metric set: one object whose values are all numbers,
//! `{"metric_name": 1.25, ...}`. [`write_flat_json`] emits it,
//! [`parse_flat_json`] reads it back (accepting only that shape), and
//! [`compare`] applies the regression rule the CI job enforces.
//!
//! ## The regression rule
//!
//! Wall-clock numbers measured on different machines are not
//! comparable, so the baseline and the current run each carry a
//! `calibration_secs` metric: the time of a fixed single-threaded
//! kernel workload on the same host. Every timing metric (key ending
//! in `_secs`) is normalized by its run's calibration before
//! comparison, which cancels the host's raw speed; a metric regresses
//! when its normalized value exceeds the baseline's by more than the
//! tolerance. Throughput metrics (key ending in `_per_sec`) gate the
//! opposite direction: they are normalized by *multiplying* with the
//! calibration and regress when the normalized rate *drops* past the
//! tolerance. Anything else (counts, ratios) is recorded for
//! inspection but never gates.
//!
//! One calibration cannot represent every workload profile: a host's
//! FLOP throughput and its branchy/pointer-chasing speed don't move in
//! lockstep across CPU generations. A metric class can therefore carry
//! its own calibration, named `<prefix>_calibration_secs`: any gated
//! metric whose first `_`-separated segment matches the prefix is
//! normalized by it (in both files) instead of the global calibration.
//! Calibration metrics themselves are never gated.

use std::fmt::Write as _;

/// The calibration metric every perf-smoke file must carry.
pub const CALIBRATION_KEY: &str = "calibration_secs";

/// Minimum of `iters` timed draws of `f` — the estimator every metric
/// bin uses (the minimum filters scheduler noise on shared runners).
pub fn min_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    (0..iters).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// The fixed single-threaded workload behind [`CALIBRATION_KEY`]:
/// repeated *naive* 128×128 matmuls, minimum over several draws. One
/// definition shared by every metric bin (`perf_smoke`, `kernels`), so
/// their `_secs` values are normalized by the same workload and stay
/// comparable across files and hosts.
pub fn calibration_secs() -> f64 {
    use calu::matrix::{gen, ops};
    let a = gen::uniform(128, 128, 1);
    let b = gen::uniform(128, 128, 2);
    min_of(5, || {
        let t0 = std::time::Instant::now();
        for _ in 0..4 {
            std::hint::black_box(ops::matmul(&a, &b));
        }
        t0.elapsed().as_secs_f64()
    })
}

/// Suffix marking a metric as a gated timing (normalized comparison).
pub const TIMING_SUFFIX: &str = "_secs";

/// Suffix marking a metric as a gated *throughput* (higher is better):
/// normalized by *multiplying* with the calibration (rate × host-speed
/// proxy cancels raw core speed, mirroring the `_secs` division), and a
/// regression is the normalized rate *dropping* more than the tolerance
/// below the baseline.
pub const RATE_SUFFIX: &str = "_per_sec";

/// Suffix marking a per-class calibration (see module docs): normalizes
/// its class's metrics, is never gated itself.
pub const CLASS_CALIBRATION_SUFFIX: &str = "_calibration_secs";

/// Serialize metrics as a flat JSON object, keys in the given order.
pub fn write_flat_json(pairs: &[(String, f64)]) -> String {
    let mut out = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let comma = if i + 1 == pairs.len() { "" } else { "," };
        // f64 Display prints the shortest round-trip form, which is
        // valid JSON for finite values
        assert!(v.is_finite(), "metric {k} is not finite: {v}");
        let _ = writeln!(out, "  \"{k}\": {v}{comma}");
    }
    out.push_str("}\n");
    out
}

/// Parse a flat JSON object of numeric values, in file order.
///
/// Accepts exactly the shape [`write_flat_json`] emits (whitespace
/// anywhere, string keys, numeric values); anything else is an error
/// naming the offending position.
pub fn parse_flat_json(s: &str) -> Result<Vec<(String, f64)>, String> {
    let mut pairs = Vec::new();
    let mut chars = s.char_indices().peekable();
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices>| {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    };
    skip_ws(&mut chars);
    match chars.next() {
        Some((_, '{')) => {}
        other => return Err(format!("expected '{{' at start, got {other:?}")),
    }
    loop {
        skip_ws(&mut chars);
        match chars.peek() {
            Some((_, '}')) => {
                chars.next();
                break;
            }
            Some((_, '"')) => {}
            other => return Err(format!("expected '\"' or '}}', got {other:?}")),
        }
        chars.next(); // opening quote
        let mut key = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => break,
                Some((_, '\\')) => return Err(format!("escapes unsupported in key {key:?}")),
                Some((_, c)) => key.push(c),
                None => return Err("unterminated key".into()),
            }
        }
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ':')) => {}
            other => return Err(format!("expected ':' after key {key:?}, got {other:?}")),
        }
        skip_ws(&mut chars);
        let mut num = String::new();
        while matches!(chars.peek(), Some((_, c)) if "+-0123456789.eE".contains(*c)) {
            num.push(chars.next().unwrap().1);
        }
        let value: f64 = num
            .parse()
            .map_err(|e| format!("bad number {num:?} for key {key:?}: {e}"))?;
        pairs.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => {}
            Some((_, '}')) => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    Ok(pairs)
}

/// Look up a metric by name.
pub fn lookup(pairs: &[(String, f64)], key: &str) -> Option<f64> {
    pairs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

/// Apply the regression rule (see module docs): every `*_secs` metric of
/// `current` that also exists in `baseline` is compared after
/// calibration normalization; returns one message per regression beyond
/// `tolerance` (0.2 = fail when >20% slower). An empty vec means the
/// gate passes.
pub fn compare(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    compare_with(current, baseline, |_| tolerance)
}

/// [`compare`] with a per-metric tolerance: `tolerance_for` maps each
/// gated key to its allowed slowdown. Calibration normalization cancels
/// a host's single-core speed but not its parallel efficiency (core
/// count, SMT, noisy neighbours on shared CI runners), so multi-thread
/// wall-clock metrics need a looser bound than single-threaded ones.
pub fn compare_with(
    current: &[(String, f64)],
    baseline: &[(String, f64)],
    tolerance_for: impl Fn(&str) -> f64,
) -> Result<Vec<String>, String> {
    let cal_cur = lookup(current, CALIBRATION_KEY)
        .ok_or_else(|| format!("current run lacks {CALIBRATION_KEY}"))?;
    let cal_base = lookup(baseline, CALIBRATION_KEY)
        .ok_or_else(|| format!("baseline lacks {CALIBRATION_KEY}"))?;
    if cal_cur <= 0.0 || cal_base <= 0.0 {
        return Err("calibration must be positive".into());
    }
    let mut regressions = Vec::new();
    for (key, cur) in current {
        let is_timing = key.ends_with(TIMING_SUFFIX)
            && key != CALIBRATION_KEY
            && !key.ends_with(CLASS_CALIBRATION_SUFFIX);
        let is_rate = key.ends_with(RATE_SUFFIX);
        if !is_timing && !is_rate {
            continue;
        }
        let Some(base) = lookup(baseline, key) else {
            continue; // new metric: no baseline yet, nothing to gate
        };
        // prefer the metric class's own calibration when both files
        // carry it, so e.g. branchy heap drains aren't normalized by a
        // FLOP-bound matmul whose host ratio moves independently
        let class_key = format!(
            "{}{CLASS_CALIBRATION_SUFFIX}",
            key.split('_').next().unwrap_or_default()
        );
        let (ccal_cur, ccal_base) =
            match (lookup(current, &class_key), lookup(baseline, &class_key)) {
                (Some(c), Some(b)) if c > 0.0 && b > 0.0 => (c, b),
                _ => (cal_cur, cal_base),
            };
        let tolerance = tolerance_for(key);
        if is_timing {
            let (cur_n, base_n) = (cur / ccal_cur, base / ccal_base);
            if base_n > 0.0 && cur_n > base_n * (1.0 + tolerance) {
                regressions.push(format!(
                    "{key}: {:.1}% over baseline (normalized {cur_n:.3} vs {base_n:.3}, \
                     tolerance {:.0}%)",
                    (cur_n / base_n - 1.0) * 100.0,
                    tolerance * 100.0
                ));
            }
        } else {
            // throughput: multiply by the calibration so a slow host's
            // lower rate cancels, and fail when the normalized rate
            // *drops* past the tolerance
            let (cur_n, base_n) = (cur * ccal_cur, base * ccal_base);
            if base_n > 0.0 && cur_n < base_n / (1.0 + tolerance) {
                regressions.push(format!(
                    "{key}: {:.1}% under baseline (normalized {cur_n:.3} vs {base_n:.3}, \
                     tolerance {:.0}%)",
                    (1.0 - cur_n / base_n) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
    }
    // a gated metric must not silently vanish: a baseline timing or rate
    // with no current counterpart means the metric was dropped or
    // renamed without refreshing the baseline, shrinking coverage
    // unnoticed
    for (key, _) in baseline {
        let gated =
            (key.ends_with(TIMING_SUFFIX) && key != CALIBRATION_KEY) || key.ends_with(RATE_SUFFIX);
        if gated && lookup(current, key).is_none() {
            regressions.push(format!(
                "{key}: in the baseline but missing from the current run — \
                 renamed or dropped? refresh the baseline"
            ));
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs(kv: &[(&str, f64)]) -> Vec<(String, f64)> {
        kv.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn json_round_trips() {
        let p = pairs(&[
            ("calibration_secs", 0.015),
            ("threaded_makespan_secs", 1.25e-2),
            ("steals", 42.0),
        ]);
        let s = write_flat_json(&p);
        assert_eq!(parse_flat_json(&s).unwrap(), p);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_flat_json("").is_err());
        assert!(parse_flat_json("[1, 2]").is_err());
        assert!(parse_flat_json("{\"a\": }").is_err());
        assert!(parse_flat_json("{\"a\" 1}").is_err());
        assert!(parse_flat_json("{\"a\": \"str\"}").is_err());
    }

    #[test]
    fn parser_accepts_empty_object_and_whitespace() {
        assert_eq!(parse_flat_json("  { }  ").unwrap(), vec![]);
        let p = parse_flat_json("{\n  \"a\"\n : \n 1e-3 \n}\n").unwrap();
        assert_eq!(p, pairs(&[("a", 1e-3)]));
    }

    #[test]
    fn compare_normalizes_by_calibration() {
        // current host is 2x slower across the board: calibration absorbs it
        let base = pairs(&[("calibration_secs", 1.0), ("run_secs", 10.0)]);
        let cur = pairs(&[("calibration_secs", 2.0), ("run_secs", 20.0)]);
        assert!(compare(&cur, &base, 0.2).unwrap().is_empty());
        // a true 50% regression on the same host fails a 20% gate
        let slow = pairs(&[("calibration_secs", 1.0), ("run_secs", 15.0)]);
        let msgs = compare(&slow, &base, 0.2).unwrap();
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("run_secs"), "{msgs:?}");
        // ... and passes a generous 60% gate
        assert!(compare(&slow, &base, 0.6).unwrap().is_empty());
    }

    #[test]
    fn compare_with_applies_per_metric_tolerance() {
        let base = pairs(&[
            ("calibration_secs", 1.0),
            ("threaded_secs", 10.0),
            ("drain_secs", 10.0),
        ]);
        // both metrics 40% slower: loose-gated threaded passes, drain fails
        let cur = pairs(&[
            ("calibration_secs", 1.0),
            ("threaded_secs", 14.0),
            ("drain_secs", 14.0),
        ]);
        let tol = |key: &str| {
            if key.starts_with("threaded_") {
                0.6
            } else {
                0.2
            }
        };
        let msgs = compare_with(&cur, &base, tol).unwrap();
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("drain_secs"), "{msgs:?}");
    }

    #[test]
    fn compare_ignores_counts_and_new_metrics() {
        let base = pairs(&[("calibration_secs", 1.0), ("old_secs", 1.0)]);
        let cur = pairs(&[
            ("calibration_secs", 1.0),
            ("old_secs", 1.0),
            ("steals", 1e9),          // count: never gates
            ("brand_new_secs", 99.0), // no baseline: never gates
        ]);
        assert!(compare(&cur, &base, 0.2).unwrap().is_empty());
    }

    #[test]
    fn rate_metrics_gate_on_drops_not_rises() {
        let base = pairs(&[("calibration_secs", 1.0), ("batch_items_per_sec", 100.0)]);
        // a faster rate never regresses
        let faster = pairs(&[("calibration_secs", 1.0), ("batch_items_per_sec", 140.0)]);
        assert!(compare(&faster, &base, 0.2).unwrap().is_empty());
        // a 15% drop passes a 20% gate, a 40% drop fails it (the rule
        // is multiplicative: fail below base / 1.2 ≈ 83.3)
        let ok = pairs(&[("calibration_secs", 1.0), ("batch_items_per_sec", 85.0)]);
        assert!(compare(&ok, &base, 0.2).unwrap().is_empty());
        let slow = pairs(&[("calibration_secs", 1.0), ("batch_items_per_sec", 60.0)]);
        let msgs = compare(&slow, &base, 0.2).unwrap();
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("batch_items_per_sec"), "{msgs:?}");
        assert!(msgs[0].contains("under baseline"), "{msgs:?}");
    }

    #[test]
    fn rate_normalization_cancels_host_speed() {
        // current host is 2x slower: its calibration doubles and its
        // rates halve — the normalized product is unchanged
        let base = pairs(&[("calibration_secs", 1.0), ("batch_items_per_sec", 100.0)]);
        let slow_host = pairs(&[("calibration_secs", 2.0), ("batch_items_per_sec", 50.0)]);
        assert!(compare(&slow_host, &base, 0.2).unwrap().is_empty());
    }

    #[test]
    fn missing_rate_metric_is_flagged() {
        let base = pairs(&[("calibration_secs", 1.0), ("gone_per_sec", 10.0)]);
        let cur = pairs(&[("calibration_secs", 1.0)]);
        let msgs = compare(&cur, &base, 0.2).unwrap();
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("gone_per_sec"), "{msgs:?}");
    }

    #[test]
    fn class_calibration_overrides_global() {
        let base = pairs(&[
            ("calibration_secs", 1.0),
            ("drain_calibration_secs", 1.0),
            ("drain_x_secs", 10.0),
        ]);
        // this host runs branchy code 2x slower but matmul at full
        // speed: the class calibration absorbs the shift (and, being a
        // calibration, its own 2x "regression" is never gated)
        let cur = pairs(&[
            ("calibration_secs", 1.0),
            ("drain_calibration_secs", 2.0),
            ("drain_x_secs", 20.0),
        ]);
        assert!(compare(&cur, &base, 0.2).unwrap().is_empty());
        // without the class calibration the same shift fails the gate
        let strip = |p: &[(String, f64)]| {
            p.iter()
                .filter(|(k, _)| k != "drain_calibration_secs")
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(compare(&strip(&cur), &strip(&base), 0.2).unwrap().len(), 1);
    }

    #[test]
    fn compare_flags_baseline_metrics_missing_from_current() {
        let base = pairs(&[("calibration_secs", 1.0), ("renamed_away_secs", 1.0)]);
        let cur = pairs(&[("calibration_secs", 1.0)]);
        let msgs = compare(&cur, &base, 0.2).unwrap();
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("renamed_away_secs"), "{msgs:?}");
        assert!(msgs[0].contains("missing"), "{msgs:?}");
    }

    #[test]
    fn compare_requires_calibration() {
        let base = pairs(&[("calibration_secs", 1.0)]);
        assert!(compare(&pairs(&[("x_secs", 1.0)]), &base, 0.2).is_err());
        assert!(compare(&base, &pairs(&[("x_secs", 1.0)]), 0.2).is_err());
    }
}
