//! Minimal wall-clock timing harness for the `benches/` targets.
//!
//! The workspace builds hermetically (no criterion), so the benches are
//! plain `harness = false` binaries that loop workloads under
//! [`bench()`] and print aligned ns/op lines. Invoke them with
//! `cargo bench` (or `cargo build --benches` just to type-check).

use std::time::Instant;

/// Time `f` for `iters` iterations after one warm-up call and print
/// `label: mean ± spread` in adaptive units. Returns mean seconds/op.
pub fn bench<F: FnMut()>(label: &str, iters: usize, mut f: F) -> f64 {
    assert!(iters > 0);
    f(); // warm-up
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        samples.push(t0.elapsed().as_secs_f64());
    }
    let mean = samples.iter().sum::<f64>() / iters as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "  {label:<40} {:>12}/op   (min {}, max {}, {iters} iters)",
        fmt_secs(mean),
        fmt_secs(min),
        fmt_secs(max)
    );
    mean
}

/// Time `f` and report throughput as `count` units of `unit` per op
/// (printed as `M<unit>/s` — pass `"flop"`, `"task"`, …).
pub fn bench_throughput<F: FnMut()>(
    label: &str,
    iters: usize,
    count: u64,
    unit: &str,
    f: F,
) -> f64 {
    let mean = bench(label, iters, f);
    if mean > 0.0 {
        println!(
            "  {:<40} {:>12.1} M{unit}/s",
            format!("{label} (throughput)"),
            count as f64 / mean / 1e6
        );
    }
    mean
}

/// Render seconds with an adaptive unit.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_mean() {
        let mut x = 0u64;
        let mean = bench("noop-ish", 3, || x = x.wrapping_add(1));
        assert!(mean >= 0.0);
        assert_eq!(x, 4, "warm-up plus three timed iterations");
    }

    #[test]
    fn units_scale() {
        assert!(fmt_secs(2.0).ends_with(" s"));
        assert!(fmt_secs(2e-3).ends_with(" ms"));
        assert!(fmt_secs(2e-6).ends_with(" us"));
        assert!(fmt_secs(2e-9).ends_with(" ns"));
    }
}
