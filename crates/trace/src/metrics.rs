//! Aggregated timeline statistics.

use crate::span::SpanKind;
use crate::timeline::Timeline;

/// Summary statistics of an execution trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineMetrics {
    /// Number of cores.
    pub cores: usize,
    /// Trace makespan (seconds).
    pub makespan: f64,
    /// Mean utilization in `[0, 1]` (busy / makespan, incl. noise).
    pub utilization: f64,
    /// Total idle core-seconds.
    pub total_idle: f64,
    /// Total useful-work core-seconds.
    pub total_work: f64,
    /// Total injected-noise core-seconds.
    pub total_noise: f64,
    /// Total scheduler-overhead core-seconds.
    pub total_overhead: f64,
    /// Time spent in panel (P) tasks.
    pub panel_time: f64,
    /// Time spent in update (S) tasks.
    pub update_time: f64,
}

impl TimelineMetrics {
    /// Compute the metrics of a timeline.
    pub fn of(t: &Timeline) -> Self {
        let cores = t.cores();
        let makespan = t.makespan();
        let total_idle: f64 = (0..cores).map(|c| t.idle_time(c)).sum();
        let total_work: f64 = (0..cores).map(|c| t.work_time(c)).sum();
        let by = t.time_by_kind();
        let get = |k: SpanKind| by.iter().find(|(kk, _)| *kk == k).map_or(0.0, |(_, v)| *v);
        Self {
            cores,
            makespan,
            utilization: t.utilization(),
            total_idle,
            total_work,
            total_noise: get(SpanKind::Noise),
            total_overhead: get(SpanKind::Overhead),
            panel_time: get(SpanKind::Panel),
            update_time: get(SpanKind::Update),
        }
    }

    /// Idle fraction of the whole machine-time rectangle.
    pub fn idle_fraction(&self) -> f64 {
        if self.makespan == 0.0 || self.cores == 0 {
            return 0.0;
        }
        self.total_idle / (self.makespan * self.cores as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::TaskSpan;

    #[test]
    fn metrics_add_up() {
        let mut t = Timeline::new(2);
        t.push(TaskSpan {
            core: 0,
            start: 0.0,
            end: 8.0,
            kind: SpanKind::Panel,
        });
        t.push(TaskSpan {
            core: 1,
            start: 0.0,
            end: 4.0,
            kind: SpanKind::Update,
        });
        t.push(TaskSpan {
            core: 1,
            start: 4.0,
            end: 6.0,
            kind: SpanKind::Noise,
        });
        let m = TimelineMetrics::of(&t);
        assert_eq!(m.makespan, 8.0);
        assert_eq!(m.total_work, 12.0);
        assert_eq!(m.total_noise, 2.0);
        assert_eq!(m.total_idle, 2.0);
        assert_eq!(m.panel_time, 8.0);
        assert_eq!(m.update_time, 4.0);
        // busy 14 over 16 core-seconds
        assert!((m.utilization - 14.0 / 16.0).abs() < 1e-12);
        assert!((m.idle_fraction() - 2.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn empty_is_all_zero() {
        let m = TimelineMetrics::of(&Timeline::new(3));
        assert_eq!(m.total_work, 0.0);
        assert_eq!(m.idle_fraction(), 0.0);
    }
}
