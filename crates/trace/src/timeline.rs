//! Per-core execution timelines.

use crate::span::{SpanKind, TaskSpan};

/// A complete execution trace: all spans of all cores.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    cores: usize,
    spans: Vec<TaskSpan>,
    t_end: f64,
}

impl Timeline {
    /// Create an empty timeline for `cores` cores.
    pub fn new(cores: usize) -> Self {
        Self {
            cores,
            spans: Vec::new(),
            t_end: 0.0,
        }
    }

    /// Record a span. Panics if the core index is out of range or the
    /// span is inverted.
    pub fn push(&mut self, span: TaskSpan) {
        assert!(span.core < self.cores, "core {} out of range", span.core);
        assert!(span.end >= span.start, "inverted span");
        self.t_end = self.t_end.max(span.end);
        self.spans.push(span);
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cores
    }

    /// All spans (unsorted).
    pub fn spans(&self) -> &[TaskSpan] {
        &self.spans
    }

    /// Trace end time (max span end).
    pub fn makespan(&self) -> f64 {
        self.t_end
    }

    /// Spans of one core, sorted by start time.
    pub fn core_spans(&self, core: usize) -> Vec<TaskSpan> {
        let mut v: Vec<TaskSpan> = self
            .spans
            .iter()
            .filter(|s| s.core == core)
            .copied()
            .collect();
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
        v
    }

    /// Busy time of one core (all spans, including noise/overhead).
    pub fn busy_time(&self, core: usize) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.core == core)
            .map(|s| s.duration())
            .sum()
    }

    /// Useful-work time of one core (excludes noise and overhead spans).
    pub fn work_time(&self, core: usize) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.core == core && s.kind.is_work())
            .map(|s| s.duration())
            .sum()
    }

    /// Idle time of one core: makespan minus busy time.
    pub fn idle_time(&self, core: usize) -> f64 {
        (self.makespan() - self.busy_time(core)).max(0.0)
    }

    /// Mean utilization over cores: busy / makespan.
    pub fn utilization(&self) -> f64 {
        if self.cores == 0 || self.t_end == 0.0 {
            return 0.0;
        }
        let busy: f64 = (0..self.cores).map(|c| self.busy_time(c)).sum();
        busy / (self.t_end * self.cores as f64)
    }

    /// Time at which each core performed its last useful work (0.0 for a
    /// core that never worked).
    pub fn core_finish_times(&self) -> Vec<f64> {
        let mut finish = vec![0.0f64; self.cores];
        for s in &self.spans {
            if s.kind.is_work() {
                finish[s.core] = finish[s.core].max(s.end);
            }
        }
        finish
    }

    /// Fraction of cores whose useful work has *finished* by time
    /// `frac · makespan` — the Fig 14 metric ("90% of threads become idle
    /// after only 60% of the total factorization time").
    pub fn fraction_cores_done_by(&self, frac: f64) -> f64 {
        if self.cores == 0 {
            return 0.0;
        }
        let cutoff = frac * self.makespan();
        let done = self
            .core_finish_times()
            .into_iter()
            .filter(|&t| t <= cutoff + 1e-12)
            .count();
        done as f64 / self.cores as f64
    }

    /// Smallest time fraction by which at least `frac_cores` of the cores
    /// have permanently finished useful work.
    pub fn time_fraction_when_done(&self, frac_cores: f64) -> f64 {
        if self.cores == 0 || self.t_end == 0.0 {
            return 0.0;
        }
        let mut finish = self.core_finish_times();
        finish.sort_by(f64::total_cmp);
        let need = ((frac_cores * self.cores as f64).ceil() as usize).clamp(1, self.cores);
        finish[need - 1] / self.t_end
    }

    /// Mean fraction of cores busy during the window
    /// `[t0_frac, t1_frac] · makespan` — the metric behind Fig 14's
    /// "90% of threads become idle after only 60% of the total
    /// factorization time" (low tail busy-fraction = drained cores).
    pub fn busy_fraction_in_window(&self, t0_frac: f64, t1_frac: f64) -> f64 {
        let (t0, t1) = (t0_frac * self.t_end, t1_frac * self.t_end);
        let window = (t1 - t0).max(f64::MIN_POSITIVE);
        if self.cores == 0 {
            return 0.0;
        }
        let busy: f64 = self
            .spans
            .iter()
            .map(|s| (s.end.min(t1) - s.start.max(t0)).max(0.0))
            .sum();
        busy / (window * self.cores as f64)
    }

    /// Total time spent per span kind across all cores.
    pub fn time_by_kind(&self) -> Vec<(SpanKind, f64)> {
        let kinds = [
            SpanKind::Panel,
            SpanKind::LFactor,
            SpanKind::UFactor,
            SpanKind::Update,
            SpanKind::Noise,
            SpanKind::Overhead,
        ];
        kinds
            .iter()
            .map(|&k| {
                let t: f64 = self
                    .spans
                    .iter()
                    .filter(|s| s.kind == k)
                    .map(|s| s.duration())
                    .sum();
                (k, t)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(core: usize, start: f64, end: f64, kind: SpanKind) -> TaskSpan {
        TaskSpan {
            core,
            start,
            end,
            kind,
        }
    }

    fn simple() -> Timeline {
        let mut t = Timeline::new(2);
        t.push(span(0, 0.0, 4.0, SpanKind::Panel));
        t.push(span(0, 4.0, 10.0, SpanKind::Update));
        t.push(span(1, 0.0, 5.0, SpanKind::Update));
        t
    }

    #[test]
    fn busy_idle_accounting() {
        let t = simple();
        assert_eq!(t.makespan(), 10.0);
        assert_eq!(t.busy_time(0), 10.0);
        assert_eq!(t.busy_time(1), 5.0);
        assert_eq!(t.idle_time(1), 5.0);
        assert!((t.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn work_excludes_noise() {
        let mut t = simple();
        t.push(span(1, 5.0, 7.0, SpanKind::Noise));
        assert_eq!(t.busy_time(1), 7.0);
        assert_eq!(t.work_time(1), 5.0);
    }

    #[test]
    fn finish_time_metrics() {
        let t = simple();
        let f = t.core_finish_times();
        assert_eq!(f, vec![10.0, 5.0]);
        // by 50% of makespan, core 1 (only) is done -> 0.5 of cores
        assert_eq!(t.fraction_cores_done_by(0.5), 0.5);
        assert_eq!(t.fraction_cores_done_by(1.0), 1.0);
        // half the cores are done at time fraction 0.5
        assert!((t.time_fraction_when_done(0.5) - 0.5).abs() < 1e-12);
        assert!((t.time_fraction_when_done(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn busy_fraction_windows() {
        let t = simple();
        // window [0, 0.5] = [0, 5]: core0 busy 5, core1 busy 5 -> 1.0
        assert!((t.busy_fraction_in_window(0.0, 0.5) - 1.0).abs() < 1e-12);
        // window [0.5, 1.0] = [5, 10]: core0 busy 5, core1 idle -> 0.5
        assert!((t.busy_fraction_in_window(0.5, 1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_by_kind_sums() {
        let t = simple();
        let by = t.time_by_kind();
        let panel = by.iter().find(|(k, _)| *k == SpanKind::Panel).unwrap().1;
        let upd = by.iter().find(|(k, _)| *k == SpanKind::Update).unwrap().1;
        assert_eq!(panel, 4.0);
        assert_eq!(upd, 11.0);
    }

    #[test]
    fn core_spans_sorted() {
        let mut t = Timeline::new(1);
        t.push(span(0, 5.0, 6.0, SpanKind::Update));
        t.push(span(0, 0.0, 1.0, SpanKind::Panel));
        let v = t.core_spans(0);
        assert!(v[0].start < v[1].start);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_core() {
        let mut t = Timeline::new(1);
        t.push(span(3, 0.0, 1.0, SpanKind::Panel));
    }

    #[test]
    fn empty_timeline_metrics() {
        let t = Timeline::new(4);
        assert_eq!(t.utilization(), 0.0);
        assert_eq!(t.makespan(), 0.0);
        assert_eq!(
            t.fraction_cores_done_by(0.5),
            1.0,
            "all cores trivially done"
        );
    }
}
